//! # camj — system-level energy modeling for in-sensor visual computing
//!
//! A from-scratch Rust reproduction of **CamJ** (Ma, Feng, Zhang, Zhu —
//! ISCA 2023): a component-level energy modeling framework for
//! computational CMOS image sensors under a frame-rate target.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] — the framework: declarative algorithm / hardware /
//!   mapping descriptions, pre-simulation checks, delay estimation,
//!   and the energy estimator,
//! * [`analog`] — A-Cell/A-Component circuit energy models,
//! * [`digital`] — memory structures, compute units, and the
//!   cycle-level pipeline simulator,
//! * [`tech`] — process-node scaling, SRAM/STT-RAM macros, the ADC FoM
//!   survey, and interface energies,
//! * [`workloads`] — the paper's validation chips and case-study
//!   workloads, ready to run,
//! * [`explore`] — declarative design-space sweeps, the incremental
//!   estimation engine, and multi-objective Pareto exploration over
//!   the staged pipeline,
//! * [`desc`] — JSON design descriptions: load, validate, estimate,
//!   and export designs without recompiling (see the `camj` CLI and
//!   the golden files under `descriptions/`),
//! * [`obs`] — recording sessions over the `obs_core` tracing facade:
//!   Chrome trace-event export, aggregated metrics, and the
//!   determinism digest behind `camj --trace` / `--metrics`,
//! * [`serve`] — the estimation daemon behind `camj serve`: a
//!   newline-delimited JSON protocol over TCP/stdio, one process-wide
//!   warm estimate cache with request dedup, and a persistent on-disk
//!   cache tier (`--cache-dir`) that survives restarts.
//!
//! `docs/ARCHITECTURE.md` walks the whole machine — the staged
//! pipeline, the fingerprint/cache model, the delta-sweep planner, and
//! the Pareto layer — and `docs/DESCRIPTIONS.md` is the JSON schema
//! reference.
//!
//! # Quick start
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 5 example: 32×32 sensor, 2×2 binning in the
//! // pixel array, digital edge detection, MIPI out — at 30 FPS.
//! let model = camj::workloads::quickstart::model(30.0)?;
//! let report = model.estimate()?;
//! println!(
//!     "{:.1} nJ/frame, {:.1} pJ/pixel",
//!     report.total().nanojoules(),
//!     report.energy_per_pixel().picojoules()
//! );
//! for (category, energy) in report.breakdown.by_category() {
//!     println!("  {category:>7}: {:.1} pJ", energy.picojoules());
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for architectural exploration walkthroughs and
//! `crates/camj-bench` for the harnesses that regenerate every table and
//! figure of the paper's evaluation.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use camj_analog as analog;
pub use camj_core as core;
pub use camj_desc as desc;
pub use camj_digital as digital;
pub use camj_explore as explore;
pub use camj_obs as obs;
pub use camj_serve as serve;
pub use camj_tech as tech;
pub use camj_workloads as workloads;

pub use camj_core::energy::{
    CamJ, EnergyBreakdown, EnergyCategory, EstimateReport, ValidatedModel,
};
pub use camj_core::error::CamjError;
pub use camj_explore::{Explorer, Sweep};
