//! `camj` — estimate, sweep, validate, and export sensor designs from
//! declarative JSON descriptions, without recompiling.
//!
//! ```text
//! camj list
//! camj export <workload> [--out FILE]
//! camj validate <file>...
//! camj estimate --design FILE [--fps N] [--json] [--stats]
//! camj simulate --design FILE [--seed N] [--samples N] [--fps N] [--stimulus SPEC] [--json] [--stats]
//! camj sweep --design FILE [--fps A,B,C] [--format json|csv] [--no-cache]
//! camj pareto --design FILE [--fps A,B,C] [--objectives O,O,...]
//!             [--max-density X] [--max-latency-ms X] [--max-energy-pj X]
//!             [--format json|csv]
//! camj search --design FILE [--fps A,B,C] [--population N] [--generations N]
//!             [--budget N] [--seed N] [--format json|csv]
//! camj serve [--listen ADDR | --stdio] [--cache-dir DIR]
//!            [--workers N] [--queue N]
//! ```
//!
//! `estimate`, `simulate`, `sweep`, `pareto`, and `search` additionally accept
//! `--trace FILE` (Chrome trace-event JSON; the `CAMJ_TRACE`
//! environment variable sets a default path) and `--metrics text|json`
//! (an aggregated per-stage timing report, printed to stderr) — and
//! `--connect ADDR`, which sends the request to a running `camj serve`
//! daemon (sharing its warm estimate cache) instead of estimating
//! locally.
//!
//! Exit codes: 0 success, 1 validation/model failure (including any
//! captured per-point panic in sweep/pareto/search results), 2 usage
//! or I/O error. All output is deterministic — CI diffs `camj
//! estimate` against a committed snapshot. Tracing never changes
//! stdout: the recording drains to the side channels above.

use std::fs;
use std::process::ExitCode;
use std::sync::Arc;

use camj_core::energy::{EstimateReport, ValidatedModel};
use camj_core::functional::Stimulus;
use camj_desc::DesignDesc;
use camj_explore::{
    Constraint, EstimateCache, Explorer, Objective, ParetoQuery, SearchSpec, Sweep, SweepFormat,
};
use camj_obs::ObsSession;
use camj_serve::protocol::{ConstraintsReq, FrameKind, Request, RequestKind};
use camj_serve::ServeConfig;

const USAGE: &str = "\
camj — declarative energy estimation for in-sensor visual computing

USAGE:
    camj list
        List the built-in workloads available to `export`.
    camj export <workload> [--out FILE]
        Write a built-in workload's design description (JSON) to stdout
        or FILE.
    camj validate <file>...
        Parse, validate, and type-check one or more descriptions.
    camj estimate --design FILE [--fps N] [--json] [--stats]
        Estimate per-frame energy for a description (optionally
        overriding its frame rate). --stats runs the estimate through a
        fresh estimate cache and reports its hit/miss line.
    camj simulate --design FILE [--seed N] [--samples N] [--fps N] [--stimulus SPEC] [--json] [--stats]
        Noise-aware functional simulation of one frame: renders the
        stimulus (uniform:<level>, gradient:<low>,<high>, or
        image:<path> for a PGM/PPM file; default: the description's
        `stimulus` block, else gradient:0.1,0.9) at the input stage's
        resolution, injects each analog stage's noise sources with the
        seeded deterministic RNG (default seed 42), applies ADC
        quantization, executes the mapped digital DAG on the frame, and
        reports per-stage SNR, task-level metrics (MSE/RMSE/PSNR and
        centroid error at the DAG sink), plus digests pinning the
        analog output and the DAG sink bit-for-bit. Identical across
        runs and thread counts. --samples N (default 1, max 1024) runs
        a Monte-Carlo batch over seeds seed..seed+N and reports
        per-stage mean ± σ instead.
    camj sweep --design FILE [--fps A,B,C] [--format json|csv] [--no-cache]
        Sweep frame-rate targets (from --fps, or the description's
        `sweep.fps` list) through the incremental estimation engine.
        --format selects machine-readable output (--json is shorthand
        for --format json); --no-cache opts out of the cross-point
        estimate cache and runs the plain staged pipeline instead.
    camj pareto --design FILE [--fps A,B,C] [--objectives O,O,...]
                [--max-density X] [--max-latency-ms X] [--max-energy-pj X]
                [--format json|csv]
        Multi-objective Pareto exploration over the frame-rate grid.
        Objectives (minimised): total_energy, delay, power_density,
        snr, category:<LABEL>, stage:<name>, noise:<unit>,
        mc_snr:<samples> (Monte-Carlo mean output noise RMS),
        accuracy:<mse|rmse|centroid> (task-level error of the design's
        stimulus pushed through the full functional pipeline); defaults
        come from the description's `sweep.objectives` (falling back
        to total_energy,power_density). Constraint flags override the
        description's `sweep.constraints`; violating points are pruned
        mid-estimate, skipping their remaining energy kernels.
    camj search --design FILE [--fps A,B,C] [--objectives O,O,...]
                [--population N] [--generations N] [--budget N] [--seed N]
                [--max-density X] [--max-latency-ms X] [--max-energy-pj X]
                [--format json|csv]
        Adaptive frontier search: approximates the pareto frontier on
        grids too large to enumerate, spending gated evaluations only
        near the frontier (successive-halving warm-up + evolutionary
        crossover/mutation over the axis grid). Defaults come from the
        description's `sweep.search` block; a fixed --seed reproduces
        the run byte-identically across repeat runs and thread counts.
        Small grids fall back to exact cartesian evaluation.

    camj serve [--listen ADDR | --stdio] [--cache-dir DIR]
               [--workers N] [--queue N]
        Run the estimation daemon: newline-delimited JSON requests
        (validate/estimate/simulate/sweep/pareto/search/stats/
        shutdown) over TCP (default 127.0.0.1:0; the bound address is
        printed to stderr) or stdin/stdout with --stdio. All requests
        share one warm estimate cache; --cache-dir adds a persistent
        on-disk tier that survives restarts. --workers (default 4)
        sizes the execution pool, --queue (default 64) bounds the job
        queue (full queue = backpressure on readers). --trace and
        --metrics record the whole daemon run.

    sweep, pareto, and search accept --threads N to pin the worker
    count (equivalent to RAYON_NUM_THREADS=N; N must be positive).

    estimate, simulate, sweep, pareto, and search accept
    --connect ADDR to run against a `camj serve` daemon instead of
    estimating locally: the design file is sent inline, the daemon's
    shared cache does the work, and the result JSON prints to stdout.

OBSERVABILITY (estimate, simulate, sweep, pareto, search, serve):
    --trace FILE
        Record the command as Chrome trace-event JSON, loadable in
        Perfetto or chrome://tracing. The CAMJ_TRACE environment
        variable supplies a default path when the flag is absent.
    --metrics text|json
        Print an aggregated report (per-stage wall time, cache and
        kernel counters) to stderr after the command, so stdout stays
        exactly the command's own output.
    --stats
        estimate/simulate only: attach an estimate cache and print its
        hit/miss line (sweep and pareto always report cache stats).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "list" => cmd_list(),
        "export" => cmd_export(rest),
        "validate" => cmd_validate(rest),
        "estimate" => cmd_estimate(rest),
        "simulate" => cmd_simulate(rest),
        "sweep" => cmd_sweep(rest),
        "pareto" => cmd_pareto(rest),
        "search" => cmd_search(rest),
        "serve" => cmd_serve(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown subcommand '{other}'\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------

/// Parsed `--flag value` / `--switch` arguments plus positionals.
#[derive(Default)]
struct Flags {
    design: Option<String>,
    fps: Option<String>,
    out: Option<String>,
    format: Option<String>,
    seed: Option<String>,
    samples: Option<String>,
    stimulus: Option<String>,
    objectives: Option<String>,
    max_density: Option<String>,
    max_latency_ms: Option<String>,
    max_energy_pj: Option<String>,
    threads: Option<String>,
    population: Option<String>,
    generations: Option<String>,
    budget: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    listen: Option<String>,
    cache_dir: Option<String>,
    workers: Option<String>,
    queue: Option<String>,
    connect: Option<String>,
    json: bool,
    no_cache: bool,
    stats: bool,
    stdio: bool,
    fault_injection: bool,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    let value_of = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--design" => flags.design = Some(value_of("--design", &mut it)?),
            "--fps" => flags.fps = Some(value_of("--fps", &mut it)?),
            "--out" => flags.out = Some(value_of("--out", &mut it)?),
            "--format" => flags.format = Some(value_of("--format", &mut it)?),
            "--seed" => flags.seed = Some(value_of("--seed", &mut it)?),
            "--samples" => flags.samples = Some(value_of("--samples", &mut it)?),
            "--stimulus" => flags.stimulus = Some(value_of("--stimulus", &mut it)?),
            "--objectives" => flags.objectives = Some(value_of("--objectives", &mut it)?),
            "--max-density" => flags.max_density = Some(value_of("--max-density", &mut it)?),
            "--max-latency-ms" => {
                flags.max_latency_ms = Some(value_of("--max-latency-ms", &mut it)?);
            }
            "--max-energy-pj" => {
                flags.max_energy_pj = Some(value_of("--max-energy-pj", &mut it)?);
            }
            "--threads" => flags.threads = Some(value_of("--threads", &mut it)?),
            "--population" => flags.population = Some(value_of("--population", &mut it)?),
            "--generations" => flags.generations = Some(value_of("--generations", &mut it)?),
            "--budget" => flags.budget = Some(value_of("--budget", &mut it)?),
            "--trace" => flags.trace = Some(value_of("--trace", &mut it)?),
            "--metrics" => flags.metrics = Some(value_of("--metrics", &mut it)?),
            "--listen" => flags.listen = Some(value_of("--listen", &mut it)?),
            "--cache-dir" => flags.cache_dir = Some(value_of("--cache-dir", &mut it)?),
            "--workers" => flags.workers = Some(value_of("--workers", &mut it)?),
            "--queue" => flags.queue = Some(value_of("--queue", &mut it)?),
            "--connect" => flags.connect = Some(value_of("--connect", &mut it)?),
            "--json" => flags.json = true,
            "--no-cache" => flags.no_cache = true,
            "--stats" => flags.stats = true,
            "--stdio" => flags.stdio = true,
            "--fault-injection" => flags.fault_injection = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            positional => flags.positional.push(positional.to_owned()),
        }
    }
    Ok(flags)
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

// ---------------------------------------------------------------------
// Observability wiring
// ---------------------------------------------------------------------

/// How `--metrics` renders the aggregated report.
#[derive(Clone, Copy)]
enum MetricsFormat {
    Text,
    Json,
}

/// One command's recording session (if any) plus its export targets.
struct Obs {
    session: Option<ObsSession>,
    trace_path: Option<String>,
    metrics: Option<MetricsFormat>,
}

/// Starts a recording session when `--trace`, `CAMJ_TRACE`, or
/// `--metrics` asks for one. Otherwise the facade stays disabled and
/// every instrumentation site costs a single atomic load.
fn obs_begin(flags: &Flags) -> Result<Obs, String> {
    let trace_path = flags
        .trace
        .clone()
        .or_else(|| std::env::var("CAMJ_TRACE").ok().filter(|p| !p.is_empty()));
    let metrics = match flags.metrics.as_deref() {
        None => None,
        Some("text") => Some(MetricsFormat::Text),
        Some("json") => Some(MetricsFormat::Json),
        Some(other) => return Err(format!("--metrics needs 'text' or 'json', got '{other}'")),
    };
    let session = (trace_path.is_some() || metrics.is_some()).then(ObsSession::begin);
    Ok(Obs {
        session,
        trace_path,
        metrics,
    })
}

/// Finishes the session (if one ran): writes the Chrome trace file and
/// prints the metrics report to stderr, leaving stdout exactly what the
/// command printed. Returns `code` unless an export failed.
fn obs_finish(obs: Obs, code: ExitCode) -> ExitCode {
    let Some(session) = obs.session else {
        return code;
    };
    let recording = session.finish();
    if let Some(path) = &obs.trace_path {
        if let Err(e) = fs::write(path, recording.chrome_trace_json()) {
            eprintln!("error: could not write trace {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("trace: wrote {path} ({} events)", recording.event_count());
    }
    match obs.metrics {
        None => {}
        Some(MetricsFormat::Text) => eprint!("{}", recording.metrics().to_text()),
        Some(MetricsFormat::Json) => eprintln!("{}", recording.metrics().to_json()),
    }
    code
}

// ---------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------

fn cmd_list() -> ExitCode {
    println!("built-in workloads (usable with `camj export <name>`):");
    for b in camj_workloads::describe::builtins() {
        println!("  {:<12} {}", b.name, b.summary);
    }
    ExitCode::SUCCESS
}

fn cmd_export(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let [name] = flags.positional.as_slice() else {
        return usage_error("export takes exactly one workload name");
    };
    let desc = match camj_workloads::describe::export(name) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = match desc.to_json_pretty() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &flags.out {
        None => print!("{json}"),
        Some(path) => {
            if let Err(e) = fs::write(path, &json) {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("wrote {path}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    if flags.positional.is_empty() {
        return usage_error("validate needs at least one description file");
    }
    let mut failures = 0usize;
    for path in &flags.positional {
        match load_design(path, None) {
            Ok((desc, _model)) => {
                println!("{path}: OK ({}, fps {})", desc.name, desc.fps);
            }
            Err(message) => {
                failures += 1;
                println!("{path}: FAILED");
                for line in message.lines() {
                    println!("    {line}");
                }
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{failures} of {} description(s) failed",
            flags.positional.len()
        );
        ExitCode::FAILURE
    }
}

fn cmd_estimate(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let obs = match obs_begin(&flags) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let code = {
        let _span = obs_core::span("cli.estimate");
        run_estimate(&flags)
    };
    obs_finish(obs, code)
}

fn run_estimate(flags: &Flags) -> ExitCode {
    if flags.connect.is_some() {
        return run_connected(flags, RequestKind::Estimate);
    }
    let Some(path) = &flags.design else {
        return usage_error("estimate needs --design FILE");
    };
    let fps_override = match flags.fps.as_deref().map(parse_fps_single) {
        None => None,
        Some(Ok(v)) => Some(v),
        Some(Err(e)) => return usage_error(&e),
    };
    let (desc, model) = match load_design(path, fps_override) {
        Ok(x) => x,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    // --stats: run the estimate through a fresh cross-point cache so
    // the hit/miss line sweep prints is available for one-shot runs
    // too (all misses on a cold cache — the line names the shard
    // population and lookup counts).
    let cache = flags.stats.then(EstimateCache::shared);
    let model = match &cache {
        Some(cache) => model.with_cache(Arc::clone(cache)),
        None => model,
    };
    let report = match model.estimate() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: estimation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if flags.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: could not serialize the report: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        print_report(&desc, model.fps(), &report);
    }
    print_cache_line(cache.as_ref(), flags.json);
    ExitCode::SUCCESS
}

/// The `--stats` cache line: stdout for human output, stderr under
/// `--json` so machine-readable stdout stays pure JSON.
fn print_cache_line(cache: Option<&Arc<EstimateCache>>, json: bool) {
    if let Some(cache) = cache {
        if json {
            eprintln!("cache: {}", cache.stats());
        } else {
            println!("cache: {}", cache.stats());
        }
    }
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let obs = match obs_begin(&flags) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let code = {
        let _span = obs_core::span("cli.simulate");
        run_simulate(&flags)
    };
    obs_finish(obs, code)
}

fn run_simulate(flags: &Flags) -> ExitCode {
    if flags.connect.is_some() {
        return run_connected(flags, RequestKind::Simulate);
    }
    let Some(path) = &flags.design else {
        return usage_error("simulate needs --design FILE");
    };
    if let [stray, ..] = flags.positional.as_slice() {
        return usage_error(&format!("simulate takes no positional argument '{stray}'"));
    }
    if flags.out.is_some() {
        return usage_error("simulate prints to stdout; redirect instead of passing --out");
    }
    if flags.format.is_some() {
        return usage_error("simulate has no --format; use --json for machine-readable output");
    }
    if flags.no_cache
        || flags.objectives.is_some()
        || flags.max_density.is_some()
        || flags.max_latency_ms.is_some()
        || flags.max_energy_pj.is_some()
    {
        return usage_error(
            "simulate takes none of --no-cache/--objectives/--max-*; those are sweep/pareto flags",
        );
    }
    let seed: u64 = match flags.seed.as_deref() {
        None => 42,
        Some(text) => match text.parse() {
            Ok(v) => v,
            Err(_) => {
                return usage_error(&format!("--seed needs an unsigned integer, got '{text}'"))
            }
        },
    };
    let samples: u32 = match flags.samples.as_deref() {
        None => 1,
        Some(text) => match text.parse() {
            Ok(v) if (1..=1024).contains(&v) => v,
            _ => {
                return usage_error(&format!(
                    "--samples needs an integer in 1..=1024, got '{text}'"
                ))
            }
        },
    };
    let flag_stimulus = match flags.stimulus.as_deref() {
        None => None,
        Some(text) => match text.parse::<Stimulus>() {
            Ok(s) => Some(s),
            Err(e) => return usage_error(&e),
        },
    };
    let fps_override = match flags.fps.as_deref().map(parse_fps_single) {
        None => None,
        Some(Ok(v)) => Some(v),
        Some(Err(e)) => return usage_error(&e),
    };
    let (desc, model) = match load_design(path, fps_override) {
        Ok(x) => x,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    // --stimulus overrides the description's own stimulus block, which
    // load_design already attached to the model.
    let stimulus = flag_stimulus.unwrap_or_else(|| model.stimulus().clone());
    // --stats: the frame plan's delay solve goes through the estimate
    // cache when one is attached, so the line reports the elastic
    // lookups this simulation actually made.
    let cache = flags.stats.then(EstimateCache::shared);
    let model = match &cache {
        Some(cache) => model.with_cache(Arc::clone(cache)),
        None => model,
    };
    if samples > 1 {
        // Monte-Carlo batch: seeds seed..seed+N through one shared
        // frame plan, aggregated per stage. --samples 1 stays on the
        // single-frame path below, byte-identical to previous releases.
        let seeds: Vec<u64> = (0..u64::from(samples))
            .map(|i| seed.wrapping_add(i))
            .collect();
        let mc = match model.simulate_frames(&seeds, &stimulus) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: functional simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if flags.json {
            match serde_json::to_string_pretty(&mc) {
                Ok(json) => println!("{json}"),
                Err(e) => {
                    eprintln!("error: could not serialize the report: {e}");
                    return ExitCode::FAILURE;
                }
            }
            print_cache_line(cache.as_ref(), true);
            return ExitCode::SUCCESS;
        }
        println!(
            "== simulate: {} @ {} FPS ({} seeds {}.., stimulus {}) ==",
            desc.name,
            model.fps(),
            samples,
            seed,
            mc.stimulus
        );
        println!("frame: {}x{}x{} pixels", mc.width, mc.height, mc.channels);
        if mc.stages.is_empty() {
            println!("analog chain: no stages (nothing to simulate)");
        } else {
            println!("{:<24} {:>22} {:>18}", "stage", "noise rms (FS)", "SNR dB");
            for stage in &mc.stages {
                println!(
                    "{:<24} {:>14.6} ±{:.1e} {:>18}",
                    stage.unit,
                    stage.noise_rms_mean,
                    stage.noise_rms_std,
                    stage.snr_db_mean.map_or_else(
                        || "-".to_owned(),
                        |db| format!("{db:.2} ±{:.2}", stage.snr_db_std.unwrap_or(0.0))
                    ),
                );
            }
        }
        println!(
            "output: mean {:.6}, noise rms {:.6} ±{:.1e}{}",
            mc.output.mean,
            mc.output.noise_rms_mean,
            mc.output.noise_rms_std,
            mc.output.snr_db_mean.map_or_else(String::new, |db| format!(
                ", SNR {db:.2} ±{:.2} dB",
                mc.output.snr_db_std.unwrap_or(0.0)
            )),
        );
        if let Some(dag) = &mc.dag {
            println!(
                "digital DAG (sink {}): {:<12} {:>20} {:>18}",
                dag.sink, "stage", "error rms (FS)", "SNR dB"
            );
            for stage in &dag.stages {
                println!(
                    "  {:<36} {:>12.6} ±{:.1e} {:>18}",
                    stage.stage,
                    stage.error_rms_mean,
                    stage.error_rms_std,
                    stage.snr_db_mean.map_or_else(
                        || "-".to_owned(),
                        |db| format!("{db:.2} ±{:.2}", stage.snr_db_std.unwrap_or(0.0))
                    ),
                );
            }
            println!(
                "task: mse {:.6e} ±{:.1e}, rmse {:.6} ±{:.1e}, psnr {}, centroid err {:.6} ±{:.1e}",
                dag.metrics.mse_mean,
                dag.metrics.mse_std,
                dag.metrics.rmse_mean,
                dag.metrics.rmse_std,
                dag.metrics.psnr_db_mean.map_or_else(
                    || "-".to_owned(),
                    |db| format!("{db:.2} ±{:.2} dB", dag.metrics.psnr_db_std.unwrap_or(0.0))
                ),
                dag.metrics.centroid_err_mean,
                dag.metrics.centroid_err_std,
            );
            println!("dag digest: {}", dag.digests[0]);
        }
        println!("digest: {}", mc.digests[0]);
        print_cache_line(cache.as_ref(), false);
        return ExitCode::SUCCESS;
    }
    let report = match model.simulate_frame(seed, &stimulus) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: functional simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if flags.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: could not serialize the report: {e}");
                return ExitCode::FAILURE;
            }
        }
        print_cache_line(cache.as_ref(), true);
        return ExitCode::SUCCESS;
    }
    println!(
        "== simulate: {} @ {} FPS (seed {}, stimulus {}) ==",
        desc.name,
        model.fps(),
        report.seed,
        report.stimulus
    );
    println!(
        "frame: {}x{}x{} pixels",
        report.width, report.height, report.channels
    );
    if report.stages.is_empty() {
        println!("analog chain: no stages (nothing to simulate)");
    } else {
        println!("{:<24} {:>16} {:>12}", "stage", "noise rms (FS)", "SNR dB");
        for stage in &report.stages {
            println!(
                "{:<24} {:>16.6} {:>12}",
                stage.unit,
                stage.noise_rms,
                stage
                    .snr_db
                    .map_or_else(|| "-".to_owned(), |db| format!("{db:.2}")),
            );
        }
    }
    println!(
        "output: mean {:.6}, range [{:.6}, {:.6}], noise rms {:.6}{}",
        report.output.mean,
        report.output.min,
        report.output.max,
        report.output.noise_rms,
        report
            .output
            .snr_db
            .map_or_else(String::new, |db| format!(", SNR {db:.2} dB")),
    );
    if let Some(dag) = &report.dag {
        println!(
            "digital DAG (sink {}): {:<12} {:>16} {:>12}",
            dag.sink, "stage", "error rms (FS)", "SNR dB"
        );
        for stage in &dag.stages {
            println!(
                "  {:<36} {:>16.6} {:>12}",
                stage.stage,
                stage.error_rms,
                stage
                    .snr_db
                    .map_or_else(|| "-".to_owned(), |db| format!("{db:.2}")),
            );
        }
        println!(
            "task: mse {:.6e}, rmse {:.6}, psnr {}, centroid err {:.6}",
            dag.metrics.mse,
            dag.metrics.rmse,
            dag.metrics
                .psnr_db
                .map_or_else(|| "-".to_owned(), |db| format!("{db:.2} dB")),
            dag.metrics.centroid_err,
        );
        println!("dag digest: {}", dag.digest);
    }
    println!("digest: {}", report.digest);
    print_cache_line(cache.as_ref(), false);
    ExitCode::SUCCESS
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let obs = match obs_begin(&flags) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let code = {
        let _span = obs_core::span("cli.sweep");
        run_sweep(&flags)
    };
    obs_finish(obs, code)
}

fn run_sweep(flags: &Flags) -> ExitCode {
    if flags.connect.is_some() {
        return run_connected(flags, RequestKind::Sweep);
    }
    if flags.stats {
        return usage_error(
            "--stats is an estimate/simulate flag; sweep and pareto always report cache stats",
        );
    }
    let Some(path) = &flags.design else {
        return usage_error("sweep needs --design FILE");
    };
    if let Err(e) = apply_threads(flags) {
        return usage_error(&e);
    }
    let (desc, model) = match load_design(path, None) {
        Ok(x) => x,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let targets: Vec<f64> = match (&flags.fps, &desc.sweep) {
        (Some(list), _) => match list.split(',').map(parse_fps_single).collect() {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        },
        (None, Some(sweep)) => sweep.fps.clone(),
        (None, None) => {
            return usage_error(
                "sweep needs frame-rate targets: pass --fps A,B,C or add a `sweep.fps` \
                 list to the description",
            )
        }
    };
    let format = match (&flags.format, flags.json) {
        (Some(text), _) => match text.parse::<SweepFormat>() {
            Ok(f) => f,
            Err(e) => return usage_error(&e),
        },
        (None, true) => SweepFormat::Json,
        (None, false) => SweepFormat::Human,
    };
    // Default path: the incremental engine — one shared cross-point
    // cache, models built once per planned group, kernels replayed on
    // fingerprint hits. `--no-cache` falls back to the plain staged
    // pipeline (still model-cached within the sweep, as in PR 1).
    let fault_fps = injected_fault_fps();
    let (results, cache_stats) = if flags.no_cache {
        (Explorer::new().sweep_fps(&model, targets), None)
    } else {
        let sweep = Sweep::new().fps_targets(targets);
        let cache = EstimateCache::shared();
        let results = Explorer::new().sweep_incremental(&sweep, &cache, |point| {
            let fps = point.fps("fps");
            fault_check(fault_fps, fps);
            Ok(model.with_fps(fps))
        });
        (results, Some(cache.stats()))
    };
    match format {
        SweepFormat::Json => println!("{}", results.to_json(cache_stats.as_ref())),
        SweepFormat::Csv => print!("{}", results.to_csv()),
        SweepFormat::Human => {
            println!("== sweep: {} ({} points) ==", desc.name, results.len());
            println!(
                "{:>10}  {:>16}  {:>14}",
                "fps", "total pJ/frame", "pJ/pixel"
            );
            for o in results.outcomes() {
                let fps = o.point.fps("fps");
                match &o.result {
                    Ok(r) => println!(
                        "{:>10}  {:>16.3}  {:>14.4}",
                        fps,
                        r.total().picojoules(),
                        r.energy_per_pixel().picojoules()
                    ),
                    Err(e) => println!("{fps:>10}  infeasible: {}", e.message()),
                }
            }
            if let Some((point, best)) = results.min_energy() {
                println!(
                    "minimum: {:.3} pJ/frame at {point}",
                    best.total().picojoules()
                );
            }
            if let Some(stats) = cache_stats {
                println!("cache: {stats}");
            }
        }
    }
    let panicked = results
        .outcomes()
        .iter()
        .filter(|o| matches!(&o.result, Err(e) if e.is_panic()))
        .count();
    finish_with_panic_check(panicked, "sweep")
}

fn cmd_pareto(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let obs = match obs_begin(&flags) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let code = {
        let _span = obs_core::span("cli.pareto");
        run_pareto(&flags)
    };
    obs_finish(obs, code)
}

fn run_pareto(flags: &Flags) -> ExitCode {
    if flags.connect.is_some() {
        return run_connected(flags, RequestKind::Pareto);
    }
    if flags.stats {
        return usage_error(
            "--stats is an estimate/simulate flag; sweep and pareto always report cache stats",
        );
    }
    let Some(path) = &flags.design else {
        return usage_error("pareto needs --design FILE");
    };
    if let [stray, ..] = flags.positional.as_slice() {
        return usage_error(&format!("pareto takes no positional argument '{stray}'"));
    }
    if flags.no_cache {
        return usage_error(
            "--no-cache is not supported by pareto (pruning requires the shared \
             estimate cache); use `camj sweep --no-cache` for uncached sweeps",
        );
    }
    if flags.out.is_some() {
        return usage_error("pareto prints to stdout; redirect instead of passing --out");
    }
    if let Err(e) = apply_threads(flags) {
        return usage_error(&e);
    }
    let (desc, model) = match load_design(path, None) {
        Ok(x) => x,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let spec = desc.sweep.as_ref();
    let targets: Vec<f64> = match (&flags.fps, spec) {
        (Some(list), _) => match list.split(',').map(parse_fps_single).collect() {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        },
        (None, Some(sweep)) if !sweep.fps.is_empty() => sweep.fps.clone(),
        _ => {
            return usage_error(
                "pareto needs frame-rate targets: pass --fps A,B,C or add a `sweep.fps` \
                 list to the description",
            )
        }
    };
    // Objectives: --objectives beats the description's sweep.objectives
    // beats the (total_energy, power_density) default.
    let objective_names: Vec<String> = match (&flags.objectives, spec) {
        (Some(list), _) => list.split(',').map(|s| s.trim().to_owned()).collect(),
        (None, Some(sweep)) => sweep
            .objectives
            .clone()
            .unwrap_or_else(default_objective_names),
        (None, None) => default_objective_names(),
    };
    let objectives: Vec<Objective> = {
        let mut parsed = Vec::with_capacity(objective_names.len());
        for name in &objective_names {
            match name.parse::<Objective>() {
                Ok(o) => parsed.push(o),
                Err(e) => return usage_error(&e),
            }
        }
        parsed
    };
    if objectives.is_empty() {
        return usage_error("pareto needs at least one objective");
    }
    let mut query = ParetoQuery::new(objectives);
    // Constraints: any constraint flag overrides the description's
    // whole `sweep.constraints` block (flags and block do not mix).
    let flagged = [
        &flags.max_density,
        &flags.max_latency_ms,
        &flags.max_energy_pj,
    ]
    .iter()
    .any(|f| f.is_some());
    if flagged {
        let budgets = [
            (&flags.max_density, "--max-density"),
            (&flags.max_latency_ms, "--max-latency-ms"),
            (&flags.max_energy_pj, "--max-energy-pj"),
        ];
        for (value, flag) in budgets {
            let Some(text) = value else { continue };
            let budget = match text.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => v,
                _ => return usage_error(&format!("{flag} needs a positive number, got '{text}'")),
            };
            query = query.constrain(match flag {
                "--max-density" => Constraint::MaxPowerDensity(budget),
                "--max-latency-ms" => Constraint::MaxDigitalLatency(budget),
                _ => Constraint::MaxTotalEnergy(budget),
            });
        }
    } else if let Some(constraints) = spec.and_then(|s| s.constraints.as_ref()) {
        if let Some(v) = constraints.max_power_density_mw_per_mm2 {
            query = query.constrain(Constraint::MaxPowerDensity(v));
        }
        if let Some(v) = constraints.max_digital_latency_ms {
            query = query.constrain(Constraint::MaxDigitalLatency(v));
        }
        if let Some(v) = constraints.max_total_energy_pj {
            query = query.constrain(Constraint::MaxTotalEnergy(v));
        }
    }
    let format = match (&flags.format, flags.json) {
        (Some(text), _) => match text.parse::<SweepFormat>() {
            Ok(f) => f,
            Err(e) => return usage_error(&e),
        },
        (None, true) => SweepFormat::Json,
        (None, false) => SweepFormat::Human,
    };
    let sweep = Sweep::new().fps_targets(targets);
    let cache = EstimateCache::shared();
    let fault_fps = injected_fault_fps();
    let results = Explorer::new().pareto(&sweep, &cache, &query, |point| {
        let fps = point.fps("fps");
        fault_check(fault_fps, fps);
        Ok(model.with_fps(fps))
    });
    match format {
        SweepFormat::Json => println!("{}", results.to_json(Some(&cache.stats()))),
        SweepFormat::Csv => print!("{}", results.to_csv()),
        SweepFormat::Human => {
            println!(
                "== pareto: {} ({} points, {} objectives) ==",
                desc.name,
                results.total_points(),
                query.objectives().len()
            );
            for constraint in query.constraints().constraints() {
                println!("constraint: {constraint}");
            }
            let keys: Vec<String> = query.objectives().iter().map(Objective::key).collect();
            print!("{:>10}", "fps");
            for key in &keys {
                print!("  {key:>24}");
            }
            println!();
            for entry in results.frontier() {
                print!("{:>10}", entry.point.fps("fps"));
                for value in entry.metrics.values() {
                    print!("  {value:>24.4}");
                }
                println!();
            }
            println!(
                "frontier: {} point(s); dominated: {}; pruned: {}; errors: {}",
                results.frontier().len(),
                results.dominated_count(),
                results.pruned().len(),
                results.errors().len()
            );
            for pruned in results.pruned() {
                println!(
                    "  pruned [{}]: violates {} after {} kernel(s)",
                    pruned.point, pruned.constraint, pruned.kernels_done
                );
            }
            for (point, error) in results.errors() {
                println!("  error [{point}]: {}", error.message());
            }
            println!("prune: {}", results.stats());
            println!("cache: {}", cache.stats());
        }
    }
    let panicked = results
        .errors()
        .iter()
        .filter(|(_, e)| e.is_panic())
        .count();
    finish_with_panic_check(panicked, "pareto")
}

fn cmd_search(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let obs = match obs_begin(&flags) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let code = {
        let _span = obs_core::span("cli.search");
        run_search(&flags)
    };
    obs_finish(obs, code)
}

fn run_search(flags: &Flags) -> ExitCode {
    if flags.connect.is_some() {
        return run_connected(flags, RequestKind::Search);
    }
    if flags.stats {
        return usage_error(
            "--stats is an estimate/simulate flag; sweep and pareto always report cache stats",
        );
    }
    let Some(path) = &flags.design else {
        return usage_error("search needs --design FILE");
    };
    if let [stray, ..] = flags.positional.as_slice() {
        return usage_error(&format!("search takes no positional argument '{stray}'"));
    }
    if flags.no_cache {
        return usage_error(
            "--no-cache is not supported by search (warm-up promotion requires the \
             shared estimate cache); use `camj sweep --no-cache` for uncached sweeps",
        );
    }
    if flags.out.is_some() {
        return usage_error("search prints to stdout; redirect instead of passing --out");
    }
    if let Err(e) = apply_threads(flags) {
        return usage_error(&e);
    }
    let (desc, model) = match load_design(path, None) {
        Ok(x) => x,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let spec = desc.sweep.as_ref();
    let targets: Vec<f64> = match (&flags.fps, spec) {
        (Some(list), _) => match list.split(',').map(parse_fps_single).collect() {
            Ok(v) => v,
            Err(e) => return usage_error(&e),
        },
        (None, Some(sweep)) if !sweep.fps.is_empty() => sweep.fps.clone(),
        _ => {
            return usage_error(
                "search needs frame-rate targets: pass --fps A,B,C or add a `sweep.fps` \
                 list to the description",
            )
        }
    };
    let objective_names: Vec<String> = match (&flags.objectives, spec) {
        (Some(list), _) => list.split(',').map(|s| s.trim().to_owned()).collect(),
        (None, Some(sweep)) => sweep
            .objectives
            .clone()
            .unwrap_or_else(default_objective_names),
        (None, None) => default_objective_names(),
    };
    let objectives: Vec<Objective> = {
        let mut parsed = Vec::with_capacity(objective_names.len());
        for name in &objective_names {
            match name.parse::<Objective>() {
                Ok(o) => parsed.push(o),
                Err(e) => return usage_error(&e),
            }
        }
        parsed
    };
    if objectives.is_empty() {
        return usage_error("search needs at least one objective");
    }
    let mut query = ParetoQuery::new(objectives);
    let flagged = [
        &flags.max_density,
        &flags.max_latency_ms,
        &flags.max_energy_pj,
    ]
    .iter()
    .any(|f| f.is_some());
    if flagged {
        let budgets = [
            (&flags.max_density, "--max-density"),
            (&flags.max_latency_ms, "--max-latency-ms"),
            (&flags.max_energy_pj, "--max-energy-pj"),
        ];
        for (value, flag) in budgets {
            let Some(text) = value else { continue };
            let budget = match text.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => v,
                _ => return usage_error(&format!("{flag} needs a positive number, got '{text}'")),
            };
            query = query.constrain(match flag {
                "--max-density" => Constraint::MaxPowerDensity(budget),
                "--max-latency-ms" => Constraint::MaxDigitalLatency(budget),
                _ => Constraint::MaxTotalEnergy(budget),
            });
        }
    } else if let Some(constraints) = spec.and_then(|s| s.constraints.as_ref()) {
        if let Some(v) = constraints.max_power_density_mw_per_mm2 {
            query = query.constrain(Constraint::MaxPowerDensity(v));
        }
        if let Some(v) = constraints.max_digital_latency_ms {
            query = query.constrain(Constraint::MaxDigitalLatency(v));
        }
        if let Some(v) = constraints.max_total_energy_pj {
            query = query.constrain(Constraint::MaxTotalEnergy(v));
        }
    }
    let format = match (&flags.format, flags.json) {
        (Some(text), _) => match text.parse::<SweepFormat>() {
            Ok(f) => f,
            Err(e) => return usage_error(&e),
        },
        (None, true) => SweepFormat::Json,
        (None, false) => SweepFormat::Human,
    };
    // Search knobs: description `sweep.search` defaults, flags override.
    // Description-side zeros were already rejected by validation, and
    // the counts below are pre-checked, so the builder asserts can't
    // fire from user input.
    let mut search_spec = SearchSpec::new();
    if let Some(ir) = spec.and_then(|s| s.search.as_ref()) {
        if let Some(n) = ir.population {
            search_spec = search_spec.population(clamp_to_usize(n));
        }
        if let Some(n) = ir.generations {
            search_spec = search_spec.generations(clamp_to_usize(n));
        }
        if let Some(n) = ir.seed {
            search_spec = search_spec.seed(n);
        }
        if let Some(n) = ir.budget {
            search_spec = search_spec.budget(clamp_to_usize(n));
        }
    }
    let knobs = [
        (&flags.population, "--population"),
        (&flags.generations, "--generations"),
        (&flags.budget, "--budget"),
    ];
    for (value, flag) in knobs {
        let Some(text) = value else { continue };
        let count = match text.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return usage_error(&format!("{flag} needs a positive integer, got '{text}'")),
        };
        search_spec = match flag {
            "--population" => search_spec.population(count),
            "--generations" => search_spec.generations(count),
            _ => search_spec.budget(count),
        };
    }
    if let Some(text) = flags.seed.as_deref() {
        match text.parse::<u64>() {
            Ok(n) => search_spec = search_spec.seed(n),
            Err(_) => {
                return usage_error(&format!("--seed needs an unsigned integer, got '{text}'"))
            }
        }
    }
    let sweep = Sweep::new().fps_targets(targets);
    let cache = EstimateCache::shared();
    let fault_fps = injected_fault_fps();
    let results = Explorer::new().search(&sweep, &cache, &query, &search_spec, |point| {
        let fps = point.fps("fps");
        fault_check(fault_fps, fps);
        Ok(model.with_fps(fps))
    });
    match format {
        SweepFormat::Json => println!("{}", results.to_json(Some(&cache.stats()))),
        SweepFormat::Csv => print!("{}", results.to_csv()),
        SweepFormat::Human => {
            println!(
                "== search: {} ({} grid points, {} objectives) ==",
                desc.name,
                results.grid_points(),
                query.objectives().len()
            );
            for constraint in query.constraints().constraints() {
                println!("constraint: {constraint}");
            }
            let keys: Vec<String> = query.objectives().iter().map(Objective::key).collect();
            print!("{:>10}", "fps");
            for key in &keys {
                print!("  {key:>24}");
            }
            println!();
            for entry in results.frontier() {
                print!("{:>10}", entry.point.fps("fps"));
                for value in entry.metrics.values() {
                    print!("  {value:>24.4}");
                }
                println!();
            }
            let pareto = results.pareto();
            println!(
                "frontier: {} point(s); dominated: {}; pruned: {}; errors: {}",
                results.frontier().len(),
                pareto.dominated_count(),
                pareto.pruned().len(),
                pareto.errors().len()
            );
            let termination = if results.exhaustive() {
                "exact cartesian (grid below the exhaustive threshold)".to_owned()
            } else if results.converged() {
                format!(
                    "converged after {} generation(s)",
                    results.generations_run()
                )
            } else {
                format!(
                    "stopped at the {} generation/budget cap",
                    results.generations_run()
                )
            };
            println!(
                "search: {} of {} grid points evaluated ({:.1}%); {termination}",
                results.evaluations(),
                results.grid_points(),
                results.evaluation_fraction() * 100.0
            );
            println!("prune: {}", pareto.stats());
            println!("cache: {}", cache.stats());
        }
    }
    let panicked = results
        .pareto()
        .errors()
        .iter()
        .filter(|(_, e)| e.is_panic())
        .count();
    finish_with_panic_check(panicked, "search")
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };
    let obs = match obs_begin(&flags) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let code = {
        let _span = obs_core::span("cli.serve");
        run_serve(&flags)
    };
    obs_finish(obs, code)
}

fn run_serve(flags: &Flags) -> ExitCode {
    if let [stray, ..] = flags.positional.as_slice() {
        return usage_error(&format!("serve takes no positional argument '{stray}'"));
    }
    if flags.stdio && flags.listen.is_some() {
        return usage_error("--stdio and --listen are mutually exclusive");
    }
    let workers = match flags.workers.as_deref() {
        None => 4,
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return usage_error(&format!("--workers needs a positive integer, got '{text}'")),
        },
    };
    let queue_capacity = match flags.queue.as_deref() {
        None => 64,
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return usage_error(&format!("--queue needs a positive integer, got '{text}'")),
        },
    };
    let config = ServeConfig {
        cache_dir: flags.cache_dir.clone().map(std::path::PathBuf::from),
        workers,
        queue_capacity,
        fault_injection: flags.fault_injection,
    };
    let served = if flags.stdio {
        camj_serve::serve_stdio(&config)
    } else {
        let addr = flags.listen.as_deref().unwrap_or("127.0.0.1:0");
        match std::net::TcpListener::bind(addr) {
            Ok(listener) => camj_serve::serve_tcp(listener, &config),
            Err(e) => {
                eprintln!("error: could not bind {addr}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve failed: {e}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------
// --connect: run a subcommand against a `camj serve` daemon
// ---------------------------------------------------------------------

/// Builds the protocol request a subcommand's flags describe, with the
/// design file inlined.
fn connect_request(flags: &Flags, kind: RequestKind) -> Result<Request, String> {
    if flags.stats {
        return Err(
            "--stats is local-only; the daemon's `stats` request reports cache state".into(),
        );
    }
    if flags.no_cache {
        return Err("--no-cache is local-only; the daemon always shares its cache".into());
    }
    if flags.threads.is_some() {
        return Err("--threads is local-only; worker count is the daemon's --workers".into());
    }
    if flags.format.as_deref() == Some("csv") {
        return Err("--connect prints the daemon's JSON result; --format csv is local-only".into());
    }
    let Some(path) = &flags.design else {
        return Err(format!("{} needs --design FILE", kind.as_str()));
    };
    let text = fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
    let design: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("could not parse {path}: {e}"))?;
    let mut request = Request::new(kind);
    request.id = 1;
    request.design = Some(design);
    if let Some(list) = &flags.fps {
        request.fps = Some(
            list.split(',')
                .map(parse_fps_single)
                .collect::<Result<Vec<f64>, String>>()?,
        );
    }
    if let Some(text) = flags.seed.as_deref() {
        request.seed = Some(
            text.parse::<u64>()
                .map_err(|_| format!("--seed needs an unsigned integer, got '{text}'"))?,
        );
    }
    if let Some(text) = flags.samples.as_deref() {
        request.samples = Some(
            text.parse::<u32>()
                .map_err(|_| format!("--samples needs an integer, got '{text}'"))?,
        );
    }
    request.stimulus = flags.stimulus.clone();
    if let Some(list) = &flags.objectives {
        request.objectives = Some(list.split(',').map(|s| s.trim().to_owned()).collect());
    }
    let mut constraints = ConstraintsReq::default();
    let budgets = [
        (&flags.max_density, "--max-density"),
        (&flags.max_latency_ms, "--max-latency-ms"),
        (&flags.max_energy_pj, "--max-energy-pj"),
    ];
    for (value, flag) in budgets {
        let Some(text) = value else { continue };
        let budget = text
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("{flag} needs a positive number, got '{text}'"))?;
        match flag {
            "--max-density" => constraints.max_power_density_mw_per_mm2 = Some(budget),
            "--max-latency-ms" => constraints.max_digital_latency_ms = Some(budget),
            _ => constraints.max_total_energy_pj = Some(budget),
        }
    }
    if constraints.any() {
        request.constraints = Some(constraints);
    }
    let knobs = [
        (&flags.population, "--population"),
        (&flags.generations, "--generations"),
        (&flags.budget, "--budget"),
    ];
    for (value, flag) in knobs {
        let Some(text) = value else { continue };
        let count = text
            .parse::<u64>()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("{flag} needs a positive integer, got '{text}'"))?;
        match flag {
            "--population" => request.population = Some(count),
            "--generations" => request.generations = Some(count),
            _ => request.budget = Some(count),
        }
    }
    Ok(request)
}

/// Sends the request to the daemon and renders its response: result
/// bodies pretty-printed to stdout, errors path-qualified to stderr.
fn run_connected(flags: &Flags, kind: RequestKind) -> ExitCode {
    let addr = flags.connect.as_deref().unwrap_or_default();
    let request = match connect_request(flags, kind) {
        Ok(r) => r,
        Err(e) => return usage_error(&e),
    };
    let frames = match camj_serve::roundtrip(addr, &request) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: could not reach the daemon at {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for frame in &frames {
        match frame.frame {
            FrameKind::Error => {
                failed = true;
                eprintln!(
                    "error[{}]: {}",
                    frame.path.as_deref().unwrap_or("request"),
                    frame.message.as_deref().unwrap_or("unspecified failure"),
                );
            }
            FrameKind::Result => {
                if let Some(body) = &frame.body {
                    match serde_json::to_string_pretty(body) {
                        Ok(json) => println!("{json}"),
                        Err(e) => {
                            eprintln!("error: could not render the result: {e}");
                            failed = true;
                        }
                    }
                }
            }
            FrameKind::Point | FrameKind::Done => {}
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------
// Per-point panic accounting (sweep/pareto/search exit codes)
// ---------------------------------------------------------------------

/// Test hook: `CAMJ_FAULT_PANIC_FPS=<fps>` makes the sweep/pareto/
/// search model-build closure panic at that frame-rate target, so the
/// captured-panic exit path can be exercised end-to-end.
fn injected_fault_fps() -> Option<f64> {
    std::env::var("CAMJ_FAULT_PANIC_FPS").ok()?.parse().ok()
}

/// Panics iff the fault-injection hook targets this frame rate.
fn fault_check(fault_fps: Option<f64>, fps: f64) {
    if fault_fps == Some(fps) {
        panic!("injected fault: fps {fps}");
    }
}

/// The shared epilogue of sweep/pareto/search: results were printed,
/// but any *captured panic* among them is a bug, not an infeasible
/// point — exit 1 with a one-line stderr summary so scripted callers
/// notice without parsing the JSON.
fn finish_with_panic_check(panicked: usize, command: &str) -> ExitCode {
    if panicked == 0 {
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "error: {panicked} point(s) panicked during {command}; their result rows carry the panic message"
    );
    ExitCode::FAILURE
}

/// The objectives `camj pareto` minimises when neither `--objectives`
/// nor the description's `sweep.objectives` names any.
fn default_objective_names() -> Vec<String> {
    vec!["total_energy".to_owned(), "power_density".to_owned()]
}

/// Converts a description-file u64 knob to `usize`, saturating on
/// 32-bit hosts (the explorer caps everything by the grid size anyway).
fn clamp_to_usize(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// Applies `--threads N`: pins the worker count before any parallel
/// evaluation starts (same effect as `RAYON_NUM_THREADS=N`, but
/// programmatic). Zero is rejected rather than passed through, because
/// rayon reads zero as "derive from the environment" and the flag
/// would be silently ignored.
fn apply_threads(flags: &Flags) -> Result<(), String> {
    let Some(text) = &flags.threads else {
        return Ok(());
    };
    let n = match text.parse::<usize>() {
        Ok(n) => n,
        Err(_) => return Err(format!("--threads needs a positive integer, got '{text}'")),
    };
    if n == 0 {
        return Err(
            "--threads must be at least 1; omit the flag to derive the worker count \
             from the environment"
                .to_owned(),
        );
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .map_err(|e| format!("could not pin the worker count: {e}"))
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

fn parse_fps_single(s: &str) -> Result<f64, String> {
    let fps = s
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("invalid FPS value '{s}'"))?;
    if !(fps.is_finite() && fps > 0.0) {
        return Err(format!("FPS must be positive and finite, got '{s}'"));
    }
    Ok(fps)
}

/// Reads, parses, validates, and builds a description file, optionally
/// overriding its frame rate. A `stimulus` block is resolved against
/// the file's directory and attached to the model, so functional
/// simulation and `accuracy:<metric>` objectives see the design's own
/// stimulus without extra flags.
fn load_design(path: &str, fps: Option<f64>) -> Result<(DesignDesc, ValidatedModel), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
    let mut desc = DesignDesc::from_json(&text).map_err(|e| e.to_string())?;
    if let Some(fps) = fps {
        if !(fps.is_finite() && fps > 0.0) {
            return Err(format!(
                "fps override must be positive and finite, got {fps}"
            ));
        }
        desc.fps = fps;
    }
    let mut model = desc.build().map_err(|e| e.to_string())?;
    if let Some(ir) = &desc.stimulus {
        let base = std::path::Path::new(path).parent();
        let stimulus = ir.resolve(base).map_err(|e| e.to_string())?;
        model = model.with_stimulus(stimulus);
    }
    Ok((desc, model))
}

fn print_report(desc: &DesignDesc, fps: f64, report: &EstimateReport) {
    println!("== {} @ {} FPS ==", desc.name, fps);
    println!(
        "total: {:.4} pJ/frame  ({:.4} pJ/pixel over {} input pixels)",
        report.total().picojoules(),
        report.energy_per_pixel().picojoules(),
        report.input_pixels
    );
    println!(
        "frame time: {:.4} ms = {} analog stages x {:.4} ms + {:.4} ms digital",
        report.delay.frame_time.millis(),
        report.delay.analog_stage_count,
        report.delay.analog_unit_time.millis(),
        report.delay.digital_latency.millis()
    );
    println!("breakdown by category:");
    for (category, energy) in report.breakdown.by_category() {
        if energy.joules() > 0.0 {
            println!("  {:<7} {:>14.4} pJ", category.label(), energy.picojoules());
        }
    }
    println!("breakdown by unit:");
    for item in report.breakdown.items() {
        let stage = item.stage.as_deref().unwrap_or("-");
        println!(
            "  {:<24} {:<7} stage={:<16} {:>14.4} pJ",
            item.unit,
            item.category.label(),
            stage,
            item.energy.picojoules()
        );
    }
    for layer in &report.layers {
        println!(
            "layer {:?}: {:.4} mW over {:.4} mm2{}",
            layer.layer,
            layer.power.milliwatts(),
            layer.area_mm2,
            layer
                .density_mw_per_mm2
                .map_or(String::new(), |d| format!(" -> {d:.4} mW/mm2")),
        );
    }
}
