//! ISSUE 5 acceptance suite: the noise-aware functional simulation and
//! the un-poisoned estimate cache.
//!
//! * a sweep containing one panicking point still returns correct
//!   results and honest `CacheStats` for every other point (serial and
//!   parallel),
//! * `simulate_frame` with a fixed seed is bit-identical across repeat
//!   runs and thread counts (proptest over seeds),
//! * the `snr` objective works end-to-end through `Explorer::pareto`,
//! * noise round-trips losslessly through the description format.

use proptest::prelude::*;

use camj::core::energy::{EstimateCache, EstimateReport};
use camj::core::functional::Stimulus;
use camj::explore::{Explorer, Objective, ParetoQuery, PointError, Sweep};
use camj::workloads::configs::SensorVariant;
use camj::workloads::edgaze::EdGazeConfig;
use camj::workloads::{describe, edgaze, quickstart};
use camj_tech::node::ProcessNode;

/// Forces the threaded rayon path (shared convention with
/// `tests/incremental.rs`: every test sets the same value).
fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", "8");
}

// ---------------------------------------------------------------------
// Cache-poison regression (ISSUE 5 satellite)
// ---------------------------------------------------------------------

/// One injected panic must not corrupt neighbouring points: before the
/// fix, the panicking point poisoned its cache shard and unrelated
/// points (and the final `stats()` call) died with a fake
/// `"cache shard lock"` panic.
#[test]
fn sweep_with_one_panicking_point_keeps_neighbours_and_stats_honest() {
    force_threads();
    // fps 10 is the planner's group representative, so the injected
    // panic hits the shared-model build path, forces the per-point
    // fallback, and recurs at its own point — the worst case for a
    // shared cache, since every healthy neighbour then computes
    // through it while the panic unwinds.
    let sweep = Sweep::new().fps_targets([10.0, 20.0, 30.0, 40.0, 60.0, 120.0]);
    let build = |point: &camj::explore::DesignPoint| {
        let fps = point.fps("fps");
        assert!(
            (fps - 10.0).abs() > 1e-9,
            "injected panic at the 10 FPS point"
        );
        quickstart::model(fps)
            .map(camj::core::energy::CamJ::into_validated)
            .map_err(PointError::new)
    };

    let serial_cache = EstimateCache::shared();
    let serial = Explorer::serial().sweep_incremental(&sweep, &serial_cache, build);
    let parallel_cache = EstimateCache::shared();
    let parallel = Explorer::parallel().sweep_incremental(&sweep, &parallel_cache, build);

    for results in [&serial, &parallel] {
        assert_eq!(results.len(), 6);
        assert_eq!(results.ok_count(), 5, "only the injected point fails");
        let (point, err) = results.failures().next().unwrap();
        assert_eq!(point.fps("fps"), 10.0);
        assert!(err.message().contains("injected panic"), "{err}");
        assert!(
            !err.message().contains("cache shard lock"),
            "neighbours must never die of a poisoned shard: {err}"
        );
    }
    assert_eq!(serial, parallel, "serial and parallel agree bit-for-bit");

    // The healthy points are byte-identical to a clean sweep of them.
    let clean_cache = EstimateCache::shared();
    let clean = Explorer::serial().sweep_incremental(
        &Sweep::new().fps_targets([20.0, 30.0, 40.0, 60.0, 120.0]),
        &clean_cache,
        |point| {
            quickstart::model(point.fps("fps"))
                .map(camj::core::energy::CamJ::into_validated)
                .map_err(PointError::new)
        },
    );
    let poisoned_ok: Vec<&EstimateReport> = serial.successes().map(|(_, r)| r).collect();
    let clean_ok: Vec<&EstimateReport> = clean.successes().map(|(_, r)| r).collect();
    assert_eq!(poisoned_ok, clean_ok);

    // And the stats snapshot (what the CLI prints last) still works.
    let stats = serial_cache.stats();
    assert!(stats.hits + stats.misses > 0);
    assert!(stats.entries > 0);
}

// ---------------------------------------------------------------------
// Functional-simulation determinism
// ---------------------------------------------------------------------

proptest! {
    /// `simulate_frame` is a pure function of (model, seed, stimulus):
    /// bit-identical across repeat runs, and different seeds actually
    /// produce different frames.
    #[test]
    fn simulate_frame_is_seed_deterministic(seed in 0u64..1_000_000, level in 1u32..10) {
        force_threads();
        let stimulus = Stimulus::uniform(f64::from(level) / 10.0);
        let model = quickstart::model(30.0).unwrap().into_validated();
        let a = model.simulate_frame(seed, &stimulus).unwrap();
        let b = model.simulate_frame(seed, &stimulus).unwrap();
        prop_assert_eq!(&a, &b, "repeat runs must be bit-identical");
        let c = model.simulate_frame(seed ^ 0xDEAD_BEEF, &stimulus).unwrap();
        prop_assert!(a.digest != c.digest, "a different seed reshuffles the noise");
    }
}

/// The same frame simulated at every point of a serial and a parallel
/// sweep: grid-ordered, byte-identical results regardless of the
/// worker pool (`RAYON_NUM_THREADS=8`).
#[test]
fn simulate_frame_is_identical_across_thread_counts() {
    force_threads();
    let sweep = Sweep::new().fps_targets([15.0, 30.0, 60.0]);
    let eval = |point: &camj::explore::DesignPoint| {
        let model = quickstart::model(point.fps("fps"))
            .map_err(PointError::new)?
            .into_validated();
        model
            .simulate_frame(42, &Stimulus::default())
            .map_err(PointError::from)
    };
    let serial = Explorer::serial().run(&sweep, eval);
    let parallel = Explorer::parallel().run(&sweep, eval);
    assert_eq!(serial, parallel);
    assert_eq!(serial.error_count(), 0);
}

/// The per-stage noise chain is what the paper's signal model implies:
/// the pixel injects shot/dark/read noise, the ADC adds quantization
/// implicitly, and the measured SNR sits near the analytic budget.
#[test]
fn quickstart_chain_and_snr_are_physical() {
    let model = quickstart::model(30.0).unwrap().into_validated();
    let frame = model.simulate_frame(42, &Stimulus::uniform(0.5)).unwrap();
    let units: Vec<&str> = frame.stages.iter().map(|s| s.unit.as_str()).collect();
    assert_eq!(units, ["PixelArray", "ADCArray"]);

    let report = model.estimate().unwrap();
    let noise = report.noise.as_ref().expect("quickstart declares noise");
    assert_eq!(noise.stages.len(), 2);
    let adc = noise.stage("ADCArray").unwrap();
    assert!(
        adc.added_noise_rms > 0.0,
        "the 10-bit ADC quantizes implicitly"
    );
    // Measured vs analytic SNR agree within a dB at the same stimulus.
    let measured = frame.output.snr_db.unwrap();
    assert!(
        (measured - noise.output_snr_db).abs() < 1.0,
        "measured {measured} dB vs analytic {} dB",
        noise.output_snr_db
    );
}

/// Monte-Carlo convergence: over many seeds on uniform stimuli, the
/// measured mean output SNR sits within a fraction of a dB of the
/// analytic [`NoiseReport`] budget — the MC estimator and the closed
/// form describe the same chain.
#[test]
fn mc_snr_converges_to_analytic_budget_on_uniform_stimuli() {
    force_threads();
    let model = quickstart::model(30.0).unwrap().into_validated();
    let analytic = {
        let report = model.estimate().unwrap();
        report.noise.as_ref().unwrap().output_snr_db
    };
    let seeds: Vec<u64> = (0..64).collect();
    for level in [0.25, 0.5, 0.75] {
        let mc = model
            .simulate_frames(&seeds, &Stimulus::uniform(level))
            .unwrap();
        let measured = mc.output.snr_db_mean.expect("uniform stimuli have SNR");
        let std = mc.output.snr_db_std.expect("64 seeds give a spread");
        // The analytic budget is quoted at mid-scale signal. Moving
        // the level shifts SNR by 20·log10(l/0.5) if fixed noise
        // (read/quantization) dominates, or 10·log10(l/0.5) if shot
        // noise dominates; the real chain sits between the two laws.
        let fixed_law = 20.0 * (level / 0.5_f64).log10();
        let shot_law = 10.0 * (level / 0.5_f64).log10();
        let lo = fixed_law.min(shot_law) - 1.0;
        let hi = fixed_law.max(shot_law) + 1.0;
        let shift = measured - analytic;
        assert!(
            (lo..=hi).contains(&shift),
            "level {level}: MC {measured} dB (±{std}) shifted {shift} dB \
             from analytic {analytic} dB, outside [{lo}, {hi}]"
        );
        assert!(std < 1.0, "level {level}: seed spread {std} dB too wide");
    }
}

/// More converter bits ⇒ strictly less output noise (the quantization
/// term shrinks, everything else stays put) — the accuracy side of the
/// precision axis the energy model already sweeps.
#[test]
fn adc_resolution_trades_noise_monotonically() {
    let noise_at = |bits: u32| {
        let model = edgaze::model_with(
            EdGazeConfig::new(SensorVariant::TwoDIn, ProcessNode::N65).with_adc_bits(bits),
        )
        .unwrap()
        .into_validated();
        let report = model.estimate().unwrap();
        report.noise.as_ref().unwrap().output_noise_rms
    };
    let coarse = noise_at(6);
    let baseline = noise_at(10);
    let fine = noise_at(12);
    assert!(coarse > baseline, "{coarse} vs {baseline}");
    assert!(baseline > fine, "{baseline} vs {fine}");
}

/// The mixed-signal variant pays kT/C twice (analog frame buffer +
/// switched-capacitor PE) and digitises at 8 instead of 10 bits, so
/// its signal quality is strictly below the digital chain's — the
/// Finding 3 accuracy caveat, now visible in the model (the pixel's
/// shot noise dominates both chains, so the gap is real but modest).
#[test]
fn mixed_signal_variant_pays_in_snr() {
    let snr = |variant| {
        let model = edgaze::model(variant, ProcessNode::N65)
            .unwrap()
            .into_validated();
        model
            .estimate()
            .unwrap()
            .noise
            .as_ref()
            .unwrap()
            .output_snr_db
    };
    let digital = snr(SensorVariant::TwoDIn);
    let mixed = snr(SensorVariant::TwoDInMixed);
    assert!(
        mixed < digital,
        "mixed {mixed} dB should trail digital {digital} dB"
    );
    // The mixed chain's extra sources are attributable: two kT/C hits
    // plus the coarser digitisation.
    let model = edgaze::model(SensorVariant::TwoDInMixed, ProcessNode::N65)
        .unwrap()
        .into_validated();
    let report = model.estimate().unwrap();
    let noise = report.noise.as_ref().unwrap();
    let units: Vec<&str> = noise.stages.iter().map(|s| s.unit.as_str()).collect();
    assert_eq!(units, ["PixelArray", "AnalogFrameBuffer", "AnalogPEArray"]);
    assert!(noise.stage("AnalogFrameBuffer").unwrap().added_noise_rms > 0.0);
    assert!(noise.stage("AnalogPEArray").unwrap().added_noise_rms > 0.0);
}

// ---------------------------------------------------------------------
// The `snr` objective end-to-end
// ---------------------------------------------------------------------

/// `Explorer::pareto` with an `snr` objective: the frontier matches a
/// post-filtered plain sweep bit-for-bit, serial or parallel.
#[test]
fn pareto_with_snr_objective_matches_post_filter() {
    force_threads();
    let sweep = Sweep::new().fps_targets([10.0, 20.0, 30.0, 40.0, 60.0]);
    let query = ParetoQuery::new(vec![
        "total_energy".parse::<Objective>().unwrap(),
        "snr".parse::<Objective>().unwrap(),
        "noise:PixelArray".parse::<Objective>().unwrap(),
    ]);
    let build = |point: &camj::explore::DesignPoint| {
        quickstart::model(point.fps("fps"))
            .map(camj::core::energy::CamJ::into_validated)
            .map_err(PointError::new)
    };

    let serial_cache = EstimateCache::shared();
    let serial = Explorer::serial().pareto(&sweep, &serial_cache, &query, build);
    let parallel_cache = EstimateCache::shared();
    let parallel = Explorer::parallel().pareto(&sweep, &parallel_cache, &query, build);
    assert_eq!(serial.to_json(None), parallel.to_json(None));

    // Reference: evaluate everything, then filter through a fresh front.
    let full_cache = EstimateCache::shared();
    let full = Explorer::serial().sweep_incremental(&sweep, &full_cache, build);
    let mut front = camj::explore::ParetoFront::new(query.objectives().to_vec());
    for (point, report) in full.successes() {
        front.insert(
            point.clone(),
            camj::explore::MetricVector::measure(query.objectives(), report),
        );
    }
    assert_eq!(serial.frontier().len(), front.frontier().len());
    for (a, b) in serial.frontier().iter().zip(front.frontier()) {
        assert_eq!(a.point.index, b.point.index);
        assert!(a.metrics.same_as(&b.metrics), "frontier metrics bit-equal");
    }
    // Every frontier row actually carries the snr coordinates.
    for entry in serial.frontier() {
        assert_eq!(entry.metrics.len(), 3);
        assert!(entry.metrics.values()[1] > 0.0, "output noise is positive");
    }
}

// ---------------------------------------------------------------------
// Description round-trip
// ---------------------------------------------------------------------

/// Noise blocks survive export → JSON → load bit-exactly: the reloaded
/// model's analytic budget *and* simulated frames are byte-identical
/// to the Rust-built original's.
#[test]
fn noise_round_trips_through_descriptions() {
    for name in ["quickstart", "edgaze"] {
        let desc = describe::export(name).unwrap();
        let json = desc.to_json_pretty().unwrap();
        let reloaded = camj::desc::DesignDesc::from_json(&json)
            .unwrap()
            .build()
            .unwrap();
        let original = desc.build().unwrap();
        let a = original.estimate().unwrap();
        let b = reloaded.estimate().unwrap();
        assert_eq!(a.noise, b.noise, "{name}: analytic budgets must match");
        let fa = original.simulate_frame(42, &Stimulus::default()).unwrap();
        let fb = reloaded.simulate_frame(42, &Stimulus::default()).unwrap();
        assert_eq!(fa, fb, "{name}: simulated frames must be bit-identical");
    }
}

/// Zero-amplitude sources are legal (validation allows `read: 0` and
/// `electrons_per_sec: 0`) and must flow through estimation without
/// panicking: the stage books zero added noise and the chain's SNR
/// comes from whatever genuinely-noisy stages remain.
#[test]
fn zero_amplitude_noise_sources_estimate_cleanly() {
    let desc = describe::export("quickstart").unwrap();
    let json = desc
        .to_json_pretty()
        .unwrap()
        .replace("\"rms_fraction\": 0.001", "\"rms_fraction\": 0")
        .replace("\"electrons_per_sec\": 50", "\"electrons_per_sec\": 0")
        .replace(
            "\"full_well_electrons\": 10000",
            "\"full_well_electrons\": 1e300",
        );
    let desc = camj::desc::DesignDesc::from_json(&json).unwrap();
    desc.validate().expect("zero amplitudes are legal");
    let model = desc.build().unwrap();
    let report = model.estimate().expect("estimation must not panic");
    let noise = report.noise.as_ref().expect("the ADC still quantizes");
    let pixel = noise.stage("PixelArray").unwrap();
    assert!(
        pixel.added_noise_rms < 1e-140,
        "zeroed sources book (almost) nothing: {}",
        pixel.added_noise_rms
    );
    assert!(noise.output_noise_rms > 0.0);
    let frame = model.simulate_frame(42, &Stimulus::default()).unwrap();
    assert!(frame.output.noise_rms > 0.0, "quantization still applies");
}

/// A malformed noise block fails validation with the exact JSON path.
#[test]
fn bad_noise_blocks_name_their_path() {
    let mut desc = describe::export("quickstart").unwrap();
    let json = desc.to_json_pretty().unwrap().replace(
        "\"full_well_electrons\": 10000",
        "\"full_well_electrons\": -1",
    );
    desc = camj::desc::DesignDesc::from_json(&json).unwrap();
    let err = desc.validate().unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("noise[0].photon_shot.full_well_electrons"),
        "diagnostic must name the exact field: {text}"
    );
}
