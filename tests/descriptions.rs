//! Golden-file tests for the `camj-desc` subsystem and the `camj` CLI
//! (ISSUE 2 acceptance criteria):
//!
//! * every committed description under `descriptions/` is byte-identical
//!   to a fresh export of its workload (no drift),
//! * loading a golden file produces a model whose energy estimates are
//!   **byte-identical** to the Rust-built equivalent,
//! * the CLI's `estimate` output matches the committed snapshot, and
//!   `export` reproduces the committed JSON byte-for-byte.

use std::fs;
use std::process::Command;

use camj::desc::DesignDesc;
use camj::workloads::describe;

/// The bundled golden workloads (name, committed file).
const GOLDEN: [(&str, &str); 4] = [
    ("quickstart", "descriptions/quickstart.json"),
    ("edgaze", "descriptions/edgaze.json"),
    ("rhythmic", "descriptions/rhythmic.json"),
    ("isscc17", "descriptions/isscc17.json"),
];

#[test]
fn golden_files_match_fresh_exports_byte_for_byte() {
    for (name, path) in GOLDEN {
        let committed = fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let fresh = describe::export(name)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .to_json_pretty()
            .unwrap();
        assert_eq!(
            fresh, committed,
            "{path} drifted from the Rust-built {name} workload; \
             regenerate with `cargo run --bin camj -- export {name} --out {path}`"
        );
    }
}

#[test]
fn golden_files_load_to_byte_identical_estimates() {
    for (name, path) in GOLDEN {
        let text = fs::read_to_string(path).unwrap();
        let desc = DesignDesc::from_json(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        let loaded = desc.build().unwrap_or_else(|e| panic!("{path}: {e}"));
        let fresh = describe::export(name).unwrap();
        let original = fresh.build().unwrap();
        let a = loaded.estimate().unwrap();
        let b = original.estimate().unwrap();
        assert_eq!(a, b, "{name}: estimate reports must be identical");
        assert_eq!(
            a.total().joules().to_bits(),
            b.total().joules().to_bits(),
            "{name}: totals must be bit-exact"
        );
        for (x, y) in a.breakdown.items().iter().zip(b.breakdown.items().iter()) {
            assert_eq!(
                x.energy.joules().to_bits(),
                y.energy.joules().to_bits(),
                "{name}: breakdown item {} must be bit-exact",
                x.unit
            );
        }
    }
}

#[test]
fn golden_files_round_trip_through_export_load_export() {
    for (_, path) in GOLDEN {
        let text = fs::read_to_string(path).unwrap();
        let desc = DesignDesc::from_json(&text).unwrap();
        let again = DesignDesc::from_json(&desc.to_json_pretty().unwrap()).unwrap();
        assert_eq!(again, desc, "{path}");
        assert_eq!(
            again.to_json_pretty().unwrap(),
            desc.to_json_pretty().unwrap(),
            "{path}: serialization must be a fixed point"
        );
    }
}

#[test]
fn custom_chip_description_loads_and_estimates() {
    let text = fs::read_to_string("descriptions/custom_chip.json").unwrap();
    let desc = DesignDesc::from_json(&text).unwrap();
    let model = desc.build().unwrap();
    let report = model.estimate().unwrap();
    assert!(report.total().microjoules() > 0.1);
    let sweep = desc.sweep.expect("custom chip bundles a sweep spec");
    assert!(!sweep.fps.is_empty());
}

#[test]
fn cli_estimate_matches_committed_snapshot() {
    let out = Command::new(env!("CARGO_BIN_EXE_camj"))
        .args([
            "estimate",
            "--design",
            "descriptions/quickstart.json",
            "--fps",
            "30",
        ])
        .output()
        .expect("camj binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = fs::read_to_string("descriptions/quickstart.estimate.txt").unwrap();
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "CLI estimate output drifted from descriptions/quickstart.estimate.txt; \
         regenerate it if the change is intentional"
    );
}

#[test]
fn cli_simulate_matches_committed_snapshot() {
    let run = |extra_env: Option<(&str, &str)>| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_camj"));
        cmd.args([
            "simulate",
            "--design",
            "descriptions/quickstart.json",
            "--seed",
            "42",
        ]);
        if let Some((key, value)) = extra_env {
            cmd.env(key, value);
        }
        let out = cmd.output().expect("camj binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let expected = fs::read_to_string("descriptions/quickstart.simulate.txt").unwrap();
    let first = run(None);
    assert_eq!(
        first, expected,
        "CLI simulate output drifted from descriptions/quickstart.simulate.txt; \
         regenerate it if the change is intentional"
    );
    // Byte-identical across repeat runs and thread counts (the ISSUE 5
    // acceptance bar for `camj simulate --seed 42`).
    assert_eq!(run(None), first);
    assert_eq!(run(Some(("RAYON_NUM_THREADS", "8"))), first);
    assert_eq!(run(Some(("RAYON_NUM_THREADS", "1"))), first);
}

#[test]
fn cli_simulate_full_dag_matches_committed_snapshot() {
    // The edgaze description bundles a real-image stimulus
    // (descriptions/edgaze_eye.pgm) and a three-stage digital DAG, so
    // this snapshot covers the whole functional pipeline: codec →
    // analog chain → DAG execution → task metrics → digests.
    let run = |extra_env: Option<(&str, &str)>| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_camj"));
        cmd.args([
            "simulate",
            "--design",
            "descriptions/edgaze.json",
            "--seed",
            "42",
        ]);
        if let Some((key, value)) = extra_env {
            cmd.env(key, value);
        }
        let out = cmd.output().expect("camj binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let expected = fs::read_to_string("descriptions/edgaze.simulate.txt").unwrap();
    let first = run(None);
    assert_eq!(
        first, expected,
        "CLI simulate output drifted from descriptions/edgaze.simulate.txt; \
         regenerate it if the change is intentional"
    );
    // The simulated frame is a pure function of (model, seed,
    // stimulus): byte-identical across repeat runs and thread counts.
    assert_eq!(run(None), first);
    assert_eq!(run(Some(("RAYON_NUM_THREADS", "1"))), first);
    assert_eq!(run(Some(("RAYON_NUM_THREADS", "2"))), first);
    assert_eq!(run(Some(("RAYON_NUM_THREADS", "8"))), first);
}

#[test]
fn cli_export_reproduces_golden_bytes() {
    for (name, path) in GOLDEN {
        let out = Command::new(env!("CARGO_BIN_EXE_camj"))
            .args(["export", name])
            .output()
            .expect("camj binary runs");
        assert!(out.status.success(), "{name}");
        let committed = fs::read(path).unwrap();
        assert_eq!(
            out.stdout, committed,
            "{name}: `camj export` must reproduce {path} byte-for-byte"
        );
    }
}

#[test]
fn cli_validate_accepts_goldens_and_rejects_malformed_input() {
    let mut args = vec!["validate".to_owned()];
    args.extend(GOLDEN.iter().map(|(_, p)| (*p).to_owned()));
    let ok = Command::new(env!("CARGO_BIN_EXE_camj"))
        .args(&args)
        .output()
        .expect("camj binary runs");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // A malformed file: the failure must name the exact field.
    let broken = fs::read_to_string("descriptions/quickstart.json")
        .unwrap()
        .replace("\"bits\": 10", "\"bits\": \"ten\"");
    let dir = std::env::temp_dir().join("camj-desc-test");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.json");
    fs::write(&path, broken).unwrap();
    let bad = Command::new(env!("CARGO_BIN_EXE_camj"))
        .args(["validate", path.to_str().unwrap()])
        .output()
        .expect("camj binary runs");
    assert!(!bad.status.success());
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("non_linear.bits"),
        "validate must name the exact field: {stdout}"
    );
    assert!(stdout.contains("\"ten\""), "{stdout}");
}
