//! Integration tests of the pre-simulation checks: every mis-design the
//! paper's checker catches must surface as a descriptive error.

use camj::analog::array::AnalogArray;
use camj::analog::components::{aps_4t, column_adc, switched_cap_mac, ApsParams};
use camj::core::energy::CamJ;
use camj::core::hw::{
    AnalogCategory, AnalogUnitDesc, DigitalUnitDesc, HardwareDesc, Layer, MemoryDesc,
};
use camj::core::mapping::Mapping;
use camj::core::sw::{AlgorithmGraph, Stage};
use camj::digital::compute::ComputeUnit;
use camj::digital::memory::MemoryStructure;
use camj::CamjError;

fn simple_algo() -> AlgorithmGraph {
    let mut algo = AlgorithmGraph::new();
    algo.add_stage(Stage::input("Input", [16, 16, 1]));
    algo.add_stage(Stage::element_wise("Proc", [16, 16, 1], 1));
    algo.connect("Input", "Proc").unwrap();
    algo
}

fn viable_hw() -> HardwareDesc {
    let mut hw = HardwareDesc::new(100e6);
    hw.add_analog(AnalogUnitDesc::new(
        "PixelArray",
        AnalogArray::new(aps_4t(ApsParams::default()), 16, 16),
        Layer::Sensor,
        AnalogCategory::Sensing,
    ));
    hw.add_analog(AnalogUnitDesc::new(
        "ADCArray",
        AnalogArray::new(column_adc(10), 1, 16),
        Layer::Sensor,
        AnalogCategory::Sensing,
    ));
    hw.add_memory(MemoryDesc::new(
        MemoryStructure::fifo("Fifo", 64).with_ports(2, 2),
        Layer::Sensor,
        0.0,
    ));
    hw.add_digital(DigitalUnitDesc::pipelined(
        ComputeUnit::new("PE", [1, 1, 1], [1, 1, 1], 1),
        Layer::Sensor,
    ));
    hw.connect("PixelArray", "ADCArray");
    hw.connect("ADCArray", "Fifo");
    hw.connect("Fifo", "PE");
    hw
}

#[test]
fn viable_design_is_accepted() {
    let mapping = Mapping::new().map("Input", "PixelArray").map("Proc", "PE");
    let model = CamJ::new(simple_algo(), viable_hw(), mapping, 30.0).unwrap();
    assert!(model.estimate().is_ok());
}

#[test]
fn unmapped_stage_is_a_mapping_error() {
    let mapping = Mapping::new().map("Input", "PixelArray");
    let err = CamJ::new(simple_algo(), viable_hw(), mapping, 30.0).unwrap_err();
    assert!(matches!(err, CamjError::CheckMapping { .. }), "{err}");
}

#[test]
fn unknown_unit_is_a_mapping_error() {
    let mapping = Mapping::new()
        .map("Input", "PixelArray")
        .map("Proc", "Phantom");
    let err = CamJ::new(simple_algo(), viable_hw(), mapping, 30.0).unwrap_err();
    assert!(err.to_string().contains("Phantom"), "{err}");
}

#[test]
fn missing_adc_is_a_functional_error() {
    // Wire the pixel array straight into the digital FIFO.
    let mut hw = HardwareDesc::new(100e6);
    hw.add_analog(AnalogUnitDesc::new(
        "PixelArray",
        AnalogArray::new(aps_4t(ApsParams::default()), 16, 16),
        Layer::Sensor,
        AnalogCategory::Sensing,
    ));
    hw.add_memory(MemoryDesc::new(
        MemoryStructure::fifo("Fifo", 64).with_ports(2, 2),
        Layer::Sensor,
        0.0,
    ));
    hw.add_digital(DigitalUnitDesc::pipelined(
        ComputeUnit::new("PE", [1, 1, 1], [1, 1, 1], 1),
        Layer::Sensor,
    ));
    hw.connect("PixelArray", "Fifo");
    hw.connect("Fifo", "PE");
    let mapping = Mapping::new().map("Input", "PixelArray").map("Proc", "PE");
    let err = CamJ::new(simple_algo(), hw, mapping, 30.0).unwrap_err();
    assert!(matches!(err, CamjError::CheckFunctional { .. }), "{err}");
    assert!(err.to_string().contains("ADC"), "{err}");
}

#[test]
fn analog_output_cannot_exit_the_chip() {
    // Final stage computes in the voltage domain with no ADC downstream.
    let mut hw = HardwareDesc::new(100e6);
    hw.add_analog(AnalogUnitDesc::new(
        "PixelArray",
        AnalogArray::new(aps_4t(ApsParams::default()), 16, 16),
        Layer::Sensor,
        AnalogCategory::Sensing,
    ));
    hw.add_analog(AnalogUnitDesc::new(
        "MacArray",
        AnalogArray::new(switched_cap_mac(8, 1.0), 1, 16),
        Layer::Sensor,
        AnalogCategory::Compute,
    ));
    hw.connect("PixelArray", "MacArray");
    let mapping = Mapping::new()
        .map("Input", "PixelArray")
        .map("Proc", "MacArray");
    let err = CamJ::new(simple_algo(), hw, mapping, 30.0).unwrap_err();
    assert!(matches!(err, CamjError::CheckFunctional { .. }), "{err}");
}

#[test]
fn dag_size_mismatch_is_caught() {
    let mut algo = AlgorithmGraph::new();
    algo.add_stage(Stage::input("Input", [16, 16, 1]));
    algo.add_stage(Stage::element_wise("Proc", [8, 8, 1], 1)); // wrong size
    algo.connect("Input", "Proc").unwrap();
    let mapping = Mapping::new().map("Input", "PixelArray").map("Proc", "PE");
    let err = CamJ::new(algo, viable_hw(), mapping, 30.0).unwrap_err();
    assert!(matches!(err, CamjError::CheckDag { .. }), "{err}");
    assert!(err.to_string().contains("size mismatch"), "{err}");
}

#[test]
fn stage_mapped_to_memory_is_rejected() {
    let mapping = Mapping::new()
        .map("Input", "PixelArray")
        .map("Proc", "Fifo");
    let err = CamJ::new(simple_algo(), viable_hw(), mapping, 30.0).unwrap_err();
    assert!(err.to_string().contains("memory"), "{err}");
}

#[test]
fn error_messages_are_actionable() {
    // Every error carries enough context to locate the problem.
    let mapping = Mapping::new().map("Input", "PixelArray");
    let err = CamJ::new(simple_algo(), viable_hw(), mapping, 30.0).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("Proc"),
        "should name the unmapped stage: {msg}"
    );
}
