//! ISSUE 6 acceptance suite, frame-sim half: the vectorized functional
//! simulation must be byte-identical to the retained scalar reference,
//! and the Monte-Carlo aggregation (`simulate_frames`, the
//! `mc_snr:<samples>` objective) must be deterministic across thread
//! counts and execution modes.

use proptest::prelude::*;

use camj::analog::array::AnalogArray;
use camj::analog::components::{aps_4t, column_adc, ApsParams};
use camj::analog::noise::NoiseSource;
use camj::core::energy::{CamJ, EstimateCache, ValidatedModel};
use camj::core::functional::Stimulus;
use camj::core::hw::{AnalogCategory, AnalogUnitDesc, HardwareDesc, Layer};
use camj::core::mapping::Mapping;
use camj::core::sw::{AlgorithmGraph, Stage};
use camj::explore::{Explorer, Objective, ParetoQuery, PointError, Sweep};
use camj::workloads::configs::{self, SensorVariant};
use camj::workloads::{edgaze, quickstart};
use camj_tech::node::ProcessNode;

/// Forces the threaded rayon path (shared convention with
/// `tests/incremental.rs`: every test sets the same value).
fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", "8");
}

/// A minimal two-stage analog chain (noisy pixel front end + ADC) at an
/// arbitrary sensor resolution, so properties can sweep frame sizes the
/// fixed workload models never exercise — including sizes straddling
/// the vectorized path's internal chunk length.
fn toy_model(width: u32, height: u32, noisy_pixel: bool, fps: f64) -> ValidatedModel {
    let mut algo = AlgorithmGraph::new();
    algo.add_stage(Stage::input("Input", [width, height, 1]));
    algo.add_stage(Stage::element_wise("Gain", [width, height, 1], 1));
    algo.connect("Input", "Gain").unwrap();

    let mut hw = HardwareDesc::new(200e6);
    let mut pixel = aps_4t(ApsParams::default());
    if noisy_pixel {
        pixel = pixel
            .with_noise_source(NoiseSource::photon_shot(configs::FULL_WELL_ELECTRONS))
            .with_noise_source(NoiseSource::dark_current(
                configs::DARK_CURRENT_E_PER_S,
                configs::FULL_WELL_ELECTRONS,
            ))
            .with_noise_source(NoiseSource::read(configs::READ_NOISE_FRACTION));
    }
    hw.add_analog(
        AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(pixel, height, width),
            Layer::Sensor,
            AnalogCategory::Sensing,
        )
        .with_pixel_pitch_um(3.0),
    );
    hw.add_analog(AnalogUnitDesc::new(
        "ADCArray",
        AnalogArray::new(column_adc(10), 1, width),
        Layer::Sensor,
        AnalogCategory::Sensing,
    ));
    hw.connect("PixelArray", "ADCArray");

    let mapping = Mapping::new()
        .map("Input", "PixelArray")
        .map("Gain", "ADCArray");

    CamJ::new(algo, hw, mapping, fps).unwrap().into_validated()
}

proptest! {
    /// The vectorized frame simulation is byte-identical to the scalar
    /// reference for arbitrary seeds, stimuli, and resolutions —
    /// digests (128-bit frame fingerprints) and every report field,
    /// under the forced 8-worker rayon pool.
    #[test]
    fn vectorized_frame_sim_matches_scalar_reference(
        seed in 0u64..u64::MAX / 2,
        width in 1u32..80,
        height in 1u32..80,
        level in 0u32..11,
        gradient in 0u32..2,
        noisy_pixel in 0u32..2,
    ) {
        force_threads();
        let stimulus = if gradient == 1 {
            Stimulus::gradient(f64::from(level) / 20.0, f64::from(level) / 10.0)
        } else {
            Stimulus::uniform(f64::from(level) / 10.0)
        };
        let model = toy_model(width, height, noisy_pixel == 1, 30.0);
        let fast = model.simulate_frame(seed, &stimulus).unwrap();
        let slow = model.simulate_frame_reference(seed, &stimulus).unwrap();
        prop_assert_eq!(&fast.digest, &slow.digest, "{width}x{height} seed {seed}");
        prop_assert_eq!(&fast, &slow, "full reports must match bit-for-bit");
    }

    /// `simulate_frames` is deterministic: the same seed list produces
    /// a byte-identical report on every call (the ziggurat streams are
    /// derived per seed × stage, never shared), whatever the thread
    /// count, and the batch decomposes seed-by-seed — each seed's
    /// digest is independent of which other seeds ride along.
    #[test]
    fn monte_carlo_batches_are_deterministic(base in 0u64..1_000_000, count in 1usize..7) {
        force_threads();
        let model = quickstart::model(30.0).unwrap().into_validated();
        let stimulus = Stimulus::default();
        let seeds: Vec<u64> = (0..count as u64).map(|i| base + i).collect();
        let mc = model.simulate_frames(&seeds, &stimulus).unwrap();
        prop_assert_eq!(mc.seeds.as_slice(), seeds.as_slice());
        prop_assert_eq!(mc.digests.len(), count);
        let again = model.simulate_frames(&seeds, &stimulus).unwrap();
        prop_assert_eq!(&mc, &again, "replay must be byte-identical");
        for (i, &seed) in seeds.iter().enumerate() {
            let alone = model.simulate_frames(&[seed], &stimulus).unwrap();
            prop_assert_eq!(&mc.digests[i], &alone.digests[0], "seed {seed}");
        }
        // A single seed aggregates to exactly that frame's numbers.
        if count == 1 {
            prop_assert_eq!(mc.output.noise_rms_std, 0.0);
            prop_assert_eq!(mc.stages[0].noise_rms_mean, mc.stages[0].noise_rms_mean.abs());
        }
    }
}

/// The scalar reference at the committed quickstart snapshot point:
/// pins `simulate_frame` (and therefore the PR 5 snapshot digest) to
/// the exact reference output, not just self-consistency.
#[test]
fn quickstart_digest_matches_reference_and_snapshot_seed() {
    let model = quickstart::model(30.0).unwrap().into_validated();
    let fast = model.simulate_frame(42, &Stimulus::default()).unwrap();
    let slow = model
        .simulate_frame_reference(42, &Stimulus::default())
        .unwrap();
    assert_eq!(fast, slow);
}

/// Monte-Carlo statistics behave like statistics: the spread is small
/// against the mean, the mean sits near the single-seed value, and the
/// mean SNR is present for a noisy chain.
#[test]
fn monte_carlo_aggregates_are_sane() {
    let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .unwrap()
        .into_validated();
    let seeds: Vec<u64> = (0..16).collect();
    let mc = model
        .simulate_frames(&seeds, &Stimulus::uniform(0.5))
        .unwrap();
    assert!(mc.output.noise_rms_mean > 0.0);
    assert!(mc.output.noise_rms_std > 0.0, "16 seeds must show spread");
    assert!(
        mc.output.noise_rms_std < mc.output.noise_rms_mean / 2.0,
        "spread {} vs mean {}",
        mc.output.noise_rms_std,
        mc.output.noise_rms_mean
    );
    let snr = mc.output.snr_db_mean.expect("noisy chain has an SNR");
    let single = model
        .simulate_frame(0, &Stimulus::uniform(0.5))
        .unwrap()
        .output
        .snr_db
        .unwrap();
    assert!(
        (snr - single).abs() < 3.0,
        "mc {snr} dB vs seed-0 {single} dB"
    );
    for stage in &mc.stages {
        assert!(stage.noise_rms_mean >= 0.0);
        assert!(stage.noise_rms_std >= 0.0);
    }
}

/// The `mc_snr:<samples>` objective end-to-end: `Explorer::pareto`
/// accepts it, evaluates it deterministically, and serial and parallel
/// runs produce byte-identical frontiers.
#[test]
fn mc_snr_objective_is_deterministic_across_modes() {
    force_threads();
    let sweep = Sweep::new()
        .fps_targets([15.0, 30.0])
        .bit_widths([8, 10, 12]);
    let query = ParetoQuery::new(vec![
        Objective::TotalEnergy,
        "mc_snr:4".parse::<Objective>().unwrap(),
    ]);
    let build = |point: &camj::explore::DesignPoint| {
        edgaze::model_with(
            edgaze::EdGazeConfig::new(SensorVariant::TwoDIn, ProcessNode::N65)
                .with_adc_bits(point.u32("bit_width")),
        )
        .map(CamJ::into_validated)
        .map_err(PointError::new)
    };
    let serial_cache = EstimateCache::shared();
    let serial = Explorer::serial().pareto(&sweep, &serial_cache, &query, build);
    let parallel_cache = EstimateCache::shared();
    let parallel = Explorer::parallel().pareto(&sweep, &parallel_cache, &query, build);

    assert!(!serial.frontier().is_empty(), "some design must survive");
    assert_eq!(serial.frontier().len(), parallel.frontier().len());
    for (a, b) in serial.frontier().iter().zip(parallel.frontier().iter()) {
        assert_eq!(a.point, b.point);
        assert!(a.metrics.same_as(&b.metrics), "bitwise-equal frontiers");
    }
    // Fewer converter bits ⇒ more measured noise: the MC coordinate
    // orders designs the same way the physics does.
    let noise_at = |bits: u32| {
        serial
            .frontier()
            .iter()
            .find(|e| e.point.u32("bit_width") == bits)
            .map(|e| e.metrics.values()[1])
    };
    if let (Some(coarse), Some(fine)) = (noise_at(8), noise_at(12)) {
        assert!(coarse > fine, "8-bit {coarse} vs 12-bit {fine}");
    }
}

/// The objective grammar: round-trips, bounds-checks the sample count,
/// and rejects garbage.
#[test]
fn mc_snr_objective_grammar() {
    let o: Objective = "mc_snr:16".parse().unwrap();
    assert_eq!(o.to_string(), "mc_snr:16");
    assert_eq!(o.key(), "mc16_noise_rms");
    assert!("mc_snr:".parse::<Objective>().is_err());
    assert!("mc_snr:0".parse::<Objective>().is_err());
    assert!("mc_snr:100000".parse::<Objective>().is_err());
    assert!("mc_snr:x".parse::<Objective>().is_err());
}
