//! Determinism suite for the content-addressed incremental estimation
//! engine: cached (incremental) sweeps must be bit-identical to cold
//! full-pipeline sweeps, serial must equal parallel (under
//! `RAYON_NUM_THREADS=8`), across the quickstart, Ed-Gaze, and Rhythmic
//! workloads.

use camj::core::energy::EstimateReport;
use camj::explore::{
    DesignPoint, EstimateCache, Explorer, MemoryKind, PointError, ProcessNode, Sweep, SweepResults,
};
use camj::workloads::configs::SensorVariant;
use camj::workloads::{edgaze, quickstart, rhythmic};

/// Forces the threaded rayon path. Every test sets the same value, so
/// concurrent setting is benign.
fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", "8");
}

/// Evaluates `sweep` three ways — cold full-pipeline (build + estimate
/// per point, no shared cache), incremental serial, and incremental
/// parallel — and asserts all three produce identical results. Returns
/// the incremental-serial cache for hit-rate assertions.
fn assert_three_way_identical<B>(
    sweep: &Sweep,
    build: B,
) -> (SweepResults<EstimateReport>, camj::core::energy::CacheStats)
where
    B: Fn(&DesignPoint) -> Result<camj::core::energy::ValidatedModel, PointError> + Sync,
{
    force_threads();
    // Cold path: every point pays validate → route → simulate → energy.
    let cold = Explorer::serial().run(sweep, |point| {
        let model = build(point)?;
        match point.get("fps").and_then(camj::explore::AxisValue::as_f64) {
            Some(fps) => model.estimate_at_fps(fps),
            None => model.estimate(),
        }
        .map_err(PointError::from)
    });

    let serial_cache = EstimateCache::shared();
    let serial = Explorer::serial().sweep_incremental(sweep, &serial_cache, &build);

    let parallel_cache = EstimateCache::shared();
    let parallel = Explorer::parallel().sweep_incremental(sweep, &parallel_cache, &build);

    assert_eq!(
        cold, serial,
        "incremental serial sweep diverged from the cold full-pipeline sweep"
    );
    assert_eq!(
        serial, parallel,
        "parallel incremental sweep diverged from serial"
    );
    let stats = serial_cache.stats();
    (serial, stats)
}

#[test]
fn quickstart_fps_sweep_is_deterministic_and_cached() {
    let sweep = Sweep::new().fps_targets([10.0, 20.0, 30.0, 60.0]);
    let (results, stats) = assert_three_way_identical(&sweep, |point| {
        quickstart::model(point.fps("fps"))
            .map(camj::core::energy::CamJ::into_validated)
            .map_err(PointError::new)
    });
    assert_eq!(results.error_count(), 0);
    // One group, one simulation; the remaining points replay it.
    assert!(stats.hits > 0, "expected cache hits, got {stats}");
}

#[test]
fn edgaze_four_axis_sweep_is_deterministic_and_cached() {
    let sweep = Sweep::new()
        .fps_targets([15.0, 20.0])
        .bit_widths([8, 10])
        .tech_nodes([ProcessNode::N130, ProcessNode::N65])
        .memory_kinds([MemoryKind::DoubleBuffer, MemoryKind::LineBuffer]);
    assert_eq!(sweep.len(), 16);
    let (results, stats) = assert_three_way_identical(&sweep, |point| {
        let config = edgaze::EdGazeConfig::new(SensorVariant::TwoDIn, point.node("tech_node"))
            .with_adc_bits(point.u32("bit_width"))
            .with_frame_buffer_kind(point.memory("memory"));
        edgaze::model_with(config)
            .map(camj::core::energy::CamJ::into_validated)
            .map_err(PointError::new)
    });
    assert_eq!(results.error_count(), 0, "{:?}", results.failures().next());
    // bit_width and tech_node axes cannot invalidate the elastic
    // simulation, so at most one simulation per memory kind runs and
    // the hit rate must be substantial.
    assert!(
        stats.hits > stats.misses,
        "expected a cache-dominated sweep, got {stats}"
    );
}

#[test]
fn rhythmic_variant_sweep_is_deterministic_and_cached() {
    let sweep = Sweep::new()
        .fps_targets([15.0, 30.0])
        .tech_nodes([ProcessNode::N130, ProcessNode::N65])
        .labels(
            "variant",
            [SensorVariant::TwoDIn, SensorVariant::TwoDOff]
                .iter()
                .map(|v| v.label()),
        );
    let (results, stats) = assert_three_way_identical(&sweep, |point| {
        let variant =
            SensorVariant::from_label(point.text("variant")).expect("axis built from labels");
        rhythmic::model(variant, point.node("tech_node"))
            .map(camj::core::energy::CamJ::into_validated)
            .map_err(PointError::new)
    });
    assert_eq!(results.error_count(), 0, "{:?}", results.failures().next());
    assert!(stats.hits > 0, "expected cache hits, got {stats}");
}

#[test]
fn infeasible_points_fail_identically_on_every_path() {
    // 10 MFPS is infeasible for Ed-Gaze; the failure must surface as the
    // same per-point error on cold, serial, and parallel paths.
    let sweep = Sweep::new().fps_targets([15.0, 10_000_000.0]);
    let (results, _) = assert_three_way_identical(&sweep, |point| {
        edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
            .map(|m| camj::core::energy::CamJ::into_validated(m).with_fps(point.fps("fps")))
            .map_err(PointError::new)
    });
    assert_eq!(results.ok_count(), 1);
    assert_eq!(results.error_count(), 1);
}

#[test]
fn group_build_panics_carry_axis_coordinates() {
    force_threads();
    let sweep = Sweep::new().fps_targets([30.0]).bit_widths([4, 8]);
    let cache = EstimateCache::shared();
    let results = Explorer::parallel().sweep_incremental(&sweep, &cache, |point| {
        assert!(point.u32("bit_width") != 8, "unsupported precision");
        quickstart::model(point.fps("fps"))
            .map(camj::core::energy::CamJ::into_validated)
            .map_err(PointError::new)
    });
    assert_eq!(results.ok_count(), 1);
    let (point, error) = results.failures().next().expect("one failing point");
    assert_eq!(point.u32("bit_width"), 8);
    assert!(
        error.message().contains("bit_width=8"),
        "panic message must name the failing point: {error}"
    );
    assert!(error.message().contains("unsupported precision"), "{error}");
}
