//! Integration tests of the `camj-explore` sweep machinery over real
//! workload models: parallel/serial determinism, the staged-pipeline
//! FPS fast path, and per-point failure isolation.

use proptest::prelude::*;

use camj::explore::{DesignPoint, Explorer, PointError, Sweep};
use camj::tech::node::ProcessNode;
use camj::workloads::configs::SensorVariant;
use camj::workloads::{edgaze, quickstart};

/// A parallel sweep must return byte-identical `EstimateReport`s to the
/// same sweep run serially — same grid order, same contents.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let sweep = Sweep::new()
        .tech_nodes([ProcessNode::N130, ProcessNode::N65])
        .labels(
            "variant",
            [SensorVariant::TwoDIn, SensorVariant::ThreeDIn]
                .iter()
                .map(|v| v.label()),
        );
    let eval = |point: &DesignPoint| {
        let variant = SensorVariant::from_label(point.text("variant")).expect("known label");
        let model = edgaze::model(variant, point.node("tech_node")).map_err(PointError::new)?;
        model.estimate().map_err(PointError::from)
    };
    let serial = Explorer::serial().run(&sweep, eval);
    let parallel = Explorer::parallel().run(&sweep, eval);

    assert_eq!(serial.len(), 4);
    assert_eq!(serial.error_count(), 0);
    // Structural equality first (clearer failures), then the literal
    // byte-identity claim over the full debug rendering.
    assert_eq!(serial, parallel);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// The staged pipeline's FPS fast path (cached checks/routes/latency
/// sim) must produce byte-identical reports to building and estimating
/// each point from scratch.
#[test]
fn fps_fast_path_matches_scratch_estimates() {
    let model = quickstart::model(30.0).expect("builds").into_validated();
    let targets = [15.0, 30.0, 45.0, 90.0, 240.0];
    let swept = Explorer::parallel().sweep_fps(&model, targets);
    assert_eq!(swept.error_count(), 0);
    for (point, fast) in swept.successes() {
        let fps = point.fps("fps");
        let scratch = quickstart::model(fps)
            .expect("builds")
            .estimate()
            .expect("estimates");
        assert_eq!(*fast, scratch, "divergence at {fps} FPS");
        assert_eq!(format!("{fast:?}"), format!("{scratch:?}"));
    }
}

/// One infeasible design point surfaces as an error entry; its
/// neighbours estimate normally and order is preserved.
#[test]
fn failing_point_does_not_poison_neighbours() {
    let model = quickstart::model(30.0).expect("builds").into_validated();
    // 10 MFPS leaves less frame time than the digital latency alone.
    let results = Explorer::parallel().sweep_fps(&model, [30.0, 10_000_000.0, 60.0]);
    assert_eq!(results.len(), 3);
    assert_eq!(results.ok_count(), 2);
    assert_eq!(results.error_count(), 1);
    let outcomes = results.outcomes();
    assert!(outcomes[0].result.is_ok());
    assert!(outcomes[2].result.is_ok());
    let err = outcomes[1].result.as_ref().unwrap_err();
    assert!(
        err.message().contains("frame time") || err.message().contains("stall"),
        "unexpected error: {err}"
    );
}

/// Sweeps with *several* failing points must also be identical across
/// serial and parallel runs — including the error diagnoses, which must
/// each describe their own point (stall verdicts are only cache-served
/// on the passing side).
#[test]
fn multiple_failures_stay_deterministic() {
    let model = quickstart::model(30.0).expect("builds").into_validated();
    let targets = [30.0, 2_000_000.0, 60.0, 10_000_000.0, 5_000_000.0];
    let serial = Explorer::serial().sweep_fps(&model, targets);
    let parallel = Explorer::parallel().sweep_fps(&model, targets);
    assert_eq!(serial, parallel);
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    assert_eq!(serial.ok_count(), 2);
    assert_eq!(serial.error_count(), 3);
}

proptest! {
    /// Random grid shapes: serial and parallel evaluation agree exactly
    /// (values, errors, and order) for any deterministic evaluator.
    #[test]
    fn random_grids_evaluate_identically(
        axis_a in 1usize..6,
        axis_b in 1usize..5,
        fail_every in 2usize..5,
    ) {
        let sweep = Sweep::new()
            .axis("a", (0..axis_a as u32).collect::<Vec<_>>())
            .axis("b", (0..axis_b as u32).collect::<Vec<_>>());
        let eval = |p: &DesignPoint| {
            if p.index % fail_every == 1 {
                Err(PointError::new(format!("synthetic failure at {}", p.index)))
            } else {
                Ok((p.u32("a") as u64) << 32 | p.u32("b") as u64)
            }
        };
        let serial = Explorer::serial().run(&sweep, eval);
        let parallel = Explorer::parallel().run(&sweep, eval);
        prop_assert!(serial == parallel);
        prop_assert_eq!(serial.len(), axis_a * axis_b);
    }
}
