//! End-to-end tests of multi-objective Pareto exploration (ISSUE 4
//! acceptance criteria):
//!
//! * the pruned incremental path returns a frontier **bit-identical**
//!   to post-filtering an unconstrained incremental sweep of the same
//!   grid (surviving points are never perturbed by pruning), serial
//!   and parallel,
//! * constraint pruning really skips kernel work and reports sound
//!   provenance,
//! * `ParetoFront` is insert-order invariant (property test), and
//! * the `camj pareto` CLI frontier export is byte-stable against the
//!   committed `descriptions/edgaze.pareto.json` golden.

use std::fs;
use std::process::Command;

use proptest::prelude::*;

use camj::core::energy::CamJ;
use camj::explore::{
    Constraint, DesignPoint, EstimateCache, Explorer, MemoryKind, MetricVector, Objective,
    ParetoFront, ParetoQuery, PointError, Sweep,
};
use camj::tech::node::ProcessNode;
use camj::workloads::configs::SensorVariant;
use camj::workloads::edgaze;

/// A 24-point slice of the Ed-Gaze 4-axis acceptance grid (the full
/// 256-point version runs in the committed sweep bench).
fn four_axis_sweep() -> Sweep {
    Sweep::new()
        .fps_targets([10.0, 16.0, 24.0])
        .bit_widths([8, 10])
        .tech_nodes([ProcessNode::N130, ProcessNode::N65])
        .memory_kinds([MemoryKind::DoubleBuffer, MemoryKind::LineBuffer])
}

fn build_point(point: &DesignPoint) -> Result<camj::ValidatedModel, PointError> {
    let config = edgaze::EdGazeConfig::new(SensorVariant::TwoDIn, point.node("tech_node"))
        .with_adc_bits(point.u32("bit_width"))
        .with_frame_buffer_kind(point.memory("memory"));
    edgaze::model_with(config)
        .map(CamJ::into_validated)
        .map_err(PointError::new)
}

const DENSITY_BUDGET: f64 = 0.55;

fn query() -> ParetoQuery {
    ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity])
        .constrain(Constraint::MaxPowerDensity(DENSITY_BUDGET))
}

#[test]
fn pruned_frontier_is_bit_identical_to_cold_postfilter() {
    let sweep = four_axis_sweep();
    // Cold reference: unconstrained incremental sweep (itself proven
    // bit-identical to per-point staged estimation in
    // tests/incremental.rs), post-filtered through the same constraint
    // and dominance filter.
    let cache = EstimateCache::shared();
    let full = Explorer::serial().sweep_incremental(&sweep, &cache, build_point);
    assert_eq!(full.error_count(), 0, "grid must be fully feasible");
    let q = query();
    let mut reference = ParetoFront::new(q.objectives().to_vec());
    let mut feasible = 0usize;
    for (point, report) in full.successes() {
        if report.peak_power_density_mw_per_mm2().unwrap_or(0.0) <= DENSITY_BUDGET {
            feasible += 1;
            reference.insert(point.clone(), MetricVector::measure(q.objectives(), report));
        }
    }
    assert!(
        feasible > 0 && feasible < full.len(),
        "the budget must be active but not empty (feasible: {feasible}/{})",
        full.len()
    );

    for explorer in [Explorer::serial(), Explorer::parallel()] {
        let cache = EstimateCache::shared();
        let results = explorer.pareto(&sweep, &cache, &q, build_point);
        assert_eq!(
            results.frontier().len(),
            reference.frontier().len(),
            "frontier sizes must match"
        );
        for (pruned, cold) in results.frontier().iter().zip(reference.frontier()) {
            assert_eq!(pruned.point, cold.point);
            assert!(
                pruned.metrics.same_as(&cold.metrics),
                "frontier metrics must be bit-identical at [{}]: {:?} vs {:?}",
                pruned.point,
                pruned.metrics.values(),
                cold.metrics.values()
            );
        }
        // Every grid point is accounted for exactly once.
        assert_eq!(results.total_points(), sweep.len());
        // The pruned points are exactly the budget violators.
        assert_eq!(results.pruned().len(), sweep.len() - feasible);
        // Pruning skipped real kernel work on this grid.
        assert!(
            results.stats().kernels_skipped > 0,
            "an active budget must skip kernels: {}",
            results.stats()
        );
    }
}

#[test]
fn serial_and_parallel_pareto_agree_exactly() {
    let sweep = four_axis_sweep();
    let q = query();
    let serial = {
        let cache = EstimateCache::shared();
        Explorer::serial().pareto(&sweep, &cache, &q, build_point)
    };
    let parallel = {
        let cache = EstimateCache::shared();
        Explorer::parallel().pareto(&sweep, &cache, &q, build_point)
    };
    assert_eq!(serial, parallel);
}

#[test]
fn delay_budget_prunes_before_any_kernel() {
    // Ed-Gaze 2D-In's digital latency is ~1.3 ms; an impossible 0.1 ms
    // budget cuts every point right after the delay solve.
    let sweep = Sweep::new().fps_targets([10.0, 20.0]);
    let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .unwrap()
        .into_validated();
    let q = ParetoQuery::new(vec![Objective::TotalEnergy])
        .constrain(Constraint::MaxDigitalLatency(0.1));
    let cache = EstimateCache::shared();
    let results =
        Explorer::serial().pareto(&sweep, &cache, &q, |p| Ok(model.with_fps(p.fps("fps"))));
    assert!(results.frontier().is_empty());
    assert_eq!(results.pruned().len(), 2);
    for pruned in results.pruned() {
        assert_eq!(pruned.kernels_done, 0, "delay prunes skip all kernels");
        assert!(matches!(
            pruned.constraint,
            Constraint::MaxDigitalLatency(_)
        ));
    }
    assert_eq!(results.stats().kernels_skipped, 8);
    assert!((results.stats().skip_fraction() - 1.0).abs() < 1e-12);
}

#[test]
fn unconstrained_pareto_matches_plain_sweep_totals() {
    // Without constraints, every point completes and the frontier is a
    // pure dominance filter over the full sweep.
    let sweep = Sweep::new().fps_targets([10.0, 16.0, 24.0]);
    let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .unwrap()
        .into_validated();
    let q = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
    let cache = EstimateCache::shared();
    let results =
        Explorer::serial().pareto(&sweep, &cache, &q, |p| Ok(model.with_fps(p.fps("fps"))));
    // Energy falls and density rises with FPS, so every point trades
    // off: the whole grid is the frontier.
    assert_eq!(results.frontier().len(), 3);
    assert_eq!(results.stats().kernels_skipped, 0);
    let plain = Explorer::serial().sweep_fps(&model, [10.0, 16.0, 24.0]);
    for (entry, (_, report)) in results.frontier().iter().zip(plain.successes()) {
        assert_eq!(
            entry.metrics.values()[0].to_bits(),
            report.total().picojoules().to_bits(),
            "pareto metrics must equal the plain sweep's totals bit-for-bit"
        );
    }
}

#[test]
fn desc_objective_validation_tracks_the_explore_grammar() {
    // The objective grammar is implemented twice on purpose — in
    // `camj_explore::Objective::from_str` (runtime) and in
    // `camj-desc`'s validator (load time, which additionally checks
    // stage existence). This test pins the two copies together: every
    // string one side accepts must be accepted by the other, so
    // extending the grammar in one place without the other fails here.
    use camj::desc::ir::SweepIr;
    use camj::EnergyCategory;

    let base = camj::workloads::describe::export("quickstart").unwrap();
    let declared_stage = base.sw.stages[0].name.clone();
    let validate_with = |objective: &str| {
        let mut desc = base.clone();
        desc.sweep = Some(SweepIr {
            fps: vec![30.0],
            objectives: Some(vec![objective.to_owned()]),
            constraints: None,
            search: None,
        });
        desc.validate().is_ok()
    };

    let mut accepted = vec![
        "total_energy".to_owned(),
        "delay".to_owned(),
        "power_density".to_owned(),
        format!("stage:{declared_stage}"),
        "mc_snr:1".to_owned(),
        "mc_snr:16".to_owned(),
        "mc_snr:1024".to_owned(),
    ];
    accepted.extend(
        EnergyCategory::ALL
            .iter()
            .map(|c| format!("category:{}", c.label())),
    );
    for objective in &accepted {
        assert!(
            objective.parse::<Objective>().is_ok(),
            "explore grammar rejects '{objective}'"
        );
        assert!(
            validate_with(objective),
            "desc validation rejects '{objective}'"
        );
    }
    for objective in [
        "energy",
        "category:BOGUS",
        "stage:",
        "TOTAL_ENERGY",
        "mc_snr:",
        "mc_snr:0",
        "mc_snr:1025",
        "mc_snr:4.5",
    ] {
        assert!(
            objective.parse::<Objective>().is_err(),
            "explore grammar accepts '{objective}'"
        );
        assert!(
            !validate_with(objective),
            "desc validation accepts '{objective}'"
        );
    }
    // The one deliberate asymmetry: the description validator also
    // checks the stage exists; the runtime parser cannot.
    assert!("stage:NoSuchStage".parse::<Objective>().is_ok());
    assert!(!validate_with("stage:NoSuchStage"));
}

#[test]
fn cli_pareto_matches_committed_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_camj"))
        .args([
            "pareto",
            "--design",
            "descriptions/edgaze.json",
            "--format",
            "json",
        ])
        .output()
        .expect("camj binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = fs::read_to_string("descriptions/edgaze.pareto.json").unwrap();
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).replace("\r\n", "\n"),
        format!("{}\n", expected.trim_end_matches('\n')),
        "CLI pareto output drifted from descriptions/edgaze.pareto.json; \
         regenerate it if the change is intentional"
    );
}

#[test]
fn cli_pareto_accuracy_matches_committed_golden() {
    // Task accuracy as a frontier axis: the centroid-error objective
    // runs the full functional pipeline (image stimulus → analog chain
    // → digital DAG) per design point, and must still produce a
    // byte-identical frontier regardless of thread count.
    let run = |threads: Option<&str>| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_camj"));
        cmd.args([
            "pareto",
            "--design",
            "descriptions/edgaze.json",
            "--objectives",
            "total_energy,accuracy:centroid",
            "--format",
            "json",
        ]);
        if let Some(n) = threads {
            cmd.env("RAYON_NUM_THREADS", n);
        }
        let out = cmd.output().expect("camj binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap().replace("\r\n", "\n")
    };
    let expected = fs::read_to_string("descriptions/edgaze.pareto-accuracy.json").unwrap();
    let first = run(None);
    assert_eq!(
        first,
        format!("{}\n", expected.trim_end_matches('\n')),
        "CLI accuracy-pareto output drifted from \
         descriptions/edgaze.pareto-accuracy.json; \
         regenerate it if the change is intentional"
    );
    assert_eq!(run(Some("1")), first);
    assert_eq!(run(Some("8")), first);
}

proptest! {
    /// The frontier set never depends on insert order: any permutation
    /// of the same point set produces the same frontier indices.
    #[test]
    fn pareto_front_is_insert_order_invariant(seed in 0u64..500) {
        let mut rng = proptest::TestRng::deterministic(&format!("pareto-{seed}"));
        let n = 2 + (proptest::Strategy::sample(&(0u32..11), &mut rng) as usize);
        // Small coordinate alphabet so duplicates and ties are common.
        let coord = |rng: &mut proptest::TestRng| {
            f64::from(proptest::Strategy::sample(&(0u32..5), rng))
        };
        let vectors: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![coord(&mut rng), coord(&mut rng)])
            .collect();
        let labels: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
        let points = Sweep::new()
            .labels("design", labels.iter().map(String::as_str))
            .points();

        let front_of = |order: &[usize]| -> Vec<usize> {
            let mut front =
                ParetoFront::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
            for &i in order {
                front.insert(points[i].clone(), MetricVector::from_values(vectors[i].clone()));
            }
            let indices: Vec<usize> =
                front.frontier().iter().map(|e| e.point.index).collect();
            // Provenance invariant: every witness sits on the final
            // frontier, whatever the insert order did to it meanwhile.
            for entry in front.dominated() {
                assert!(
                    indices.contains(&entry.dominated_by),
                    "witness {} not on final frontier",
                    entry.dominated_by
                );
            }
            indices
        };

        let forward: Vec<usize> = (0..n).collect();
        let reference = front_of(&forward);
        // Reversed order and a deterministic shuffle.
        let reversed: Vec<usize> = (0..n).rev().collect();
        prop_assert_eq!(&front_of(&reversed), &reference);
        let mut shuffled = forward.clone();
        for i in (1..n).rev() {
            let j = proptest::Strategy::sample(&(0u32..(i as u32 + 1)), &mut rng) as usize;
            shuffled.swap(i, j);
        }
        prop_assert_eq!(&front_of(&shuffled), &reference);
    }
}
