//! Integration tests: full pipelines across all workspace crates,
//! asserting the paper's three findings as invariants.

use camj::workloads::configs::SensorVariant;
use camj::workloads::{edgaze, quickstart, rhythmic};
use camj::EnergyCategory;
use camj_tech::node::ProcessNode;

fn total_uj(build: impl Fn() -> Result<camj::CamJ, camj::workloads::WorkloadError>) -> f64 {
    build()
        .expect("model builds")
        .estimate()
        .expect("model estimates")
        .total()
        .microjoules()
}

#[test]
fn quickstart_full_flow() {
    let report = quickstart::model(30.0).unwrap().estimate().unwrap();
    // Fig. 6 structure: 3 analog stages share the frame budget.
    assert_eq!(report.delay.analog_stage_count, 3);
    let reconstructed = report.delay.analog_unit_time * 3.0 + report.delay.digital_latency;
    assert!((reconstructed.secs() - report.delay.frame_time.secs()).abs() < 1e-12);
    // All three energy domains are present (Eq. 1).
    assert!(
        report
            .breakdown
            .category_total(EnergyCategory::Sensing)
            .joules()
            > 0.0
    );
    assert!(
        report
            .breakdown
            .category_total(EnergyCategory::DigitalCompute)
            .joules()
            > 0.0
    );
    assert!(
        report
            .breakdown
            .category_total(EnergyCategory::Mipi)
            .joules()
            > 0.0
    );
}

#[test]
fn finding_1_communication_dominant_workloads_benefit_from_in_sensor() {
    // Rhythmic (communication-dominant): in-CIS wins.
    for node in [ProcessNode::N130, ProcessNode::N65] {
        let on = total_uj(|| rhythmic::model(SensorVariant::TwoDIn, node));
        let off = total_uj(|| rhythmic::model(SensorVariant::TwoDOff, node));
        assert!(
            on < off,
            "Rhythmic 2D-In should win at {node}: {on} vs {off}"
        );
    }
    // Ed-Gaze (compute-dominant): in-CIS loses.
    for node in [ProcessNode::N130, ProcessNode::N65] {
        let on = total_uj(|| edgaze::model(SensorVariant::TwoDIn, node));
        let off = total_uj(|| edgaze::model(SensorVariant::TwoDOff, node));
        assert!(
            on > off,
            "Ed-Gaze 2D-In should lose at {node}: {on} vs {off}"
        );
    }
}

#[test]
fn finding_2_stacking_saves_energy_but_concentrates_power() {
    for node in [ProcessNode::N130, ProcessNode::N65] {
        let two_d = total_uj(|| edgaze::model(SensorVariant::TwoDIn, node));
        let three_d = total_uj(|| edgaze::model(SensorVariant::ThreeDIn, node));
        assert!(three_d < two_d, "3D-In should save energy at {node}");
    }
    // STT-RAM removes the leakage floor on top of stacking.
    let stt = total_uj(|| edgaze::model(SensorVariant::ThreeDInStt, ProcessNode::N65));
    let sram = total_uj(|| edgaze::model(SensorVariant::ThreeDIn, ProcessNode::N65));
    assert!(stt < 0.6 * sram);
}

#[test]
fn finding_3_analog_processing_wins_through_memory() {
    for node in [ProcessNode::N130, ProcessNode::N65] {
        let digital = edgaze::model(SensorVariant::TwoDIn, node)
            .unwrap()
            .estimate()
            .unwrap();
        let mixed = edgaze::model(SensorVariant::TwoDInMixed, node)
            .unwrap()
            .estimate()
            .unwrap();
        assert!(
            mixed.total() < digital.total(),
            "mixed-signal should win at {node}"
        );
        // The saving comes from memory (and removed ADCs), not compute.
        let mem_digital = digital
            .breakdown
            .category_total(EnergyCategory::DigitalMemory);
        let mem_mixed = mixed
            .breakdown
            .category_total(EnergyCategory::DigitalMemory)
            + mixed.breakdown.category_total(EnergyCategory::AnalogMemory);
        assert!(mem_mixed.joules() < 0.5 * mem_digital.joules());
        // Analog compute is NOT cheaper than the digital S1/S2 datapaths.
        let comp_a = mixed
            .breakdown
            .category_total(EnergyCategory::AnalogCompute);
        let comp_d_s12: camj_tech::units::Energy = digital
            .breakdown
            .items()
            .iter()
            .filter(|i| {
                i.category == EnergyCategory::DigitalCompute && i.stage.as_deref() != Some("RoiDnn")
            })
            .map(|i| i.energy)
            .sum();
        assert!(comp_a >= comp_d_s12);
    }
}

#[test]
fn leakage_inversion_at_65nm() {
    // The paper's counter-intuitive result: a 65 nm in-sensor Ed-Gaze
    // burns MORE than 130 nm because the frame buffer leaks.
    let at_130 = total_uj(|| edgaze::model(SensorVariant::TwoDIn, ProcessNode::N130));
    let at_65 = total_uj(|| edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65));
    assert!(at_65 > at_130);
    // Off-sensor (22 nm SoC) the CIS node is irrelevant: totals match.
    let off_130 = total_uj(|| edgaze::model(SensorVariant::TwoDOff, ProcessNode::N130));
    let off_65 = total_uj(|| edgaze::model(SensorVariant::TwoDOff, ProcessNode::N65));
    assert!((off_130 - off_65).abs() < 1e-6);
}

#[test]
fn breakdown_is_additive_and_layer_consistent() {
    let report = edgaze::model(SensorVariant::ThreeDIn, ProcessNode::N65)
        .unwrap()
        .estimate()
        .unwrap();
    let by_cat: f64 = report
        .breakdown
        .by_category()
        .iter()
        .map(|(_, e)| e.joules())
        .sum();
    assert!((by_cat - report.total().joules()).abs() < 1e-18);
    let by_layer: f64 = [
        camj::core::hw::Layer::Sensor,
        camj::core::hw::Layer::Compute,
        camj::core::hw::Layer::OffChip,
    ]
    .iter()
    .map(|&l| report.breakdown.layer_total(l).joules())
    .sum();
    assert!((by_layer - report.total().joules()).abs() < 1e-18);
}

#[test]
fn infeasible_frame_rate_is_rejected() {
    // Ed-Gaze's DNN takes ~1.3 ms; at 2 kHz the frame budget is 0.5 ms.
    let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65).unwrap();
    let fast = camj::CamJ::new(
        model.algorithm().clone(),
        model.hardware().clone(),
        model.mapping().clone(),
        2_000.0,
    )
    .unwrap();
    let err = fast.estimate().unwrap_err();
    assert!(
        matches!(err, camj::CamjError::FrameRateInfeasible { .. }),
        "{err}"
    );
}

#[test]
fn sim_statistics_are_exposed() {
    let report = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .unwrap()
        .estimate()
        .unwrap();
    let sim = report.sim.as_ref().expect("digital pipeline simulated");
    // The DNN dominates the digital latency: ~264 706 cycles at 85 %
    // utilization of the 16×16 array.
    assert!(sim.total_cycles > 260_000 && sim.total_cycles < 300_000);
    let dnn = sim.stage("RoiDnn").expect("DNN stage simulated");
    assert!(dnn.active_cycles >= 264_000);
    // Frame-buffer traffic: 64 000 written, 128 000 read (2 operands).
    let fb = sim.buffer("FrameBuffer").expect("frame buffer simulated");
    assert!((fb.pixels_written - 64_000.0).abs() < 1.0);
    assert!((fb.pixels_read - 128_000.0).abs() < 1.0);
}
