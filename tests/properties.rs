//! Property-based tests (proptest) on the core invariants of the
//! technology, analog, digital, and framework layers.

use proptest::prelude::*;

use camj::analog::cell::{AnalogCell, CellContext};
use camj::analog::components::{switched_cap_mac, ApsParams};
use camj::analog::noise::{min_capacitance_for_resolution, thermal_noise_rms};
use camj::digital::memory::MemoryStructure;
use camj::digital::sim::{PipelineSimBuilder, SourceMode};
use camj::tech::interface::Interface;
use camj::tech::node::ProcessNode;
use camj::tech::scaling::ScalingTable;
use camj::tech::sram::SramMacro;
use camj::tech::units::{Energy, Time};

proptest! {
    /// Smaller nodes never cost more dynamic energy.
    #[test]
    fn scaling_energy_monotone(a in 7.0f64..180.0, b in 7.0f64..180.0) {
        prop_assume!(a < b);
        let table = ScalingTable::default();
        let small = table.energy_factor(ProcessNode::from_nanometers(a));
        let large = table.energy_factor(ProcessNode::from_nanometers(b));
        prop_assert!(small <= large, "{a}nm: {small} vs {b}nm: {large}");
    }

    /// Scaling round-trips: A→B→A is the identity.
    #[test]
    fn scaling_round_trip(a in 7.0f64..180.0, b in 7.0f64..180.0, pj in 0.01f64..100.0) {
        let table = ScalingTable::default();
        let na = ProcessNode::from_nanometers(a);
        let nb = ProcessNode::from_nanometers(b);
        let e = Energy::from_picojoules(pj);
        let back = table.scale_energy(table.scale_energy(e, na, nb), nb, na);
        prop_assert!((back.picojoules() - pj).abs() < 1e-9 * pj.max(1.0));
    }

    /// Bigger SRAMs never get cheaper to access or leak less.
    #[test]
    fn sram_monotone_in_capacity(
        small_kb in 1u64..64,
        grow in 2u64..32,
        word in prop::sample::select(vec![8u32, 16, 32, 64, 128]),
    ) {
        let small = SramMacro::new(small_kb * 1024, word, ProcessNode::N65);
        let large = SramMacro::new(small_kb * grow * 1024, word, ProcessNode::N65);
        prop_assert!(large.read_energy() >= small.read_energy());
        prop_assert!(large.leakage_power().watts() >= small.leakage_power().watts());
        prop_assert!(large.area_mm2() >= small.area_mm2());
    }

    /// Thermal-noise sizing: the returned capacitor really keeps noise
    /// below half an LSB with 3σ margin.
    #[test]
    fn noise_sizing_meets_spec(bits in 1u32..14, swing in 0.2f64..3.0) {
        let c = min_capacitance_for_resolution(bits, swing);
        let sigma = thermal_noise_rms(c);
        let lsb = swing / 2f64.powi(bits as i32);
        prop_assert!(3.0 * sigma <= lsb / 2.0 + 1e-12);
    }

    /// Dynamic cell energy scales exactly with C·V².
    #[test]
    fn dynamic_cell_cv2(c_ff in 0.1f64..1000.0, v in 0.1f64..3.0) {
        let cell = AnalogCell::dynamic(c_ff * 1e-15, v);
        let e = cell.energy(&CellContext::solo(Time::from_micros(1.0)));
        let expected = c_ff * 1e-15 * v * v;
        prop_assert!((e.joules() - expected).abs() < 1e-25);
    }

    /// Analog MAC energy is monotone in precision (Eq. 6 cap sizing).
    #[test]
    fn analog_mac_monotone_in_bits(bits in 2u32..12) {
        let d = Time::from_micros(1.0);
        let lo = switched_cap_mac(bits, 1.0).energy_per_access(d);
        let hi = switched_cap_mac(bits + 1, 1.0).energy_per_access(d);
        prop_assert!(hi > lo);
    }

    /// Interface energy is linear in bytes.
    #[test]
    fn interface_linearity(bytes in 1u64..10_000_000) {
        let one = Interface::MipiCsi2.transfer_energy(1).joules();
        let many = Interface::MipiCsi2.transfer_energy(bytes).joules();
        prop_assert!((many - one * bytes as f64).abs() < 1e-12 * many.max(1e-30));
    }

    /// Pixel components: CDS never reduces energy, shared photodiodes
    /// never reduce it either.
    #[test]
    fn pixel_energy_monotonicity(shared in 1u32..8, load_ff in 100.0f64..2000.0) {
        use camj::analog::components::aps_4t;
        let base = ApsParams {
            column_load_f: load_ff * 1e-15,
            ..ApsParams::default()
        };
        let d = Time::from_micros(10.0);
        let one = aps_4t(base).energy_per_access(d);
        let many = aps_4t(base.with_shared_pixels(shared)).energy_per_access(d);
        prop_assert!(many >= one);
        let no_cds = aps_4t(ApsParams { correlated_double_sampling: false, ..base });
        prop_assert!(no_cds.energy_per_access(d) <= one);
    }

    /// Cycle-level sim conservation: a linear pipeline moves exactly the
    /// requested pixel total, and reads equal writes for plain edges.
    #[test]
    fn sim_conserves_pixels(
        total in 16u64..4096,
        rate in 1u64..8,
        cap in 16u64..256,
    ) {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        let buf = MemoryStructure::fifo("f", cap).with_ports(8, 8);
        b.connect(src, stage, &buf, rate as f64, rate as f64, total as f64);
        let report = b.build().unwrap().run(1_000_000).unwrap();
        let f = report.buffer("f").unwrap();
        prop_assert!((f.pixels_written - total as f64).abs() < 1e-6);
        prop_assert!((f.pixels_read - total as f64).abs() < 1e-6);
        prop_assert!(f.peak_occupancy <= cap as f64 + 1e-6);
    }

    /// Random DAGs with an injected cycle are always rejected.
    #[test]
    fn algorithm_cycles_always_rejected(n in 2usize..8, seed in 0u64..1000) {
        use camj::core::sw::{AlgorithmGraph, Stage};
        let mut algo = AlgorithmGraph::new();
        algo.add_stage(Stage::input("s0", [8, 8, 1]));
        for i in 1..n {
            algo.add_stage(Stage::element_wise(format!("s{i}"), [8, 8, 1], 1));
        }
        // A chain plus one back edge chosen by the seed.
        for i in 1..n {
            algo.connect(&format!("s{}", i - 1), &format!("s{i}")).unwrap();
        }
        let from = (seed as usize % (n - 1)) + 1; // not the input stage
        let back_to = (seed as usize) % from;
        if back_to == 0 {
            // Input stages cannot have producers; the validator must
            // reject this edge for that reason instead.
            algo.connect(&format!("s{from}"), "s0").unwrap();
        } else {
            algo.connect(&format!("s{from}"), &format!("s{back_to}")).unwrap();
        }
        prop_assert!(algo.validate().is_err());
    }

    /// Energy breakdowns are additive under merge.
    #[test]
    fn breakdown_extend_is_additive(a_pj in 0.0f64..1e6, b_pj in 0.0f64..1e6) {
        use camj::core::energy::{EnergyBreakdown, EnergyItem};
        use camj::core::hw::Layer;
        use camj::EnergyCategory;
        let item = |pj| EnergyItem {
            unit: "u".into(),
            stage: None,
            category: EnergyCategory::Sensing,
            layer: Layer::Sensor,
            energy: Energy::from_picojoules(pj),
        };
        let mut a = EnergyBreakdown::new();
        a.push(item(a_pj));
        let mut b = EnergyBreakdown::new();
        b.push(item(b_pj));
        let (ta, tb) = (a.total(), b.total());
        a.extend(b);
        prop_assert!((a.total().joules() - (ta + tb).joules()).abs() < 1e-24);
    }
}
