//! Integration tests of the adaptive frontier search (ISSUE 8): the
//! exhaustive-fallback exactness oracle as a property over small grids,
//! seed-determinism of the adaptive path byte-for-byte across thread
//! counts (via the CLI, like the simulate snapshot), the committed
//! `descriptions/edgaze.search.json` golden, the `sweep.search` IR
//! validation diagnostics, and the `--threads` flag contract.

use std::fs;
use std::process::Command;

use proptest::prelude::*;

use camj::explore::{EstimateCache, Objective, ParetoQuery, SearchSpec};
use camj::workloads::quickstart;
use camj::{Explorer, Sweep};

/// Builds the quickstart model once and sweeps its fps axis; the grid
/// the cheap property tests explore.
fn quickstart_sweep(fps_points: usize) -> (Sweep, camj::core::energy::ValidatedModel) {
    let model = quickstart::model(30.0).expect("builds").into_validated();
    let sweep = Sweep::new().fps_targets((0..fps_points).map(|i| 20.0 + 0.5 * i as f64));
    (sweep, model)
}

proptest! {
    /// On grids at or below the exhaustive-fallback threshold (the
    /// default 256), `Explorer::search` takes the exact cartesian path,
    /// so its frontier must equal `Explorer::pareto`'s — every search
    /// frontier point is a true exhaustive frontier point. Any seed,
    /// population, or generation cap must give the same answer.
    #[test]
    fn small_grid_search_frontier_is_exact(
        fps_points in 1usize..48,
        seed in 0u64..1000,
        population in 1usize..12,
    ) {
        let (sweep, model) = quickstart_sweep(fps_points);
        let query = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
        let spec = SearchSpec::new().seed(seed).population(population);

        let cache = EstimateCache::shared();
        let exhaustive = Explorer::new().pareto(&sweep, &cache, &query, |point| {
            Ok(model.with_fps(point.fps("fps")))
        });
        let cache = EstimateCache::shared();
        let searched = Explorer::new().search(&sweep, &cache, &query, &spec, |point| {
            Ok(model.with_fps(point.fps("fps")))
        });

        prop_assert!(searched.exhaustive());
        prop_assert_eq!(searched.evaluations(), sweep.len());
        prop_assert_eq!(searched.frontier().len(), exhaustive.frontier().len());
        for (s, e) in searched.frontier().iter().zip(exhaustive.frontier()) {
            prop_assert_eq!(s.point.index, e.point.index);
            prop_assert!(s.metrics.same_as(&e.metrics));
        }
    }

    /// The adaptive path (forced via `exhaustive_below(0)`) is
    /// deterministic for a seed: two runs produce identical frontiers,
    /// evaluation counts, and trajectories — and every frontier point
    /// it reports is non-dominated within the points it evaluated
    /// (its frontier is a subset of the exhaustive frontier whenever
    /// the budget covers the whole grid).
    #[test]
    fn adaptive_search_is_seed_deterministic(
        fps_points in 8usize..32,
        seed in 0u64..1000,
    ) {
        let (sweep, model) = quickstart_sweep(fps_points);
        let query = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
        let spec = SearchSpec::new()
            .seed(seed)
            .population(4)
            .generations(6)
            .exhaustive_below(0);

        let run = || {
            let cache = EstimateCache::shared();
            Explorer::new().search(&sweep, &cache, &query, &spec, |point| {
                Ok(model.with_fps(point.fps("fps")))
            })
        };
        let first = run();
        let second = run();
        prop_assert!(!first.exhaustive());
        prop_assert_eq!(&first, &second);
    }
}

/// The committed `descriptions/edgaze.search.json` golden: `camj search`
/// on the bundled Ed-Gaze description must reproduce it byte-for-byte —
/// on repeat runs and across `RAYON_NUM_THREADS`, the ISSUE 8
/// determinism acceptance bar.
#[test]
fn cli_search_matches_committed_snapshot() {
    let run = |extra_env: Option<(&str, &str)>| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_camj"));
        cmd.args([
            "search",
            "--design",
            "descriptions/edgaze.json",
            "--format",
            "json",
        ]);
        if let Some((key, value)) = extra_env {
            cmd.env(key, value);
        }
        let out = cmd.output().expect("camj binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let expected = fs::read_to_string("descriptions/edgaze.search.json").unwrap();
    let first = run(None);
    assert_eq!(
        first, expected,
        "CLI search output drifted from descriptions/edgaze.search.json; \
         regenerate it if the change is intentional"
    );
    assert_eq!(run(None), first);
    assert_eq!(run(Some(("RAYON_NUM_THREADS", "8"))), first);
    assert_eq!(run(Some(("RAYON_NUM_THREADS", "1"))), first);
}

/// Byte-identity across thread counts on the *adaptive* path too: a
/// 24-point fps grid with a budget below the grid size skips the
/// exhaustive fallback, so this exercises the seeded evolutionary loop
/// end to end through the CLI.
#[test]
fn cli_adaptive_search_is_byte_identical_across_thread_counts() {
    let fps: String = (0..24)
        .map(|i| format!("{}", 20.0 + 0.5 * f64::from(i)))
        .collect::<Vec<_>>()
        .join(",");
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_camj"))
            .args([
                "search",
                "--design",
                "descriptions/quickstart.json",
                "--fps",
                &fps,
                "--population",
                "4",
                "--budget",
                "12",
                "--seed",
                "7",
                "--format",
                "json",
            ])
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("camj binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let serial = run("1");
    assert!(
        serial.contains("\"exhaustive\": false"),
        "a budget below the grid size must force the adaptive path: {serial}"
    );
    assert_eq!(run("8"), serial);
    assert_eq!(run("3"), serial);
}

/// `sweep.search` knobs are validated with path-qualified diagnostics:
/// a zero population (or generations, or budget) names the exact field.
#[test]
fn search_ir_validation_names_the_zero_field() {
    let golden = fs::read_to_string("descriptions/edgaze.json").unwrap();
    for (field, committed) in [("population", 64u64), ("generations", 24)] {
        let broken = golden.replace(
            &format!("\"{field}\": {committed}"),
            &format!("\"{field}\": 0"),
        );
        assert_ne!(broken, golden, "golden must bundle {field} = {committed}");
        let desc = camj::desc::DesignDesc::from_json(&broken).expect("parses");
        let err = desc
            .validate()
            .expect_err("a zero search knob must be rejected");
        let message = err.to_string();
        assert!(
            message.contains(&format!("sweep.search.{field}")),
            "diagnostic must name sweep.search.{field}: {message}"
        );
    }
}

/// `--threads 0` is rejected with a clear usage error on all three
/// grid-walking subcommands; a positive count is accepted.
#[test]
fn cli_rejects_zero_threads() {
    for subcommand in ["sweep", "pareto", "search"] {
        let out = Command::new(env!("CARGO_BIN_EXE_camj"))
            .args([
                subcommand,
                "--design",
                "descriptions/edgaze.json",
                "--threads",
                "0",
            ])
            .output()
            .expect("camj binary runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{subcommand} --threads 0 must exit with the usage code"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--threads must be at least 1"),
            "{subcommand}: {stderr}"
        );
    }
    let ok = Command::new(env!("CARGO_BIN_EXE_camj"))
        .args([
            "search",
            "--design",
            "descriptions/edgaze.json",
            "--threads",
            "2",
        ])
        .output()
        .expect("camj binary runs");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
}
