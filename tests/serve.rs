//! End-to-end tests for the `camj serve` daemon: the stdio transport,
//! concurrent-client dedup determinism, disk-tier warm starts and
//! corruption recovery, panic isolation, the warm-repeat speedup the
//! serving layer exists for, and the sweep/pareto/search captured-panic
//! exit codes.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use camj_serve::protocol::{
    parse_frame, serialize_request, Frame, FrameKind, Request, RequestKind,
};
use serde_json::Value;

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// A `camj serve` child on a fresh TCP port, killed on drop.
struct Daemon {
    child: Option<Child>,
    addr: String,
}

impl Daemon {
    /// Spawns `camj serve --listen 127.0.0.1:0 <extra>` with the given
    /// environment and parses the bound address off the stderr banner.
    fn spawn(extra: &[&str], env: &[(&str, &str)]) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_camj"));
        cmd.args(["serve", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (key, value) in env {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("camj serve spawns");
        let stderr = child.stderr.take().expect("stderr is piped");
        let mut lines = BufReader::new(stderr).lines();
        let banner = lines
            .next()
            .expect("daemon prints a banner")
            .expect("banner is utf-8");
        let addr = banner
            .strip_prefix("serve: listening on ")
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_owned();
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
        Self {
            child: Some(child),
            addr,
        }
    }

    /// Sends `shutdown` and waits for a clean exit.
    fn shutdown(mut self) {
        let mut request = Request::new(RequestKind::Shutdown);
        request.id = 999;
        let frames = camj_serve::roundtrip(&self.addr, &request).expect("shutdown answers");
        assert!(frames.iter().any(|f| f.frame == FrameKind::Result));
        let mut child = self.child.take().expect("daemon still running");
        let status = child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exit status: {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// A scratch directory under the system temp root, cleared up-front.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("camj-serve-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The quickstart design, inlined as a JSON value.
fn quickstart() -> Value {
    let text = fs::read_to_string("descriptions/quickstart.json").unwrap();
    serde_json::from_str(&text).unwrap()
}

/// An estimate request for the quickstart design at one target.
fn estimate_request(id: u64) -> Request {
    let mut request = Request::new(RequestKind::Estimate);
    request.id = id;
    request.design = Some(quickstart());
    request.fps = Some(vec![30.0]);
    request
}

/// A sweep request over `points` frame-rate targets.
fn sweep_request(id: u64, points: usize) -> Request {
    let mut request = Request::new(RequestKind::Sweep);
    request.id = id;
    request.design = Some(quickstart());
    request.fps = Some((1..=points).map(|i| 24.0 + i as f64).collect());
    request
}

/// Sends one raw request line and returns the daemon's response for
/// `id` as raw lines (byte-comparable), up to and including `done`.
fn raw_roundtrip(addr: &str, request: &Request) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connects to daemon");
    stream.set_nodelay(true).unwrap();
    let mut line = serialize_request(request);
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    loop {
        let mut next = String::new();
        assert_ne!(
            reader.read_line(&mut next).expect("reads a frame line"),
            0,
            "connection closed before the done frame"
        );
        let text = next.trim_end().to_owned();
        let frame = parse_frame(&text).expect("daemon emits valid frames");
        if frame.id != request.id {
            continue;
        }
        let done = frame.frame == FrameKind::Done;
        lines.push(text);
        if done {
            return lines;
        }
    }
}

/// Fetches the daemon's `stats` body.
fn stats(addr: &str) -> Value {
    let mut request = Request::new(RequestKind::Stats);
    request.id = 777;
    let frames = camj_serve::roundtrip(addr, &request).expect("stats answers");
    let result = frames
        .iter()
        .find(|f| f.frame == FrameKind::Result)
        .expect("stats has a result frame");
    result.body.clone().expect("stats result has a body")
}

/// Reads a numeric counter out of a stats body by dotted path.
fn counter(body: &Value, path: &str) -> u64 {
    let mut cursor = body.clone();
    for step in path.split('.') {
        cursor = cursor
            .as_object()
            .and_then(|m| m.get(step))
            .unwrap_or_else(|| panic!("stats body missing {path}"))
            .clone();
    }
    cursor
        .as_f64()
        .unwrap_or_else(|| panic!("{path} is not numeric"))
        .round() as u64
}

// ---------------------------------------------------------------------
// stdio transport
// ---------------------------------------------------------------------

#[test]
fn stdio_smoke_full_protocol_session() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_camj"))
        .args(["serve", "--stdio", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("camj serve --stdio spawns");
    {
        let stdin = child.stdin.as_mut().unwrap();
        let mut validate = Request::new(RequestKind::Validate);
        validate.id = 1;
        validate.design = Some(quickstart());
        writeln!(stdin, "{}", serialize_request(&validate)).unwrap();
        writeln!(stdin, "{}", serialize_request(&estimate_request(2))).unwrap();
        writeln!(stdin, "this is not json").unwrap();
        writeln!(stdin, "{{\"id\":4,\"kind\":\"transmogrify\"}}").unwrap();
        let mut shutdown = Request::new(RequestKind::Shutdown);
        shutdown.id = 5;
        writeln!(stdin, "{}", serialize_request(&shutdown)).unwrap();
    }
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success(), "exit status {:?}", out.status);
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("serve: ready on stdio"),
        "missing stdio banner"
    );

    let frames: Vec<Frame> = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_frame(l).expect("daemon emits valid frames"))
        .collect();
    // Five requests, each answered and each terminated by `done`.
    assert_eq!(
        frames.iter().filter(|f| f.frame == FrameKind::Done).count(),
        5
    );
    let validate = frames.iter().find(|f| f.id == 1).unwrap();
    let body = validate.body.as_ref().unwrap().as_object().unwrap();
    assert_eq!(body.get("ok"), Some(&Value::Bool(true)));
    let estimate = frames
        .iter()
        .find(|f| f.id == 2 && f.frame == FrameKind::Result)
        .expect("estimate answered");
    assert!(estimate.body.as_ref().unwrap().as_object().is_some());
    let garbage = frames
        .iter()
        .find(|f| f.id == 0 && f.frame == FrameKind::Error)
        .expect("garbage line answered with an error frame");
    assert_eq!(garbage.path.as_deref(), Some("request"));
    let unknown = frames
        .iter()
        .find(|f| f.id == 4 && f.frame == FrameKind::Error)
        .expect("unknown kind answered with an error frame");
    assert_eq!(unknown.path.as_deref(), Some("request.kind"));
    let stopping = frames
        .iter()
        .find(|f| f.id == 5 && f.frame == FrameKind::Result)
        .expect("shutdown acknowledged");
    let body = stopping.body.as_ref().unwrap().as_object().unwrap();
    assert_eq!(body.get("stopping"), Some(&Value::Bool(true)));
}

// ---------------------------------------------------------------------
// Concurrency: dedup determinism (satellite 2)
// ---------------------------------------------------------------------

#[test]
fn concurrent_identical_sweeps_dedup_to_one_execution() {
    const CLIENTS: usize = 4;
    let mut streams_by_rayon: Vec<Vec<String>> = Vec::new();
    for rayon_threads in ["1", "2", "8"] {
        // Baseline: a lone client on a cold daemon.
        let lone = Daemon::spawn(&["--workers", "4"], &[("RAYON_NUM_THREADS", rayon_threads)]);
        let baseline_stream = raw_roundtrip(&lone.addr, &sweep_request(7, 8));
        let baseline_misses = counter(&stats(&lone.addr), "cache.misses");
        assert!(baseline_misses > 0, "a cold sweep must miss the cache");
        lone.shutdown();

        // The same sweep from CLIENTS simultaneous connections.
        let daemon = Daemon::spawn(&["--workers", "4"], &[("RAYON_NUM_THREADS", rayon_threads)]);
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let addr = daemon.addr.clone();
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                raw_roundtrip(&addr, &sweep_request(7, 8))
            }));
        }
        let streams: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for stream in &streams[1..] {
            assert_eq!(
                stream, &streams[0],
                "concurrent clients must see byte-identical streams"
            );
        }
        assert_eq!(
            streams[0], baseline_stream,
            "a deduped response must match a lone cold run byte for byte"
        );

        let body = stats(&daemon.addr);
        assert_eq!(counter(&body, "requests"), CLIENTS as u64 + 1); // + the stats call
        assert_eq!(
            counter(&body, "dedup_hits"),
            CLIENTS as u64 - 1,
            "all but the first client must join the in-flight slot"
        );
        assert_eq!(
            counter(&body, "cache.misses"),
            baseline_misses,
            "energy kernels must have run exactly once despite {CLIENTS} clients"
        );
        daemon.shutdown();
        streams_by_rayon.push(streams.into_iter().next().unwrap());
    }
    // And the rows themselves don't depend on the rayon pool size.
    assert_eq!(streams_by_rayon[0], streams_by_rayon[1]);
    assert_eq!(streams_by_rayon[0], streams_by_rayon[2]);
}

// ---------------------------------------------------------------------
// Disk tier: warm starts, corruption recovery (satellite 3)
// ---------------------------------------------------------------------

#[test]
fn disk_tier_survives_restart_and_heals_damage() {
    let cache_dir = temp_dir("tier");
    let dir_flag = cache_dir.to_str().unwrap();

    // Cold run: populate the tier.
    let daemon = Daemon::spawn(&["--workers", "2", "--cache-dir", dir_flag], &[]);
    let cold = raw_roundtrip(&daemon.addr, &estimate_request(11));
    let body = stats(&daemon.addr);
    assert!(
        counter(&body, "tier.writes") > 0,
        "cold run must write entries"
    );
    assert_eq!(counter(&body, "tier.hits"), 0);
    daemon.shutdown();

    // Kill-and-restart warm start: the tier answers, bit-identically.
    let daemon = Daemon::spawn(&["--workers", "2", "--cache-dir", dir_flag], &[]);
    let warm = raw_roundtrip(&daemon.addr, &estimate_request(11));
    assert_eq!(warm, cold, "a tier-warmed response must match the cold run");
    let body = stats(&daemon.addr);
    assert!(
        counter(&body, "tier.hits") > 0,
        "warm restart must have a non-zero tier hit rate"
    );
    daemon.shutdown();

    // Damage the tier three ways: bit-flip, truncate, version-bump.
    let mut entries: Vec<PathBuf> = Vec::new();
    for family in ["energy", "stall"] {
        let family_dir = cache_dir.join(family);
        if let Ok(dir) = fs::read_dir(&family_dir) {
            for entry in dir.flatten() {
                entries.push(entry.path());
            }
        }
    }
    entries.sort();
    assert!(
        entries.len() >= 3,
        "expected at least 3 tier entries, found {}",
        entries.len()
    );
    let mut bytes = fs::read(&entries[0]).unwrap();
    *bytes.last_mut().unwrap() ^= 0x01;
    fs::write(&entries[0], &bytes).unwrap();
    let bytes = fs::read(&entries[1]).unwrap();
    fs::write(&entries[1], &bytes[..bytes.len() / 2]).unwrap();
    let text = String::from_utf8(fs::read(&entries[2]).unwrap()).unwrap();
    fs::write(
        &entries[2],
        text.replacen("camj-tier v1", "camj-tier v0", 1),
    )
    .unwrap();

    // The damaged daemon detects, recomputes, answers identically, and
    // rewrites the bad entries.
    let daemon = Daemon::spawn(&["--workers", "2", "--cache-dir", dir_flag], &[]);
    let healed = raw_roundtrip(&daemon.addr, &estimate_request(11));
    assert_eq!(
        healed, cold,
        "recovery from a damaged tier must be bit-identical to the cold run"
    );
    let body = stats(&daemon.addr);
    assert!(
        counter(&body, "tier.corrupt") >= 1,
        "bit flip must be detected"
    );
    assert!(
        counter(&body, "tier.stale") >= 1,
        "version bump must be detected"
    );
    assert!(
        counter(&body, "tier.writes") >= 1,
        "damaged entries must be rewritten"
    );
    daemon.shutdown();

    // After healing, a fresh daemon sees only intact entries again.
    let daemon = Daemon::spawn(&["--workers", "2", "--cache-dir", dir_flag], &[]);
    let again = raw_roundtrip(&daemon.addr, &estimate_request(11));
    assert_eq!(again, cold);
    let body = stats(&daemon.addr);
    assert!(counter(&body, "tier.hits") > 0);
    assert_eq!(
        counter(&body, "tier.corrupt"),
        0,
        "healed entries must verify"
    );
    assert_eq!(counter(&body, "tier.stale"), 0);
    daemon.shutdown();

    let _ = fs::remove_dir_all(&cache_dir);
}

// ---------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------

#[test]
fn injected_panic_yields_error_frame_and_daemon_survives() {
    // Reference: a clean daemon's cold estimate.
    let clean = Daemon::spawn(&["--workers", "2"], &[]);
    let reference = raw_roundtrip(&clean.addr, &estimate_request(21));
    clean.shutdown();

    let daemon = Daemon::spawn(&["--workers", "2", "--fault-injection"], &[]);
    let mut faulted = estimate_request(21);
    faulted.fault = Some("panic".to_owned());
    let frames = camj_serve::roundtrip(&daemon.addr, &faulted).expect("daemon answers the fault");
    let error = frames
        .iter()
        .find(|f| f.frame == FrameKind::Error)
        .expect("a panicking request gets an error frame");
    assert!(
        error
            .message
            .as_deref()
            .unwrap_or_default()
            .contains("panicked"),
        "error message: {:?}",
        error.message
    );
    assert_eq!(frames.last().unwrap().frame, FrameKind::Done);

    // The daemon is still up and still correct, byte for byte.
    let after = raw_roundtrip(&daemon.addr, &estimate_request(21));
    assert_eq!(
        after, reference,
        "post-panic responses must match a clean cold run"
    );
    daemon.shutdown();
}

// ---------------------------------------------------------------------
// Warm-repeat speedup (acceptance criterion)
// ---------------------------------------------------------------------

#[test]
fn warm_repeat_of_a_cold_sweep_is_ten_times_faster() {
    let daemon = Daemon::spawn(&["--workers", "2"], &[]);
    // The heaviest committed design, so per-point estimation dominates
    // the response transport in both build profiles.
    let design: Value =
        serde_json::from_str(&fs::read_to_string("descriptions/custom_chip.json").unwrap())
            .unwrap();
    let mut request = Request::new(RequestKind::Sweep);
    request.id = 31;
    request.design = Some(design);
    request.fps = Some((1..=256).map(|i| 24.0 + i as f64).collect());

    // Time the raw exchange on one persistent connection, without
    // client-side JSON parsing, so the measurement is the daemon's
    // latency — not accept-loop polling or test-harness decoding.
    let stream = TcpStream::connect(&daemon.addr).expect("connects");
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream);
    let mut timed = |request: &Request| {
        let mut line = serialize_request(request);
        line.push('\n');
        let started = Instant::now();
        reader.get_mut().write_all(line.as_bytes()).unwrap();
        let mut lines = Vec::new();
        loop {
            let mut next = String::new();
            assert_ne!(reader.read_line(&mut next).unwrap(), 0, "eof before done");
            let done = next.contains("\"frame\":\"done\"");
            lines.push(next);
            if done {
                return (lines, started.elapsed());
            }
        }
    };

    let (cold, cold_elapsed) = timed(&request);
    let (warm, warm_elapsed) = timed(&request);

    assert_eq!(warm, cold, "the warm repeat must replay identical frames");
    assert_eq!(counter(&stats(&daemon.addr), "dedup_hits"), 1);
    assert!(
        cold_elapsed >= warm_elapsed * 10,
        "expected a >=10x warm speedup, got cold={cold_elapsed:?} warm={warm_elapsed:?}"
    );
    daemon.shutdown();
}

// ---------------------------------------------------------------------
// Captured-panic exit codes (satellite 4)
// ---------------------------------------------------------------------

#[test]
fn sweep_pareto_search_exit_one_on_captured_panics() {
    let variants: [(&str, &[&str]); 3] = [
        ("sweep", &["--json"]),
        ("pareto", &[]),
        (
            "search",
            &["--population", "4", "--generations", "2", "--budget", "16"],
        ),
    ];
    for (command, extra) in variants {
        // Clean run: exit 0.
        let ok = Command::new(env!("CARGO_BIN_EXE_camj"))
            .args([
                command,
                "--design",
                "descriptions/quickstart.json",
                "--fps",
                "30,60",
            ])
            .args(extra)
            .output()
            .expect("camj runs");
        assert!(
            ok.status.success(),
            "{command} without faults should pass: {}",
            String::from_utf8_lossy(&ok.stderr)
        );

        // Fault the first target: the panic is captured per-point, the
        // results still print, and the exit code flips to 1.
        let out = Command::new(env!("CARGO_BIN_EXE_camj"))
            .args([
                command,
                "--design",
                "descriptions/quickstart.json",
                "--fps",
                "30,60",
            ])
            .args(extra)
            .env("CAMJ_FAULT_PANIC_FPS", "30")
            .output()
            .expect("camj runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{command} with a captured panic must exit 1 (stderr: {})",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("panicked during {command}")),
            "{command} stderr must carry the one-line summary, got: {stderr}"
        );
        assert!(
            !out.stdout.is_empty(),
            "{command} must still print its results alongside the failure"
        );
    }
}

// ---------------------------------------------------------------------
// camj --connect
// ---------------------------------------------------------------------

#[test]
fn connect_flag_runs_subcommands_against_the_daemon() {
    let daemon = Daemon::spawn(&["--workers", "2"], &[]);

    let run = || {
        Command::new(env!("CARGO_BIN_EXE_camj"))
            .args([
                "estimate",
                "--design",
                "descriptions/quickstart.json",
                "--fps",
                "30",
                "--connect",
                &daemon.addr,
            ])
            .output()
            .expect("camj runs")
    };
    let first = run();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let body: Value = serde_json::from_str(String::from_utf8_lossy(&first.stdout).trim()).unwrap();
    assert!(
        body.as_object().is_some(),
        "--connect prints the JSON result"
    );
    let second = run();
    assert_eq!(
        second.stdout, first.stdout,
        "repeat responses must be identical"
    );

    // Daemon-side validation errors surface as path-qualified stderr
    // lines and a failing exit code.
    let bad = Command::new(env!("CARGO_BIN_EXE_camj"))
        .args([
            "estimate",
            "--design",
            "descriptions/quickstart.json",
            "--fps",
            "30,60",
            "--connect",
            &daemon.addr,
        ])
        .output()
        .expect("camj runs");
    assert_eq!(bad.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("error[request.fps]"),
        "stderr: {}",
        String::from_utf8_lossy(&bad.stderr)
    );
    daemon.shutdown();
}
