//! Integration test: the Fig. 7 validation suite meets the paper's
//! quality bar across all nine chips.

use camj::workloads::validation::{all_chips, mape, pearson, validate_all};

#[test]
fn validation_matches_paper_quality() {
    let results = validate_all().expect("all nine chips estimate");
    assert_eq!(results.len(), 9);

    let r = pearson(&results);
    assert!(r > 0.999, "Pearson {r} (paper: 0.9999)");

    let m = mape(&results);
    assert!(m < 10.0, "MAPE {m} % (paper: 7.5 %)");

    // Estimates span roughly four orders of magnitude like Fig. 7a.
    let min = results
        .iter()
        .map(|c| c.estimated_pj_per_px)
        .fold(f64::INFINITY, f64::min);
    let max = results
        .iter()
        .map(|c| c.estimated_pj_per_px)
        .fold(0.0f64, f64::max);
    assert!(max / min > 500.0, "span {min:.1}..{max:.1} pJ/px");
}

#[test]
fn every_chip_is_within_twenty_percent() {
    for chip in validate_all().unwrap() {
        assert!(
            chip.error_pct.abs() < 20.0,
            "{}: {:+.1} %",
            chip.id,
            chip.error_pct
        );
    }
}

#[test]
fn chip_registry_is_complete_and_distinct() {
    let chips = all_chips();
    assert_eq!(chips.len(), 9);
    let mut ids: Vec<_> = chips.iter().map(|c| c.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 9, "chip ids must be unique");
}
