//! ISSUE 7 acceptance suite: the camj-obs tracing + metrics subsystem.
//!
//! * spans balance — every `B` has a properly nested `E` on its thread,
//! * the determinism digest (span counts + non-racy counter sums,
//!   timestamps excluded) is byte-identical across repeat runs and
//!   across serial vs parallel execution,
//! * tracing never changes results — the sweep JSON is byte-identical
//!   with a recording session on and off,
//! * the metrics report attributes ≥95 % of thread-active time to named
//!   stages, and the Chrome trace export is valid JSON.
//!
//! Everything lives in **one** test function: recording sessions are
//! process-exclusive, and the untraced phases must not run while a
//! concurrent test's session would soak up their events.

use camj::core::energy::EstimateCache;
use camj::explore::{Explorer, PointError, Sweep};
use camj::obs::{ObsSession, Recording};
use camj::workloads::quickstart;

/// Shared convention with `tests/incremental.rs` / `tests/noise.rs`:
/// every test binary pins the same worker count.
fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", "8");
}

/// The sweep under trace: 16 frame-rate points through the incremental
/// engine with a fresh shared cache, exactly the `camj sweep` path.
fn sweep_json(explorer: &Explorer) -> String {
    let sweep = Sweep::new().fps_targets((0..16).map(|i| 15.0 + f64::from(i)));
    let cache = EstimateCache::shared();
    let results = explorer.sweep_incremental(&sweep, &cache, |point| {
        quickstart::model(point.fps("fps"))
            .map(camj::core::energy::CamJ::into_validated)
            .map_err(PointError::new)
    });
    assert_eq!(results.error_count(), 0, "grid must be fully feasible");
    results.to_json(Some(&cache.stats()))
}

/// One traced run of [`sweep_json`] under a `cli.sweep` top-level span
/// (what the real CLI opens), returning the output and the recording.
fn traced_sweep(explorer: &Explorer) -> (String, Recording) {
    let session = ObsSession::begin();
    let json = {
        let _span = obs_core::span("cli.sweep");
        sweep_json(explorer)
    };
    (json, session.finish())
}

/// Replays one thread's event log asserting stack discipline: every
/// end closes the most recent open span of that name, and nothing
/// stays open.
fn assert_spans_balance(recording: &Recording) {
    use camj::obs::EventKind;
    for (tid, events) in recording.threads() {
        let mut stack: Vec<&'static str> = Vec::new();
        for event in events {
            match event.kind {
                EventKind::Begin => stack.push(event.name),
                EventKind::End => {
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!("tid {tid}: end of '{}' with no open span", event.name)
                    });
                    assert_eq!(
                        open, event.name,
                        "tid {tid}: spans not properly nested (end of '{}' closes '{open}')",
                        event.name
                    );
                }
                EventKind::Counter => {}
            }
        }
        assert!(
            stack.is_empty(),
            "tid {tid}: spans left open at session end: {stack:?}"
        );
    }
}

#[test]
fn tracing_is_balanced_deterministic_and_invisible() {
    force_threads();

    // Untraced baseline: the facade is disabled, so this is the
    // zero-overhead path every normal run takes.
    let baseline = sweep_json(&Explorer::serial());

    // Traced serial run: identical output (tracing must never affect
    // estimates), balanced spans, ≥95 % coverage.
    let (traced_json, serial_rec) = traced_sweep(&Explorer::serial());
    assert_eq!(
        baseline, traced_json,
        "sweep output must be byte-identical with tracing on"
    );
    assert!(serial_rec.event_count() > 0, "the session recorded nothing");
    assert_spans_balance(&serial_rec);
    let metrics = serial_rec.metrics();
    assert!(
        metrics.coverage >= 0.95,
        "named stages must cover >= 95% of thread-active time, got {:.1}%",
        metrics.coverage * 100.0
    );
    assert!(
        metrics.spans.iter().any(|s| s.name == "cli.sweep"),
        "the top-level command span is missing"
    );

    // The Chrome export is valid JSON with the documented shape.
    let chrome: serde_json::Value =
        serde_json::from_str(&serial_rec.chrome_trace_json()).expect("trace JSON parses");
    let events = chrome
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Determinism: repeat runs and the parallel explorer digest
    // identically (timestamps and the inherently racy counter names
    // are excluded by construction).
    let digest = serial_rec.determinism_digest();
    let (json_again, serial_again) = traced_sweep(&Explorer::serial());
    assert_eq!(baseline, json_again);
    assert_eq!(
        digest,
        serial_again.determinism_digest(),
        "repeat runs must digest identically"
    );
    let (parallel_json, parallel_rec) = traced_sweep(&Explorer::parallel());
    assert_eq!(
        baseline, parallel_json,
        "parallel sweep output must match serial"
    );
    assert_spans_balance(&parallel_rec);
    assert_eq!(
        digest,
        parallel_rec.determinism_digest(),
        "serial and parallel runs must digest identically"
    );

    // And after everything, the facade is disabled again: a fresh
    // untraced run still matches.
    assert!(!obs_core::enabled());
    assert_eq!(baseline, sweep_json(&Explorer::serial()));
}
