//! Design-space sweeps on the `camj-explore` API.
//!
//! Part 1 — analog compute precision vs energy (the ablation behind the
//! paper's Finding 3 caveat): thermal noise dictates
//! `C > kT·(6·2^bits / V_swing)²` (Eq. 6), so every extra bit of analog
//! precision quadruples the capacitors and the OpAmp bias currents
//! behind them. The sweep rebuilds the Ed-Gaze mixed-signal
//! frame-subtraction PE at 4–12 bits and shows when analog computing
//! stops beating its digital equivalent.
//!
//! Part 2 — a frame-rate sweep of the Fig. 5 quickstart chip through
//! the staged estimation pipeline: checks, routing, and the elastic
//! cycle-level simulation run once, and only the FPS-dependent stages
//! run per point, in parallel, with infeasible points captured as error
//! entries instead of aborting the sweep.
//!
//! ```text
//! cargo run --example design_space_sweep
//! ```

use camj::analog::components::{abs_diff, switched_cap_mac};
use camj::analog::noise::min_capacitance_for_resolution;
use camj::explore::{Explorer, PointError, Sweep};
use camj::tech::units::Time;
use camj::workloads::quickstart;

/// One row of the precision sweep.
struct PrecisionRow {
    bits: u32,
    min_c_ff: f64,
    abs_diff_pj: f64,
    mac_pj: f64,
}

fn precision_sweep() {
    let delay = Time::from_micros(10.0);
    // An 8-bit digital subtract at 65 nm costs ~0.1 pJ; a MAC ~0.55 pJ.
    let digital_sub_pj = 0.1;
    let digital_mac_pj = 0.55;

    // Axis: analog precision. The grid is trivially 1-D here; the same
    // code scales to precision × swing × node grids.
    let sweep = Sweep::new().bit_widths(4..=12);
    let results = Explorer::parallel().run(&sweep, |point| {
        let bits = point.u32("bit_width");
        Ok::<_, PointError>(PrecisionRow {
            bits,
            min_c_ff: min_capacitance_for_resolution(bits, 1.0) * 1e15,
            abs_diff_pj: abs_diff(bits, 1.0).energy_per_access(delay).picojoules(),
            mac_pj: switched_cap_mac(bits, 1.0)
                .energy_per_access(delay)
                .picojoules(),
        })
    });

    println!("Analog precision sweep (per-op energy at a 10 µs op budget)");
    println!();
    println!(
        "{:>5} {:>12} {:>14} {:>14} {:>10}",
        "bits", "min C (fF)", "abs-diff (pJ)", "SC-MAC (pJ)", "winner"
    );
    for (_, row) in results.successes() {
        let winner = if row.mac_pj < digital_mac_pj {
            "analog"
        } else {
            "digital"
        };
        println!(
            "{:>5} {:>12.1} {:>14.3} {:>14.3} {winner:>10}",
            row.bits, row.min_c_ff, row.abs_diff_pj, row.mac_pj
        );
    }
    println!();
    println!(
        "digital references at 65 nm: subtract ≈ {digital_sub_pj} pJ, MAC ≈ {digital_mac_pj} pJ"
    );
    println!();
    println!("Above ~8 bits the noise-sized capacitors make analog *compute*");
    println!("pricier than digital — the paper's Fig. 13 effect. Analog still");
    println!("wins on *memory* (no ADC, no SRAM leakage), which is Finding 3.");
}

fn frame_rate_sweep() -> Result<(), Box<dyn std::error::Error>> {
    // Validate + route + simulate once; sweep the FPS axis over the
    // cached artifacts. The 10M FPS point is impossible on purpose —
    // it surfaces as an error entry without poisoning its neighbours.
    let model = quickstart::model(30.0)?.into_validated();
    let targets = [15.0, 30.0, 60.0, 120.0, 480.0, 1920.0, 10_000_000.0];
    let results = Explorer::parallel().sweep_fps(&model, targets);

    println!();
    println!("Fig. 5 quickstart chip across frame-rate targets (staged pipeline,");
    println!(
        "checks/routing/latency-sim shared across all {} points):",
        targets.len()
    );
    println!();
    println!(
        "{:>10} {:>14} {:>16}",
        "FPS", "nJ/frame", "sensing µs/stage"
    );
    for outcome in results.outcomes() {
        let fps = outcome.point.fps("fps");
        match &outcome.result {
            Ok(report) => println!(
                "{fps:>10.0} {:>14.2} {:>16.2}",
                report.total().nanojoules(),
                report.delay.analog_unit_time.micros()
            ),
            Err(e) => println!("{fps:>10.0}   infeasible: {e}"),
        }
    }
    println!();
    if let Some((point, best)) = results.min_energy() {
        println!(
            "lowest energy point: {point} at {:.2} nJ/frame ({} of {} feasible)",
            best.total().nanojoules(),
            results.ok_count(),
            results.len()
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    precision_sweep();
    frame_rate_sweep()
}
