//! Design-space sweep: analog compute precision vs energy (the ablation
//! behind the paper's Finding 3 caveat).
//!
//! Thermal noise dictates `C > kT·(6·2^bits / V_swing)²` (Eq. 6): every
//! extra bit of analog precision quadruples the capacitors and the OpAmp
//! bias currents behind them. This sweep rebuilds the Ed-Gaze
//! mixed-signal frame-subtraction PE at 4–10 bits and shows when analog
//! computing stops beating its digital equivalent.
//!
//! ```text
//! cargo run --example design_space_sweep
//! ```

use camj::analog::components::{abs_diff, switched_cap_mac};
use camj::analog::noise::min_capacitance_for_resolution;
use camj::tech::units::Time;

fn main() {
    let delay = Time::from_micros(10.0);
    // An 8-bit digital subtract at 65 nm costs ~0.1 pJ; a MAC ~0.55 pJ.
    let digital_sub_pj = 0.1;
    let digital_mac_pj = 0.55;

    println!("Analog precision sweep (per-op energy at a 10 µs op budget)");
    println!();
    println!(
        "{:>5} {:>12} {:>14} {:>14} {:>10}",
        "bits", "min C (fF)", "abs-diff (pJ)", "SC-MAC (pJ)", "winner"
    );
    for bits in 4..=12 {
        let c = min_capacitance_for_resolution(bits, 1.0) * 1e15;
        let sub = abs_diff(bits, 1.0).energy_per_access(delay).picojoules();
        let mac = switched_cap_mac(bits, 1.0)
            .energy_per_access(delay)
            .picojoules();
        let winner = if mac < digital_mac_pj { "analog" } else { "digital" };
        println!("{bits:>5} {c:>12.1} {sub:>14.3} {mac:>14.3} {winner:>10}");
    }
    println!();
    println!(
        "digital references at 65 nm: subtract ≈ {digital_sub_pj} pJ, MAC ≈ {digital_mac_pj} pJ"
    );
    println!();
    println!("Above ~8 bits the noise-sized capacitors make analog *compute*");
    println!("pricier than digital — the paper's Fig. 13 effect. Analog still");
    println!("wins on *memory* (no ADC, no SRAM leakage), which is Finding 3.");
}
