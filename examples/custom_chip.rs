//! A custom computational CIS loaded **from a declarative JSON
//! description** — no Rust edits or recompiles needed to explore it.
//!
//! The design (see `descriptions/custom_chip.json`): a QVGA always-on
//! motion sensor. Pixels difference against an analog memory in-sensor
//! (a custom cell-by-cell "MotionPE": sample cap → diff OpAmp →
//! threshold comparator); only motion tiles are digitised, and a small
//! digital unit on a stacked 22 nm die compresses them before MIPI.
//!
//! Everything the old Rust-built version of this example expressed —
//! custom analog components, an expert ADC FoM, a 3D-stacked floorplan
//! — now lives in the JSON file. Edit the file (say, change
//! `MotionPE`'s comparator bits or move the compressor to the sensor
//! layer) and re-run; the same description also drives the `camj` CLI:
//!
//! ```text
//! cargo run --example custom_chip
//! camj estimate --design descriptions/custom_chip.json
//! camj sweep --design descriptions/custom_chip.json
//! ```

use camj::desc::DesignDesc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = "descriptions/custom_chip.json";
    let desc = DesignDesc::from_json(&std::fs::read_to_string(path)?)?;
    let model = desc.build()?;
    let report = model.estimate()?;

    println!("{} @ {} FPS (loaded from {path})", desc.name, desc.fps);
    println!("----------------------------------------------------");
    println!(
        "total: {:.2} µJ/frame  ({:.1} pJ/px)",
        report.total().microjoules(),
        report.energy_per_pixel().picojoules()
    );
    for (category, energy) in report.breakdown.by_category() {
        if energy.joules() > 0.0 {
            println!("  {:<7} {:>8.2} µJ", category.label(), energy.microjoules());
        }
    }
    println!();
    for layer in &report.layers {
        println!(
            "  layer {:?}: {:.2} mW over {:.2} mm² {}",
            layer.layer,
            layer.power.milliwatts(),
            layer.area_mm2,
            layer
                .density_mw_per_mm2
                .map_or(String::new(), |d| format!("→ {d:.3} mW/mm²")),
        );
    }

    // The description carries its own sweep spec (`sweep.fps`); drive
    // the staged pipeline across it, exactly like `camj sweep`.
    if let Some(sweep) = &desc.sweep {
        let results = camj::Explorer::new().sweep_fps(&model, sweep.fps.iter().copied());
        println!();
        println!("  frame-rate sweep (from the description's sweep.fps):");
        for (point, r) in results.successes() {
            println!(
                "    {:>5} FPS: {:>8.2} µJ/frame",
                point.fps("fps"),
                r.total().microjoules()
            );
        }
    }
    Ok(())
}
