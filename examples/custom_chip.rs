//! Building a custom computational CIS from scratch with the full
//! expert interface: custom analog components (cell by cell), a custom
//! digital accelerator, and a 3D-stacked floorplan.
//!
//! The design: a QVGA always-on motion sensor. Pixels difference
//! against an analog memory in-sensor; only motion tiles are digitised
//! and a small digital unit compresses them before MIPI.
//!
//! ```text
//! cargo run --example custom_chip
//! ```

use camj::analog::array::AnalogArray;
use camj::analog::cell::AnalogCell;
use camj::analog::component::AnalogComponentSpec;
use camj::analog::components::{aps_4t, column_adc_with_fom, ApsParams};
use camj::analog::domain::SignalDomain;
use camj::core::energy::CamJ;
use camj::core::hw::{
    AnalogCategory, AnalogUnitDesc, DigitalUnitDesc, HardwareDesc, Layer, MemoryDesc,
};
use camj::core::mapping::Mapping;
use camj::core::sw::{AlgorithmGraph, Stage};
use camj::digital::compute::ComputeUnit;
use camj::digital::memory::{MemoryEnergy, MemoryStructure};
use camj::tech::units::Energy;

/// A motion-detect PE built cell-by-cell: sample the pixel, difference
/// it against the held previous value, threshold with a comparator.
fn motion_pe() -> AnalogComponentSpec {
    AnalogComponentSpec::builder("MotionPE")
        .input_domain(SignalDomain::Voltage)
        .output_domain(SignalDomain::Voltage)
        .vdda(1.8)
        .cell("sample-cap", AnalogCell::dynamic_for_resolution(6, 1.0))
        .cell("diff-opamp", AnalogCell::opamp(30e-15, 1.0, 2.0, 12.0))
        .cell("threshold", AnalogCell::comparator())
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Algorithm: full-res capture → motion gating (8× fewer pixels pass)
    // → tile compression on a digital unit.
    let mut algo = AlgorithmGraph::new();
    algo.add_stage(Stage::input("Capture", [320, 240, 1]));
    algo.add_stage(Stage::custom(
        "MotionGate",
        [320, 240, 1],
        [320, 30, 1],
        76_800,
        1.0,
    ));
    algo.add_stage(Stage::custom(
        "TileCompress",
        [320, 30, 1],
        [160, 15, 1],
        38_400,
        4.0,
    ));
    algo.connect("Capture", "MotionGate")?;
    algo.connect("MotionGate", "TileCompress")?;

    // Hardware: a two-layer stack. Pixels + analog motion PEs on the
    // sensor die; ADC, buffer, and the compressor on a 22 nm logic die.
    let mut hw = HardwareDesc::new(100e6);
    hw.add_analog(
        AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(aps_4t(ApsParams::default()), 240, 320),
            Layer::Sensor,
            AnalogCategory::Sensing,
        )
        .with_pixel_pitch_um(3.0),
    );
    hw.add_analog(AnalogUnitDesc::new(
        "MotionArray",
        AnalogArray::new(motion_pe(), 1, 320),
        Layer::Sensor,
        AnalogCategory::Compute,
    ));
    hw.add_analog(AnalogUnitDesc::new(
        "ADCArray",
        AnalogArray::new(column_adc_with_fom(8, 20e-15), 1, 320),
        Layer::Sensor,
        AnalogCategory::Sensing,
    ));
    hw.add_memory(MemoryDesc::new(
        MemoryStructure::fifo("TileFifo", 2 * 320)
            .with_energy(MemoryEnergy::from_pj_per_word(0.5, 0.6, 2.0))
            .with_pixels_per_word(4)
            .with_ports(2, 2),
        Layer::Compute,
        0.01,
    ));
    hw.add_digital(DigitalUnitDesc::pipelined(
        ComputeUnit::new("Compressor", [4, 1, 1], [2, 1, 1], 3)
            .with_energy_per_cycle(Energy::from_picojoules(1.2)),
        Layer::Compute,
    ));
    hw.connect("PixelArray", "MotionArray");
    hw.connect("MotionArray", "ADCArray");
    hw.connect("ADCArray", "TileFifo");
    hw.connect("TileFifo", "Compressor");

    let mapping = Mapping::new()
        .map("Capture", "PixelArray")
        .map("MotionGate", "MotionArray")
        .map("TileCompress", "Compressor");

    let report = CamJ::new(algo, hw, mapping, 15.0)?.estimate()?;

    println!("Custom always-on motion sensor @ 15 FPS (3D-stacked)");
    println!("----------------------------------------------------");
    println!(
        "total: {:.2} µJ/frame  ({:.1} pJ/px)",
        report.total().microjoules(),
        report.energy_per_pixel().picojoules()
    );
    for (category, energy) in report.breakdown.by_category() {
        if energy.joules() > 0.0 {
            println!("  {:<7} {:>8.2} µJ", category.label(), energy.microjoules());
        }
    }
    println!();
    for layer in &report.layers {
        println!(
            "  layer {:?}: {:.2} mW over {:.2} mm² {}",
            layer.layer,
            layer.power.milliwatts(),
            layer.area_mm2,
            layer
                .density_mw_per_mm2
                .map_or(String::new(), |d| format!("→ {d:.3} mW/mm²")),
        );
    }
    Ok(())
}
