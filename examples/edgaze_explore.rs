//! Architectural exploration of the Ed-Gaze eye tracker (paper Sec. 6):
//! sweeps all five sensor variants at both CIS nodes through the
//! multi-objective Pareto engine, printing where each Joule goes and
//! which designs survive the (energy, power-density) dominance filter —
//! reproducing Findings 1–3 plus the Table 3 thermal framing
//! interactively.
//!
//! ```text
//! cargo run --release --example edgaze_explore
//! ```

use camj::explore::{
    Constraint, EstimateCache, Explorer, Objective, ParetoQuery, PointError, Sweep,
};
use camj::workloads::configs::SensorVariant;
use camj::workloads::edgaze;
use camj_core::energy::CamJ;
use camj_tech::node::ProcessNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ed-Gaze: 640x400 @30FPS, 2x2 downsample -> frame-sub -> 57.6M-MAC DNN");
    println!();

    // The Sec. 6 grid as a declarative sweep: variant x CIS node.
    let sweep = Sweep::new()
        .tech_nodes([ProcessNode::N130, ProcessNode::N65])
        .labels("variant", SensorVariant::ALL.map(|v| v.label()));

    // First pass: the classic per-variant breakdown table, through the
    // incremental engine (one shared cache across the grid).
    let cache = EstimateCache::shared();
    let build = |point: &camj::explore::DesignPoint| {
        let variant = SensorVariant::from_label(point.text("variant")).expect("label axis");
        edgaze::model(variant, point.node("tech_node"))
            .map(CamJ::into_validated)
            .map_err(PointError::new)
    };
    let results = Explorer::parallel().sweep_incremental(&sweep, &cache, build);
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "variant", "total µJ", "memory µJ", "compute µJ", "comm µJ", "mW/mm2"
    );
    for (point, report) in results.successes() {
        let b = &report.breakdown;
        use camj::EnergyCategory as C;
        let memory = b.category_total(C::DigitalMemory) + b.category_total(C::AnalogMemory);
        let compute = b.category_total(C::DigitalCompute) + b.category_total(C::AnalogCompute);
        let comm = b.category_total(C::Mipi) + b.category_total(C::MicroTsv);
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>12.2}",
            format!("{} ({})", point.text("variant"), point.node("tech_node")),
            report.total().microjoules(),
            memory.microjoules(),
            compute.microjoules(),
            comm.microjoules(),
            report.peak_power_density_mw_per_mm2().unwrap_or(0.0),
        );
    }

    // Second pass: the same grid as a multi-objective question — which
    // designs are Pareto-optimal on (energy, peak power density) under
    // a 3D-stacking-grade thermal budget? The shared cache makes this
    // pass nearly free: every simulation and kernel replays.
    let query = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity])
        .constrain(Constraint::MaxPowerDensity(20.0));
    let pareto = Explorer::parallel().pareto(&sweep, &cache, &query, build);
    println!();
    println!("Pareto frontier on (total energy, peak density), density <= 20 mW/mm2:");
    for entry in pareto.frontier() {
        let values = entry.metrics.values();
        println!(
            "  {:<22} {:>12.1} µJ {:>8.2} mW/mm2",
            format!(
                "{} ({})",
                entry.point.text("variant"),
                entry.point.node("tech_node")
            ),
            values[0] / 1e6,
            values[1],
        );
    }
    println!(
        "  ({} dominated, {} pruned by the thermal budget, {} errors; {})",
        pareto.dominated_count(),
        pareto.pruned().len(),
        pareto.errors().len(),
        pareto.stats(),
    );

    println!();
    println!("Findings to look for (paper Sec. 6):");
    println!(" 1. 2D-In loses to 2D-Off — Ed-Gaze is compute/memory-dominant.");
    println!(" 2. 2D-In at 65 nm beats 130 nm on compute but loses on leakage.");
    println!(" 3. 3D-In recovers the loss; STT-RAM removes the leakage floor.");
    println!(" 4. 2D-In-Mixed wins big: analog S&H replaces the leaky frame buffer.");
    println!(" 5. The frontier keeps only the designs that trade energy against");
    println!("    thermal density — dominated variants never need a second look.");
    Ok(())
}
