//! Architectural exploration of the Ed-Gaze eye tracker (paper Sec. 6):
//! sweeps all five sensor variants at both CIS nodes and prints where
//! each Joule goes — reproducing Findings 1–3 interactively.
//!
//! ```text
//! cargo run --release --example edgaze_explore
//! ```

use camj::workloads::configs::SensorVariant;
use camj::workloads::edgaze;
use camj_tech::node::ProcessNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Ed-Gaze: 640x400 @30FPS, 2x2 downsample -> frame-sub -> 57.6M-MAC DNN");
    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "variant", "total µJ", "memory µJ", "compute µJ", "comm µJ"
    );
    for node in [ProcessNode::N130, ProcessNode::N65] {
        for variant in SensorVariant::ALL {
            let Ok(model) = edgaze::model(variant, node) else {
                continue;
            };
            let report = model.estimate()?;
            let b = &report.breakdown;
            use camj::EnergyCategory as C;
            let memory = b.category_total(C::DigitalMemory) + b.category_total(C::AnalogMemory);
            let compute = b.category_total(C::DigitalCompute) + b.category_total(C::AnalogCompute);
            let comm = b.category_total(C::Mipi) + b.category_total(C::MicroTsv);
            println!(
                "{:<22} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                format!("{variant} ({node})"),
                report.total().microjoules(),
                memory.microjoules(),
                compute.microjoules(),
                comm.microjoules(),
            );
        }
    }
    println!();
    println!("Findings to look for (paper Sec. 6):");
    println!(" 1. 2D-In loses to 2D-Off — Ed-Gaze is compute/memory-dominant.");
    println!(" 2. 2D-In at 65 nm beats 130 nm on compute but loses on leakage.");
    println!(" 3. 3D-In recovers the loss; STT-RAM removes the leakage floor.");
    println!(" 4. 2D-In-Mixed wins big: analog S&H replaces the leaky frame buffer.");
    Ok(())
}
