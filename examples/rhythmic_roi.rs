//! Rhythmic Pixel Regions: sweep the ROI reduction factor to find the
//! in- vs off-sensor crossover (the ablation behind paper Finding 1).
//!
//! The stock workload halves the image (50 % ROI). The break-even point
//! moves with how much communication the in-sensor encoder can remove:
//! this example rebuilds the workload at several ROI fractions and
//! reports where in-sensor computing stops paying.
//!
//! ```text
//! cargo run --release --example rhythmic_roi
//! ```

use camj::core::energy::CamJ;
use camj::core::sw::{AlgorithmGraph, Stage};
use camj::workloads::configs::SensorVariant;
use camj::workloads::rhythmic;
use camj_tech::node::ProcessNode;

/// Rebuilds the Rhythmic model with a custom ROI output fraction.
fn model_with_roi(
    variant: SensorVariant,
    node: ProcessNode,
    roi_fraction: f64,
) -> Result<CamJ, Box<dyn std::error::Error>> {
    let base = rhythmic::model(variant, node)?;
    // Re-describe the algorithm with the swept output height; hardware
    // and mapping are reused unchanged — the paper's decoupling at work.
    let mut algo = AlgorithmGraph::new();
    algo.add_stage(Stage::input(
        "Input",
        [rhythmic::WIDTH, rhythmic::HEIGHT, 1],
    ));
    let out_h = ((f64::from(rhythmic::HEIGHT) * roi_fraction) as u32).max(1);
    algo.add_stage(Stage::custom(
        "CompareSample",
        [rhythmic::WIDTH, rhythmic::HEIGHT, 1],
        [rhythmic::WIDTH, out_h, 1],
        rhythmic::OPS_PER_FRAME,
        2.0,
    ));
    algo.connect("Input", "CompareSample")?;
    Ok(CamJ::new(
        algo,
        base.hardware().clone(),
        base.mapping().clone(),
        base.fps(),
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Rhythmic Pixel Regions: ROI-fraction sweep (65 nm CIS, 22 nm SoC)");
    println!();
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "ROI %", "2D-In µJ", "2D-Off µJ", "winner"
    );
    for roi_pct in [10, 25, 40, 50, 65, 80, 90, 100] {
        let roi = f64::from(roi_pct) / 100.0;
        let on = model_with_roi(SensorVariant::TwoDIn, ProcessNode::N65, roi)?
            .estimate()?
            .total();
        let off = model_with_roi(SensorVariant::TwoDOff, ProcessNode::N65, roi)?
            .estimate()?
            .total();
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>10}",
            roi_pct,
            on.microjoules(),
            off.microjoules(),
            if on < off { "in-CIS" } else { "off-CIS" }
        );
    }
    println!();
    println!("In-sensor computing pays only while the encoder removes enough");
    println!("MIPI traffic to cover its older-node compute premium (Finding 1).");
    Ok(())
}
