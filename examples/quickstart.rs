//! Quickstart: the paper's Fig. 5 running example, end to end.
//!
//! A 32×32 sensor bins 2×2 inside the pixel array, runs a 3×3 edge
//! detection on a small digital unit, and ships the edge map over MIPI.
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = camj::workloads::quickstart::model(30.0)?;
    let report = model.estimate()?;

    println!("Fig. 5 quickstart sensor @ 30 FPS");
    println!("---------------------------------");
    println!(
        "frame time {:.2} ms | digital latency {:.3} ms | {} analog stages x {:.2} ms",
        report.delay.frame_time.millis(),
        report.delay.digital_latency.millis(),
        report.delay.analog_stage_count,
        report.delay.analog_unit_time.millis(),
    );
    println!();
    println!("per-frame energy: {:.2} nJ", report.total().nanojoules());
    println!(
        "per-pixel energy: {:.2} pJ",
        report.energy_per_pixel().picojoules()
    );
    println!();
    println!("component breakdown:");
    for item in report.breakdown.items() {
        println!(
            "  {:<22} {:>10.1} pJ   [{}]",
            item.unit,
            item.energy.picojoules(),
            item.category,
        );
    }
    println!();
    println!("category totals:");
    for (category, energy) in report.breakdown.by_category() {
        if energy.joules() > 0.0 {
            println!("  {:<7} {:>10.1} pJ", category.label(), energy.picojoules());
        }
    }
    Ok(())
}
