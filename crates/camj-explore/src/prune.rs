//! Constraint-based early pruning: feasibility budgets that stop a
//! point's estimation before it pays for energy kernels it cannot
//! possibly need.
//!
//! The gated pipeline ([`ValidatedModel::estimate_at_fps_gated`]) calls
//! back after the delay solve and after each energy kernel. Because
//! every component energy is non-negative, any aggregate of the partial
//! breakdown — total energy, a per-layer power density — is a **lower
//! bound** of its final value, so "already over budget" is a sound
//! verdict: pruning only rejects points the completed estimate would
//! reject too. Surviving points run every kernel exactly as an
//! unconstrained sweep would (same order, same cache fingerprints), so
//! their results are byte-identical and a shared
//! [`EstimateCache`](camj_core::energy::EstimateCache) stays coherent.
//!
//! [`ValidatedModel::estimate_at_fps_gated`]: camj_core::energy::ValidatedModel::estimate_at_fps_gated

use std::fmt;

use camj_core::energy::{GateContext, ValidatedModel, ENERGY_KERNEL_COUNT};
use camj_core::power_density::layer_powers;
use camj_core::DelayEstimate;

/// One feasibility budget a design point must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// Thermal feasibility (Sec. 6.2): the worst per-layer power
    /// density must not exceed this many mW/mm². Checked against the
    /// partial breakdown after every kernel — a lower bound, so the
    /// check is conservative until the last kernel makes it exact.
    MaxPowerDensity(f64),
    /// The digital latency `T_D` must not exceed this many ms. Checked
    /// right after the delay solve, before the stall check and every
    /// kernel.
    MaxDigitalLatency(f64),
    /// Total per-frame energy must not exceed this many pJ.
    MaxTotalEnergy(f64),
}

impl Constraint {
    /// Whether a delay split alone already violates this constraint.
    #[must_use]
    fn violated_by_delay(&self, delay: &DelayEstimate) -> bool {
        match self {
            Constraint::MaxDigitalLatency(ms) => delay.digital_latency.millis() > *ms,
            Constraint::MaxPowerDensity(_) | Constraint::MaxTotalEnergy(_) => false,
        }
    }

    /// Whether the gated pipeline's partial state already violates this
    /// constraint (sound: partial aggregates are lower bounds).
    #[must_use]
    fn violated_by(&self, model: &ValidatedModel, ctx: &GateContext<'_>) -> bool {
        match self {
            Constraint::MaxDigitalLatency(_) => self.violated_by_delay(ctx.delay),
            Constraint::MaxTotalEnergy(pj) => ctx.partial.total().picojoules() > *pj,
            Constraint::MaxPowerDensity(budget) => {
                layer_powers(ctx.partial, model.hardware(), ctx.delay.frame_time)
                    .iter()
                    .filter_map(|l| l.density_mw_per_mm2)
                    .any(|d| d > *budget)
            }
        }
    }
}

impl Constraint {
    /// Stable attribution index for observability counters (the `key`
    /// of `prune.pruned` events), so a trace can say *which* budget cut
    /// each point without formatting names.
    #[must_use]
    pub fn trace_key(&self) -> u64 {
        match self {
            Constraint::MaxPowerDensity(_) => 0,
            Constraint::MaxDigitalLatency(_) => 1,
            Constraint::MaxTotalEnergy(_) => 2,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::MaxPowerDensity(v) => write!(f, "power density <= {v} mW/mm2"),
            Constraint::MaxDigitalLatency(v) => write!(f, "digital latency <= {v} ms"),
            Constraint::MaxTotalEnergy(v) => write!(f, "total energy <= {v} pJ"),
        }
    }
}

/// An ordered set of constraints, evaluated together as a gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty (always-admitting) set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint (builder-style).
    #[must_use]
    pub fn with(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// The constraints, in declaration order.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether the set admits everything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The first constraint a gate context violates, if any — the
    /// provenance a pruned point reports.
    #[must_use]
    pub fn first_violated(
        &self,
        model: &ValidatedModel,
        ctx: &GateContext<'_>,
    ) -> Option<Constraint> {
        self.constraints
            .iter()
            .find(|c| c.violated_by(model, ctx))
            .copied()
    }

    /// Whether a delay split alone already violates some constraint
    /// (used to skip stall pre-warming for hopeless frame rates).
    #[must_use]
    pub(crate) fn admits_delay(&self, delay: &DelayEstimate) -> bool {
        !self.constraints.iter().any(|c| c.violated_by_delay(delay))
    }
}

/// Energy-kernel accounting for a constrained sweep: how much of the
/// energy stage the pruning actually skipped.
///
/// Kernel "work" counts cache interactions too — a replayed kernel
/// still costs a fingerprint and a lookup — so the skip fraction is a
/// fraction of kernel *invocations*, the unit the acceptance benchmark
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct PruneStats {
    /// Points that completed estimation (all kernels ran).
    pub points_complete: u64,
    /// Points stopped by a constraint.
    pub points_pruned: u64,
    /// Points that failed estimation (infeasible frame rate, stall, …).
    pub points_error: u64,
    /// Energy kernels that ran (computed or replayed from cache).
    pub kernels_run: u64,
    /// Energy kernels skipped by pruning.
    pub kernels_skipped: u64,
}

impl PruneStats {
    /// Books a completed point.
    pub(crate) fn record_complete(&mut self) {
        self.points_complete += 1;
        self.kernels_run += ENERGY_KERNEL_COUNT as u64;
    }

    /// Books a point pruned after `kernels_done` kernels.
    pub(crate) fn record_pruned(&mut self, kernels_done: usize) {
        self.points_pruned += 1;
        self.kernels_run += kernels_done as u64;
        self.kernels_skipped += (ENERGY_KERNEL_COUNT - kernels_done) as u64;
    }

    /// Books an errored point (no kernel accounting: the energy stage
    /// was never reached for reasons unrelated to pruning).
    pub(crate) fn record_error(&mut self) {
        self.points_error += 1;
    }

    /// Fraction of energy-kernel invocations the pruning skipped, over
    /// the points that reached the energy stage; zero for an empty
    /// sweep.
    #[must_use]
    pub fn skip_fraction(&self) -> f64 {
        let possible = self.kernels_run + self.kernels_skipped;
        if possible == 0 {
            0.0
        } else {
            self.kernels_skipped as f64 / possible as f64
        }
    }
}

impl fmt::Display for PruneStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} complete / {} pruned / {} errors; {} of {} kernel invocations skipped ({:.1}%)",
            self.points_complete,
            self.points_pruned,
            self.points_error,
            self.kernels_skipped,
            self.kernels_run + self.kernels_skipped,
            self.skip_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_fraction_counts_only_energy_stage_points() {
        let mut stats = PruneStats::default();
        stats.record_complete(); // 4 run
        stats.record_pruned(1); // 1 run, 3 skipped
        stats.record_error(); // no kernel accounting
        assert_eq!(stats.kernels_run, 5);
        assert_eq!(stats.kernels_skipped, 3);
        assert!((stats.skip_fraction() - 3.0 / 8.0).abs() < 1e-12);
        let text = stats.to_string();
        assert!(text.contains("3 of 8"), "{text}");
    }

    #[test]
    fn empty_stats_have_zero_skip_fraction() {
        assert_eq!(PruneStats::default().skip_fraction(), 0.0);
    }

    #[test]
    fn constraints_display_their_budgets() {
        assert_eq!(
            Constraint::MaxPowerDensity(30.0).to_string(),
            "power density <= 30 mW/mm2"
        );
        assert_eq!(
            Constraint::MaxDigitalLatency(12.5).to_string(),
            "digital latency <= 12.5 ms"
        );
        assert_eq!(
            Constraint::MaxTotalEnergy(1e6).to_string(),
            "total energy <= 1000000 pJ"
        );
    }
}
