//! The delta-sweep planner: which estimation artifacts each sweep axis
//! invalidates, and a grid ordering that maximises cross-point reuse.
//!
//! The staged pipeline's artifacts form a dependency ladder — model
//! (validate + route), elastic simulation, delay/stall verdicts, and
//! the four energy kernels. Each axis of a [`Sweep`] can only
//! invalidate some rungs: a frame-rate axis never touches the model or
//! the simulation; a bit-width axis touches analog energy but not the
//! digital dataflow; a technology-node axis rescales energies but not
//! the simulated topology. [`axis_impact`] encodes that knowledge as a
//! [`KernelSet`], and [`SweepPlan`] uses it to:
//!
//! 1. **order the grid** so the most-invalidating axes vary slowest —
//!    consecutive points then share the longest possible prefix of
//!    still-valid artifacts, and
//! 2. **group points** that share every model-rebuilding coordinate, so
//!    the explorer builds one [`ValidatedModel`] per group and runs
//!    only the FPS-dependent tail per point.
//!
//! Reordering is an evaluation-side concern only: every
//! [`DesignPoint`] keeps its original grid index, and the explorer
//! re-sorts outcomes before returning, so results remain byte-identical
//! to an unplanned sweep.
//!
//! [`ValidatedModel`]: camj_core::energy::ValidatedModel

use std::fmt;

use crate::axis::AxisValue;
use crate::sweep::{DesignPoint, Sweep};

/// A set of estimation artifacts (pipeline rungs + energy kernels) that
/// a sweep axis can invalidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelSet(u16);

impl KernelSet {
    /// Nothing invalidated.
    pub const NONE: KernelSet = KernelSet(0);
    /// The validated model itself (checks + routes): changing this axis
    /// requires rebuilding the model at each coordinate.
    pub const MODEL: KernelSet = KernelSet(1 << 0);
    /// The elastic cycle-level simulation (dataflow topology).
    pub const ELASTIC_SIM: KernelSet = KernelSet(1 << 1);
    /// The frame-budget solve and the stall verdict.
    pub const DELAY: KernelSet = KernelSet(1 << 2);
    /// The analog energy kernel.
    pub const ANALOG: KernelSet = KernelSet(1 << 3);
    /// The digital compute energy kernel.
    pub const DIGITAL_COMPUTE: KernelSet = KernelSet(1 << 4);
    /// The digital memory energy kernel.
    pub const DIGITAL_MEMORY: KernelSet = KernelSet(1 << 5);
    /// The interface (communication) energy kernel.
    pub const INTERFACE: KernelSet = KernelSet(1 << 6);
    /// Everything — the safe assumption for unknown axes.
    pub const ALL: KernelSet = KernelSet(0x7f);

    /// Set union.
    #[must_use]
    pub fn union(self, other: KernelSet) -> KernelSet {
        KernelSet(self.0 | other.0)
    }

    /// Whether every artifact in `other` is in this set.
    #[must_use]
    pub fn contains(self, other: KernelSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Number of artifacts in the set — the axis's "invalidation
    /// weight"; heavier axes are placed slower in the planned order.
    #[must_use]
    pub fn weight(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for KernelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(KernelSet, &str); 7] = [
            (KernelSet::MODEL, "model"),
            (KernelSet::ELASTIC_SIM, "elastic-sim"),
            (KernelSet::DELAY, "delay"),
            (KernelSet::ANALOG, "analog"),
            (KernelSet::DIGITAL_COMPUTE, "digital-compute"),
            (KernelSet::DIGITAL_MEMORY, "digital-memory"),
            (KernelSet::INTERFACE, "interface"),
        ];
        let mut first = true;
        for (set, name) in NAMES {
            if self.contains(set) {
                if !first {
                    f.write_str("+")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("none")?;
        }
        Ok(())
    }
}

/// The artifacts an axis with this name can invalidate.
///
/// The well-known axis names are the ones [`Sweep`]'s builder methods
/// produce; anything else conservatively invalidates everything.
///
/// * `"fps"` — only the frame-budget solve, the stall verdict, and the
///   energy kernels whose inputs carry the delay split (analog delay
///   budgets, memory leakage over the frame time). The model and the
///   elastic simulation survive — this is why frame-rate sweeps are the
///   cheapest axis.
/// * `"bit_width"` — converter/precision parameters: the model is
///   rebuilt and analog + communication energies change, but the
///   digital dataflow (and so the expensive simulation) survives.
/// * `"tech_node"` — energy/leakage rescaling: everything *except* the
///   simulated topology and the byte volumes changes.
/// * `"memory"` — memory structure geometry: changes the dataflow, so
///   (almost) everything goes.
#[must_use]
pub fn axis_impact(axis_name: &str) -> KernelSet {
    match axis_name {
        "fps" => KernelSet::DELAY
            .union(KernelSet::ANALOG)
            .union(KernelSet::DIGITAL_MEMORY),
        "bit_width" => KernelSet::MODEL
            .union(KernelSet::ANALOG)
            .union(KernelSet::INTERFACE),
        "tech_node" => KernelSet::MODEL
            .union(KernelSet::ANALOG)
            .union(KernelSet::DIGITAL_COMPUTE)
            .union(KernelSet::DIGITAL_MEMORY),
        "memory" => KernelSet::MODEL
            .union(KernelSet::ELASTIC_SIM)
            .union(KernelSet::DELAY)
            .union(KernelSet::ANALOG)
            .union(KernelSet::DIGITAL_COMPUTE)
            .union(KernelSet::DIGITAL_MEMORY),
        _ => KernelSet::ALL,
    }
}

/// Whether an axis forces a model rebuild at each of its coordinates.
#[must_use]
pub fn axis_requires_rebuild(axis_name: &str) -> bool {
    axis_impact(axis_name).contains(KernelSet::MODEL)
}

/// Coordinate identity for plan keying: like `PartialEq`, but compares
/// real values by bit pattern so a NaN coordinate (pathological but
/// constructible through the programmatic `Axis` API) still matches the
/// axis value it was generated from instead of panicking the planner.
fn coord_eq(a: &AxisValue, b: &AxisValue) -> bool {
    match (a, b) {
        (AxisValue::F64(x), AxisValue::F64(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// An evaluation plan for a sweep: the grid re-ordered for maximal
/// artifact reuse and partitioned into model-sharing groups.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Axis names in evaluation order, slowest-varying first.
    axis_order: Vec<String>,
    /// Number of leading axes in `axis_order` that rebuild the model.
    rebuild_axes: usize,
    /// Contiguous groups of points sharing all rebuild-axis
    /// coordinates, in evaluation order. Points keep their original
    /// grid indices.
    groups: Vec<Vec<DesignPoint>>,
}

/// The planned axis ordering of `sweep`: axis indices sorted by
/// descending invalidation weight (model-rebuilding axes first, ties
/// broken by declaration order), plus the count of leading axes that
/// rebuild the model.
fn planned_order(sweep: &Sweep) -> (Vec<usize>, usize) {
    let axes = sweep.axes();
    let mut order: Vec<usize> = (0..axes.len()).collect();
    // Stable sort: rebuild axes before tail axes, heavier impact
    // first, declaration order last.
    order.sort_by_key(|&i| {
        let impact = axis_impact(axes[i].name());
        (
            std::cmp::Reverse(u8::from(impact.contains(KernelSet::MODEL))),
            std::cmp::Reverse(impact.weight()),
        )
    });
    let rebuild_axes = order
        .iter()
        .take_while(|&&i| axis_requires_rebuild(axes[i].name()))
        .count();
    (order, rebuild_axes)
}

/// Keys `points` by their value indices along `order`, sorts into
/// evaluation order, and partitions into groups sharing every
/// rebuild-axis coordinate. The grouping engine behind [`SweepPlan`]
/// and [`group_points`].
fn group_by_rebuild_prefix(
    sweep: &Sweep,
    order: &[usize],
    rebuild_axes: usize,
    points: Vec<DesignPoint>,
) -> Vec<Vec<DesignPoint>> {
    let axes = sweep.axes();
    let mut keyed: Vec<(Vec<usize>, DesignPoint)> = points
        .into_iter()
        .map(|point| {
            let key = order
                .iter()
                .map(|&i| {
                    let axis = &axes[i];
                    let value = point
                        .get(axis.name())
                        .expect("grid points carry every axis");
                    axis.values()
                        .iter()
                        .position(|v| coord_eq(v, value))
                        .expect("coordinate comes from the axis value list")
                })
                .collect::<Vec<usize>>();
            (key, point)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));

    let mut groups: Vec<Vec<DesignPoint>> = Vec::new();
    let mut current_prefix: Option<Vec<usize>> = None;
    for (key, point) in keyed {
        let prefix = key[..rebuild_axes].to_vec();
        if current_prefix.as_ref() != Some(&prefix) {
            groups.push(Vec::new());
            current_prefix = Some(prefix);
        }
        groups.last_mut().expect("group pushed above").push(point);
    }
    groups
}

/// Groups an arbitrary subset of `sweep`'s grid exactly the way
/// [`SweepPlan::new`] groups the full grid: evaluation order along the
/// planned axis ordering, one group per distinct combination of
/// model-rebuilding coordinates. Adaptive search uses this to batch a
/// candidate generation so each batch builds one model per rebuild
/// combination instead of one per point.
pub(crate) fn group_points(sweep: &Sweep, points: Vec<DesignPoint>) -> Vec<Vec<DesignPoint>> {
    let (order, rebuild_axes) = planned_order(sweep);
    group_by_rebuild_prefix(sweep, &order, rebuild_axes, points)
}

impl SweepPlan {
    /// Plans `sweep`: orders axes by descending invalidation weight
    /// (model-rebuilding axes first, ties broken by declaration order)
    /// and groups points sharing every rebuild coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the sweep contains a point whose coordinate is missing
    /// from its axis — impossible for grids built by [`Sweep::points`].
    #[must_use]
    pub fn new(sweep: &Sweep) -> Self {
        let (order, rebuild_axes) = planned_order(sweep);
        let groups = group_by_rebuild_prefix(sweep, &order, rebuild_axes, sweep.points());
        let axes = sweep.axes();
        Self {
            axis_order: order.iter().map(|&i| axes[i].name().to_owned()).collect(),
            rebuild_axes,
            groups,
        }
    }

    /// Axis names in evaluation order, slowest-varying first.
    #[must_use]
    pub fn axis_order(&self) -> &[String] {
        &self.axis_order
    }

    /// Number of leading axes in [`Self::axis_order`] whose coordinates
    /// force a model rebuild.
    #[must_use]
    pub fn rebuild_axes(&self) -> usize {
        self.rebuild_axes
    }

    /// The model-sharing point groups, in evaluation order.
    #[must_use]
    pub fn groups(&self) -> &[Vec<DesignPoint>] {
        &self.groups
    }

    /// Consumes the plan into its groups.
    #[must_use]
    pub fn into_groups(self) -> Vec<Vec<DesignPoint>> {
        self.groups
    }

    /// Total number of planned points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_tech::node::ProcessNode;

    #[test]
    fn fps_is_the_only_builtin_tail_axis() {
        assert!(!axis_requires_rebuild("fps"));
        for axis in ["bit_width", "tech_node", "memory", "anything-else"] {
            assert!(axis_requires_rebuild(axis), "{axis}");
        }
    }

    #[test]
    fn fps_never_invalidates_the_simulation() {
        let impact = axis_impact("fps");
        assert!(!impact.contains(KernelSet::ELASTIC_SIM));
        assert!(!impact.contains(KernelSet::MODEL));
        assert!(impact.contains(KernelSet::DELAY));
    }

    #[test]
    fn tech_node_keeps_the_simulated_topology() {
        assert!(!axis_impact("tech_node").contains(KernelSet::ELASTIC_SIM));
        assert!(axis_impact("memory").contains(KernelSet::ELASTIC_SIM));
    }

    #[test]
    fn groups_share_rebuild_coordinates_and_cover_the_grid() {
        let sweep = Sweep::new()
            .fps_targets([15.0, 30.0])
            .bit_widths([4, 8])
            .tech_nodes([ProcessNode::N65, ProcessNode::N22]);
        let plan = SweepPlan::new(&sweep);
        // fps is a tail axis: 4 rebuild combos × 2 fps points each.
        assert_eq!(plan.groups().len(), 4);
        assert_eq!(plan.len(), sweep.len());
        for group in plan.groups() {
            assert_eq!(group.len(), 2);
            let first = &group[0];
            for point in group {
                assert_eq!(point.get("bit_width"), first.get("bit_width"));
                assert_eq!(point.get("tech_node"), first.get("tech_node"));
            }
        }
        // Every original index appears exactly once.
        let mut seen: Vec<usize> = plan.groups().iter().flatten().map(|p| p.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..sweep.len()).collect::<Vec<_>>());
    }

    #[test]
    fn subset_grouping_matches_the_full_plan() {
        let sweep = Sweep::new()
            .fps_targets([15.0, 30.0])
            .bit_widths([4, 8])
            .tech_nodes([ProcessNode::N65, ProcessNode::N22]);
        // The full grid through group_points reproduces the plan.
        let plan = SweepPlan::new(&sweep);
        assert_eq!(group_points(&sweep, sweep.points()), plan.groups());
        // A subset groups by the same rebuild coordinates.
        let subset: Vec<DesignPoint> = sweep
            .points()
            .into_iter()
            .filter(|p| p.index % 3 != 0)
            .collect();
        let total: usize = subset.len();
        let groups = group_points(&sweep, subset);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), total);
        for group in &groups {
            let first = &group[0];
            for point in group {
                assert_eq!(point.get("bit_width"), first.get("bit_width"));
                assert_eq!(point.get("tech_node"), first.get("tech_node"));
            }
        }
    }

    #[test]
    fn heavier_axes_vary_slower() {
        let sweep = Sweep::new()
            .fps_targets([15.0, 30.0])
            .memory_kinds([
                crate::MemoryKind::DoubleBuffer,
                crate::MemoryKind::LineBuffer,
            ])
            .bit_widths([4, 8]);
        let plan = SweepPlan::new(&sweep);
        // memory invalidates more than bit_width; fps is the tail.
        assert_eq!(plan.axis_order(), ["memory", "bit_width", "fps"]);
        assert_eq!(plan.rebuild_axes(), 2);
    }

    #[test]
    fn pure_fps_sweep_is_one_group() {
        let sweep = Sweep::new().fps_targets([10.0, 20.0, 30.0]);
        let plan = SweepPlan::new(&sweep);
        assert_eq!(plan.groups().len(), 1);
        assert_eq!(plan.groups()[0].len(), 3);
    }

    #[test]
    fn kernel_set_display_lists_members() {
        let set = KernelSet::MODEL.union(KernelSet::ANALOG);
        assert_eq!(set.to_string(), "model+analog");
        assert_eq!(KernelSet::NONE.to_string(), "none");
        assert!(KernelSet::NONE.is_empty());
    }
}
