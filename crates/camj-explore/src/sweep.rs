//! Sweep declaration and cartesian design-grid generation.

use std::fmt;

use camj_digital::memory::MemoryKind;
use camj_tech::node::ProcessNode;

use crate::axis::{Axis, AxisValue};

/// A declarative sweep: an ordered set of parameter axes whose
/// cartesian product is the design grid.
///
/// Axis order matters only for enumeration order: the **last** axis
/// varies fastest (row-major), and [`DesignPoint::index`] records each
/// point's position, so results are always reported in a stable,
/// reproducible order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    axes: Vec<Axis>,
}

impl Sweep {
    /// An empty sweep (add axes with the builder methods).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a generic axis.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `name` duplicates an existing
    /// axis.
    #[must_use]
    pub fn axis<N, V, I>(mut self, name: N, values: I) -> Self
    where
        N: Into<String>,
        V: Into<AxisValue>,
        I: IntoIterator<Item = V>,
    {
        let axis = Axis::new(name, values);
        assert!(
            self.axes.iter().all(|a| a.name() != axis.name()),
            "duplicate axis '{}'",
            axis.name()
        );
        self.axes.push(axis);
        self
    }

    /// Adds a `bit_width` axis (analog/digital precision).
    #[must_use]
    pub fn bit_widths(self, values: impl IntoIterator<Item = u32>) -> Self {
        self.axis("bit_width", values)
    }

    /// Adds a `tech_node` axis (fabrication process).
    #[must_use]
    pub fn tech_nodes(self, values: impl IntoIterator<Item = ProcessNode>) -> Self {
        self.axis("tech_node", values)
    }

    /// Adds a `memory` axis (digital memory structure kind).
    #[must_use]
    pub fn memory_kinds(self, values: impl IntoIterator<Item = MemoryKind>) -> Self {
        self.axis("memory", values)
    }

    /// Adds an `fps` axis (frame-rate target).
    #[must_use]
    pub fn fps_targets(self, values: impl IntoIterator<Item = f64>) -> Self {
        self.axis("fps", values)
    }

    /// Adds a free-form label axis under `name` (sensor variants,
    /// workload names, …).
    #[must_use]
    pub fn labels<'a>(self, name: &str, values: impl IntoIterator<Item = &'a str>) -> Self {
        self.axis(name, values)
    }

    /// The declared axes.
    #[must_use]
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of points in the design grid (product of axis lengths;
    /// zero for a sweep with no axes).
    #[must_use]
    pub fn len(&self) -> usize {
        if self.axes.is_empty() {
            0
        } else {
            self.axes.iter().map(Axis::len).product()
        }
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generates the full cartesian design grid in row-major order
    /// (last axis fastest).
    #[must_use]
    pub fn points(&self) -> Vec<DesignPoint> {
        (0..self.len()).map(|index| self.point_at(index)).collect()
    }

    /// Materializes the single design point at `index` of the row-major
    /// enumeration, without generating the rest of the grid — the
    /// primitive adaptive search builds candidates from, where
    /// materializing a 10^6-point grid up front would defeat the point
    /// of sampling it.
    ///
    /// `sweep.points()[i]` and `sweep.point_at(i)` are identical.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn point_at(&self, index: usize) -> DesignPoint {
        assert!(
            index < self.len(),
            "point index {index} out of range for a {}-point grid",
            self.len()
        );
        // Decompose the flat index into per-axis indices, last axis
        // fastest.
        let mut remainder = index;
        let mut coords = vec![None; self.axes.len()];
        for (slot, axis) in self.axes.iter().enumerate().rev() {
            let i = remainder % axis.len();
            remainder /= axis.len();
            coords[slot] = Some((axis.name().to_owned(), axis.values()[i].clone()));
        }
        DesignPoint {
            index,
            coords: coords.into_iter().map(|c| c.expect("filled")).collect(),
        }
    }
}

/// One point of the design grid: a named value per axis.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Position in the sweep's row-major enumeration order.
    pub index: usize,
    coords: Vec<(String, AxisValue)>,
}

impl DesignPoint {
    /// The coordinate on `axis`, if the axis exists.
    #[must_use]
    pub fn get(&self, axis: &str) -> Option<&AxisValue> {
        self.coords
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, v)| v)
    }

    /// All coordinates in axis declaration order.
    #[must_use]
    pub fn coords(&self) -> &[(String, AxisValue)] {
        &self.coords
    }

    fn expect(&self, axis: &str) -> &AxisValue {
        self.get(axis)
            .unwrap_or_else(|| panic!("design point has no axis '{axis}' (point: {self})"))
    }

    /// The `u32` coordinate on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not a [`AxisValue::U32`].
    #[must_use]
    pub fn u32(&self, axis: &str) -> u32 {
        self.expect(axis)
            .as_u32()
            .unwrap_or_else(|| panic!("axis '{axis}' is not a u32 (point: {self})"))
    }

    /// The `f64` coordinate on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not a [`AxisValue::F64`].
    #[must_use]
    pub fn f64(&self, axis: &str) -> f64 {
        self.expect(axis)
            .as_f64()
            .unwrap_or_else(|| panic!("axis '{axis}' is not an f64 (point: {self})"))
    }

    /// The frame-rate coordinate on `axis` (alias of [`Self::f64`],
    /// named for the common case).
    ///
    /// # Panics
    ///
    /// See [`Self::f64`].
    #[must_use]
    pub fn fps(&self, axis: &str) -> f64 {
        self.f64(axis)
    }

    /// The process-node coordinate on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not a [`AxisValue::Node`].
    #[must_use]
    pub fn node(&self, axis: &str) -> ProcessNode {
        self.expect(axis)
            .as_node()
            .unwrap_or_else(|| panic!("axis '{axis}' is not a process node (point: {self})"))
    }

    /// The memory-kind coordinate on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not a [`AxisValue::Memory`].
    #[must_use]
    pub fn memory(&self, axis: &str) -> MemoryKind {
        self.expect(axis)
            .as_memory()
            .unwrap_or_else(|| panic!("axis '{axis}' is not a memory kind (point: {self})"))
    }

    /// The label coordinate on `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not a [`AxisValue::Text`].
    #[must_use]
    pub fn text(&self, axis: &str) -> &str {
        self.expect(axis)
            .as_text()
            .unwrap_or_else(|| panic!("axis '{axis}' is not a label (point: {self})"))
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.coords.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_row_major_with_last_axis_fastest() {
        let sweep = Sweep::new()
            .bit_widths([4, 8])
            .fps_targets([15.0, 30.0, 60.0]);
        assert_eq!(sweep.len(), 6);
        let points = sweep.points();
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].u32("bit_width"), 4);
        assert_eq!(points[0].fps("fps"), 15.0);
        assert_eq!(points[1].fps("fps"), 30.0);
        assert_eq!(points[2].fps("fps"), 60.0);
        assert_eq!(points[3].u32("bit_width"), 8);
        assert_eq!(points[3].fps("fps"), 15.0);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn point_at_matches_the_materialized_grid() {
        let sweep = Sweep::new()
            .bit_widths([4, 8, 12])
            .fps_targets([15.0, 30.0]);
        let points = sweep.points();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(&sweep.point_at(i), p);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_at_rejects_out_of_range_indices() {
        let _ = Sweep::new().fps_targets([30.0]).point_at(1);
    }

    #[test]
    fn empty_sweep_has_no_points() {
        let sweep = Sweep::new();
        assert!(sweep.is_empty());
        assert!(sweep.points().is_empty());
    }

    #[test]
    fn display_names_every_axis() {
        let sweep = Sweep::new()
            .tech_nodes([ProcessNode::N65])
            .labels("variant", ["2D-In"]);
        let p = &sweep.points()[0];
        let s = p.to_string();
        assert!(s.contains("tech_node="), "{s}");
        assert!(s.contains("variant=2D-In"), "{s}");
    }

    #[test]
    #[should_panic(expected = "duplicate axis")]
    fn duplicate_axis_rejected() {
        let _ = Sweep::new().fps_targets([30.0]).fps_targets([60.0]);
    }

    #[test]
    #[should_panic(expected = "not a u32")]
    fn typed_accessor_checks_kind() {
        let sweep = Sweep::new().fps_targets([30.0]);
        let _ = sweep.points()[0].u32("fps");
    }
}
