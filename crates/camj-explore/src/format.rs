//! Machine-readable sweep output: JSON and CSV serializers for
//! [`SweepResults`], the backend of `camj sweep --format json|csv`.
//!
//! Every row carries the point's axis coordinates (one column per
//! axis), the headline metrics of a successful estimate, and the error
//! message of a failed one. Output is deterministic and byte-stable —
//! rows come in grid order and floats print via the shortest-round-trip
//! formatter — so sweep artifacts can be diffed and committed.

use std::fmt;
use std::str::FromStr;

use serde_json::{Map, Number, Value};

use camj_core::energy::{CacheStats, EstimateReport};

use crate::axis::AxisValue;
use crate::explorer::SweepResults;
use crate::pareto::ParetoResults;
use crate::search::SearchResults;

/// The output formats `camj sweep` can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepFormat {
    /// The human-readable table (default).
    #[default]
    Human,
    /// A JSON array with one object per grid point.
    Json,
    /// A CSV table with one row per grid point.
    Csv,
}

impl FromStr for SweepFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "human" | "table" => Ok(SweepFormat::Human),
            "json" => Ok(SweepFormat::Json),
            "csv" => Ok(SweepFormat::Csv),
            other => Err(format!(
                "unknown sweep format '{other}' (expected human, json, or csv)"
            )),
        }
    }
}

impl fmt::Display for SweepFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SweepFormat::Human => "human",
            SweepFormat::Json => "json",
            SweepFormat::Csv => "csv",
        })
    }
}

/// An axis coordinate as a JSON value: numeric axes stay numbers,
/// symbolic axes (process nodes, memory kinds, labels) become strings.
fn axis_value_json(value: &AxisValue) -> Value {
    match value {
        AxisValue::U32(v) => Value::Number(Number::from_u64(u64::from(*v))),
        AxisValue::F64(v) => Value::Number(Number::from_f64(*v)),
        other => Value::String(other.to_string()),
    }
}

/// One CSV field, quoted iff it contains a delimiter, quote, or
/// newline.
fn csv_field(raw: &str) -> String {
    if raw.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_owned()
    }
}

/// Formats a float the way the JSON printer does (shortest string that
/// round-trips), so CSV and JSON agree byte-for-byte on every number.
/// Shared with [`AxisValue`]'s `Display` via
/// [`canonical_f64`](crate::axis::canonical_f64), so point-tagged error
/// messages print coordinates identically to the serializers.
fn csv_f64(v: f64) -> String {
    crate::axis::canonical_f64(v)
}

/// The optional cache-stats snapshot as a JSON value: the full
/// [`CacheStats`] object when a sweep shared a cache, `null` otherwise.
fn cache_json(cache: Option<&CacheStats>) -> Value {
    match cache {
        Some(stats) => serde_json::to_value(stats),
        None => Value::Null,
    }
}

impl SweepResults<EstimateReport> {
    /// The per-point rows as JSON objects: one key per axis, then
    /// `total_pj`, `per_pixel_pj`, `frame_ms`, and `error` (`null` on
    /// success; the metrics are `null` on failure).
    #[must_use]
    pub fn to_json_rows(&self) -> Vec<Value> {
        self.outcomes()
            .iter()
            .map(|outcome| {
                let mut row = Map::new();
                for (axis, value) in outcome.point.coords() {
                    row.insert(axis.clone(), axis_value_json(value));
                }
                match &outcome.result {
                    Ok(report) => {
                        row.insert(
                            "total_pj",
                            Value::Number(Number::from_f64(report.total().picojoules())),
                        );
                        row.insert(
                            "per_pixel_pj",
                            Value::Number(Number::from_f64(report.energy_per_pixel().picojoules())),
                        );
                        row.insert(
                            "frame_ms",
                            Value::Number(Number::from_f64(report.delay.frame_time.millis())),
                        );
                        row.insert("error", Value::Null);
                    }
                    Err(e) => {
                        row.insert("total_pj", Value::Null);
                        row.insert("per_pixel_pj", Value::Null);
                        row.insert("frame_ms", Value::Null);
                        row.insert("error", Value::String(e.message().to_owned()));
                    }
                }
                Value::Object(row)
            })
            .collect()
    }

    /// The whole sweep as a pretty-printed JSON object: the per-point
    /// rows under `"points"`, plus the shared cache's [`CacheStats`]
    /// under `"cache"` (`null` when the sweep ran uncached) so scripted
    /// consumers see hit rates without scraping the human output.
    ///
    /// # Panics
    ///
    /// Panics if a report contains a non-finite number — estimation
    /// never produces one, so this indicates a model bug.
    #[must_use]
    pub fn to_json(&self, cache: Option<&CacheStats>) -> String {
        let mut out = Map::new();
        out.insert("points", Value::Array(self.to_json_rows()));
        out.insert("cache", cache_json(cache));
        serde_json::to_string_pretty(&Value::Object(out)).expect("sweep metrics are finite")
    }

    /// The whole sweep as CSV: a header of axis names plus
    /// `total_pj,per_pixel_pj,frame_ms,error`, then one row per point
    /// in grid order. Empty cells mark inapplicable columns (metrics of
    /// failed points, the error of successful ones).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let Some(first) = self.outcomes().first() else {
            return out;
        };
        let axes: Vec<&str> = first
            .point
            .coords()
            .iter()
            .map(|(name, _)| name.as_str())
            .collect();
        for axis in &axes {
            out.push_str(&csv_field(axis));
            out.push(',');
        }
        out.push_str("total_pj,per_pixel_pj,frame_ms,error\n");
        for outcome in self.outcomes() {
            for (_, value) in outcome.point.coords() {
                let cell = match value {
                    AxisValue::F64(v) => csv_f64(*v),
                    other => other.to_string(),
                };
                out.push_str(&csv_field(&cell));
                out.push(',');
            }
            match &outcome.result {
                Ok(report) => {
                    out.push_str(&csv_f64(report.total().picojoules()));
                    out.push(',');
                    out.push_str(&csv_f64(report.energy_per_pixel().picojoules()));
                    out.push(',');
                    out.push_str(&csv_f64(report.delay.frame_time.millis()));
                    out.push(',');
                }
                Err(e) => {
                    out.push_str(",,,");
                    out.push_str(&csv_field(e.message()));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl ParetoResults {
    /// The frontier as JSON rows: one object per frontier point with a
    /// key per axis followed by a key per objective (the
    /// [`Objective::key`](crate::Objective::key) names), in grid order.
    #[must_use]
    pub fn to_json_rows(&self) -> Vec<Value> {
        let keys: Vec<String> = self
            .front()
            .objectives()
            .iter()
            .map(crate::Objective::key)
            .collect();
        self.frontier()
            .iter()
            .map(|entry| {
                let mut row = Map::new();
                for (axis, value) in entry.point.coords() {
                    row.insert(axis.clone(), axis_value_json(value));
                }
                for (key, value) in keys.iter().zip(entry.metrics.values()) {
                    row.insert(key.clone(), Value::Number(Number::from_f64(*value)));
                }
                Value::Object(row)
            })
            .collect()
    }

    /// The whole result as a pretty-printed JSON object: the objective
    /// key list, the frontier rows, the dominated/pruned/error counts
    /// that summarise the rest of the grid, the full [`PruneStats`]
    /// under `"prune"`, and the shared cache's [`CacheStats`] under
    /// `"cache"` (`null` for an uncached run). Deterministic and
    /// byte-stable (grid-ordered rows, shortest-round-trip floats), so
    /// frontier artifacts can be diffed and committed.
    ///
    /// # Panics
    ///
    /// Panics if a metric is non-finite — estimation never produces
    /// one, so this indicates a model bug.
    ///
    /// [`PruneStats`]: crate::PruneStats
    #[must_use]
    pub fn to_json(&self, cache: Option<&CacheStats>) -> String {
        let mut out = Map::new();
        out.insert(
            "objectives",
            Value::Array(
                self.front()
                    .objectives()
                    .iter()
                    .map(|o| Value::String(o.key()))
                    .collect(),
            ),
        );
        out.insert("frontier", Value::Array(self.to_json_rows()));
        let count = |n: usize| Value::Number(Number::from_u64(n as u64));
        out.insert("dominated", count(self.dominated_count()));
        out.insert("pruned", count(self.pruned().len()));
        out.insert("errors", count(self.errors().len()));
        out.insert("points", count(self.total_points()));
        out.insert("prune", serde_json::to_value(self.stats()));
        out.insert("cache", cache_json(cache));
        serde_json::to_string_pretty(&Value::Object(out)).expect("pareto metrics are finite")
    }

    /// The frontier as CSV: a header of axis names plus one column per
    /// objective key, then one row per frontier point in grid order.
    /// Empty for an empty frontier.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let Some(first) = self.frontier().first() else {
            return out;
        };
        for (axis, _) in first.point.coords() {
            out.push_str(&csv_field(axis));
            out.push(',');
        }
        // Objective keys can embed free-form stage names, so they are
        // escaped exactly like the axis-name cells above.
        let keys: Vec<String> = self
            .front()
            .objectives()
            .iter()
            .map(|o| csv_field(&o.key()))
            .collect();
        out.push_str(&keys.join(","));
        out.push('\n');
        for entry in self.frontier() {
            for (_, value) in entry.point.coords() {
                let cell = match value {
                    AxisValue::F64(v) => csv_f64(*v),
                    other => other.to_string(),
                };
                out.push_str(&csv_field(&cell));
                out.push(',');
            }
            let metrics: Vec<String> = entry.metrics.values().iter().map(|v| csv_f64(*v)).collect();
            out.push_str(&metrics.join(","));
            out.push('\n');
        }
        out
    }
}

impl SearchResults {
    /// The whole search result as a pretty-printed JSON object: the
    /// same keys as [`ParetoResults::to_json`] (objectives, frontier
    /// rows, dominated/pruned/error counts, `"prune"`, `"cache"`), plus
    /// a `"search"` object recording the trajectory — grid size,
    /// distinct evaluations (and their fraction of the grid),
    /// generations run, and how the loop terminated. Deterministic and
    /// byte-stable for a fixed seed, so search artifacts can be diffed
    /// and committed like frontier goldens.
    ///
    /// # Panics
    ///
    /// Panics if a metric is non-finite — estimation never produces
    /// one, so this indicates a model bug.
    #[must_use]
    pub fn to_json(&self, cache: Option<&CacheStats>) -> String {
        let mut out = Map::new();
        out.insert(
            "objectives",
            Value::Array(
                self.pareto()
                    .front()
                    .objectives()
                    .iter()
                    .map(|o| Value::String(o.key()))
                    .collect(),
            ),
        );
        out.insert("frontier", Value::Array(self.pareto().to_json_rows()));
        let count = |n: usize| Value::Number(Number::from_u64(n as u64));
        out.insert("dominated", count(self.pareto().dominated_count()));
        out.insert("pruned", count(self.pareto().pruned().len()));
        out.insert("errors", count(self.pareto().errors().len()));
        out.insert("points", count(self.pareto().total_points()));
        out.insert("prune", serde_json::to_value(self.pareto().stats()));
        let mut search = Map::new();
        search.insert("grid_points", count(self.grid_points()));
        search.insert("evaluations", count(self.evaluations()));
        search.insert(
            "evaluation_fraction",
            Value::Number(Number::from_f64(self.evaluation_fraction())),
        );
        search.insert("generations", count(self.generations_run()));
        search.insert("converged", Value::Bool(self.converged()));
        search.insert("exhaustive", Value::Bool(self.exhaustive()));
        search.insert("warmup_discarded", count(self.warmup_discarded()));
        out.insert("search", Value::Object(search));
        out.insert("cache", cache_json(cache));
        serde_json::to_string_pretty(&Value::Object(out)).expect("search metrics are finite")
    }

    /// The frontier as CSV, identical in shape to
    /// [`ParetoResults::to_csv`] (the search trajectory has no
    /// per-point rows; use [`Self::to_json`] for it).
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.pareto().to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parsing_round_trips() {
        for (text, format) in [
            ("human", SweepFormat::Human),
            ("json", SweepFormat::Json),
            ("csv", SweepFormat::Csv),
        ] {
            assert_eq!(text.parse::<SweepFormat>().unwrap(), format);
            assert_eq!(format.to_string(), text);
        }
        assert!("yaml".parse::<SweepFormat>().is_err());
    }

    #[test]
    fn csv_fields_escape_delimiters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
