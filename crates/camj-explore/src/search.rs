//! Adaptive frontier search: an NSGA-II-style evolutionary loop with a
//! successive-halving warm-up over the gated incremental evaluator,
//! for design grids too large to enumerate.
//!
//! The cartesian path ([`Explorer::pareto`]) evaluates every grid
//! point; on a 10^5–10^6-point grid even the incremental cache cannot
//! absorb that. [`Explorer::search`] instead spends
//! [`estimate_at_fps_gated`] calls only near the Pareto frontier:
//!
//! 1. **Warm-up (successive halving):** sample `2 × population`
//!    distinct points from the grid and run each through a *truncated*
//!    gate that stops after half the energy kernels. Partial aggregates
//!    are sound lower bounds, so ranking candidates by partial total
//!    energy (ties by grid index) is a cheap, deterministic fidelity
//!    filter; the best `population` are promoted to full evaluation —
//!    the shared [`EstimateCache`] replays the kernels that already ran
//!    — and the rest are discarded. Points a *constraint* cut during
//!    warm-up are genuinely decided and fold into the prune ledger.
//! 2. **Generations:** breed the next candidate batch from the current
//!    frontier by per-axis coordinate crossover plus mutation (a ±1
//!    neighbour step or a uniform redraw per axis), skip anything
//!    already evaluated, evaluate the batch through the same grouped,
//!    cache-shared gated path as [`Explorer::pareto`], and fold the
//!    outcomes — in grid order — into the persistent front.
//! 3. **Termination:** stop on the generation budget, on the
//!    evaluation budget, or on convergence (the frontier index set
//!    unchanged for three consecutive generations).
//!
//! # Determinism
//!
//! The contract of the cartesian path carries over unchanged: a seeded
//! run is **byte-identical across repeat runs and thread counts**.
//! Every random draw and every selection decision happens serially in
//! the orchestrator (the seeded [`rand::rngs::StdRng`] stream never
//! sees worker scheduling); only evaluation fans out, and batch
//! outcomes are folded in grid order. Metric ties on the front break
//! by lowest grid index, exactly as in [`Explorer::pareto`].
//!
//! # Exactness oracle
//!
//! Small grids stay exact: when the grid has at most
//! [`SearchSpec::exhaustive_below`] points and the budget covers it,
//! search falls back to full cartesian evaluation and the result *is*
//! the exhaustive frontier. Sampling only kicks in where enumeration
//! is genuinely intractable.
//!
//! [`estimate_at_fps_gated`]: camj_core::energy::ValidatedModel::estimate_at_fps_gated
//! [`EstimateCache`]: camj_core::energy::EstimateCache

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use camj_core::energy::{EstimateCache, ValidatedModel, ENERGY_KERNEL_COUNT};

use crate::axis::AxisValue;
use crate::explorer::{
    gated_point_eval, warm_stall, ParetoAccumulator, PointError, PointEval, PointOutcome,
};
use crate::pareto::{ParetoQuery, ParetoResults};
use crate::plan::group_points;
use crate::sweep::{DesignPoint, Sweep};
use crate::Explorer;

/// Energy kernels the warm-up fidelity gate lets run before stopping
/// (half of [`ENERGY_KERNEL_COUNT`], rounded down).
const WARMUP_KERNELS: usize = ENERGY_KERNEL_COUNT / 2;

/// Consecutive generations the frontier must stay unchanged before the
/// loop declares convergence.
const CONVERGENCE_PATIENCE: usize = 3;

/// Per-axis probability that a bred child's coordinate mutates.
const MUTATION_RATE: f64 = 0.35;

/// Attempts at breeding a not-yet-evaluated child before falling back
/// to a deterministic scan for any unevaluated grid index.
const MAX_CHILD_ATTEMPTS: usize = 12;

/// Configuration of one adaptive search run.
///
/// All knobs have defaults tuned for grids in the 10^3–10^6 range; the
/// camj-desc `sweep.search` block and the `camj search` CLI flags map
/// onto the same fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    population: usize,
    generations: usize,
    seed: u64,
    budget: Option<usize>,
    exhaustive_below: usize,
}

impl Default for SearchSpec {
    fn default() -> Self {
        Self {
            population: 64,
            generations: 24,
            seed: 0,
            budget: None,
            exhaustive_below: 256,
        }
    }
}

impl SearchSpec {
    /// The default spec (population 64, 24 generations, seed 0, no
    /// evaluation budget, exhaustive fallback below 256 points).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-generation candidate count (warm-up samples twice
    /// this many).
    ///
    /// # Panics
    ///
    /// Panics if `population` is zero.
    #[must_use]
    pub fn population(mut self, population: usize) -> Self {
        assert!(population >= 1, "search population must be at least 1");
        self.population = population;
        self
    }

    /// Sets the maximum number of breeding generations after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `generations` is zero.
    #[must_use]
    pub fn generations(mut self, generations: usize) -> Self {
        assert!(generations >= 1, "search generations must be at least 1");
        self.generations = generations;
        self
    }

    /// Sets the RNG seed. Two runs with the same seed (and the same
    /// sweep, query, and spec) produce byte-identical results.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of **distinct grid points** that may enter the
    /// gated pipeline (at any fidelity). Unset means the loop is
    /// bounded only by `generations × population` and the grid itself.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    #[must_use]
    pub fn budget(mut self, budget: usize) -> Self {
        assert!(budget >= 1, "search budget must be at least 1");
        self.budget = Some(budget);
        self
    }

    /// Sets the grid size at or below which search evaluates the full
    /// cartesian product instead of sampling (the exactness oracle;
    /// requires the budget, if any, to cover the grid).
    #[must_use]
    pub fn exhaustive_below(mut self, points: usize) -> Self {
        self.exhaustive_below = points;
        self
    }

    /// The configured per-generation candidate count.
    #[must_use]
    pub fn population_size(&self) -> usize {
        self.population
    }

    /// The configured generation cap.
    #[must_use]
    pub fn generation_cap(&self) -> usize {
        self.generations
    }

    /// The configured RNG seed.
    #[must_use]
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The configured evaluation budget, if any.
    #[must_use]
    pub fn budget_cap(&self) -> Option<usize> {
        self.budget
    }

    /// The exhaustive-fallback threshold.
    #[must_use]
    pub fn exhaustive_threshold(&self) -> usize {
        self.exhaustive_below
    }
}

/// The outcome of [`Explorer::search`]: the frontier (with the full
/// dominance/prune/error provenance of a [`ParetoResults`]) plus the
/// search trajectory — how many of the grid's points were actually
/// evaluated, how many generations ran, and how the loop terminated.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResults {
    pareto: ParetoResults,
    grid_points: usize,
    evaluations: usize,
    generations_run: usize,
    converged: bool,
    exhaustive: bool,
    warmup_discarded: usize,
}

impl SearchResults {
    /// The frontier and its provenance (dominated, pruned, errored
    /// points), exactly as [`Explorer::pareto`] reports them.
    #[must_use]
    pub fn pareto(&self) -> &ParetoResults {
        &self.pareto
    }

    /// Consumes into the underlying [`ParetoResults`].
    #[must_use]
    pub fn into_pareto(self) -> ParetoResults {
        self.pareto
    }

    /// The frontier entries, sorted by grid index.
    #[must_use]
    pub fn frontier(&self) -> &[crate::pareto::ParetoEntry] {
        self.pareto.frontier()
    }

    /// Total points in the design grid.
    #[must_use]
    pub fn grid_points(&self) -> usize {
        self.grid_points
    }

    /// Distinct grid points that entered the gated pipeline (at any
    /// fidelity) — the denominator of the search's saving is
    /// [`Self::grid_points`].
    #[must_use]
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Fraction of the grid evaluated (zero for an empty grid).
    #[must_use]
    pub fn evaluation_fraction(&self) -> f64 {
        if self.grid_points == 0 {
            0.0
        } else {
            self.evaluations as f64 / self.grid_points as f64
        }
    }

    /// Breeding generations that ran after warm-up.
    #[must_use]
    pub fn generations_run(&self) -> usize {
        self.generations_run
    }

    /// Whether the loop stopped because the frontier stabilised (rather
    /// than exhausting a budget).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Whether the run took the exhaustive cartesian path (small grid)
    /// — in which case the frontier is exact, not approximate.
    #[must_use]
    pub fn exhaustive(&self) -> bool {
        self.exhaustive
    }

    /// Warm-up survivors that ranked below the promotion cut and were
    /// discarded without a full evaluation (not decided: they are
    /// neither on the frontier nor in the prune/error ledgers).
    #[must_use]
    pub fn warmup_discarded(&self) -> usize {
        self.warmup_discarded
    }
}

impl Explorer {
    /// Adaptive multi-objective search over `sweep`'s grid: finds an
    /// approximation of the Pareto frontier [`Explorer::pareto`] would
    /// return, spending gated evaluations only near the frontier
    /// instead of everywhere (the module-level docs in `search.rs`
    /// describe the algorithm and its determinism contract).
    ///
    /// Grids of at most [`SearchSpec::exhaustive_below`] points (with a
    /// budget covering them) are evaluated exhaustively — the result
    /// then *is* the exact frontier.
    ///
    /// # Examples
    ///
    /// ```rust
    /// use camj_explore::{
    ///     EstimateCache, Explorer, Objective, ParetoQuery, PointError, SearchSpec, Sweep,
    /// };
    /// use camj_workloads::quickstart;
    ///
    /// let sweep = Sweep::new().fps_targets([15.0, 30.0, 60.0]);
    /// let query = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
    /// let cache = EstimateCache::shared();
    /// let results = Explorer::parallel().search(
    ///     &sweep,
    ///     &cache,
    ///     &query,
    ///     &SearchSpec::new().seed(7),
    ///     |point| {
    ///         quickstart::model(point.fps("fps"))
    ///             .map(camj_core::energy::CamJ::into_validated)
    ///             .map_err(PointError::new)
    ///     },
    /// );
    /// // Three points sit below the exhaustive threshold: the search
    /// // fell back to the exact cartesian path.
    /// assert!(results.exhaustive());
    /// assert_eq!(results.evaluations(), 3);
    /// assert!(!results.frontier().is_empty());
    /// ```
    pub fn search<F>(
        &self,
        sweep: &Sweep,
        cache: &Arc<EstimateCache>,
        query: &ParetoQuery,
        spec: &SearchSpec,
        build: F,
    ) -> SearchResults
    where
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
    {
        let grid = sweep.len();
        let budget_covers_grid = spec.budget.map_or(true, |b| b >= grid);
        if grid <= spec.exhaustive_below && budget_covers_grid {
            return self.search_exhaustive(sweep, cache, query, &build);
        }
        self.search_adaptive(sweep, cache, query, spec, &build)
    }

    /// The exactness oracle: full cartesian gated evaluation through
    /// the same engine, reported as a [`SearchResults`].
    fn search_exhaustive<F>(
        &self,
        sweep: &Sweep,
        cache: &Arc<EstimateCache>,
        query: &ParetoQuery,
        build: &F,
    ) -> SearchResults
    where
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
    {
        let grid = sweep.len();
        obs_core::count("search.exhaustive");
        obs_core::counter("search.evals", 0, grid as u64);
        let mut acc = ParetoAccumulator::new(query.objectives().to_vec());
        if grid > 0 {
            let outcomes = self.evaluate_batch(sweep, cache, query, build, sweep.points());
            acc.fold(outcomes);
        }
        SearchResults {
            pareto: acc.finish(),
            grid_points: grid,
            evaluations: grid,
            generations_run: 0,
            converged: false,
            exhaustive: true,
            warmup_discarded: 0,
        }
    }

    /// The evolutionary loop proper: warm-up, breed, evaluate, fold,
    /// until a budget runs out or the frontier stabilises.
    fn search_adaptive<F>(
        &self,
        sweep: &Sweep,
        cache: &Arc<EstimateCache>,
        query: &ParetoQuery,
        spec: &SearchSpec,
        build: &F,
    ) -> SearchResults
    where
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
    {
        let grid = sweep.len();
        let cap = spec.budget.unwrap_or(grid).min(grid);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut evaluated: BTreeSet<usize> = BTreeSet::new();
        let mut acc = ParetoAccumulator::new(query.objectives().to_vec());

        // --- Phase 1: successive-halving warm-up. ---
        let warmup_discarded = {
            let _span = obs_core::span("search.warmup");
            let want = (2 * spec.population).min(cap);
            let batch = sample_distinct(&mut rng, grid, &evaluated, want);
            evaluated.extend(batch.iter().copied());
            obs_core::counter("search.evals", 0, batch.len() as u64);
            let points: Vec<DesignPoint> =
                batch.iter().map(|&index| sweep.point_at(index)).collect();
            let outcomes = self.warmup_batch(sweep, cache, query, build, points);
            // Split the truncated-fidelity outcomes: constraint prunes
            // and errors are decided; survivors compete for promotion
            // on their partial-energy lower bound.
            let mut decided: Vec<PointOutcome<PointEval>> = Vec::new();
            let mut survivors: Vec<(f64, DesignPoint)> = Vec::new();
            for outcome in outcomes {
                match outcome.result {
                    Ok(WarmupEval::Survivor { partial_pj }) => {
                        survivors.push((partial_pj, outcome.point));
                    }
                    Ok(WarmupEval::Decided(eval)) => decided.push(PointOutcome {
                        point: outcome.point,
                        result: Ok(eval),
                    }),
                    Err(error) => decided.push(PointOutcome {
                        point: outcome.point,
                        result: Err(error),
                    }),
                }
            }
            acc.fold(decided);
            survivors
                .sort_by(|(a_pj, a), (b_pj, b)| a_pj.total_cmp(b_pj).then(a.index.cmp(&b.index)));
            let discarded = survivors.len().saturating_sub(spec.population);
            obs_core::counter("search.warmup_discarded", 0, discarded as u64);
            let promoted: Vec<DesignPoint> = survivors
                .into_iter()
                .take(spec.population)
                .map(|(_, point)| point)
                .collect();
            // Promotion re-runs the promoted points at full fidelity;
            // the shared cache replays the kernels warm-up already paid
            // for, so only the truncated tail is new work.
            let outcomes = self.evaluate_batch(sweep, cache, query, build, promoted);
            acc.fold(outcomes);
            discarded
        };

        // --- Phase 2: breed → evaluate → fold, generation by generation. ---
        let mut prev_frontier = frontier_indices(&acc);
        let mut stable_generations = 0;
        let mut generations_run = 0;
        let mut converged = false;
        for _ in 0..spec.generations {
            let remaining = cap - evaluated.len();
            if remaining == 0 {
                break;
            }
            let _span = obs_core::span("search.generation");
            obs_core::count("search.generations");
            let want = spec.population.min(remaining);
            let parents: Vec<Vec<usize>> = prev_frontier
                .iter()
                .map(|&index| axis_coords(sweep, index))
                .collect();
            let batch = breed(&mut rng, sweep, &parents, &evaluated, want);
            if batch.is_empty() {
                break;
            }
            evaluated.extend(batch.iter().copied());
            obs_core::counter("search.evals", 0, batch.len() as u64);
            let points: Vec<DesignPoint> =
                batch.iter().map(|&index| sweep.point_at(index)).collect();
            let outcomes = self.evaluate_batch(sweep, cache, query, build, points);
            acc.fold(outcomes);
            generations_run += 1;
            let frontier_now = frontier_indices(&acc);
            if frontier_now == prev_frontier {
                stable_generations += 1;
                if stable_generations >= CONVERGENCE_PATIENCE {
                    converged = true;
                    break;
                }
            } else {
                stable_generations = 0;
                prev_frontier = frontier_now;
            }
        }
        if converged {
            obs_core::count("search.converged");
        }

        SearchResults {
            pareto: acc.finish(),
            grid_points: grid,
            evaluations: evaluated.len(),
            generations_run,
            converged,
            exhaustive: false,
            warmup_discarded,
        }
    }

    /// Evaluates one candidate batch at full fidelity through the
    /// grouped, cache-shared gated path (the [`Explorer::pareto`]
    /// worker body), returning outcomes in grid order.
    fn evaluate_batch<F>(
        &self,
        sweep: &Sweep,
        cache: &Arc<EstimateCache>,
        query: &ParetoQuery,
        build: &F,
        points: Vec<DesignPoint>,
    ) -> Vec<PointOutcome<PointEval>>
    where
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
    {
        if points.is_empty() {
            return Vec::new();
        }
        let constraints = query.constraints();
        self.run_groups(
            group_points(sweep, points),
            cache,
            build,
            |model, pts| warm_stall(model, pts, |delay| constraints.admits_delay(delay)),
            |model, point| {
                let _span = obs_core::span("search.eval");
                gated_point_eval(model, point, query)
            },
        )
        .into_outcomes()
    }

    /// Evaluates one warm-up batch at truncated fidelity: the gate
    /// checks the query's constraints (as the full path does) and
    /// additionally stops every run after [`WARMUP_KERNELS`] kernels,
    /// yielding a partial-energy lower bound per survivor.
    fn warmup_batch<F>(
        &self,
        sweep: &Sweep,
        cache: &Arc<EstimateCache>,
        query: &ParetoQuery,
        build: &F,
        points: Vec<DesignPoint>,
    ) -> Vec<PointOutcome<WarmupEval>>
    where
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
    {
        if points.is_empty() {
            return Vec::new();
        }
        let constraints = query.constraints();
        self.run_groups(
            group_points(sweep, points),
            cache,
            build,
            |model, pts| warm_stall(model, pts, |delay| constraints.admits_delay(delay)),
            |model, point| {
                let _span = obs_core::span("search.eval");
                let fps = point
                    .get("fps")
                    .and_then(AxisValue::as_f64)
                    .unwrap_or_else(|| model.fps());
                let mut fired = None;
                let outcome = model.estimate_at_fps_gated(fps, |ctx| {
                    match constraints.first_violated(model, ctx) {
                        Some(c) => {
                            fired = Some(c);
                            false
                        }
                        None => ctx.kernels_done < WARMUP_KERNELS,
                    }
                });
                let gated = outcome.map_err(PointError::from)?;
                match fired {
                    Some(constraint) => Ok(WarmupEval::Decided(PointEval::Pruned {
                        constraint,
                        kernels_done: gated.kernels_done(),
                    })),
                    // No constraint fired: the gate's fidelity cut (or,
                    // if WARMUP_KERNELS covers every kernel, nothing)
                    // stopped the run; the partial total is the sound
                    // lower bound the halving ranks by.
                    None => Ok(WarmupEval::Survivor {
                        partial_pj: gated.partial_total().picojoules(),
                    }),
                }
            },
        )
        .into_outcomes()
    }
}

/// One warm-up outcome: a survivor carrying its partial-energy rank
/// key, or a point the constraints already decided.
enum WarmupEval {
    Survivor { partial_pj: f64 },
    Decided(PointEval),
}

/// The current frontier as a grid-index set (sorted — the frontier is
/// kept sorted by index), for convergence comparison between folds.
fn frontier_indices(acc: &ParetoAccumulator) -> Vec<usize> {
    acc.front()
        .frontier()
        .iter()
        .map(|entry| entry.point.index)
        .collect()
}

/// Decomposes a flat grid index into per-axis value indices (row-major,
/// last axis fastest) — the genome adaptive search breeds on.
fn axis_coords(sweep: &Sweep, index: usize) -> Vec<usize> {
    let mut remainder = index;
    let mut coords = vec![0usize; sweep.axes().len()];
    for (slot, axis) in sweep.axes().iter().enumerate().rev() {
        coords[slot] = remainder % axis.len();
        remainder /= axis.len();
    }
    coords
}

/// Recomposes per-axis value indices into the flat grid index.
fn flat_index(sweep: &Sweep, coords: &[usize]) -> usize {
    let mut index = 0;
    for (axis, &coord) in sweep.axes().iter().zip(coords) {
        index = index * axis.len() + coord;
    }
    index
}

/// Samples up to `want` distinct grid indices not in `taken`, by
/// rejection with a deterministic wrap-around scan fallback (so the
/// sampler terminates even when nearly the whole grid is taken).
fn sample_distinct(
    rng: &mut StdRng,
    grid: usize,
    taken: &BTreeSet<usize>,
    want: usize,
) -> BTreeSet<usize> {
    let mut batch = BTreeSet::new();
    while batch.len() < want {
        match next_unseen(rng, grid, taken, &batch) {
            Some(index) => {
                batch.insert(index);
            }
            None => break,
        }
    }
    batch
}

/// One grid index outside `taken ∪ batch`: a few rejection draws, then
/// a deterministic wrap-around scan from a random start. `None` when
/// the grid is exhausted.
fn next_unseen(
    rng: &mut StdRng,
    grid: usize,
    taken: &BTreeSet<usize>,
    batch: &BTreeSet<usize>,
) -> Option<usize> {
    let fresh = |index: usize| !taken.contains(&index) && !batch.contains(&index);
    for _ in 0..MAX_CHILD_ATTEMPTS {
        let index = rng.random_range(0..grid);
        if fresh(index) {
            return Some(index);
        }
    }
    let start = rng.random_range(0..grid);
    (0..grid)
        .map(|offset| (start + offset) % grid)
        .find(|&index| fresh(index))
}

/// Breeds up to `want` distinct, not-yet-evaluated candidate indices
/// from `parents` (frontier genomes): per-axis crossover between two
/// uniformly drawn parents, then per-axis mutation (±1 neighbour step
/// or uniform redraw). Children colliding with evaluated points retry
/// a few times, then fall back to the deterministic unseen scan so a
/// shrinking unexplored region never stalls the loop.
fn breed(
    rng: &mut StdRng,
    sweep: &Sweep,
    parents: &[Vec<usize>],
    evaluated: &BTreeSet<usize>,
    want: usize,
) -> BTreeSet<usize> {
    let grid = sweep.len();
    let fresh = |index: usize, batch: &BTreeSet<usize>| {
        !evaluated.contains(&index) && !batch.contains(&index)
    };
    let mut batch = BTreeSet::new();
    while batch.len() < want {
        let mut bred = None;
        for _ in 0..MAX_CHILD_ATTEMPTS {
            let child = make_child(rng, sweep, parents);
            let index = flat_index(sweep, &child);
            if fresh(index, &batch) {
                bred = Some(index);
                break;
            }
        }
        match bred.or_else(|| next_unseen(rng, grid, evaluated, &batch)) {
            Some(index) => {
                batch.insert(index);
            }
            None => break,
        }
    }
    batch
}

/// One child genome: crossover of two uniformly drawn parents (or a
/// clone of the single parent, or a uniform random genome when the
/// frontier is empty), then per-axis mutation.
fn make_child(rng: &mut StdRng, sweep: &Sweep, parents: &[Vec<usize>]) -> Vec<usize> {
    let axes = sweep.axes();
    let mut child: Vec<usize> = match parents.len() {
        0 => axes
            .iter()
            .map(|axis| rng.random_range(0..axis.len()))
            .collect(),
        1 => parents[0].clone(),
        n => {
            let a = &parents[rng.random_range(0..n)];
            let b = &parents[rng.random_range(0..n)];
            (0..axes.len())
                .map(|slot| {
                    if rng.random_bool(0.5) {
                        a[slot]
                    } else {
                        b[slot]
                    }
                })
                .collect()
        }
    };
    for (slot, axis) in axes.iter().enumerate() {
        if axis.len() > 1 && rng.random_bool(MUTATION_RATE) {
            if rng.random_bool(0.5) {
                // Neighbour step: ±1 along the axis, clamped.
                child[slot] = if rng.random_bool(0.5) {
                    (child[slot] + 1).min(axis.len() - 1)
                } else {
                    child[slot].saturating_sub(1)
                };
            } else {
                child[slot] = rng.random_range(0..axis.len());
            }
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;

    fn sweep3() -> Sweep {
        Sweep::new()
            .bit_widths([4, 6, 8, 10])
            .fps_targets([15.0, 30.0, 60.0])
    }

    #[test]
    fn axis_coords_round_trip_through_flat_index() {
        let sweep = sweep3();
        for index in 0..sweep.len() {
            let coords = axis_coords(&sweep, index);
            assert_eq!(flat_index(&sweep, &coords), index);
            // And the genome selects the same values point_at builds.
            let point = sweep.point_at(index);
            for (slot, axis) in sweep.axes().iter().enumerate() {
                assert_eq!(
                    point.coords()[slot].1,
                    axis.values()[coords[slot]],
                    "index {index}, axis {}",
                    axis.name()
                );
            }
        }
    }

    #[test]
    fn sampling_is_distinct_and_exhausts_the_grid() {
        let sweep = sweep3();
        let grid = sweep.len();
        let mut rng = StdRng::seed_from_u64(1);
        let taken = BTreeSet::new();
        let batch = sample_distinct(&mut rng, grid, &taken, grid + 10);
        // Asking for more than the grid holds returns exactly the grid.
        assert_eq!(batch.len(), grid);
        let mut rng = StdRng::seed_from_u64(2);
        let small = sample_distinct(&mut rng, grid, &taken, 5);
        assert_eq!(small.len(), 5);
    }

    #[test]
    fn breeding_never_returns_an_evaluated_point() {
        let sweep = sweep3();
        let mut evaluated: BTreeSet<usize> = (0..6).collect();
        let parents = vec![axis_coords(&sweep, 0), axis_coords(&sweep, 7)];
        let mut rng = StdRng::seed_from_u64(3);
        let batch = breed(&mut rng, &sweep, &parents, &evaluated, 4);
        assert_eq!(batch.len(), 4);
        for index in &batch {
            assert!(!evaluated.contains(index));
        }
        // Exhausting the rest of the grid terminates cleanly.
        evaluated.extend(0..sweep.len());
        let mut rng = StdRng::seed_from_u64(4);
        assert!(breed(&mut rng, &sweep, &parents, &evaluated, 4).is_empty());
    }

    #[test]
    fn spec_builders_validate() {
        let spec = SearchSpec::new()
            .population(8)
            .generations(5)
            .seed(42)
            .budget(100)
            .exhaustive_below(16);
        assert_eq!(spec.population_size(), 8);
        assert_eq!(spec.generation_cap(), 5);
        assert_eq!(spec.seed_value(), 42);
        assert_eq!(spec.budget_cap(), Some(100));
        assert_eq!(spec.exhaustive_threshold(), 16);
    }

    #[test]
    #[should_panic(expected = "population must be at least 1")]
    fn zero_population_rejected() {
        let _ = SearchSpec::new().population(0);
    }

    #[test]
    #[should_panic(expected = "budget must be at least 1")]
    fn zero_budget_rejected() {
        let _ = SearchSpec::new().budget(0);
    }

    #[test]
    fn small_grids_take_the_exhaustive_path() {
        let sweep = Sweep::new().fps_targets([15.0, 30.0, 60.0]);
        let query = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
        let cache = EstimateCache::shared();
        let results =
            Explorer::serial().search(&sweep, &cache, &query, &SearchSpec::new(), |point| {
                camj_workloads::quickstart::model(point.fps("fps"))
                    .map(camj_core::energy::CamJ::into_validated)
                    .map_err(PointError::new)
            });
        assert!(results.exhaustive());
        assert_eq!(results.evaluations(), 3);
        assert_eq!(results.grid_points(), 3);
        // The exhaustive search IS the cartesian pareto result.
        let exact = Explorer::serial().pareto(&sweep, &EstimateCache::shared(), &query, |point| {
            camj_workloads::quickstart::model(point.fps("fps"))
                .map(camj_core::energy::CamJ::into_validated)
                .map_err(PointError::new)
        });
        assert_eq!(results.pareto().frontier(), exact.frontier());
    }

    #[test]
    fn empty_grid_yields_an_empty_result() {
        let sweep = Sweep::new();
        let query = ParetoQuery::new(vec![Objective::TotalEnergy]);
        let cache = EstimateCache::shared();
        let results =
            Explorer::serial().search(&sweep, &cache, &query, &SearchSpec::new(), |_point| {
                unreachable!("an empty grid evaluates nothing")
            });
        assert!(results.exhaustive());
        assert_eq!(results.evaluations(), 0);
        assert!(results.frontier().is_empty());
    }

    #[test]
    fn seeded_adaptive_runs_are_identical_serial_and_parallel() {
        // A grid just above the exhaustive threshold forces the
        // evolutionary path; serial and parallel runs with the same
        // seed must agree exactly.
        let sweep = Sweep::new()
            .bit_widths([4, 6, 8, 10])
            .fps_targets([10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        let query = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
        let spec = SearchSpec::new()
            .population(4)
            .generations(3)
            .seed(11)
            .exhaustive_below(8);
        let build = |point: &DesignPoint| {
            camj_workloads::quickstart::model(point.fps("fps"))
                .map(camj_core::energy::CamJ::into_validated)
                .map_err(PointError::new)
        };
        let serial =
            Explorer::serial().search(&sweep, &EstimateCache::shared(), &query, &spec, build);
        let parallel =
            Explorer::parallel().search(&sweep, &EstimateCache::shared(), &query, &spec, build);
        assert_eq!(serial, parallel);
        assert!(!serial.exhaustive());
        assert!(serial.evaluations() <= sweep.len());
        assert!(serial.evaluations() > 0);
    }

    #[test]
    fn budget_caps_distinct_evaluations() {
        let sweep = Sweep::new()
            .bit_widths([4, 6, 8, 10])
            .fps_targets([10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        let query = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
        let spec = SearchSpec::new()
            .population(4)
            .generations(10)
            .seed(0)
            .budget(10)
            .exhaustive_below(0);
        let results = Explorer::serial().search(
            &sweep,
            &EstimateCache::shared(),
            &query,
            &spec,
            |point: &DesignPoint| {
                camj_workloads::quickstart::model(point.fps("fps"))
                    .map(camj_core::energy::CamJ::into_validated)
                    .map_err(PointError::new)
            },
        );
        assert!(results.evaluations() <= 10, "{}", results.evaluations());
    }
}
