//! # camj-explore — design-space exploration for CamJ-rs
//!
//! CamJ's headline use case (ISCA'23 Sec. 5–6) is *architectural
//! exploration*: re-estimating a sensor design dozens-to-hundreds of
//! times while sweeping analog precision, technology node, memory
//! technology, and the frame-rate target. This crate turns that loop
//! into a declarative, parallel pipeline over the staged estimator in
//! [`camj_core::energy::ValidatedModel`]:
//!
//! 1. **Declare axes** with [`Sweep`]: each axis is a named list of
//!    [`AxisValue`]s (bit-widths, [`ProcessNode`]s, [`MemoryKind`]s,
//!    FPS targets, free-form labels …).
//! 2. **Generate the grid**: [`Sweep::points`] takes the cartesian
//!    product, producing one [`DesignPoint`] per combination in a
//!    stable row-major order.
//! 3. **Evaluate in parallel** with [`Explorer::run`]: your closure
//!    builds and estimates a model per point; the explorer fans the
//!    grid out across cores (rayon), captures each point's
//!    [`Result`] individually — one infeasible design surfaces as an
//!    error entry without poisoning its neighbours — and returns
//!    [`SweepResults`] in grid order regardless of completion order,
//!    so a parallel sweep is bit-identical to a serial one.
//!
//! For the common frame-rate axis, [`Explorer::sweep_fps`] goes through
//! the staged pipeline's cached artifacts: checks, routing, and the
//! elastic cycle-level simulation run **once** for the design, and only
//! the FPS-dependent stages (delay solve, stall check, energy) re-run
//! per point.
//!
//! Multi-axis grids go further through the **incremental engine**:
//! [`Explorer::sweep_incremental`] plans the grid with [`SweepPlan`] —
//! each axis declares which pipeline artifacts it can invalidate
//! ([`axis_impact`]), the most-invalidating axes vary slowest, and
//! points sharing every model-rebuilding coordinate build **one**
//! model — then threads a content-addressed [`EstimateCache`] through
//! every point, so elastic simulations, stall verdicts, and energy
//! kernels are computed once per distinct fingerprint instead of once
//! per point. Results stay byte-identical to a cold sweep, in grid
//! order, serial or parallel; `cache.stats()` reports the
//! [`CacheStats`] (hits/misses/bytes). Machine-readable output comes
//! from the [`SweepResults`] serializers
//! ([`SweepResults::to_json`] / [`SweepResults::to_csv`]).
//!
//! On top of the incremental engine sits **multi-objective Pareto
//! exploration** ([`Explorer::pareto`]): a [`ParetoQuery`] names the
//! [`Objective`]s to minimise (total energy, a per-category or
//! per-stage energy split, digital latency, peak power density, or
//! signal quality — output/per-stage noise from the analytic noise
//! budget, so energy can be traded against SNR) and
//! the feasibility [`Constraint`]s to enforce (a thermal power-density
//! budget, a latency budget, an energy budget). Constraints prune
//! *during* estimation — a point whose partial energy already blows a
//! budget skips its remaining energy kernels entirely, without
//! changing a single bit of any surviving point — and completed points
//! stream through the [`ParetoFront`] dominance filter into
//! [`ParetoResults`]: the frontier, dominated-point provenance, pruned
//! points with the constraint that cut them, and [`PruneStats`]
//! kernel-skip accounting. The `camj pareto` CLI subcommand and the
//! frontier serializers ([`ParetoResults::to_json`] /
//! [`ParetoResults::to_csv`]) expose the same machinery declaratively.
//!
//! When the grid outgrows enumeration entirely (10^5–10^6 points),
//! **adaptive frontier search** ([`Explorer::search`]) approximates the
//! same frontier with a fraction of the gated evaluations: a
//! successive-halving warm-up ranks a random sample on truncated
//! (half-kernel) partial-energy lower bounds, promotes the best to full
//! evaluation, and an NSGA-II-style loop then breeds candidate batches
//! from the frontier by axis-coordinate crossover/mutation until a
//! generation budget, an evaluation [`SearchSpec::budget`], or frontier
//! convergence stops it. Seeded runs are byte-identical across repeat
//! runs and thread counts, and grids at or below
//! [`SearchSpec::exhaustive_below`] fall back to exact cartesian
//! evaluation, so the cartesian path stays the exactness oracle. The
//! `camj search` subcommand and [`SearchResults`] serializers expose
//! it declaratively.
//!
//! # Example
//!
//! ```
//! use camj_explore::{Explorer, PointError, Sweep};
//! use camj_workloads::quickstart;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Axes: frame-rate target × (here) a single-variant placeholder.
//! let sweep = Sweep::new()
//!     .fps_targets([15.0, 30.0, 60.0])
//!     .labels("sensor", ["fig5"]);
//! assert_eq!(sweep.len(), 3);
//!
//! let results = Explorer::parallel().run(&sweep, |point| {
//!     let model = quickstart::model(point.fps("fps")).map_err(PointError::new)?;
//!     model.estimate().map_err(PointError::from)
//! });
//!
//! assert_eq!(results.len(), 3);
//! assert_eq!(results.error_count(), 0);
//! for (point, report) in results.successes() {
//!     println!("{point}: {:.1} nJ", report.total().nanojoules());
//! }
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod axis;
mod explorer;
mod format;
mod objective;
mod pareto;
mod plan;
mod prune;
mod search;
mod sweep;

pub use axis::{canonical_f64, Axis, AxisValue};
pub use explorer::{ExecutionMode, Explorer, PointError, PointOutcome, SweepResults};
pub use format::SweepFormat;
pub use objective::{MetricVector, Objective};
pub use pareto::{
    DominatedEntry, ParetoEntry, ParetoFront, ParetoQuery, ParetoResults, PrunedPoint,
};
pub use plan::{axis_impact, axis_requires_rebuild, KernelSet, SweepPlan};
pub use prune::{Constraint, ConstraintSet, PruneStats};
pub use search::{SearchResults, SearchSpec};
pub use sweep::{DesignPoint, Sweep};

// Re-exported for axis construction without extra imports downstream.
pub use camj_digital::memory::MemoryKind;
pub use camj_tech::node::ProcessNode;

// Re-exported so sweep drivers can create and inspect the cross-point
// cache without importing camj-core directly.
pub use camj_core::energy::{CacheStats, EstimateCache};
