//! Objectives and metric vectors: what multi-objective exploration
//! minimises.
//!
//! The paper's findings come from comparing designs along several axes
//! at once — per-frame energy, where that energy goes (Fig. 9's
//! category bars, Fig. 13's per-stage split), the digital latency a
//! design needs, and the per-layer power density that decides thermal
//! feasibility (Table 3). An [`Objective`] names one such quantity;
//! [`MetricVector`] evaluates a fixed objective list against an
//! [`EstimateReport`], producing the coordinates the
//! [`ParetoFront`](crate::ParetoFront) dominance filter compares.
//!
//! Every objective is **minimised**; all extracted values are finite
//! and non-negative by construction of the estimator.

use std::fmt;
use std::str::FromStr;

use camj_core::energy::{EnergyCategory, EstimateReport};
use camj_core::functional::TaskMetrics;

/// Upper bound on `mc_snr:<samples>`: past ~1k seeds the standard
/// error of the mean shrinks slower than the exploration can afford.
pub const MAX_MC_SAMPLES: u32 = 1024;

/// One task-level accuracy figure of the functional pipeline, measured
/// at the mapped DAG's sink against the noise-free reference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccuracyMetric {
    /// Mean squared error over the sink tensor.
    Mse,
    /// Root-mean-square error over the sink tensor.
    Rmse,
    /// Distance between intensity-weighted centroids, normalized to
    /// the frame diagonal — the gaze-estimation proxy for Ed-Gaze.
    Centroid,
}

impl AccuracyMetric {
    /// The grammar token after `accuracy:`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AccuracyMetric::Mse => "mse",
            AccuracyMetric::Rmse => "rmse",
            AccuracyMetric::Centroid => "centroid",
        }
    }

    /// Reads this figure out of a measured [`TaskMetrics`].
    #[must_use]
    pub fn of(self, metrics: &TaskMetrics) -> f64 {
        match self {
            AccuracyMetric::Mse => metrics.mse,
            AccuracyMetric::Rmse => metrics.rmse,
            AccuracyMetric::Centroid => metrics.centroid_err,
        }
    }
}

/// One quantity a multi-objective exploration minimises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Objective {
    /// Total per-frame energy in pJ (Eq. 1).
    TotalEnergy,
    /// Per-frame energy of one breakdown category in pJ — the
    /// per-category split of Fig. 9 (e.g. `MEM-D` for digital memory).
    CategoryEnergy(EnergyCategory),
    /// Per-frame energy attributed to one algorithm stage in pJ — the
    /// per-stage split of Fig. 13. Items without a stage attribution
    /// (readout, communication) are not counted.
    StageEnergy(String),
    /// Digital-domain latency `T_D` in ms — the delay a design *needs*
    /// out of its frame budget. Lower latency leaves more time for the
    /// analog pipeline (Sec. 4.1).
    Delay,
    /// Worst per-layer power density in mW/mm² (Sec. 6.2, Table 3).
    /// Designs with no defined layer area report 0 (no thermal
    /// concern to minimise).
    PowerDensity,
    /// Signal quality: the analytic output noise RMS of the analog
    /// chain, as a fraction of full scale (from the noise budget every
    /// estimate carries). Minimising it maximises SNR — every point of
    /// one exploration is quoted at the same stimulus level, so the
    /// ordering is exactly the SNR ordering reversed. Noise-free
    /// designs report 0.
    Snr,
    /// Signal quality of one chain stage: the noise RMS a named analog
    /// unit *adds* (its sources plus any ADC quantization), fraction
    /// of full scale. Units absent from the chain report 0.
    StageNoise(String),
    /// Monte-Carlo signal quality: mean output noise RMS (fraction of
    /// full scale) over the given number of seeded frame simulations
    /// (`mc_snr:<samples>`, 1..=1024 seeds `0..samples`, quoted at the
    /// same mid-scale stimulus as the analytic `snr`). Unlike `snr`,
    /// which reads one closed-form estimate, this measures the chain —
    /// quantization, clipping, and all. Minimising it maximises the
    /// measured SNR. Evaluating it needs the point's model, not just
    /// its estimate report, so [`Objective::extract`] does not support
    /// it — `Explorer::pareto` measures it per point.
    McSnr(u32),
    /// Task-level accuracy: one figure of the functional pipeline's
    /// [`TaskMetrics`] (`accuracy:mse`, `accuracy:rmse`,
    /// `accuracy:centroid`), measured by pushing the model's attached
    /// stimulus — typically a real image from the description's
    /// `stimulus` block — through the analog chain, the ADC, and the
    /// mapped digital DAG, then comparing the sink tensor against the
    /// noise-free reference. Like `mc_snr`, it needs the point's model
    /// (seed 0), so [`Objective::extract`] does not support it.
    Accuracy(AccuracyMetric),
}

impl Objective {
    /// The column key this objective uses in JSON and CSV exports.
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            Objective::TotalEnergy => "total_pj".to_owned(),
            Objective::CategoryEnergy(c) => {
                format!("{}_pj", c.label().to_ascii_lowercase().replace('-', "_"))
            }
            Objective::StageEnergy(stage) => format!("stage_{stage}_pj"),
            Objective::Delay => "digital_latency_ms".to_owned(),
            Objective::PowerDensity => "peak_density_mw_per_mm2".to_owned(),
            Objective::Snr => "output_noise_rms".to_owned(),
            Objective::StageNoise(unit) => format!("noise_{unit}_rms"),
            Objective::McSnr(samples) => format!("mc{samples}_noise_rms"),
            Objective::Accuracy(metric) => format!("accuracy_{}", metric.label()),
        }
    }

    /// The Monte-Carlo sample count when this objective needs seeded
    /// frame simulations (and therefore the point's model) to evaluate.
    #[must_use]
    pub fn mc_samples(&self) -> Option<u32> {
        match self {
            Objective::McSnr(samples) => Some(*samples),
            _ => None,
        }
    }

    /// The task-accuracy figure when this objective needs the
    /// functional pipeline (and therefore the point's model) to
    /// evaluate.
    #[must_use]
    pub fn accuracy_metric(&self) -> Option<AccuracyMetric> {
        match self {
            Objective::Accuracy(metric) => Some(*metric),
            _ => None,
        }
    }

    /// Extracts this objective's value from a completed estimate.
    ///
    /// # Panics
    ///
    /// Panics for [`Objective::McSnr`], which cannot be answered from a
    /// report alone — use `MetricVector::measure_with_mc` with
    /// model-backed values (as `Explorer::pareto` does).
    #[must_use]
    pub fn extract(&self, report: &EstimateReport) -> f64 {
        match self {
            Objective::TotalEnergy => report.total().picojoules(),
            Objective::CategoryEnergy(c) => report.breakdown.category_total(*c).picojoules(),
            Objective::StageEnergy(stage) => report
                .breakdown
                .items()
                .iter()
                .filter(|i| i.stage.as_deref() == Some(stage.as_str()))
                .map(|i| i.energy.picojoules())
                .sum(),
            Objective::Delay => report.digital_latency().millis(),
            Objective::PowerDensity => report.peak_power_density_mw_per_mm2().unwrap_or(0.0),
            Objective::Snr => report
                .noise
                .as_ref()
                .map_or(0.0, |noise| noise.output_noise_rms),
            Objective::StageNoise(unit) => report
                .noise
                .as_ref()
                .and_then(|noise| noise.stage(unit))
                .map_or(0.0, |stage| stage.added_noise_rms),
            Objective::McSnr(samples) => panic!(
                "mc_snr:{samples} needs Monte-Carlo frame simulation; \
                 measure it through MetricVector::measure_with_mc"
            ),
            Objective::Accuracy(metric) => panic!(
                "accuracy:{} needs the functional pipeline; \
                 measure it through MetricVector::measure_with_mc",
                metric.label()
            ),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::TotalEnergy => f.write_str("total_energy"),
            Objective::CategoryEnergy(c) => write!(f, "category:{}", c.label()),
            Objective::StageEnergy(stage) => write!(f, "stage:{stage}"),
            Objective::Delay => f.write_str("delay"),
            Objective::PowerDensity => f.write_str("power_density"),
            Objective::Snr => f.write_str("snr"),
            Objective::StageNoise(unit) => write!(f, "noise:{unit}"),
            Objective::McSnr(samples) => write!(f, "mc_snr:{samples}"),
            Objective::Accuracy(metric) => write!(f, "accuracy:{}", metric.label()),
        }
    }
}

impl FromStr for Objective {
    type Err = String;

    /// Parses the objective grammar shared by `camj pareto
    /// --objectives` and the description format's `sweep.objectives`
    /// list: `total_energy`, `delay`, `power_density`, `snr`,
    /// `category:<LABEL>` (a Fig. 9 category label such as `MEM-D`,
    /// case-insensitive), `stage:<name>` (an algorithm stage,
    /// case-sensitive), `noise:<unit>` (an analog hardware unit,
    /// case-sensitive), `mc_snr:<samples>` (a Monte-Carlo sample
    /// count in `1..=1024`), or `accuracy:<metric>` (a task-level
    /// figure of the functional pipeline: `mse`, `rmse`, or
    /// `centroid`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "total_energy" => return Ok(Objective::TotalEnergy),
            "delay" => return Ok(Objective::Delay),
            "power_density" => return Ok(Objective::PowerDensity),
            "snr" => return Ok(Objective::Snr),
            _ => {}
        }
        if let Some(label) = s.strip_prefix("category:") {
            return EnergyCategory::ALL
                .iter()
                .find(|c| c.label().eq_ignore_ascii_case(label))
                .map(|c| Objective::CategoryEnergy(*c))
                .ok_or_else(|| {
                    format!(
                        "unknown energy category '{label}' (expected one of {})",
                        EnergyCategory::ALL.map(|c| c.label()).join(", ")
                    )
                });
        }
        if let Some(stage) = s.strip_prefix("stage:") {
            if stage.is_empty() {
                return Err("stage objective needs a stage name after 'stage:'".to_owned());
            }
            return Ok(Objective::StageEnergy(stage.to_owned()));
        }
        if let Some(unit) = s.strip_prefix("noise:") {
            if unit.is_empty() {
                return Err("noise objective needs a unit name after 'noise:'".to_owned());
            }
            return Ok(Objective::StageNoise(unit.to_owned()));
        }
        if let Some(samples) = s.strip_prefix("mc_snr:") {
            let samples: u32 = samples.parse().map_err(|_| {
                format!("mc_snr needs an unsigned sample count after 'mc_snr:', got '{samples}'")
            })?;
            if !(1..=MAX_MC_SAMPLES).contains(&samples) {
                return Err(format!(
                    "mc_snr sample count must be in 1..={MAX_MC_SAMPLES}, got {samples}"
                ));
            }
            return Ok(Objective::McSnr(samples));
        }
        if let Some(metric) = s.strip_prefix("accuracy:") {
            return [
                AccuracyMetric::Mse,
                AccuracyMetric::Rmse,
                AccuracyMetric::Centroid,
            ]
            .into_iter()
            .find(|m| m.label() == metric)
            .map(Objective::Accuracy)
            .ok_or_else(|| {
                format!(
                    "unknown accuracy metric '{metric}' (expected accuracy:mse, \
                     accuracy:rmse, or accuracy:centroid)"
                )
            });
        }
        Err(format!(
            "unknown objective '{s}' (expected total_energy, delay, power_density, snr, \
             category:<LABEL>, stage:<name>, noise:<unit>, mc_snr:<samples>, or \
             accuracy:<metric>)"
        ))
    }
}

/// The coordinates of one design point in objective space: one value
/// per objective, in the query's objective order. All values are
/// minimised.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVector {
    values: Vec<f64>,
}

impl MetricVector {
    /// Evaluates `objectives` against a completed estimate.
    ///
    /// # Panics
    ///
    /// Panics when `objectives` contains [`Objective::McSnr`] — that
    /// coordinate needs model-backed Monte-Carlo values; use
    /// `Self::measure_with_mc`.
    #[must_use]
    pub fn measure(objectives: &[Objective], report: &EstimateReport) -> Self {
        Self {
            values: objectives.iter().map(|o| o.extract(report)).collect(),
        }
    }

    /// Evaluates `objectives` against a completed estimate plus
    /// model-backed results: `mc` maps each distinct `mc_snr` sample
    /// count to its measured mean output noise RMS, and `accuracy`
    /// carries the functional pipeline's task metrics when any
    /// `accuracy:<metric>` objective is present (the caller — in
    /// practice `Explorer::pareto` — runs the frame simulations).
    ///
    /// # Panics
    ///
    /// Panics when an [`Objective::McSnr`] sample count is missing
    /// from `mc`, or an [`Objective::Accuracy`] objective is present
    /// with `accuracy` absent (the caller failed to simulate it).
    #[must_use]
    pub(crate) fn measure_with_mc(
        objectives: &[Objective],
        report: &EstimateReport,
        mc: &std::collections::BTreeMap<u32, f64>,
        accuracy: Option<&TaskMetrics>,
    ) -> Self {
        Self {
            values: objectives
                .iter()
                .map(|o| {
                    if let Some(samples) = o.mc_samples() {
                        return *mc
                            .get(&samples)
                            .unwrap_or_else(|| panic!("mc_snr:{samples} was not simulated"));
                    }
                    if let Some(metric) = o.accuracy_metric() {
                        return metric.of(accuracy.unwrap_or_else(|| {
                            panic!(
                                "accuracy:{} needs the functional pipeline, \
                                 which was not simulated",
                                metric.label()
                            )
                        }));
                    }
                    o.extract(report)
                })
                .collect(),
        }
    }

    /// A vector from raw values (for synthetic fronts and tests); must
    /// match the owning front's objective count and contain no NaN.
    #[must_use]
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "metric values must not be NaN"
        );
        Self { values }
    }

    /// The coordinate values, in objective order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of coordinates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has no coordinates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Pareto dominance for minimisation: `self` dominates `other` iff
    /// it is no worse on every coordinate and strictly better on at
    /// least one. Equal vectors do not dominate each other.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths (they belong to
    /// different objective sets).
    #[must_use]
    pub fn dominates(&self, other: &MetricVector) -> bool {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "metric vectors must share one objective set"
        );
        let mut strictly_better = false;
        for (a, b) in self.values.iter().zip(&other.values) {
            if a > b {
                return false;
            }
            if a < b {
                strictly_better = true;
            }
        }
        strictly_better
    }

    /// Exact coordinate-wise equality (bitwise on each value).
    #[must_use]
    pub fn same_as(&self, other: &MetricVector) -> bool {
        self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_grammar_round_trips() {
        for text in [
            "total_energy",
            "delay",
            "power_density",
            "snr",
            "category:MEM-D",
            "stage:RoiDnn",
            "noise:PixelArray",
            "mc_snr:16",
            "accuracy:mse",
            "accuracy:rmse",
            "accuracy:centroid",
        ] {
            let objective: Objective = text.parse().unwrap();
            assert_eq!(objective.to_string(), text);
            assert_eq!(
                objective.to_string().parse::<Objective>().unwrap(),
                objective
            );
        }
    }

    #[test]
    fn category_labels_parse_case_insensitively() {
        assert_eq!(
            "category:mem-d".parse::<Objective>().unwrap(),
            Objective::CategoryEnergy(EnergyCategory::DigitalMemory)
        );
    }

    #[test]
    fn bad_objectives_are_reported() {
        assert!("category:BOGUS".parse::<Objective>().is_err());
        assert!("stage:".parse::<Objective>().is_err());
        assert!("noise:".parse::<Objective>().is_err());
        assert!("energy".parse::<Objective>().is_err());
        assert!("mc_snr:".parse::<Objective>().is_err());
        assert!("mc_snr:0".parse::<Objective>().is_err());
        assert!("mc_snr:1025".parse::<Objective>().is_err());
        assert!("mc_snr:-4".parse::<Objective>().is_err());
        assert!("accuracy:".parse::<Objective>().is_err());
        assert!("accuracy:psnr".parse::<Objective>().is_err());
        let message = "accuracy:MSE".parse::<Objective>().unwrap_err();
        assert!(message.contains("accuracy:centroid"), "{message}");
    }

    #[test]
    fn accuracy_metrics_read_task_metrics() {
        let metrics = TaskMetrics {
            mse: 0.04,
            rmse: 0.2,
            psnr_db: Some(13.979_400_086_720_377),
            centroid_err: 0.01,
        };
        assert!((AccuracyMetric::Mse.of(&metrics) - 0.04).abs() < 1e-15);
        assert!((AccuracyMetric::Rmse.of(&metrics) - 0.2).abs() < 1e-15);
        assert!((AccuracyMetric::Centroid.of(&metrics) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn keys_are_column_safe() {
        assert_eq!(Objective::TotalEnergy.key(), "total_pj");
        assert_eq!(
            Objective::CategoryEnergy(EnergyCategory::DigitalMemory).key(),
            "mem_d_pj"
        );
        assert_eq!(
            Objective::StageEnergy("RoiDnn".into()).key(),
            "stage_RoiDnn_pj"
        );
        assert_eq!(Objective::Delay.key(), "digital_latency_ms");
        assert_eq!(Objective::PowerDensity.key(), "peak_density_mw_per_mm2");
        assert_eq!(Objective::Snr.key(), "output_noise_rms");
        assert_eq!(
            Objective::StageNoise("ADCArray".into()).key(),
            "noise_ADCArray_rms"
        );
        assert_eq!(
            Objective::Accuracy(AccuracyMetric::Centroid).key(),
            "accuracy_centroid"
        );
    }

    #[test]
    fn dominance_is_strict_somewhere_and_weak_everywhere() {
        let a = MetricVector::from_values(vec![1.0, 2.0]);
        let b = MetricVector::from_values(vec![1.0, 3.0]);
        let c = MetricVector::from_values(vec![0.5, 4.0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c), "trade-off points do not dominate");
        assert!(!c.dominates(&a));
        assert!(!a.dominates(&a), "equal vectors never dominate");
        assert!(a.same_as(&a));
        assert!(!a.same_as(&b));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_metrics_are_rejected() {
        let _ = MetricVector::from_values(vec![f64::NAN]);
    }
}
