//! The Pareto frontier: an incremental dominance filter over design
//! points in objective space.
//!
//! [`ParetoFront`] maintains the set of non-dominated points as points
//! stream in (insert-time pruning: a dominated insert is rejected
//! immediately, a dominating insert evicts what it beats), with two
//! determinism guarantees:
//!
//! * **insert order never changes the resulting frontier set** — the
//!   frontier is a pure function of the inserted point set (ties
//!   between metric-identical points always resolve to the lowest grid
//!   index), and
//! * **dominated points keep their provenance** — each eviction or
//!   rejection records the point, its metrics, and the grid index of a
//!   point that dominates it, so a report can explain *why* a design
//!   is off the frontier.
//!
//! # Examples
//!
//! ```rust
//! use camj_explore::{MetricVector, Objective, ParetoFront, Sweep};
//!
//! // Two designs, two objectives (energy pJ, peak density mW/mm²).
//! let sweep = Sweep::new().labels("design", ["A", "B", "C"]);
//! let points = sweep.points();
//! let mut front = ParetoFront::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
//! front.insert(points[0].clone(), MetricVector::from_values(vec![100.0, 2.0]));
//! front.insert(points[1].clone(), MetricVector::from_values(vec![80.0, 3.0]));
//! front.insert(points[2].clone(), MetricVector::from_values(vec![90.0, 3.5]));
//! // A and B trade off; C is dominated by B (worse on both axes).
//! assert_eq!(front.len(), 2);
//! assert_eq!(front.dominated().len(), 1);
//! assert_eq!(front.dominated()[0].dominated_by, points[1].index);
//! ```

use crate::explorer::PointError;
use crate::objective::{MetricVector, Objective};
use crate::prune::{Constraint, ConstraintSet, PruneStats};
use crate::sweep::DesignPoint;

/// One point on the frontier: the design and its objective-space
/// coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    /// The design point.
    pub point: DesignPoint,
    /// Its metric vector, in the front's objective order.
    pub metrics: MetricVector,
}

/// A point that fell off (or never reached) the frontier, with
/// provenance: the grid index of a frontier point that dominates it.
///
/// The witness always sits on the **current** frontier: when a witness
/// is itself evicted later, every entry pointing at it is remapped to
/// the evictor (dominance is transitive, so the evictor dominates
/// those entries too). When several frontier points dominate the same
/// design, `dominated_by` records one of them — *a* witness, not a
/// canonical one; which witness is recorded may depend on insert order
/// even though the frontier set itself does not.
#[derive(Debug, Clone, PartialEq)]
pub struct DominatedEntry {
    /// The dominated design point.
    pub point: DesignPoint,
    /// Its metric vector.
    pub metrics: MetricVector,
    /// Grid index ([`DesignPoint::index`]) of a dominating point.
    pub dominated_by: usize,
}

/// An incremental Pareto-dominance filter (all objectives minimised).
///
/// Two determinism guarantees hold: the frontier **set** is a pure
/// function of the inserted points (insert order never changes it;
/// metric-identical ties resolve to the lowest grid index), and every
/// dominated point keeps provenance — the grid index of a point that
/// beats it. [`Explorer::pareto`](crate::Explorer::pareto) feeds one
/// of these from an evaluated sweep, but the filter also works
/// stand-alone:
///
/// ```rust
/// use camj_explore::{MetricVector, Objective, ParetoFront, Sweep};
///
/// let points = Sweep::new().fps_targets([15.0, 30.0]).points();
/// let mut front = ParetoFront::new(vec![Objective::TotalEnergy, Objective::Delay]);
/// front.insert(points[0].clone(), MetricVector::from_values(vec![10.0, 2.0]));
/// front.insert(points[1].clone(), MetricVector::from_values(vec![9.0, 1.0]));
/// // The second point dominates the first on both axes.
/// assert_eq!(front.len(), 1);
/// assert_eq!(front.frontier()[0].point.index, 1);
/// assert_eq!(front.dominated()[0].dominated_by, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    objectives: Vec<Objective>,
    /// Non-dominated entries, kept sorted by grid index.
    frontier: Vec<ParetoEntry>,
    /// Every point rejected or evicted so far, in the order it was
    /// decided, with a dominating witness each.
    dominated: Vec<DominatedEntry>,
}

impl ParetoFront {
    /// An empty front over `objectives`.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty — a zero-dimensional frontier
    /// would declare every point equal to every other.
    #[must_use]
    pub fn new(objectives: Vec<Objective>) -> Self {
        assert!(
            !objectives.is_empty(),
            "a Pareto front needs at least one objective"
        );
        Self {
            objectives,
            frontier: Vec::new(),
            dominated: Vec::new(),
        }
    }

    /// The objective list, in coordinate order.
    #[must_use]
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Inserts a point, updating the frontier. Returns `true` when the
    /// point joined the frontier, `false` when it was dominated (and
    /// recorded under [`Self::dominated`]).
    ///
    /// # Panics
    ///
    /// Panics if `metrics` has a different coordinate count than the
    /// front's objective list.
    pub fn insert(&mut self, point: DesignPoint, metrics: MetricVector) -> bool {
        assert_eq!(
            metrics.len(),
            self.objectives.len(),
            "metric vector must have one coordinate per objective"
        );
        // Metric-identical twin: the lower grid index keeps the frontier
        // slot regardless of arrival order (stable tie-breaking).
        if let Some(slot) = self
            .frontier
            .iter()
            .position(|e| e.metrics.same_as(&metrics))
        {
            let twin = &self.frontier[slot];
            if point.index < twin.point.index {
                let evicted = std::mem::replace(
                    &mut self.frontier[slot],
                    ParetoEntry {
                        point,
                        metrics: metrics.clone(),
                    },
                );
                let winner = self.frontier[slot].point.index;
                self.remap_witness(evicted.point.index, winner);
                self.dominated.push(DominatedEntry {
                    point: evicted.point,
                    metrics: evicted.metrics,
                    dominated_by: winner,
                });
                self.frontier.sort_by_key(|e| e.point.index);
                return true;
            }
            self.dominated.push(DominatedEntry {
                point,
                metrics,
                dominated_by: twin.point.index,
            });
            return false;
        }
        // Dominated by an incumbent: reject with provenance. (A point
        // cannot be both dominated by one incumbent and dominate
        // another — that would make the dominator dominate the other
        // incumbent too, contradicting both being on the frontier.)
        if let Some(dominator) = self.frontier.iter().find(|e| e.metrics.dominates(&metrics)) {
            self.dominated.push(DominatedEntry {
                point,
                metrics,
                dominated_by: dominator.point.index,
            });
            return false;
        }
        // Evict everything the new point dominates, then join.
        let new_index = point.index;
        let mut kept = Vec::with_capacity(self.frontier.len() + 1);
        let mut evicted = Vec::new();
        for entry in self.frontier.drain(..) {
            if metrics.dominates(&entry.metrics) {
                evicted.push(entry);
            } else {
                kept.push(entry);
            }
        }
        for entry in evicted {
            // Keep provenance anchored to the frontier: anything the
            // evicted point dominated is transitively dominated by its
            // evictor.
            self.remap_witness(entry.point.index, new_index);
            self.dominated.push(DominatedEntry {
                point: entry.point,
                metrics: entry.metrics,
                dominated_by: new_index,
            });
        }
        kept.push(ParetoEntry { point, metrics });
        kept.sort_by_key(|e| e.point.index);
        self.frontier = kept;
        true
    }

    /// Rewrites every dominated entry whose witness is `from` (just
    /// evicted) to point at `to` (the evictor), preserving the
    /// invariant that `dominated_by` always names a current frontier
    /// point.
    fn remap_witness(&mut self, from: usize, to: usize) {
        for entry in &mut self.dominated {
            if entry.dominated_by == from {
                entry.dominated_by = to;
            }
        }
    }

    /// The frontier entries, sorted by grid index.
    #[must_use]
    pub fn frontier(&self) -> &[ParetoEntry] {
        &self.frontier
    }

    /// Every dominated point decided so far, with provenance, in
    /// decision order.
    #[must_use]
    pub fn dominated(&self) -> &[DominatedEntry] {
        &self.dominated
    }

    /// Number of frontier points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frontier.len()
    }

    /// Whether the frontier is empty (no successful insert yet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frontier.is_empty()
    }
}

/// A multi-objective exploration query: what to minimise and which
/// feasibility budgets to enforce (see [`Explorer::pareto`]).
///
/// [`Explorer::pareto`]: crate::Explorer::pareto
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoQuery {
    objectives: Vec<Objective>,
    constraints: ConstraintSet,
}

impl ParetoQuery {
    /// A query minimising `objectives`, initially unconstrained.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty.
    #[must_use]
    pub fn new(objectives: Vec<Objective>) -> Self {
        assert!(
            !objectives.is_empty(),
            "a Pareto query needs at least one objective"
        );
        Self {
            objectives,
            constraints: ConstraintSet::new(),
        }
    }

    /// Adds a feasibility constraint (builder-style).
    #[must_use]
    pub fn constrain(mut self, constraint: Constraint) -> Self {
        self.constraints = self.constraints.with(constraint);
        self
    }

    /// The objectives, in coordinate order.
    #[must_use]
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// The constraint set.
    #[must_use]
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }
}

/// A point cut by a constraint before completing its estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedPoint {
    /// The pruned design point.
    pub point: DesignPoint,
    /// The first constraint the gate saw violated.
    pub constraint: Constraint,
    /// Energy kernels that ran before the cut (the remaining
    /// `ENERGY_KERNEL_COUNT - kernels_done` were skipped).
    ///
    /// [`ENERGY_KERNEL_COUNT`]: camj_core::energy::ENERGY_KERNEL_COUNT
    pub kernels_done: usize,
}

/// The outcome of [`Explorer::pareto`]: the frontier plus everything a
/// report needs to explain the rest of the grid — dominated points with
/// provenance, constraint-pruned points, per-point errors, and the
/// kernel-skip accounting.
///
/// [`Explorer::pareto`]: crate::Explorer::pareto
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoResults {
    front: ParetoFront,
    pruned: Vec<PrunedPoint>,
    errors: Vec<(DesignPoint, PointError)>,
    stats: PruneStats,
}

impl ParetoResults {
    pub(crate) fn assemble(
        front: ParetoFront,
        pruned: Vec<PrunedPoint>,
        errors: Vec<(DesignPoint, PointError)>,
        stats: PruneStats,
    ) -> Self {
        Self {
            front,
            pruned,
            errors,
            stats,
        }
    }

    /// The dominance filter, with frontier and dominated provenance.
    #[must_use]
    pub fn front(&self) -> &ParetoFront {
        &self.front
    }

    /// The frontier entries, sorted by grid index.
    #[must_use]
    pub fn frontier(&self) -> &[ParetoEntry] {
        self.front.frontier()
    }

    /// Points cut by a constraint, in grid order.
    #[must_use]
    pub fn pruned(&self) -> &[PrunedPoint] {
        &self.pruned
    }

    /// Points whose estimation failed outright (infeasible frame rate,
    /// stall, build error), in grid order.
    #[must_use]
    pub fn errors(&self) -> &[(DesignPoint, PointError)] {
        &self.errors
    }

    /// Kernel-skip accounting for the constrained evaluation.
    #[must_use]
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }

    /// Number of feasible points the frontier beat.
    #[must_use]
    pub fn dominated_count(&self) -> usize {
        self.front.dominated().len()
    }

    /// Total grid points evaluated.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.front.frontier().len()
            + self.front.dominated().len()
            + self.pruned.len()
            + self.errors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Sweep;

    fn points(n: usize) -> Vec<DesignPoint> {
        let labels: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
        Sweep::new()
            .labels("design", labels.iter().map(String::as_str))
            .points()
    }

    fn front2() -> ParetoFront {
        ParetoFront::new(vec![Objective::TotalEnergy, Objective::PowerDensity])
    }

    #[test]
    fn dominated_inserts_are_rejected_with_provenance() {
        let p = points(3);
        let mut front = front2();
        assert!(front.insert(p[0].clone(), MetricVector::from_values(vec![1.0, 1.0])));
        assert!(!front.insert(p[1].clone(), MetricVector::from_values(vec![2.0, 2.0])));
        assert_eq!(front.len(), 1);
        assert_eq!(front.dominated()[0].dominated_by, p[0].index);
    }

    #[test]
    fn dominating_insert_evicts_the_beaten() {
        let p = points(3);
        let mut front = front2();
        front.insert(p[1].clone(), MetricVector::from_values(vec![2.0, 2.0]));
        front.insert(p[2].clone(), MetricVector::from_values(vec![3.0, 1.5]));
        assert!(front.insert(p[0].clone(), MetricVector::from_values(vec![1.0, 1.0])));
        // p0 dominates both incumbents.
        assert_eq!(front.len(), 1);
        assert_eq!(front.frontier()[0].point.index, p[0].index);
        assert_eq!(front.dominated().len(), 2);
        assert!(front.dominated().iter().all(|d| d.dominated_by == 0));
    }

    #[test]
    fn witnesses_follow_evictions_onto_the_final_frontier() {
        // X is first dominated by A; then B evicts A. X's witness must
        // be remapped to B so provenance keeps naming a frontier point.
        let p = points(3);
        let mut front = front2();
        front.insert(p[0].clone(), MetricVector::from_values(vec![2.0, 2.0])); // A
        front.insert(p[1].clone(), MetricVector::from_values(vec![3.0, 3.0])); // X
        front.insert(p[2].clone(), MetricVector::from_values(vec![1.0, 1.0])); // B
        assert_eq!(front.len(), 1);
        let frontier_indices: Vec<usize> = front.frontier().iter().map(|e| e.point.index).collect();
        assert_eq!(frontier_indices, vec![2]);
        for entry in front.dominated() {
            assert!(
                frontier_indices.contains(&entry.dominated_by),
                "witness {} of point {} is not on the final frontier",
                entry.dominated_by,
                entry.point.index
            );
        }
    }

    #[test]
    fn metric_ties_resolve_to_the_lowest_index() {
        let p = points(2);
        let metrics = || MetricVector::from_values(vec![1.0, 1.0]);
        // Arrival order 1 then 0, and 0 then 1, give the same frontier.
        for order in [[1, 0], [0, 1]] {
            let mut front = front2();
            for &i in &order {
                front.insert(p[i].clone(), metrics());
            }
            assert_eq!(front.len(), 1);
            assert_eq!(front.frontier()[0].point.index, 0, "order {order:?}");
            assert_eq!(front.dominated()[0].point.index, 1);
        }
    }

    #[test]
    fn frontier_is_insert_order_invariant() {
        // Six points with a mix of trade-offs, dominance, and a tie.
        let p = points(6);
        let vectors = [
            vec![5.0, 1.0], // frontier (best density)
            vec![1.0, 5.0], // frontier (best energy)
            vec![3.0, 3.0], // frontier (trade-off)
            vec![4.0, 4.0], // dominated by #2
            vec![3.0, 3.0], // tie with #2 → loses on index
            vec![6.0, 6.0], // dominated by everyone
        ];
        let orders: [[usize; 6]; 4] = [
            [0, 1, 2, 3, 4, 5],
            [5, 4, 3, 2, 1, 0],
            [4, 2, 0, 5, 3, 1],
            [3, 5, 1, 0, 4, 2],
        ];
        let mut reference: Option<Vec<usize>> = None;
        for order in orders {
            let mut front = front2();
            for &i in &order {
                front.insert(p[i].clone(), MetricVector::from_values(vectors[i].clone()));
            }
            let indices: Vec<usize> = front.frontier().iter().map(|e| e.point.index).collect();
            match &reference {
                None => reference = Some(indices),
                Some(expected) => assert_eq!(&indices, expected, "order {order:?}"),
            }
        }
        assert_eq!(reference.unwrap(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one objective")]
    fn empty_objective_list_rejected() {
        let _ = ParetoFront::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "one coordinate per objective")]
    fn wrong_arity_rejected() {
        let p = points(1);
        let mut front = front2();
        front.insert(p[0].clone(), MetricVector::from_values(vec![1.0]));
    }
}
