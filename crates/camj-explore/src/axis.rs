//! Sweep axes: named, ordered lists of parameter values.

use std::fmt;

use camj_digital::memory::MemoryKind;
use camj_tech::node::ProcessNode;

/// One value along a sweep axis.
///
/// The variants cover the parameters the paper sweeps (precision,
/// technology node, memory technology, frame rate) plus free-form
/// labels for workload-specific choices such as sensor variants.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// An unsigned integer parameter (bit-width, array rows, …).
    U32(u32),
    /// A real-valued parameter (FPS target, voltage swing, …).
    F64(f64),
    /// A fabrication process node.
    Node(ProcessNode),
    /// A digital memory structure kind.
    Memory(MemoryKind),
    /// A free-form label (sensor variant, workload name, …).
    Text(String),
}

impl AxisValue {
    /// The integer value, if this is [`AxisValue::U32`].
    #[must_use]
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            AxisValue::U32(v) => Some(*v),
            _ => None,
        }
    }

    /// The real value, if this is [`AxisValue::F64`].
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AxisValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The process node, if this is [`AxisValue::Node`].
    #[must_use]
    pub fn as_node(&self) -> Option<ProcessNode> {
        match self {
            AxisValue::Node(v) => Some(*v),
            _ => None,
        }
    }

    /// The memory kind, if this is [`AxisValue::Memory`].
    #[must_use]
    pub fn as_memory(&self) -> Option<MemoryKind> {
        match self {
            AxisValue::Memory(v) => Some(*v),
            _ => None,
        }
    }

    /// The label, if this is [`AxisValue::Text`].
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AxisValue::Text(v) => Some(v),
            _ => None,
        }
    }
}

/// The canonical text form of a real axis coordinate: the shortest
/// string that round-trips the value (the same formatter the JSON/CSV
/// sweep serializers use), with explicit spellings for the non-finite
/// values the plan keying logic tolerates. Everything that prints an
/// axis coordinate — [`AxisValue`]'s `Display`, point-tagged error
/// messages, the sweep serializers — goes through here, so a
/// coordinate reads identically wherever it surfaces.
#[must_use]
pub fn canonical_f64(v: f64) -> String {
    if v.is_finite() {
        serde_json::to_string(&v).unwrap_or_else(|_| v.to_string())
    } else if v.is_nan() {
        "NaN".to_owned()
    } else if v > 0.0 {
        "inf".to_owned()
    } else {
        "-inf".to_owned()
    }
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::U32(v) => write!(f, "{v}"),
            AxisValue::F64(v) => f.write_str(&canonical_f64(*v)),
            AxisValue::Node(v) => write!(f, "{v}"),
            AxisValue::Memory(v) => write!(f, "{v:?}"),
            AxisValue::Text(v) => f.write_str(v),
        }
    }
}

impl From<u32> for AxisValue {
    fn from(v: u32) -> Self {
        AxisValue::U32(v)
    }
}

impl From<f64> for AxisValue {
    fn from(v: f64) -> Self {
        AxisValue::F64(v)
    }
}

impl From<ProcessNode> for AxisValue {
    fn from(v: ProcessNode) -> Self {
        AxisValue::Node(v)
    }
}

impl From<MemoryKind> for AxisValue {
    fn from(v: MemoryKind) -> Self {
        AxisValue::Memory(v)
    }
}

impl From<String> for AxisValue {
    fn from(v: String) -> Self {
        AxisValue::Text(v)
    }
}

impl From<&str> for AxisValue {
    fn from(v: &str) -> Self {
        AxisValue::Text(v.to_owned())
    }
}

/// A named sweep axis: an ordered list of values for one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    name: String,
    values: Vec<AxisValue>,
}

impl Axis {
    /// A new axis over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — an empty axis would collapse the
    /// whole cartesian grid to nothing, which is never intended.
    pub fn new<N, V, I>(name: N, values: I) -> Self
    where
        N: Into<String>,
        V: Into<AxisValue>,
        I: IntoIterator<Item = V>,
    {
        let name = name.into();
        let values: Vec<AxisValue> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "axis '{name}' needs at least one value");
        Self { name, values }
    }

    /// The axis name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The axis values, in declaration order.
    #[must_use]
    pub fn values(&self) -> &[AxisValue] {
        &self.values
    }

    /// Number of values along this axis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis is empty (never true for a constructed axis).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(AxisValue::from(8u32).as_u32(), Some(8));
        assert_eq!(AxisValue::from(30.0f64).as_f64(), Some(30.0));
        assert_eq!(
            AxisValue::from(ProcessNode::N65).as_node(),
            Some(ProcessNode::N65)
        );
        assert_eq!(
            AxisValue::from(MemoryKind::LineBuffer).as_memory(),
            Some(MemoryKind::LineBuffer)
        );
        assert_eq!(AxisValue::from("2D-In").as_text(), Some("2D-In"));
        assert_eq!(AxisValue::from(8u32).as_f64(), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(AxisValue::from(8u32).to_string(), "8");
        assert_eq!(AxisValue::from("x").to_string(), "x");
    }

    #[test]
    fn f64_display_matches_the_serializers_and_tolerates_nan() {
        // Finite values print the shortest round-trip form the JSON/CSV
        // serializers use; the pathological values the plan keying
        // logic tolerates print explicitly instead of via raw Display.
        assert_eq!(AxisValue::from(30.0f64).to_string(), "30");
        assert_eq!(AxisValue::from(0.25f64).to_string(), "0.25");
        assert_eq!(AxisValue::from(f64::NAN).to_string(), "NaN");
        assert_eq!(AxisValue::from(f64::INFINITY).to_string(), "inf");
        assert_eq!(AxisValue::from(f64::NEG_INFINITY).to_string(), "-inf");
        // Round-trip: the finite form parses back to the same bits.
        let tricky = 0.1f64 + 0.2;
        let text = canonical_f64(tricky);
        assert_eq!(text.parse::<f64>().unwrap().to_bits(), tricky.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_axis_rejected() {
        let _ = Axis::new("bits", Vec::<u32>::new());
    }
}
