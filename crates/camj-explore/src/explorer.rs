//! The sweep evaluator: serial or parallel, with per-point error
//! capture and deterministic, grid-ordered results.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rayon::prelude::*;

use camj_core::energy::{
    EstimateCache, EstimateReport, GatedEstimate, ValidatedModel, ENERGY_KERNEL_COUNT,
};
use camj_core::error::CamjError;
use camj_tech::units::Energy;

use crate::axis::AxisValue;
use crate::objective::MetricVector;
use crate::pareto::{ParetoFront, ParetoQuery, ParetoResults, PrunedPoint};
use crate::plan::SweepPlan;
use crate::prune::{Constraint, PruneStats};
use crate::sweep::{DesignPoint, Sweep};

/// How a sweep's points are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One point after another on the calling thread. Useful for
    /// debugging and as the reference for determinism tests.
    Serial,
    /// Points fanned out across the rayon worker pool.
    #[default]
    Parallel,
}

/// Evaluation failure at one design point.
///
/// Sweeps explore aggressively — many grid points are *supposed* to be
/// infeasible (frame rate too high, memory too small, variant
/// unsupported). A failing point therefore becomes data, not an abort:
/// it is recorded here and its neighbours complete normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointError {
    message: String,
    panicked: bool,
}

impl PointError {
    /// Wraps any displayable error.
    pub fn new(error: impl fmt::Display) -> Self {
        Self {
            message: error.to_string(),
            panicked: false,
        }
    }

    /// Wraps an error with the failing point's axis coordinates, so a
    /// captured panic in a million-point grid still names exactly which
    /// design died.
    pub fn at_point(point: &DesignPoint, error: impl fmt::Display) -> Self {
        Self {
            message: format!("at point [{point}]: {error}"),
            panicked: false,
        }
    }

    /// Wraps a panic payload captured at a point. Unlike an ordinary
    /// infeasibility, a panic is a *bug* — drivers distinguish the two
    /// through [`PointError::is_panic`] (the CLI exits non-zero when
    /// any point panicked, even though the sweep itself completed).
    pub fn panicked_at_point(point: &DesignPoint, message: impl fmt::Display) -> Self {
        Self {
            message: format!("at point [{point}]: {message}"),
            panicked: true,
        }
    }

    /// The error description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether this error records a captured panic rather than an
    /// ordinary infeasible/failed evaluation.
    #[must_use]
    pub fn is_panic(&self) -> bool {
        self.panicked
    }
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PointError {}

impl From<CamjError> for PointError {
    fn from(e: CamjError) -> Self {
        Self::new(e)
    }
}

/// One evaluated grid point: the point and what happened there.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome<R> {
    /// The design point.
    pub point: DesignPoint,
    /// The evaluation result.
    pub result: Result<R, PointError>,
}

/// The outcome of a sweep, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults<R> {
    outcomes: Vec<PointOutcome<R>>,
}

impl<R> SweepResults<R> {
    /// All outcomes, ordered by [`DesignPoint::index`].
    #[must_use]
    pub fn outcomes(&self) -> &[PointOutcome<R>] {
        &self.outcomes
    }

    /// Consumes into the ordered outcome list.
    #[must_use]
    pub fn into_outcomes(self) -> Vec<PointOutcome<R>> {
        self.outcomes
    }

    /// Number of evaluated points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the sweep had no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of points that evaluated successfully.
    #[must_use]
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Number of points that failed.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.len() - self.ok_count()
    }

    /// Successful points, in grid order.
    pub fn successes(&self) -> impl Iterator<Item = (&DesignPoint, &R)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok().map(|r| (&o.point, r)))
    }

    /// Failed points, in grid order.
    pub fn failures(&self) -> impl Iterator<Item = (&DesignPoint, &PointError)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err().map(|e| (&o.point, e)))
    }
}

impl SweepResults<EstimateReport> {
    /// The successful point with the lowest total per-frame energy —
    /// the usual "winner" question a sweep answers. Ties resolve to
    /// the lowest grid index explicitly, not by iteration order, so
    /// the winner is stable even over hand-built or re-ordered point
    /// lists (`Iterator::min_by` would keep the *last* minimum).
    #[must_use]
    pub fn min_energy(&self) -> Option<(&DesignPoint, &EstimateReport)> {
        let mut best: Option<(&DesignPoint, &EstimateReport)> = None;
        for (point, report) in self.successes() {
            let better = match best {
                None => true,
                Some((best_point, best_report)) => {
                    let a = report.total().joules();
                    let b = best_report.total().joules();
                    a < b || (a == b && point.index < best_point.index)
                }
            };
            if better {
                best = Some((point, report));
            }
        }
        best
    }

    /// `(point, total energy)` pairs for the successful points.
    #[must_use]
    pub fn total_energies(&self) -> Vec<(&DesignPoint, Energy)> {
        self.successes().map(|(p, r)| (p, r.total())).collect()
    }
}

/// Evaluates sweeps over a design grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Explorer {
    mode: ExecutionMode,
}

impl Explorer {
    /// An explorer with the default (parallel) execution mode.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A serial explorer.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            mode: ExecutionMode::Serial,
        }
    }

    /// A parallel explorer.
    #[must_use]
    pub fn parallel() -> Self {
        Self {
            mode: ExecutionMode::Parallel,
        }
    }

    /// The configured execution mode.
    #[must_use]
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Evaluates `eval` at every point of `sweep`'s grid.
    ///
    /// Guarantees, regardless of mode:
    ///
    /// * results come back in grid order ([`DesignPoint::index`]),
    /// * a failing point (error **or** panic) is captured as its own
    ///   [`PointOutcome`] and does not affect any other point,
    /// * parallel and serial runs of a deterministic `eval` produce
    ///   identical [`SweepResults`].
    pub fn run<R, F>(&self, sweep: &Sweep, eval: F) -> SweepResults<R>
    where
        R: Send,
        F: Fn(&DesignPoint) -> Result<R, PointError> + Sync,
    {
        self.run_points(sweep.points(), eval)
    }

    /// Like [`Self::run`], over an explicit point list (e.g. a filtered
    /// or hand-built grid).
    pub fn run_points<R, F>(&self, points: Vec<DesignPoint>, eval: F) -> SweepResults<R>
    where
        R: Send,
        F: Fn(&DesignPoint) -> Result<R, PointError> + Sync,
    {
        let evaluate = |point: DesignPoint| -> PointOutcome<R> {
            let result =
                catch_unwind(AssertUnwindSafe(|| eval(&point))).unwrap_or_else(|payload| {
                    Err(PointError::panicked_at_point(
                        &point,
                        panic_message(payload.as_ref()),
                    ))
                });
            PointOutcome { point, result }
        };
        let outcomes: Vec<PointOutcome<R>> = match self.mode {
            ExecutionMode::Serial => points.into_iter().map(evaluate).collect(),
            ExecutionMode::Parallel => points.into_par_iter().map(evaluate).collect(),
        };
        SweepResults { outcomes }
    }

    /// The frame-rate sweep fast path: estimates `model` at every FPS in
    /// `fps_targets`, going through the staged pipeline so checks,
    /// routing, and the elastic latency simulation run **once** and only
    /// the FPS-dependent stages run per point.
    ///
    /// Points that are infeasible at their frame rate (or stall) come
    /// back as error entries like any other sweep failure.
    pub fn sweep_fps(
        &self,
        model: &ValidatedModel,
        fps_targets: impl IntoIterator<Item = f64>,
    ) -> SweepResults<EstimateReport> {
        // Resolve the shared artifacts up front so workers hit caches
        // instead of racing to fill them: the elastic simulation, and —
        // because stall freedom is monotone in readout time — one stall
        // verdict at the *fastest* target, which settles every slower
        // one. Errors here simply resurface at the points themselves.
        let _ = model.simulate();
        let sweep = Sweep::new().fps_targets(fps_targets);
        let fastest = sweep.axes()[0]
            .values()
            .iter()
            .filter_map(crate::AxisValue::as_f64)
            .fold(f64::NEG_INFINITY, f64::max);
        if fastest.is_finite() && fastest > 0.0 {
            let _ = model
                .estimate_delay_at(fastest)
                .and_then(|delay| model.check_stall(&delay));
        }
        self.run(&sweep, |point| {
            model
                .estimate_at_fps(point.fps("fps"))
                .map_err(PointError::from)
        })
    }

    /// The cross-point incremental sweep: plans the grid with
    /// [`SweepPlan`] (heaviest axes slowest, points grouped by their
    /// model-rebuilding coordinates), builds **one** [`ValidatedModel`]
    /// per group via `build`, attaches the shared [`EstimateCache`] to
    /// every model, and runs only the FPS-dependent pipeline tail per
    /// point.
    ///
    /// Content-addressing does the rest: groups whose digital dataflow
    /// coincides share one elastic simulation and one stall verdict,
    /// and energy kernels whose fingerprinted inputs repeat replay
    /// cached items — on a typical 4-axis grid (fps × bit width × tech
    /// node × memory kind) the expensive simulation runs a handful of
    /// times instead of once per point.
    ///
    /// Guarantees (inherited from [`Self::run`] semantics):
    ///
    /// * results come back in original grid order, byte-identical to a
    ///   cold, unplanned sweep of the same `build` + estimate closure,
    /// * serial and parallel modes produce identical results,
    /// * a failing or panicking point is captured as its own outcome
    ///   (with its axis coordinates in the message) without poisoning
    ///   neighbours; if a group's representative build fails, every
    ///   point of the group falls back to an individual build so
    ///   per-point diagnoses stay exact.
    ///
    /// Read `cache.stats()` afterwards for the [`CacheStats`] report.
    ///
    /// # Examples
    ///
    /// A 2-axis (frame rate × precision) grid over the Fig. 5
    /// quickstart chip, one shared cache across all six points:
    ///
    /// ```rust
    /// use camj_explore::{EstimateCache, Explorer, PointError, Sweep};
    /// use camj_workloads::quickstart;
    ///
    /// let sweep = Sweep::new().fps_targets([15.0, 30.0, 60.0]);
    /// let cache = EstimateCache::shared();
    /// let results = Explorer::parallel().sweep_incremental(&sweep, &cache, |point| {
    ///     quickstart::model(point.fps("fps"))
    ///         .map(camj_core::energy::CamJ::into_validated)
    ///         .map_err(PointError::new)
    /// });
    /// assert_eq!(results.ok_count(), 3);
    /// // fps is a tail axis: all three points share one group, one
    /// // model, one elastic simulation — and the fps-independent
    /// // energy kernels replay from the shared cache.
    /// assert!(cache.stats().hits > 0);
    /// ```
    ///
    /// [`CacheStats`]: camj_core::energy::CacheStats
    pub fn sweep_incremental<F>(
        &self,
        sweep: &Sweep,
        cache: &Arc<EstimateCache>,
        build: F,
    ) -> SweepResults<EstimateReport>
    where
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
    {
        self.run_grouped(
            sweep,
            cache,
            build,
            |model, points| warm_stall(model, points, |_| true),
            |model, point| {
                match point.get("fps").and_then(AxisValue::as_f64) {
                    Some(fps) => model.estimate_at_fps(fps),
                    None => model.estimate(),
                }
                .map_err(PointError::from)
            },
        )
    }

    /// Multi-objective Pareto exploration over a design grid: evaluates
    /// the grid through the same planned, cache-shared incremental path
    /// as [`Self::sweep_incremental`], but
    ///
    /// * each point runs the **gated** pipeline
    ///   ([`ValidatedModel::estimate_at_fps_gated`]): the query's
    ///   [`Constraint`]s are checked after the delay solve and after
    ///   every energy kernel, so an infeasible point skips the kernels
    ///   it no longer needs (sound pruning — partial aggregates are
    ///   lower bounds, so only genuinely-violating points are cut, and
    ///   surviving points stay byte-identical to an unconstrained
    ///   sweep), and
    /// * completed points stream into a [`ParetoFront`] in grid order,
    ///   so the frontier, its dominated-point provenance, and the
    ///   pruned/error lists are fully deterministic — identical between
    ///   serial and parallel modes, and identical to filtering a cold
    ///   full sweep through the same constraints and front.
    ///
    /// Read `cache.stats()` for cache effectiveness and
    /// [`ParetoResults::stats`] for how much kernel work the pruning
    /// skipped.
    ///
    /// [`ValidatedModel::estimate_at_fps_gated`]: camj_core::energy::ValidatedModel::estimate_at_fps_gated
    pub fn pareto<F>(
        &self,
        sweep: &Sweep,
        cache: &Arc<EstimateCache>,
        query: &ParetoQuery,
        build: F,
    ) -> ParetoResults
    where
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
    {
        let constraints = query.constraints();
        let results = self.run_grouped(
            sweep,
            cache,
            build,
            |model, points| {
                // Pre-warm only at frame rates whose delay split the
                // constraints admit: a delay-pruned point never runs
                // the stall check, so warming past the budget would do
                // work the gated path deliberately skips.
                warm_stall(model, points, |delay| constraints.admits_delay(delay));
            },
            |model, point| gated_point_eval(model, point, query),
        );
        // The fold runs serially in grid order, so every prune counter
        // below is fully deterministic across thread counts.
        let _span = obs_core::span("pareto.fold");
        let mut acc = ParetoAccumulator::new(query.objectives().to_vec());
        acc.fold(results.into_outcomes());
        acc.finish()
    }

    /// The shared engine of [`Self::sweep_incremental`] and
    /// [`Self::pareto`]: plans the grid, builds one cache-attached
    /// model per rebuild group (falling back to per-point builds when
    /// the representative build fails), runs `warm` once per healthy
    /// group, evaluates `eval` per point with panic capture, and
    /// returns outcomes in grid order.
    fn run_grouped<R, F, W, E>(
        &self,
        sweep: &Sweep,
        cache: &Arc<EstimateCache>,
        build: F,
        warm: W,
        eval: E,
    ) -> SweepResults<R>
    where
        R: Send,
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
        W: Fn(&ValidatedModel, &[DesignPoint]) + Sync,
        E: Fn(&ValidatedModel, &DesignPoint) -> Result<R, PointError> + Sync,
    {
        self.run_groups(
            SweepPlan::new(sweep).into_groups(),
            cache,
            build,
            warm,
            eval,
        )
    }

    /// Like [`Self::run_grouped`], over pre-formed model-sharing groups
    /// (see [`crate::plan::group_points`]) — the evaluation engine
    /// adaptive search feeds its candidate batches through.
    pub(crate) fn run_groups<R, F, W, E>(
        &self,
        groups: Vec<Vec<DesignPoint>>,
        cache: &Arc<EstimateCache>,
        build: F,
        warm: W,
        eval: E,
    ) -> SweepResults<R>
    where
        R: Send,
        F: Fn(&DesignPoint) -> Result<ValidatedModel, PointError> + Sync,
        W: Fn(&ValidatedModel, &[DesignPoint]) + Sync,
        E: Fn(&ValidatedModel, &DesignPoint) -> Result<R, PointError> + Sync,
    {
        let eval_on = |model: &ValidatedModel, point: &DesignPoint| {
            let _span = obs_core::span("explore.point");
            catch_unwind(AssertUnwindSafe(|| eval(model, point))).unwrap_or_else(|payload| {
                Err(PointError::panicked_at_point(
                    point,
                    panic_message(payload.as_ref()),
                ))
            })
        };
        let eval_group = |points: Vec<DesignPoint>| -> Vec<PointOutcome<R>> {
            // One span per rebuild group: covers the representative
            // build, the warm-up, and every point of the group.
            let _span = obs_core::span("explore.group");
            let representative = &points[0];
            let built = catch_unwind(AssertUnwindSafe(|| build(representative)));
            match built {
                Ok(Ok(model)) => {
                    let model = model.with_cache(Arc::clone(cache));
                    warm(&model, &points);
                    points
                        .into_iter()
                        .map(|point| {
                            let result = eval_on(&model, &point);
                            PointOutcome { point, result }
                        })
                        .collect()
                }
                _ => {
                    // The representative build failed (error or panic).
                    // Fall back to per-point builds so every point gets
                    // the exact outcome a naive sweep would give it.
                    points
                        .into_iter()
                        .map(|point| {
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                build(&point).map(|m| m.with_cache(Arc::clone(cache)))
                            }))
                            .unwrap_or_else(|payload| {
                                Err(PointError::panicked_at_point(
                                    &point,
                                    panic_message(payload.as_ref()),
                                ))
                            })
                            .and_then(|model| eval_on(&model, &point));
                            PointOutcome { point, result }
                        })
                        .collect()
                }
            }
        };
        let mut outcomes: Vec<PointOutcome<R>> = match self.mode {
            ExecutionMode::Serial => groups.into_iter().flat_map(eval_group).collect(),
            ExecutionMode::Parallel => {
                let per_group: Vec<Vec<PointOutcome<R>>> =
                    groups.into_par_iter().map(eval_group).collect();
                per_group.into_iter().flatten().collect()
            }
        };
        outcomes.sort_by_key(|o| o.point.index);
        SweepResults { outcomes }
    }
}

/// A gated point evaluation: completed (already measured into its
/// objective coordinates), or pruned by a constraint after
/// `kernels_done` kernels.
pub(crate) enum PointEval {
    Complete(MetricVector),
    Pruned {
        constraint: Constraint,
        kernels_done: usize,
    },
}

/// Evaluates one point through the constraint-gated pipeline and
/// measures a completed estimate into its objective coordinates — the
/// per-point worker body shared by [`Explorer::pareto`] and adaptive
/// search ([`Explorer::search`](crate::Explorer::search)).
///
/// Metrics are measured here, in the worker, because `mc_snr`
/// objectives run seeded frame simulations against the model — work
/// that should share the sweep's parallelism, not serialise in the
/// reduce loop. Seeds are fixed per sample count, so the coordinates
/// are byte-identical in serial and parallel modes.
pub(crate) fn gated_point_eval(
    model: &ValidatedModel,
    point: &DesignPoint,
    query: &crate::pareto::ParetoQuery,
) -> Result<PointEval, PointError> {
    let constraints = query.constraints();
    let fps = point
        .get("fps")
        .and_then(AxisValue::as_f64)
        .unwrap_or_else(|| model.fps());
    let mut fired: Option<Constraint> = None;
    let outcome =
        model.estimate_at_fps_gated(fps, |ctx| match constraints.first_violated(model, ctx) {
            Some(c) => {
                fired = Some(c);
                false
            }
            None => true,
        });
    match outcome.map_err(PointError::from)? {
        GatedEstimate::Complete(report) => Ok(PointEval::Complete(measure_point(
            query.objectives(),
            &report,
            model,
        )?)),
        GatedEstimate::Pruned { kernels_done, .. } => Ok(PointEval::Pruned {
            constraint: fired.expect("the gate only stops on a violation"),
            kernels_done,
        }),
    }
}

/// A serial accumulator folding gated point outcomes into a
/// [`ParetoFront`] with deterministic prune accounting. Shared by
/// [`Explorer::pareto`] (one fold over the whole grid) and adaptive
/// search (one fold per generation, into the same persistent front).
pub(crate) struct ParetoAccumulator {
    front: ParetoFront,
    stats: PruneStats,
    pruned: Vec<PrunedPoint>,
    errors: Vec<(DesignPoint, PointError)>,
}

impl ParetoAccumulator {
    /// An empty accumulator over `objectives`.
    pub(crate) fn new(objectives: Vec<crate::objective::Objective>) -> Self {
        Self {
            front: ParetoFront::new(objectives),
            stats: PruneStats::default(),
            pruned: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Folds a batch of outcomes, in the order given (callers pass
    /// grid-ordered batches, so every prune counter and frontier
    /// insertion below is fully deterministic across thread counts).
    pub(crate) fn fold(&mut self, outcomes: Vec<PointOutcome<PointEval>>) {
        for outcome in outcomes {
            match outcome.result {
                Ok(PointEval::Complete(metrics)) => {
                    self.stats.record_complete();
                    obs_core::count("prune.complete");
                    self.front.insert(outcome.point, metrics);
                }
                Ok(PointEval::Pruned {
                    constraint,
                    kernels_done,
                }) => {
                    self.stats.record_pruned(kernels_done);
                    // Keyed by the stopping constraint, valued with the
                    // kernels the prune saved.
                    obs_core::counter("prune.pruned", constraint.trace_key(), 1);
                    obs_core::counter(
                        "prune.kernels_skipped",
                        constraint.trace_key(),
                        (ENERGY_KERNEL_COUNT - kernels_done) as u64,
                    );
                    self.pruned.push(PrunedPoint {
                        point: outcome.point,
                        constraint,
                        kernels_done,
                    });
                }
                Err(error) => {
                    self.stats.record_error();
                    obs_core::count("prune.error");
                    self.errors.push((outcome.point, error));
                }
            }
        }
    }

    /// The current frontier (for convergence checks between folds).
    pub(crate) fn front(&self) -> &ParetoFront {
        &self.front
    }

    /// Finishes into the assembled results.
    pub(crate) fn finish(self) -> ParetoResults {
        ParetoResults::assemble(self.front, self.pruned, self.errors, self.stats)
    }
}

/// Measures one completed point's objective coordinates. Plain
/// objectives read the estimate report; `mc_snr:<n>` objectives run a
/// seed-fixed (`0..n`) Monte-Carlo frame simulation against the model,
/// quoted at the same mid-scale stimulus as the analytic `snr`
/// objective so the two orderings are comparable; `accuracy:<metric>`
/// objectives push the model's attached stimulus through the full
/// functional pipeline (seed 0) and judge the DAG sink at the task
/// level, cached across points by the functional fingerprint.
fn measure_point(
    objectives: &[crate::objective::Objective],
    report: &EstimateReport,
    model: &ValidatedModel,
) -> Result<MetricVector, PointError> {
    let mut mc = std::collections::BTreeMap::new();
    for samples in objectives
        .iter()
        .filter_map(crate::objective::Objective::mc_samples)
    {
        if mc.contains_key(&samples) {
            continue;
        }
        let seeds: Vec<u64> = (0..u64::from(samples)).collect();
        let stimulus = camj_core::functional::Stimulus::uniform(camj_core::DEFAULT_SIGNAL_FRACTION);
        let sim = model
            .simulate_frames(&seeds, &stimulus)
            .map_err(PointError::from)?;
        mc.insert(samples, sim.output.noise_rms_mean);
    }
    let accuracy = if objectives.iter().any(|o| o.accuracy_metric().is_some()) {
        Some(model.task_metrics(&[0]).map_err(PointError::from)?)
    } else {
        None
    };
    Ok(MetricVector::measure_with_mc(
        objectives,
        report,
        &mc,
        accuracy.as_ref(),
    ))
}

/// Pre-warms a group's stall verdict at its fastest admitted frame
/// rate: stall freedom is monotone in the readout time, so one
/// simulation settles every slower point (and, through the shared
/// cache, every other group with the same topology). `admit` filters
/// out frame rates a constraint gate would prune before the stall
/// check.
pub(crate) fn warm_stall(
    model: &ValidatedModel,
    points: &[DesignPoint],
    admit: impl Fn(&camj_core::DelayEstimate) -> bool,
) {
    let _span = obs_core::span("explore.warm");
    let fastest = points
        .iter()
        .filter_map(|p| p.get("fps").and_then(AxisValue::as_f64))
        .filter(|&fps| {
            fps.is_finite()
                && fps > 0.0
                && model
                    .estimate_delay_at(fps)
                    .is_ok_and(|delay| admit(&delay))
        })
        .fold(f64::NEG_INFINITY, f64::max);
    if fastest.is_finite() && fastest > 0.0 {
        let _ = model
            .estimate_delay_at(fastest)
            .and_then(|delay| model.check_stall(&delay));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: <non-string payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sweep;

    fn grid() -> Sweep {
        Sweep::new().bit_widths([4, 6, 8]).fps_targets([15.0, 30.0])
    }

    #[test]
    fn results_come_back_in_grid_order() {
        for explorer in [Explorer::serial(), Explorer::parallel()] {
            let results = explorer.run(&grid(), |p| {
                Ok::<_, PointError>(p.u32("bit_width") as f64 * p.fps("fps"))
            });
            assert_eq!(results.len(), 6);
            let values: Vec<f64> = results.successes().map(|(_, v)| *v).collect();
            assert_eq!(values, vec![60.0, 120.0, 90.0, 180.0, 120.0, 240.0]);
            for (i, o) in results.outcomes().iter().enumerate() {
                assert_eq!(o.point.index, i);
            }
        }
    }

    #[test]
    fn one_failure_does_not_poison_neighbours() {
        let results = Explorer::parallel().run(&grid(), |p| {
            if p.u32("bit_width") == 6 {
                Err(PointError::new("infeasible by construction"))
            } else {
                Ok(p.index)
            }
        });
        assert_eq!(results.ok_count(), 4);
        assert_eq!(results.error_count(), 2);
        for (point, err) in results.failures() {
            assert_eq!(point.u32("bit_width"), 6);
            assert!(err.message().contains("infeasible"));
        }
    }

    #[test]
    fn panics_are_captured_per_point() {
        let results = Explorer::parallel().run(&grid(), |p| {
            assert!(p.index != 3, "boom at point 3");
            Ok::<_, PointError>(())
        });
        assert_eq!(results.error_count(), 1);
        let (point, err) = results.failures().next().unwrap();
        assert_eq!(point.index, 3);
        assert!(err.message().contains("boom"), "{err}");
    }

    #[test]
    fn min_energy_ties_break_to_the_lowest_grid_index() {
        // Duplicate fps values produce byte-identical reports at two
        // different grid indices; the winner must be the lower index
        // even though `min_by` alone would keep the later one.
        let model = camj_workloads::quickstart::model(30.0)
            .map(camj_core::energy::CamJ::into_validated)
            .expect("quickstart builds");
        let results = Explorer::serial().sweep_fps(&model, [30.0, 30.0]);
        assert_eq!(results.ok_count(), 2);
        let (winner, _) = results.min_energy().expect("two successes");
        assert_eq!(winner.index, 0);
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let eval = |p: &DesignPoint| {
            if p.index % 4 == 2 {
                Err(PointError::new(format!("bad point {}", p.index)))
            } else {
                Ok(format!("{p}"))
            }
        };
        let serial = Explorer::serial().run(&grid(), eval);
        let parallel = Explorer::parallel().run(&grid(), eval);
        assert_eq!(serial, parallel);
    }
}
