//! The client half of the protocol: what `camj --connect` (and the
//! test suite) uses to talk to a running daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::protocol::{parse_frame, serialize_request, Frame, FrameKind, Request};

/// Sends one request over a fresh TCP connection and collects every
/// response frame up to and including the `done` terminator.
pub fn roundtrip(addr: &str, request: &Request) -> std::io::Result<Vec<Frame>> {
    let mut stream = TcpStream::connect(addr)?;
    // One write, no Nagle: the request leaves as a single packet
    // instead of stalling on a delayed ACK.
    stream.set_nodelay(true)?;
    let mut line = serialize_request(request);
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    read_response(&mut BufReader::new(stream), request.id)
}

/// Reads frames for `id` until its `done` frame. Frames for other ids
/// (an interleaving daemon answering a pipelining client) are skipped.
pub fn read_response(reader: &mut impl BufRead, id: u64) -> std::io::Result<Vec<Frame>> {
    let mut frames = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the done frame",
            ));
        }
        if line.trim().is_empty() {
            continue;
        }
        let frame = parse_frame(line.trim_end()).map_err(|reject| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {}", reject.path, reject.message),
            )
        })?;
        if frame.id != id {
            continue;
        }
        let done = frame.frame == FrameKind::Done;
        frames.push(frame);
        if done {
            return Ok(frames);
        }
    }
}
