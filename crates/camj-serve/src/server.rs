//! The daemon: blocking I/O, a thread-per-connection accept loop, and
//! a bounded job queue feeding a fixed worker pool.
//!
//! No async runtime — connection readers block on their sockets, push
//! parsed lines into the queue (blocking when it is full, which is the
//! backpressure: a flooding client stalls in `write` instead of
//! growing daemon memory), and workers pop jobs, execute them against
//! the [`SharedState`], and write response frames under the owning
//! connection's writer lock so frames never interleave mid-line.
//!
//! Panic isolation: each job runs inside `catch_unwind`. A panicking
//! request — a handler bug, or an armed fault injection — produces an
//! `error` frame (`"panicked: …"`) plus the `done` terminator on its
//! own connection; the worker, the connection, and the daemon all stay
//! up.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::handler::SharedState;
use crate::protocol::{parse_request, serialize_frame, stamp_line, Frame, Reject, MAX_LINE_BYTES};

/// Daemon configuration (the `camj serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root of the on-disk cache tier; `None` keeps the cache
    /// memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue capacity; pushes beyond it block (the
    /// protocol's backpressure).
    pub queue_capacity: usize,
    /// Arms the request `fault` directive (tests only).
    pub fault_injection: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            cache_dir: None,
            workers: 4,
            queue_capacity: 64,
            fault_injection: false,
        }
    }
}

/// A connection's outgoing half: one lock per connection, held per
/// frame line, so concurrent workers never interleave mid-line.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One unit of work: a raw line (or an oversize rejection) plus where
/// the answer goes.
struct Job {
    line: Result<String, usize>,
    writer: SharedWriter,
}

/// The bounded MPMC job queue: a mutex-guarded ring with two condvars.
struct JobQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueInner {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: std::collections::VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while the queue is full (backpressure), then enqueues.
    /// Returns `false` if the queue closed before the job fit.
    fn push(&self, job: Job) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        while inner.jobs.len() >= self.capacity && !inner.closed {
            let _wait = obs_core::span("serve.queue_wait");
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if inner.closed {
            return false;
        }
        inner.jobs.push_back(job);
        self.not_empty.notify_one();
        true
    }

    /// Blocks until a job is available; `None` once closed **and**
    /// drained, so no accepted request is ever dropped.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A running daemon core: state + queue + workers. The transports
/// ([`serve_stdio`], [`serve_tcp`]) feed it lines and shut it down.
struct Core {
    queue: Arc<JobQueue>,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Core {
    fn start(config: &ServeConfig) -> std::io::Result<Self> {
        let state = Arc::new(SharedState::new(
            config.cache_dir.as_deref(),
            config.fault_injection,
        )?);
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        let shutdown = process_job(&state, &job);
                        if shutdown {
                            stop.store(true, Ordering::SeqCst);
                            queue.close();
                        }
                    }
                })
            })
            .collect();
        Ok(Self {
            queue,
            stop,
            workers,
        })
    }

    fn finish(self) {
        self.queue.close();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Executes one job and writes its response frames. Returns whether a
/// shutdown was requested.
fn process_job(state: &SharedState, job: &Job) -> bool {
    let (lines, shutdown) = respond_to_line(state, &job.line);
    // One write for the whole response: the handler finishes every
    // frame before the first byte leaves anyway, and a single syscall
    // (one immediate packet train under `TCP_NODELAY`) is what keeps a
    // dedup replay at microseconds — per-line writes cost a syscall
    // each, and split writes stall ~40ms on Nagle + delayed ACKs.
    let mut payload = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in &lines {
        payload.push_str(line);
        payload.push('\n');
    }
    let mut writer = job.writer.lock().unwrap_or_else(PoisonError::into_inner);
    // On error the client went away; its response is undeliverable but
    // the daemon (and any dedup slot just warmed) lives on.
    let _ = writer
        .write_all(payload.as_bytes())
        .and_then(|()| writer.flush());
    shutdown
}

/// Parses and answers one raw line, with panic isolation. Returns the
/// response as finished wire lines, always ending with a `done` frame.
fn respond_to_line(state: &SharedState, line: &Result<String, usize>) -> (Vec<String>, bool) {
    let (mut lines, id, shutdown) = match line {
        Err(oversize) => {
            let reject = Reject::at(
                "request",
                format!("line of {oversize} bytes exceeds the {MAX_LINE_BYTES} byte limit"),
            );
            (vec![serialize_frame(&reject.frame())], 0, false)
        }
        Ok(text) => match parse_request(text) {
            Err(reject) => {
                let id = reject.id;
                (vec![serialize_frame(&reject.frame())], id, false)
            }
            Ok(request) => {
                match catch_unwind(AssertUnwindSafe(|| state.respond(&request))) {
                    // The handler renders id-less lines once; here each
                    // response — fresh or replayed — splices in its own
                    // correlation id.
                    Ok((rendered, shutdown)) => (
                        rendered.iter().map(|l| stamp_line(l, request.id)).collect(),
                        request.id,
                        shutdown,
                    ),
                    Err(payload) => (
                        vec![serialize_frame(
                            &Frame::error(
                                "request",
                                format!("panicked: {}", panic_message(payload.as_ref())),
                            )
                            .with_id(request.id),
                        )],
                        request.id,
                        false,
                    ),
                }
            }
        },
    };
    let count = lines.len() as u64;
    lines.push(serialize_frame(&Frame::done(count).with_id(id)));
    (lines, shutdown)
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes. Oversized
/// lines are drained to their newline and reported as `Err(total
/// bytes)`, so one bad line costs an error frame, not the connection.
///
/// Read timeouts (`WouldBlock`/`TimedOut`) retry **inside** this loop
/// — any partially-read line stays buffered — and only bail out (as a
/// clean `None`) once `interrupted` says the daemon is stopping.
fn read_bounded_line(
    reader: &mut impl BufRead,
    max: usize,
    interrupted: impl Fn() -> bool,
) -> std::io::Result<Option<Result<String, usize>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropped = 0usize;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if interrupted() {
                    return Ok(None);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF. A final unterminated line still counts.
            if dropped > 0 {
                return Ok(Some(Err(dropped + buf.len())));
            }
            if buf.is_empty() {
                return Ok(None);
            }
            let line = String::from_utf8_lossy(&buf).into_owned();
            return Ok(Some(Ok(line)));
        }
        let newline = chunk.iter().position(|b| *b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if dropped > 0 || buf.len() + take > max + 1 {
            // Already oversized (or just became so): drain, don't buffer.
            dropped += buf.len() + take;
            buf.clear();
            reader.consume(take);
            if newline.is_some() {
                return Ok(Some(Err(dropped)));
            }
            continue;
        }
        buf.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if newline.is_some() {
            if buf.last() == Some(&b'\n') {
                buf.pop();
            }
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            let line = String::from_utf8_lossy(&buf).into_owned();
            return Ok(Some(Ok(line)));
        }
    }
}

/// Runs the daemon over stdin/stdout: the single-connection transport
/// CI and tests drive. Returns when stdin reaches EOF or a `shutdown`
/// request lands, after every queued request has been answered.
pub fn serve_stdio(config: &ServeConfig) -> std::io::Result<()> {
    let core = Core::start(config)?;
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
    let stdin = std::io::stdin();
    let mut reader = BufReader::new(stdin.lock());
    eprintln!("serve: ready on stdio ({} workers)", config.workers.max(1));
    let stop = Arc::clone(&core.stop);
    while !core.stop.load(Ordering::SeqCst) {
        match read_bounded_line(&mut reader, MAX_LINE_BYTES, || stop.load(Ordering::SeqCst))? {
            None => break,
            Some(Ok(line)) if line.trim().is_empty() => continue,
            Some(line) => {
                if !core.queue.push(Job {
                    line,
                    writer: Arc::clone(&writer),
                }) {
                    break;
                }
            }
        }
    }
    core.finish();
    Ok(())
}

/// Runs the daemon on a TCP listener: one reader thread per accepted
/// connection, all feeding the shared queue. Prints
/// `serve: listening on <addr>` to stderr once ready (tests parse it).
/// Returns after a `shutdown` request drains the queue.
pub fn serve_tcp(listener: TcpListener, config: &ServeConfig) -> std::io::Result<()> {
    let core = Core::start(config)?;
    listener.set_nonblocking(true)?;
    eprintln!(
        "serve: listening on {} ({} workers)",
        listener.local_addr()?,
        config.workers.max(1)
    );
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !core.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs_core::counter("serve.accept", 0, 1);
                let queue = Arc::clone(&core.queue);
                let stop = Arc::clone(&core.stop);
                readers.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, &queue, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                core.finish();
                return Err(e);
            }
        }
    }
    core.finish();
    for reader in readers {
        let _ = reader.join();
    }
    Ok(())
}

/// One connection's read loop: parse lines, enqueue jobs, poll the
/// stop flag between reads via a socket timeout.
fn serve_connection(stream: TcpStream, queue: &JobQueue, stop: &AtomicBool) -> std::io::Result<()> {
    let _span = obs_core::span("serve.accept");
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    // Frames are written whole (see `process_job`); Nagle only adds
    // delayed-ACK stalls between pipelined requests.
    stream.set_nodelay(true)?;
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(stream.try_clone()?)));
    let mut reader = BufReader::new(stream);
    loop {
        match read_bounded_line(&mut reader, MAX_LINE_BYTES, || stop.load(Ordering::SeqCst)) {
            Ok(None) => break,
            Ok(Some(Ok(line))) if line.trim().is_empty() => continue,
            Ok(Some(line)) => {
                if !queue.push(Job {
                    line,
                    writer: Arc::clone(&writer),
                }) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}
