//! # camj-serve — the CamJ estimation daemon
//!
//! Promotes the one-shot `camj` CLI into a long-lived service: every
//! `estimate`/`sweep`/`pareto`/`search` request from every client hits
//! one process-wide, warm, content-addressed
//! [`EstimateCache`](camj_core::energy::EstimateCache) instead of
//! rebuilding state per invocation — the "millions of users" traffic
//! shape where the second requester of any design point pays
//! milliseconds, not minutes.
//!
//! The pieces, bottom-up:
//!
//! * [`protocol`] — newline-delimited JSON frames: [`Request`] in,
//!   `point`/`result`/`error`/`done` [`Frame`]s out, all id-tagged,
//!   with path-qualified rejection of malformed lines (never a
//!   disconnect, never a panic);
//! * [`tier`] — the on-disk cache tier under `--cache-dir`:
//!   content-addressed, version-stamped, digest-verified entries,
//!   written through on every compute (`fsync` + atomic rename), so
//!   warm starts survive daemon restarts and corruption degrades to a
//!   recompute, never a wrong answer;
//! * [`handler`] — per-kind execution with CLI parity, plus request
//!   dedup: identical in-flight requests join one computation slot and
//!   completed responses replay from memory;
//! * [`server`] — blocking I/O: a thread-per-connection accept loop
//!   (TCP, or `--stdio` for tests/CI) feeding a bounded job queue with
//!   backpressure into a fixed worker pool, each job wrapped in
//!   `catch_unwind` so a panicking request answers with an `error`
//!   frame while the daemon stays up;
//! * [`client`] — the `camj --connect` side: one request, collect
//!   frames until `done`.
//!
//! Observability rides the `obs_core` facade: `serve.request` spans,
//! `serve.accept` counters/spans, `serve.queue_wait` backpressure
//! spans, `serve.dedup.hit` counters, and the estimate cache's
//! `cache.tier.*` hit/miss/store counters, all visible through the
//! daemon-level `--trace`/`--metrics` flags.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod handler;
pub mod protocol;
pub mod server;
pub mod tier;

pub use client::roundtrip;
pub use handler::SharedState;
pub use protocol::{Frame, FrameKind, Request, RequestKind};
pub use server::{serve_stdio, serve_tcp, ServeConfig};
pub use tier::{DiskTier, TierStats};
