//! The on-disk cache tier: a content-addressed byte store under
//! `--cache-dir`, implementing [`PersistentTier`] so the process-wide
//! [`EstimateCache`](camj_core::energy::EstimateCache) survives daemon
//! restarts.
//!
//! ## Entry format
//!
//! One artifact per file, `<root>/<family>/<fingerprint>.entry`:
//!
//! ```text
//! camj-tier v1 <family> <fingerprint> <payload-digest> <payload-len>\n
//! <payload bytes>
//! ```
//!
//! The single-line ASCII header is self-describing: a version token
//! (bumping [`TIER_VERSION`] invalidates every older entry), the
//! family and fingerprint (so a renamed or hand-copied file can never
//! serve the wrong key), and the payload's length and content digest.
//!
//! ## Corruption recovery
//!
//! [`DiskTier::load`] returns the payload only when every header field
//! checks out **and** the recomputed digest matches. A truncated,
//! bit-flipped, version-stale, or misnamed entry is reported as a miss
//! — the caller recomputes and the write-through below replaces the
//! bad file — so a damaged cache directory can degrade performance but
//! never correctness.
//!
//! ## Durability
//!
//! [`DiskTier::store`] writes to a temporary sibling, `fsync`s it, and
//! renames it into place, so a crash mid-store leaves either the old
//! entry or the new one — never a torn file that parses.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

use camj_core::energy::PersistentTier;
use camj_tech::fingerprint::{Fingerprint, FpHasher};

/// Version token in every entry header; bump to invalidate the tier.
pub const TIER_VERSION: &str = "v1";

/// Counters a [`DiskTier`] keeps about itself, surfaced through the
/// daemon's `stats` request. Volatile: never part of a result body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Entries served intact.
    pub hits: u64,
    /// Lookups with no entry on disk.
    pub misses: u64,
    /// Entries rejected for a digest/length/key mismatch.
    pub corrupt: u64,
    /// Entries rejected for a version-token mismatch.
    pub stale: u64,
    /// Entries written (including rewrites of rejected ones).
    pub writes: u64,
}

impl TierStats {
    /// The stats as an ordered JSON object.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut m = serde_json::Map::new();
        m.insert(
            "hits",
            Value::Number(serde_json::Number::from_u64(self.hits)),
        );
        m.insert(
            "misses",
            Value::Number(serde_json::Number::from_u64(self.misses)),
        );
        m.insert(
            "corrupt",
            Value::Number(serde_json::Number::from_u64(self.corrupt)),
        );
        m.insert(
            "stale",
            Value::Number(serde_json::Number::from_u64(self.stale)),
        );
        m.insert(
            "writes",
            Value::Number(serde_json::Number::from_u64(self.writes)),
        );
        Value::Object(m)
    }
}

/// The on-disk tier. Cheap to share: all state is the root path plus
/// relaxed counters.
#[derive(Debug)]
pub struct DiskTier {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    stale: AtomicU64,
    writes: AtomicU64,
}

impl DiskTier {
    /// Opens (creating if needed) a tier rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The tier's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of the tier's counters.
    #[must_use]
    pub fn stats(&self) -> TierStats {
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// The entry path for a key.
    #[must_use]
    pub fn entry_path(&self, family: &str, fp: Fingerprint) -> PathBuf {
        self.root.join(family).join(format!("{fp}.entry"))
    }

    /// Content digest of a payload, printed like a fingerprint.
    fn digest(payload: &[u8]) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_str("camj-tier.payload");
        h.write_bytes(payload);
        h.finish()
    }

    /// Parses + verifies an entry file's bytes; `None` on any mismatch.
    fn verify<'a>(&self, family: &str, fp: Fingerprint, bytes: &'a [u8]) -> Option<&'a [u8]> {
        let newline = bytes.iter().position(|b| *b == b'\n')?;
        let header = std::str::from_utf8(&bytes[..newline]).ok()?;
        let payload = &bytes[newline + 1..];
        let mut fields = header.split(' ');
        if fields.next() != Some("camj-tier") {
            return None;
        }
        if fields.next() != Some(TIER_VERSION) {
            self.stale.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let intact = fields.next() == Some(family)
            && fields.next() == Some(fp.to_string().as_str())
            && fields.next() == Some(Self::digest(payload).to_string().as_str())
            && fields.next() == Some(payload.len().to_string().as_str())
            && fields.next().is_none();
        if !intact {
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(payload)
    }
}

impl PersistentTier for DiskTier {
    fn load(&self, family: &'static str, fp: Fingerprint) -> Option<Vec<u8>> {
        let bytes = match fs::read(self.entry_path(family, fp)) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match self.verify(family, fp, &bytes) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            // verify() already classified the rejection (corrupt or
            // stale); a truncated file with no newline lands here too.
            None => None,
        }
    }

    fn store(&self, family: &'static str, fp: Fingerprint, payload: &[u8]) {
        let path = self.entry_path(family, fp);
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let header = format!(
            "camj-tier {TIER_VERSION} {family} {fp} {} {}\n",
            Self::digest(payload),
            payload.len()
        );
        // Unique temp sibling per writer, then an atomic rename: a
        // crash leaves the old entry or the new one, never a torn mix.
        let tmp = path.with_extension(format!("tmp.{:x}", thread_token()));
        let written = (|| -> std::io::Result<()> {
            let mut file = File::create(&tmp)?;
            file.write_all(header.as_bytes())?;
            file.write_all(payload)?;
            file.sync_all()?;
            fs::rename(&tmp, &path)
        })();
        if written.is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
    }
}

/// A token unique per thread within the process, for temp-file names.
/// (Two daemons sharing a cache dir still can't collide destructively:
/// the rename target is content-addressed, so both writers rename
/// byte-identical files.)
fn thread_token() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    std::process::id().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_tech::fingerprint::Fingerprintable;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("camj-tier-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_survives_reopen() {
        let root = temp_root("roundtrip");
        let fp = ("entry", 1u32).fingerprint();
        {
            let tier = DiskTier::open(&root).unwrap();
            tier.store("energy", fp, b"payload bytes");
            assert_eq!(
                tier.load("energy", fp).as_deref(),
                Some(&b"payload bytes"[..])
            );
        }
        let reopened = DiskTier::open(&root).unwrap();
        assert_eq!(
            reopened.load("energy", fp).as_deref(),
            Some(&b"payload bytes"[..])
        );
        assert_eq!(reopened.stats().hits, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn rejects_corrupt_truncated_and_stale_entries() {
        let root = temp_root("damage");
        let tier = DiskTier::open(&root).unwrap();
        let fp = ("entry", 2u32).fingerprint();
        tier.store("energy", fp, b"precious");
        let path = tier.entry_path("energy", fp);

        // Bit flip in the payload: digest mismatch.
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(tier.load("energy", fp), None);
        assert_eq!(tier.stats().corrupt, 1);

        // Truncation: length (and digest) mismatch.
        tier.store("energy", fp, b"precious");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(tier.load("energy", fp), None);

        // Version bump: stale, not corrupt.
        tier.store("energy", fp, b"precious");
        let text = fs::read(&path).unwrap();
        let text = String::from_utf8(text).unwrap().replacen("v1", "v0", 1);
        fs::write(&path, text).unwrap();
        assert_eq!(tier.load("energy", fp), None);
        assert_eq!(tier.stats().stale, 1);

        // A fresh store heals every case.
        tier.store("energy", fp, b"precious");
        assert_eq!(tier.load("energy", fp).as_deref(), Some(&b"precious"[..]));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn families_and_keys_never_alias() {
        let root = temp_root("alias");
        let tier = DiskTier::open(&root).unwrap();
        let a = ("entry", 3u32).fingerprint();
        let b = ("entry", 4u32).fingerprint();
        tier.store("energy", a, b"for a");
        tier.store("stall", a, b"stall a");
        assert_eq!(tier.load("energy", a).as_deref(), Some(&b"for a"[..]));
        assert_eq!(tier.load("stall", a).as_deref(), Some(&b"stall a"[..]));
        assert_eq!(tier.load("energy", b), None);
        // A hand-copied entry under the wrong key is detected, not
        // served: the header pins the fingerprint.
        fs::copy(tier.entry_path("energy", a), tier.entry_path("energy", b)).unwrap();
        assert_eq!(tier.load("energy", b), None);
        assert!(tier.stats().corrupt >= 1);
        let _ = fs::remove_dir_all(&root);
    }
}
