//! The wire protocol: newline-delimited JSON frames.
//!
//! Every message — request or response — is one JSON object on one
//! line, terminated by `\n`. A client sends [`Request`] lines; the
//! server answers each with zero or more [`Frame`] lines and exactly
//! one terminal `done` frame, all carrying the request's `id` so a
//! pipelining client can match responses even when the daemon
//! interleaves them.
//!
//! The frame layout is **flat** — a `frame` discriminant plus optional
//! per-kind fields — rather than an internally-tagged enum, so the
//! encoding stays a plain struct round trip (`Option` fields are
//! simply absent) and a frame never needs two-pass parsing:
//!
//! ```text
//! {"id":7,"frame":"point","seq":0,"body":{...}}        streamed row
//! {"id":7,"frame":"result","body":{...}}               final payload
//! {"id":7,"frame":"error","path":"request.kind","message":"..."}
//! {"id":7,"frame":"done","frames":3}                   terminator
//! ```
//!
//! Malformed input never disconnects: a line that fails to parse (bad
//! JSON, unknown kind, oversized line) produces an `error` frame whose
//! `path` names the offending field — `request`, `request.kind`,
//! `request.design`, … — followed by `done`, and the connection keeps
//! reading.

use serde::{Deserialize, Serialize};
use serde_json::Value;

use camj_tech::fingerprint::{Fingerprint, FpHasher};

/// Hard cap on one protocol line, in bytes. Inline designs are tens of
/// kilobytes; anything past this is a client bug (or garbage on the
/// port) and is rejected with an `error` frame, not read into memory.
pub const MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Protocol version, stamped into request fingerprints (and the disk
/// tier's entry headers) so incompatible encodings never alias.
pub const PROTOCOL_VERSION: u32 = 1;

/// What a request asks the daemon to do. Mirrors the CLI subcommands
/// one-to-one, plus daemon-only `stats` and `shutdown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RequestKind {
    /// Parse + validate the inline design; no estimation.
    Validate,
    /// One energy estimate (optionally at an overridden frame rate).
    Estimate,
    /// Noise-aware functional simulation of one frame (or a
    /// Monte-Carlo batch when `samples > 1`).
    Simulate,
    /// Frame-rate sweep through the incremental engine; streams one
    /// `point` frame per row before the final `result`.
    Sweep,
    /// Multi-objective Pareto exploration over the frame-rate grid.
    Pareto,
    /// Adaptive frontier search.
    Search,
    /// Volatile daemon statistics: request/dedup counters, in-memory
    /// cache stats, disk-tier stats. Never deduplicated, never part of
    /// a deterministic result body.
    Stats,
    /// Stop the daemon after answering.
    Shutdown,
}

impl RequestKind {
    /// The wire spelling of every kind, for error messages.
    pub const ALL: [&'static str; 8] = [
        "validate", "estimate", "simulate", "sweep", "pareto", "search", "stats", "shutdown",
    ];

    /// The wire spelling of this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Validate => "validate",
            RequestKind::Estimate => "estimate",
            RequestKind::Simulate => "simulate",
            RequestKind::Sweep => "sweep",
            RequestKind::Pareto => "pareto",
            RequestKind::Search => "search",
            RequestKind::Stats => "stats",
            RequestKind::Shutdown => "shutdown",
        }
    }
}

/// Feasibility budgets for `pareto`/`search` requests; mirrors the
/// description IR's `sweep.constraints` block (present request fields
/// override the whole description block, exactly like CLI flags).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConstraintsReq {
    /// Worst per-layer power density budget, mW/mm².
    pub max_power_density_mw_per_mm2: Option<f64>,
    /// Digital latency budget, ms.
    pub max_digital_latency_ms: Option<f64>,
    /// Total per-frame energy budget, pJ.
    pub max_total_energy_pj: Option<f64>,
}

impl ConstraintsReq {
    /// Whether any budget is present.
    #[must_use]
    pub fn any(&self) -> bool {
        self.max_power_density_mw_per_mm2.is_some()
            || self.max_digital_latency_ms.is_some()
            || self.max_total_energy_pj.is_some()
    }
}

/// One client request. Fields beyond `kind` are per-kind knobs with
/// the same defaults as the CLI flags they mirror; absent fields fall
/// back to the inline design's `sweep` block where one exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed on every response frame.
    /// Keep it at or below 2^53: JSON interop treats numbers as IEEE
    /// doubles, so larger ids lose precision in transit.
    #[serde(default)]
    pub id: u64,
    /// What to do.
    pub kind: RequestKind,
    /// The inline camj-desc design description (the same JSON a
    /// description file holds). Required by every kind except `stats`
    /// and `shutdown`.
    pub design: Option<Value>,
    /// Frame-rate targets. `estimate`/`simulate` take at most one;
    /// sweeps take the full list (default: the design's `sweep.fps`).
    pub fps: Option<Vec<f64>>,
    /// RNG seed (`simulate`, `search`).
    pub seed: Option<u64>,
    /// Monte-Carlo sample count (`simulate`; 1..=1024).
    pub samples: Option<u32>,
    /// Stimulus spec (`simulate`; `uniform:<level>` or
    /// `gradient:<low>,<high>`).
    pub stimulus: Option<String>,
    /// Objective names (`pareto`, `search`).
    pub objectives: Option<Vec<String>>,
    /// Feasibility budgets (`pareto`, `search`).
    pub constraints: Option<ConstraintsReq>,
    /// Search population (`search`).
    pub population: Option<u64>,
    /// Search generation cap (`search`).
    pub generations: Option<u64>,
    /// Search evaluation budget (`search`).
    pub budget: Option<u64>,
    /// Fault-injection directive, honored only when the daemon runs
    /// with `--fault-injection` (tests): `"panic"` makes the handler
    /// panic mid-request to exercise panic isolation.
    pub fault: Option<String>,
}

impl Request {
    /// A bare request of the given kind; every knob unset.
    #[must_use]
    pub fn new(kind: RequestKind) -> Self {
        Self {
            id: 0,
            kind,
            design: None,
            fps: None,
            seed: None,
            samples: None,
            stimulus: None,
            objectives: None,
            constraints: None,
            population: None,
            generations: None,
            budget: None,
            fault: None,
        }
    }

    /// Content fingerprint of everything the execution reads — the
    /// request with its `id` zeroed — used as the dedup key: two
    /// clients submitting the same work join the same in-flight slot
    /// regardless of their correlation ids.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        let mut canonical = self.clone();
        canonical.id = 0;
        let json = serde_json::to_string(&canonical).unwrap_or_default();
        let mut h = FpHasher::new();
        h.write_str("camj-serve.request");
        h.write_u32(PROTOCOL_VERSION);
        h.write_str(&json);
        h.finish()
    }
}

/// Response frame discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FrameKind {
    /// One streamed per-point row of a sweep (`seq`, `body`).
    Point,
    /// The request's final payload (`body`).
    Result,
    /// A failure, path-qualified (`path`, `message`). Non-terminal:
    /// `done` still follows.
    Error,
    /// Terminator: always the last frame of a response (`frames` =
    /// how many frames preceded it).
    Done,
}

/// One response frame. See the module docs for the wire layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// The originating request's `id` (0 when the request was too
    /// malformed to carry one).
    #[serde(default)]
    pub id: u64,
    /// Frame discriminant.
    pub frame: FrameKind,
    /// Row index, dense from 0 in grid order (`point` frames).
    pub seq: Option<u64>,
    /// Payload (`point` and `result` frames).
    pub body: Option<Value>,
    /// Dotted path to the offending field (`error` frames), e.g.
    /// `request.kind` or `request.design`.
    pub path: Option<String>,
    /// Human-readable failure description (`error` frames).
    pub message: Option<String>,
    /// Number of frames that preceded this terminator (`done` frames).
    pub frames: Option<u64>,
}

impl Frame {
    fn bare(frame: FrameKind) -> Self {
        Self {
            id: 0,
            frame,
            seq: None,
            body: None,
            path: None,
            message: None,
            frames: None,
        }
    }

    /// A streamed sweep row.
    #[must_use]
    pub fn point(seq: u64, body: Value) -> Self {
        Self {
            seq: Some(seq),
            body: Some(body),
            ..Self::bare(FrameKind::Point)
        }
    }

    /// The final payload.
    #[must_use]
    pub fn result(body: Value) -> Self {
        Self {
            body: Some(body),
            ..Self::bare(FrameKind::Result)
        }
    }

    /// A path-qualified failure.
    #[must_use]
    pub fn error(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: Some(path.into()),
            message: Some(message.into()),
            ..Self::bare(FrameKind::Error)
        }
    }

    /// The terminator.
    #[must_use]
    pub fn done(frames: u64) -> Self {
        Self {
            frames: Some(frames),
            ..Self::bare(FrameKind::Done)
        }
    }

    /// The same frame re-stamped with a request id.
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }
}

/// A parse/validation failure, qualified by the dotted path of the
/// offending field. Converts 1:1 into an `error` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// Dotted field path, rooted at `request`.
    pub path: String,
    /// What went wrong.
    pub message: String,
    /// The request's `id`, when the line parsed far enough to read it.
    pub id: u64,
}

impl Reject {
    /// A rejection at `path`.
    #[must_use]
    pub fn at(path: &str, message: impl Into<String>) -> Self {
        Self {
            path: path.to_owned(),
            message: message.into(),
            id: 0,
        }
    }

    /// The `error` frame this rejection renders as.
    #[must_use]
    pub fn frame(&self) -> Frame {
        Frame::error(self.path.clone(), self.message.clone()).with_id(self.id)
    }
}

/// Parses one request line. Never panics; every failure is a
/// path-qualified [`Reject`] carrying the request id when the line
/// parsed far enough to have one.
pub fn parse_request(line: &str) -> Result<Request, Reject> {
    if line.len() > MAX_LINE_BYTES {
        return Err(Reject::at(
            "request",
            format!(
                "line of {} bytes exceeds the {} byte limit",
                line.len(),
                MAX_LINE_BYTES
            ),
        ));
    }
    let value: Value = serde_json::from_str(line)
        .map_err(|e| Reject::at("request", format!("invalid JSON: {e}")))?;
    let Some(object) = value.as_object() else {
        return Err(Reject::at(
            "request",
            format!("a request must be a JSON object, got {}", value.kind()),
        ));
    };
    // Best-effort id extraction so even a rejected line's error frame
    // correlates back to the client's request.
    let id = object
        .get("id")
        .and_then(Value::as_f64)
        .filter(|v| v.fract() == 0.0 && *v >= 0.0)
        .map_or(0, |v| v as u64);
    let qualify = |mut reject: Reject| {
        reject.id = id;
        reject
    };
    // Pre-check the discriminant by hand so an unknown kind reports at
    // `request.kind`, not as an opaque whole-struct decode failure.
    match object.get("kind") {
        None => return Err(qualify(Reject::at("request.kind", "missing request kind"))),
        Some(Value::String(kind)) if !RequestKind::ALL.contains(&kind.as_str()) => {
            return Err(qualify(Reject::at(
                "request.kind",
                format!(
                    "unknown request kind '{kind}' (expected one of: {})",
                    RequestKind::ALL.join(", ")
                ),
            )));
        }
        Some(Value::String(_)) => {}
        Some(other) => {
            return Err(qualify(Reject::at(
                "request.kind",
                format!("request kind must be a string, got {}", other.kind()),
            )));
        }
    }
    serde_json::from_value::<Request>(&value)
        .map_err(|e| qualify(Reject::at("request", format!("malformed request: {e}"))))
}

/// Serializes a request as one protocol line (no trailing newline).
#[must_use]
pub fn serialize_request(request: &Request) -> String {
    serde_json::to_string(request).unwrap_or_default()
}

/// Parses one response frame line (the client side of the protocol).
pub fn parse_frame(line: &str) -> Result<Frame, Reject> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| Reject::at("frame", format!("invalid JSON: {e}")))?;
    serde_json::from_value::<Frame>(&value)
        .map_err(|e| Reject::at("frame", format!("malformed frame: {e}")))
}

/// Serializes a frame as one protocol line (no trailing newline).
#[must_use]
pub fn serialize_frame(frame: &Frame) -> String {
    serde_json::to_string(frame).unwrap_or_default()
}

/// The prefix every id-less rendered frame line starts with: `id` is
/// the first declared [`Frame`] field and the serializer emits fields
/// in declaration order. [`stamp_line`] relies on this; a unit test
/// pins it.
const ID_ZERO_PREFIX: &str = "{\"id\":0,";

/// Rewrites an id-less rendered frame line (as produced by the
/// handler) to carry `id` — the replay fast path: dedup slots store
/// finished strings, and a late arrival splices its correlation id in
/// instead of deep-cloning and re-serializing frame bodies.
#[must_use]
pub fn stamp_line(line: &str, id: u64) -> String {
    debug_assert!(
        line.starts_with(ID_ZERO_PREFIX),
        "rendered frames must be id-less: {line}"
    );
    if id == 0 || !line.starts_with(ID_ZERO_PREFIX) {
        return line.to_owned();
    }
    format!("{{\"id\":{id},{}", &line[ID_ZERO_PREFIX.len()..])
}
