//! Request execution against the daemon's shared state: one
//! process-wide [`EstimateCache`] (optionally disk-backed), a request
//! dedup map, and the per-kind handlers mirroring the CLI subcommands.
//!
//! ## Dedup / in-flight contract
//!
//! Deterministic request kinds (`estimate`, `simulate`, `sweep`,
//! `pareto`, `search`) are keyed by [`Request::fingerprint`] — the
//! request with its correlation id zeroed — into a map of per-request
//! `OnceLock` slots, the same shape the estimate cache uses per entry:
//!
//! * two clients submitting the same fingerprint **join the same
//!   in-flight slot** — the computation runs once, late arrivals block
//!   on the slot and replay the finished frames under their own id;
//! * completed slots stay resident, so a repeat of any earlier request
//!   is answered from memory without touching the estimation stack
//!   (this is what makes a warm repeat orders of magnitude faster);
//! * a handler panic propagates out of `get_or_init` leaving the slot
//!   **uninitialized** — the panicking request gets a structured
//!   `error` frame from the worker's `catch_unwind`, and the next
//!   identical request recomputes cleanly instead of replaying a
//!   half-built response.
//!
//! `validate` is cheap and side-effect-free, and `stats`/`shutdown`
//! are volatile by design; none of them deduplicate. A request
//! carrying a `fault` directive never enters the map either, so
//! injected failures can't poison real traffic.
//!
//! Result bodies are **deterministic**: they exclude cache statistics
//! and any other warmth-dependent value (the `stats` request exposes
//! those separately), so a cold daemon, a tier-warmed daemon, and a
//! dedup replay all produce byte-identical frames for the same
//! request.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use serde_json::Value;

use camj_core::energy::{EstimateCache, ValidatedModel};
use camj_core::functional::Stimulus;
use camj_desc::DesignDesc;
use camj_explore::{Constraint, Explorer, Objective, ParetoQuery, SearchSpec, Sweep};
use camj_tech::fingerprint::Fingerprint;

use crate::protocol::{serialize_frame, Frame, Request, RequestKind};
use crate::tier::DiskTier;

/// A finished response: the id-less wire lines of one request's frames.
type Rendered = Arc<Vec<String>>;

/// One in-flight/completed dedup slot (same shape as a cache entry).
type DedupSlot = Arc<OnceLock<Rendered>>;

/// The daemon's process-wide shared state.
#[derive(Debug)]
pub struct SharedState {
    cache: Arc<EstimateCache>,
    tier: Option<Arc<DiskTier>>,
    fault_injection: bool,
    requests: AtomicU64,
    dedup_hits: AtomicU64,
    dedup: Mutex<HashMap<Fingerprint, DedupSlot>>,
}

impl SharedState {
    /// Builds the daemon state: a fresh estimate cache, disk-backed
    /// when `cache_dir` is given. `fault_injection` arms the request
    /// `fault` directive (tests only).
    pub fn new(cache_dir: Option<&Path>, fault_injection: bool) -> std::io::Result<Self> {
        let tier = match cache_dir {
            Some(dir) => Some(Arc::new(DiskTier::open(dir)?)),
            None => None,
        };
        let cache = match &tier {
            Some(tier) => EstimateCache::shared_with_tier(Arc::clone(tier) as _),
            None => EstimateCache::shared(),
        };
        Ok(Self {
            cache,
            tier,
            fault_injection,
            requests: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            dedup: Mutex::new(HashMap::new()),
        })
    }

    /// The shared estimate cache (tests inspect its stats).
    #[must_use]
    pub fn cache(&self) -> &Arc<EstimateCache> {
        &self.cache
    }

    /// Answers one request: the response frames, pre-rendered as
    /// id-less protocol lines (the caller stamps the client's id with
    /// [`crate::protocol::stamp_line`]) and whether the daemon should
    /// stop afterwards. Rendering once at compute time is what makes a
    /// dedup replay nearly free: late arrivals splice their id into
    /// finished strings instead of re-serializing frame bodies.
    ///
    /// May panic (a handler bug, or an armed `fault` directive); the
    /// worker loop catches that and renders a structured error frame,
    /// keeping the daemon up.
    pub fn respond(&self, request: &Request) -> (Rendered, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let _span = obs_core::span("serve.request");
        match request.kind {
            RequestKind::Shutdown => {
                let mut body = serde_json::Map::new();
                body.insert("stopping", Value::Bool(true));
                (
                    Arc::new(render(&[Frame::result(Value::Object(body))])),
                    true,
                )
            }
            RequestKind::Stats | RequestKind::Validate => {
                (Arc::new(render(&self.execute(request))), false)
            }
            _ if request.fault.is_some() => (Arc::new(render(&self.execute(request))), false),
            _ => (self.deduped(request), false),
        }
    }

    /// The dedup path: join or create the in-flight slot for this
    /// request's fingerprint, computing at most once process-wide.
    fn deduped(&self, request: &Request) -> Rendered {
        let fp = request.fingerprint();
        let slot = {
            let mut map = self.dedup.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&fp) {
                Some(slot) => {
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    obs_core::counter("serve.dedup.hit", 0, 1);
                    Arc::clone(slot)
                }
                None => {
                    let slot = Arc::new(OnceLock::new());
                    map.insert(fp, Arc::clone(&slot));
                    slot
                }
            }
        };
        Arc::clone(slot.get_or_init(|| Arc::new(render(&self.execute(request)))))
    }

    /// Executes a request unconditionally (no dedup), returning the
    /// id-less response frames.
    fn execute(&self, request: &Request) -> Vec<Frame> {
        if self.fault_injection && request.fault.as_deref() == Some("panic") {
            panic!("injected fault: request asked the handler to panic");
        }
        match request.kind {
            RequestKind::Validate => self.run_validate(request),
            RequestKind::Estimate => self.run_estimate(request),
            RequestKind::Simulate => self.run_simulate(request),
            RequestKind::Sweep => self.run_sweep(request),
            RequestKind::Pareto => self.run_pareto(request, false),
            RequestKind::Search => self.run_pareto(request, true),
            RequestKind::Stats => self.run_stats(),
            // Handled in respond(); unreachable through the public path.
            RequestKind::Shutdown => vec![],
        }
    }

    fn run_validate(&self, request: &Request) -> Vec<Frame> {
        match load_design(request) {
            Err(frame) => vec![*frame],
            Ok((desc, _model)) => {
                let mut body = serde_json::Map::new();
                body.insert("ok", Value::Bool(true));
                body.insert("name", Value::String(desc.name.clone()));
                body.insert("fps", Value::Number(serde_json::Number::from_f64(desc.fps)));
                vec![Frame::result(Value::Object(body))]
            }
        }
    }

    fn run_estimate(&self, request: &Request) -> Vec<Frame> {
        let fps = match single_fps(request) {
            Ok(fps) => fps,
            Err(frame) => return vec![*frame],
        };
        let (_desc, model) = match load_design_at(request, fps) {
            Ok(x) => x,
            Err(frame) => return vec![*frame],
        };
        let model = model.with_cache(Arc::clone(&self.cache));
        match model.estimate() {
            Ok(report) => vec![Frame::result(serde_json::to_value(&report))],
            Err(e) => vec![Frame::error(
                "request.design",
                format!("estimation failed: {e}"),
            )],
        }
    }

    fn run_simulate(&self, request: &Request) -> Vec<Frame> {
        let fps = match single_fps(request) {
            Ok(fps) => fps,
            Err(frame) => return vec![*frame],
        };
        let seed = request.seed.unwrap_or(42);
        let samples = request.samples.unwrap_or(1);
        if !(1..=1024).contains(&samples) {
            return vec![Frame::error(
                "request.samples",
                format!("samples must be in 1..=1024, got {samples}"),
            )];
        }
        let flag_stimulus = match request.stimulus.as_deref() {
            None => None,
            Some(text) => match text.parse::<Stimulus>() {
                Ok(s) => Some(s),
                Err(e) => return vec![Frame::error("request.stimulus", e)],
            },
        };
        let (_desc, model) = match load_design_at(request, fps) {
            Ok(x) => x,
            Err(frame) => return vec![*frame],
        };
        // `request.stimulus` overrides the design's own stimulus block,
        // which load_design_at already attached to the model.
        let stimulus = flag_stimulus.unwrap_or_else(|| model.stimulus().clone());
        let model = model.with_cache(Arc::clone(&self.cache));
        let simulated = if samples > 1 {
            let seeds: Vec<u64> = (0..u64::from(samples))
                .map(|i| seed.wrapping_add(i))
                .collect();
            model
                .simulate_frames(&seeds, &stimulus)
                .map(|mc| serde_json::to_value(&mc))
        } else {
            model
                .simulate_frame(seed, &stimulus)
                .map(|report| serde_json::to_value(&report))
        };
        match simulated {
            Ok(body) => vec![Frame::result(body)],
            Err(e) => vec![Frame::error(
                "request.design",
                format!("functional simulation failed: {e}"),
            )],
        }
    }

    fn run_sweep(&self, request: &Request) -> Vec<Frame> {
        let (desc, model) = match load_design(request) {
            Ok(x) => x,
            Err(frame) => return vec![*frame],
        };
        let targets = match sweep_targets(request, &desc) {
            Ok(t) => t,
            Err(frame) => return vec![*frame],
        };
        let sweep = Sweep::new().fps_targets(targets);
        let results = Explorer::new().sweep_incremental(&sweep, &self.cache, |point| {
            Ok(model.with_fps(point.fps("fps")))
        });
        // Stream one `point` frame per row, then the full deterministic
        // body (rows + `"cache": null`, matching `to_json(None)`).
        let rows = results.to_json_rows();
        let mut frames: Vec<Frame> = rows
            .iter()
            .enumerate()
            .map(|(seq, row)| Frame::point(seq as u64, row.clone()))
            .collect();
        let mut body = serde_json::Map::new();
        body.insert("points", Value::Array(rows));
        body.insert("cache", Value::Null);
        frames.push(Frame::result(Value::Object(body)));
        frames
    }

    /// `pareto` and `search` share their whole request surface; search
    /// adds the adaptive-search knobs.
    fn run_pareto(&self, request: &Request, search: bool) -> Vec<Frame> {
        let (desc, model) = match load_design(request) {
            Ok(x) => x,
            Err(frame) => return vec![*frame],
        };
        let targets = match sweep_targets(request, &desc) {
            Ok(t) => t,
            Err(frame) => return vec![*frame],
        };
        let spec = desc.sweep.as_ref();
        let names: Vec<String> = match (&request.objectives, spec) {
            (Some(list), _) => list.clone(),
            (None, Some(sweep)) => sweep
                .objectives
                .clone()
                .unwrap_or_else(default_objective_names),
            (None, None) => default_objective_names(),
        };
        let mut objectives = Vec::with_capacity(names.len());
        for name in &names {
            match name.parse::<Objective>() {
                Ok(o) => objectives.push(o),
                Err(e) => return vec![Frame::error("request.objectives", e)],
            }
        }
        if objectives.is_empty() {
            return vec![Frame::error(
                "request.objectives",
                "at least one objective is required",
            )];
        }
        let mut query = ParetoQuery::new(objectives);
        // Request constraints override the description's whole block,
        // exactly like CLI constraint flags.
        let budgets: Vec<BudgetRow> = match (
            &request.constraints,
            spec.and_then(|s| s.constraints.as_ref()),
        ) {
            (Some(c), _) if c.any() => vec![
                (
                    c.max_power_density_mw_per_mm2,
                    "request.constraints.max_power_density_mw_per_mm2",
                    Constraint::MaxPowerDensity as fn(f64) -> Constraint,
                ),
                (
                    c.max_digital_latency_ms,
                    "request.constraints.max_digital_latency_ms",
                    Constraint::MaxDigitalLatency,
                ),
                (
                    c.max_total_energy_pj,
                    "request.constraints.max_total_energy_pj",
                    Constraint::MaxTotalEnergy,
                ),
            ],
            (_, Some(c)) => vec![
                (
                    c.max_power_density_mw_per_mm2,
                    "request.design",
                    Constraint::MaxPowerDensity as fn(f64) -> Constraint,
                ),
                (
                    c.max_digital_latency_ms,
                    "request.design",
                    Constraint::MaxDigitalLatency,
                ),
                (
                    c.max_total_energy_pj,
                    "request.design",
                    Constraint::MaxTotalEnergy,
                ),
            ],
            _ => vec![],
        };
        for (value, path, make) in budgets {
            let Some(budget) = value else { continue };
            if !(budget.is_finite() && budget > 0.0) {
                return vec![Frame::error(
                    path,
                    format!("constraint budgets must be positive and finite, got {budget}"),
                )];
            }
            query = query.constrain(make(budget));
        }
        let sweep = Sweep::new().fps_targets(targets);
        if !search {
            let results = Explorer::new().pareto(&sweep, &self.cache, &query, |point| {
                Ok(model.with_fps(point.fps("fps")))
            });
            return vec![Frame::result(reparse(&results.to_json(None)))];
        }
        let mut search_spec = SearchSpec::new();
        if let Some(ir) = spec.and_then(|s| s.search.as_ref()) {
            if let Some(n) = ir.population {
                search_spec = search_spec.population(clamp_to_usize(n));
            }
            if let Some(n) = ir.generations {
                search_spec = search_spec.generations(clamp_to_usize(n));
            }
            if let Some(n) = ir.seed {
                search_spec = search_spec.seed(n);
            }
            if let Some(n) = ir.budget {
                search_spec = search_spec.budget(clamp_to_usize(n));
            }
        }
        let knobs = [
            (request.population, "request.population"),
            (request.generations, "request.generations"),
            (request.budget, "request.budget"),
        ];
        for (value, path) in knobs {
            let Some(n) = value else { continue };
            if n == 0 {
                return vec![Frame::error(path, "must be a positive integer")];
            }
            search_spec = match path {
                "request.population" => search_spec.population(clamp_to_usize(n)),
                "request.generations" => search_spec.generations(clamp_to_usize(n)),
                _ => search_spec.budget(clamp_to_usize(n)),
            };
        }
        if let Some(seed) = request.seed {
            search_spec = search_spec.seed(seed);
        }
        let results = Explorer::new().search(&sweep, &self.cache, &query, &search_spec, |point| {
            Ok(model.with_fps(point.fps("fps")))
        });
        vec![Frame::result(reparse(&results.to_json(None)))]
    }

    fn run_stats(&self) -> Vec<Frame> {
        let mut body = serde_json::Map::new();
        body.insert(
            "requests",
            Value::Number(serde_json::Number::from_u64(
                self.requests.load(Ordering::Relaxed),
            )),
        );
        body.insert(
            "dedup_hits",
            Value::Number(serde_json::Number::from_u64(
                self.dedup_hits.load(Ordering::Relaxed),
            )),
        );
        body.insert("cache", serde_json::to_value(&self.cache.stats()));
        body.insert(
            "tier",
            match &self.tier {
                Some(tier) => tier.stats().to_value(),
                None => Value::Null,
            },
        );
        vec![Frame::result(Value::Object(body))]
    }
}

/// One constraint budget: its value, the error path to blame when it
/// is invalid, and the [`Constraint`] constructor it feeds.
type BudgetRow = (Option<f64>, &'static str, fn(f64) -> Constraint);

/// Renders frames into their wire lines (id-less: every frame here
/// carries id 0, which [`crate::protocol::stamp_line`] rewrites).
fn render(frames: &[Frame]) -> Vec<String> {
    frames.iter().map(serialize_frame).collect()
}

/// Parses, validates, and builds the request's inline design. Error
/// frames are boxed: the happy path shouldn't pay a frame-sized `Err`
/// variant in every `Result` it threads through.
fn load_design(request: &Request) -> Result<(DesignDesc, ValidatedModel), Box<Frame>> {
    load_design_at(request, None)
}

/// Like [`load_design`], with an optional frame-rate override.
fn load_design_at(
    request: &Request,
    fps: Option<f64>,
) -> Result<(DesignDesc, ValidatedModel), Box<Frame>> {
    let Some(design) = &request.design else {
        return Err(Box::new(Frame::error(
            "request.design",
            format!(
                "the '{}' request needs an inline design description",
                request.kind.as_str()
            ),
        )));
    };
    // Round-trip through text so camj-desc's own loader — with its
    // path-qualified diagnostics — is the single validation authority.
    let text = serde_json::to_string(design)
        .map_err(|e| Box::new(Frame::error("request.design", e.to_string())))?;
    let mut desc = DesignDesc::from_json(&text)
        .map_err(|e| Box::new(Frame::error("request.design", e.to_string())))?;
    if let Some(fps) = fps {
        if !(fps.is_finite() && fps > 0.0) {
            return Err(Box::new(Frame::error(
                "request.fps",
                format!("fps must be positive and finite, got {fps}"),
            )));
        }
        desc.fps = fps;
    }
    let mut model = desc
        .build()
        .map_err(|e| Box::new(Frame::error("request.design", e.to_string())))?;
    // An inline design has no file directory, so a relative image
    // stimulus resolves against the daemon's working directory.
    if let Some(ir) = &desc.stimulus {
        let stimulus = ir
            .resolve(None)
            .map_err(|e| Box::new(Frame::error("request.design.stimulus", e.to_string())))?;
        model = model.with_stimulus(stimulus);
    }
    Ok((desc, model))
}

/// `estimate`/`simulate` take at most one frame-rate target.
fn single_fps(request: &Request) -> Result<Option<f64>, Box<Frame>> {
    match request.fps.as_deref() {
        None | Some([]) => Ok(None),
        Some([fps]) => Ok(Some(*fps)),
        Some(more) => Err(Box::new(Frame::error(
            "request.fps",
            format!(
                "'{}' takes a single fps target, got {}",
                request.kind.as_str(),
                more.len()
            ),
        ))),
    }
}

/// Sweep targets: the request's list, else the design's `sweep.fps`.
fn sweep_targets(request: &Request, desc: &DesignDesc) -> Result<Vec<f64>, Box<Frame>> {
    let targets = match (&request.fps, &desc.sweep) {
        (Some(list), _) if !list.is_empty() => list.clone(),
        (_, Some(sweep)) if !sweep.fps.is_empty() => sweep.fps.clone(),
        _ => {
            return Err(Box::new(Frame::error(
                "request.fps",
                "no frame-rate targets: set request.fps or a `sweep.fps` list in the design",
            )))
        }
    };
    for fps in &targets {
        if !(fps.is_finite() && *fps > 0.0) {
            return Err(Box::new(Frame::error(
                "request.fps",
                format!("fps targets must be positive and finite, got {fps}"),
            )));
        }
    }
    Ok(targets)
}

/// The objectives used when neither the request nor the design names
/// any — the same default the CLI applies.
fn default_objective_names() -> Vec<String> {
    vec!["total_energy".to_owned(), "power_density".to_owned()]
}

/// Saturating u64 → usize for description/request knobs.
fn clamp_to_usize(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// Re-parses a serializer's JSON string into a `Value` body. The
/// serializers print shortest-round-trip floats, so this is exact.
fn reparse(json: &str) -> Value {
    serde_json::from_str(json).unwrap_or(Value::Null)
}
