//! Protocol property tests: `parse(serialize(x)) == x` for every
//! request and response frame kind, plus malformed-frame fuzzing —
//! truncated JSON, unknown kinds, oversized lines, wrong shapes — each
//! producing a path-qualified rejection, never a panic.

use proptest::prelude::*;

use camj_serve::protocol::{
    parse_frame, parse_request, serialize_frame, serialize_request, stamp_line, ConstraintsReq,
    Frame, Request, RequestKind, MAX_LINE_BYTES,
};
use serde_json::Value;

/// JSON numbers are IEEE doubles in transit, so ids only round-trip
/// exactly up to 2^53 (documented on [`Request::id`]).
const MAX_EXACT_ID: u64 = 1 << 53;

const KINDS: [RequestKind; 8] = [
    RequestKind::Validate,
    RequestKind::Estimate,
    RequestKind::Simulate,
    RequestKind::Sweep,
    RequestKind::Pareto,
    RequestKind::Search,
    RequestKind::Stats,
    RequestKind::Shutdown,
];

/// A small random JSON value standing in for an inline design: the
/// protocol carries it opaquely, so shape doesn't matter — only that
/// it survives the round trip.
fn design_value(seed: u64) -> Value {
    let mut design = serde_json::Map::new();
    design.insert("version", Value::Number(serde_json::Number::from_u64(1)));
    design.insert("name", Value::String(format!("design-{seed}")));
    design.insert(
        "fps",
        Value::Number(serde_json::Number::from_f64(
            (seed % 977) as f64 / 7.0 + 0.5,
        )),
    );
    design.insert(
        "tags",
        Value::Array(vec![
            Value::Bool(seed % 2 == 0),
            Value::Null,
            Value::String("α \"quoted\"\nline".to_owned()),
        ]),
    );
    Value::Object(design)
}

/// Deterministically fills every optional request field the draw
/// selects, exercising awkward floats (shortest-round-trip printing
/// must preserve them bit-exactly).
fn build_request(kind: RequestKind, id: u64, mask: u32, seed: u64) -> Request {
    let mut request = Request::new(kind);
    request.id = id;
    if mask & 1 != 0 {
        request.design = Some(design_value(seed));
    }
    if mask & 2 != 0 {
        request.fps = Some(vec![0.1 + 0.2, (seed % 240) as f64 / 3.0 + 1.0, 1e-3]);
    }
    if mask & 4 != 0 {
        request.seed = Some(seed);
    }
    if mask & 8 != 0 {
        request.samples = Some((seed % 1024) as u32 + 1);
    }
    if mask & 16 != 0 {
        // Alternate the three stimulus spec shapes, including image
        // paths with spaces and non-ASCII (the protocol carries the
        // spec opaquely — the handler parses it later).
        request.stimulus = Some(match seed % 3 {
            0 => format!("gradient:0.{},0.9", seed % 10),
            1 => format!("uniform:0.{}", seed % 10),
            _ => format!("image:stimuli/eye ({seed})\u{00e9}.pgm"),
        });
    }
    if mask & 32 != 0 {
        request.objectives = Some(vec!["total_energy".into(), format!("stage:s{seed}")]);
    }
    if mask & 64 != 0 {
        request.constraints = Some(ConstraintsReq {
            max_power_density_mw_per_mm2: Some(1.0 / 3.0),
            max_digital_latency_ms: None,
            max_total_energy_pj: Some((seed as f64).sqrt() + 0.125),
        });
    }
    if mask & 128 != 0 {
        request.population = Some(seed % 64 + 1);
        request.generations = Some(seed % 16 + 1);
        request.budget = Some(seed % 512 + 1);
    }
    if mask & 256 != 0 {
        request.fault = Some("panic".to_owned());
    }
    request
}

proptest! {
    /// Requests of every kind, with every optional-field combination,
    /// survive serialize → parse exactly.
    #[test]
    fn request_round_trips(kind_idx in 0usize..8, id in 0u64..MAX_EXACT_ID, mask in 0u32..512, seed in 0u64..1_000_000) {
        let request = build_request(KINDS[kind_idx], id, mask, seed);
        let line = serialize_request(&request);
        prop_assert!(!line.contains('\n'), "a frame must be one line");
        let parsed = parse_request(&line).expect("serialized request must parse");
        prop_assert_eq!(parsed, request);
    }

    /// Every response frame kind survives serialize → parse exactly.
    #[test]
    fn frame_round_trips(id in 0u64..MAX_EXACT_ID, seq in 0u64..10_000, pick in 0u32..4, seed in 0u64..1_000_000) {
        let frame = match pick {
            0 => Frame::point(seq, design_value(seed)),
            1 => Frame::result(design_value(seed)),
            2 => Frame::error(format!("request.field{}", seed % 7), "it broke: \"badly\"\n(twice)"),
            _ => Frame::done(seq),
        }
        .with_id(id);
        let line = serialize_frame(&frame);
        prop_assert!(!line.contains('\n'));
        let parsed = parse_frame(&line).expect("serialized frame must parse");
        prop_assert_eq!(parsed, frame);
    }

    /// Stamping an id into an id-less rendered line (the dedup replay
    /// fast path) is exactly equivalent to serializing the frame with
    /// that id — so replayed and freshly-computed responses can never
    /// diverge.
    #[test]
    fn stamping_matches_full_serialization(id in 0u64..MAX_EXACT_ID, seq in 0u64..10_000, pick in 0u32..4, seed in 0u64..1_000_000) {
        let frame = match pick {
            0 => Frame::point(seq, design_value(seed)),
            1 => Frame::result(design_value(seed)),
            2 => Frame::error("request.design", format!("broke at {seed}")),
            _ => Frame::done(seq),
        };
        let rendered = serialize_frame(&frame);
        let stamped = stamp_line(&rendered, id);
        prop_assert_eq!(stamped, serialize_frame(&frame.with_id(id)));
    }

    /// Truncating a valid request line anywhere never panics, and any
    /// rejection is path-qualified at `request` (broken JSON) or a
    /// narrower path. (A truncation can also still parse — cutting
    /// only trailing optional fields — which is fine.)
    #[test]
    fn truncated_requests_reject_cleanly(mask in 0u32..512, seed in 0u64..1_000_000, cut_permille in 0u32..1000) {
        let request = build_request(RequestKind::Sweep, 9, mask, seed);
        let line = serialize_request(&request);
        let mut cut = line.len() * cut_permille as usize / 1000;
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        match parse_request(&line[..cut]) {
            Ok(_) => {}
            Err(reject) => {
                prop_assert!(reject.path.starts_with("request"), "path was {}", reject.path);
                prop_assert!(!reject.message.is_empty());
            }
        }
    }

    /// Unknown request kinds are rejected at `request.kind`, naming
    /// the offender, with the request id preserved for correlation.
    #[test]
    fn unknown_kinds_reject_at_kind_path(id in 0u64..1_000_000, seed in 0u64..1_000_000) {
        let line = format!("{{\"id\":{id},\"kind\":\"mystery-{seed}\"}}");
        let reject = parse_request(&line).expect_err("unknown kind must reject");
        prop_assert_eq!(reject.path.as_str(), "request.kind");
        prop_assert_eq!(reject.id, id);
        prop_assert!(reject.message.contains(&format!("mystery-{seed}")));
    }
}

#[test]
fn oversized_lines_reject_at_request_path() {
    let line = format!(
        "{{\"kind\":\"estimate\",\"padding\":\"{}\"}}",
        "x".repeat(MAX_LINE_BYTES)
    );
    let reject = parse_request(&line).expect_err("oversized line must reject");
    assert_eq!(reject.path, "request");
    assert!(reject.message.contains("exceeds"));
}

#[test]
fn non_object_and_wrong_typed_requests_reject() {
    for (line, path) in [
        ("[1,2,3]", "request"),
        ("\"just a string\"", "request"),
        ("42", "request"),
        ("{}", "request.kind"),
        ("{\"kind\":17}", "request.kind"),
        ("{\"kind\":null}", "request.kind"),
        ("{\"kind\":\"sweep\",\"fps\":\"fast\"}", "request"),
        ("{\"kind\":\"sweep\",\"id\":\"seven\"}", "request"),
    ] {
        let reject = parse_request(line)
            .err()
            .unwrap_or_else(|| panic!("{line} must reject"));
        assert_eq!(reject.path, path, "for line {line}");
    }
}

#[test]
fn ids_survive_rejection_for_correlation() {
    // Even when validation fails late, the error frame carries the id
    // the client sent.
    let reject = parse_request("{\"id\":77,\"kind\":\"warp\"}").unwrap_err();
    assert_eq!((reject.id, reject.path.as_str()), (77, "request.kind"));
    let frame = reject.frame();
    assert_eq!(frame.id, 77);
}
