//! Algorithm (software) description: stages and the DAG connecting them.

mod dag;
mod stage;

pub use dag::AlgorithmGraph;
pub use stage::{ImageSize, Stage, StageKind};
