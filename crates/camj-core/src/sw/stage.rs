//! Algorithm stages (paper Sec. 3.3, "Algorithm Description").
//!
//! CamJ observes that in-sensor image processing is stencil-based:
//! "users express only the input/output image dimensions along with the
//! stencil window (kernel) and stride size". A [`Stage`] carries exactly
//! those dimensions — no arithmetic details — plus the data resolution in
//! bits that drives analog precision sizing and communication volume.

use serde::{Deserialize, Serialize};

/// A 3-D image size `[width, height, channels]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImageSize {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Channel count.
    pub channels: u32,
}

impl ImageSize {
    /// Creates a size.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32, channels: u32) -> Self {
        assert!(
            width > 0 && height > 0 && channels > 0,
            "image dimensions must be non-zero: [{width}, {height}, {channels}]"
        );
        Self {
            width,
            height,
            channels,
        }
    }

    /// Total pixel count.
    #[must_use]
    pub fn count(self) -> u64 {
        u64::from(self.width) * u64::from(self.height) * u64::from(self.channels)
    }
}

impl From<[u32; 3]> for ImageSize {
    fn from([w, h, c]: [u32; 3]) -> Self {
        Self::new(w, h, c)
    }
}

/// What kind of computation a stage performs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StageKind {
    /// Raw pixel production by the pixel array (`PixelInput`).
    Input,
    /// A stencil operation with the given kernel and stride (convolution,
    /// binning, pooling, filtering — the dominant in-sensor pattern).
    Stencil {
        /// Stencil window `[w, h, c]`.
        kernel: [u32; 3],
        /// Stride `[w, h, c]`.
        stride: [u32; 3],
    },
    /// A per-pixel operation over `operands` aligned inputs (e.g. frame
    /// subtraction has two operands: current and previous frame).
    ElementWise {
        /// Input operands consumed per output pixel.
        operands: u32,
    },
    /// A DNN inference stage characterised by its total MAC count (the
    /// paper characterises Ed-Gaze's DNN as "about 5.76 × 10⁷ MAC
    /// operations per frame").
    Dnn {
        /// Multiply-accumulates per frame.
        macs: u64,
        /// Weight parameter count (drives weight-buffer traffic).
        weights: u64,
    },
    /// A stage characterised directly by its per-frame operation count
    /// and per-output read traffic — for published workloads that quote
    /// totals instead of stencil shapes (e.g. Rhythmic Pixel Regions'
    /// "roughly 7.4 × 10⁶ arithmetic operations per frame").
    Custom {
        /// Operations per frame.
        ops: u64,
        /// Input pixels read per output pixel.
        reads_per_output: f64,
    },
}

/// One node of the algorithm DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    name: String,
    kind: StageKind,
    input_size: ImageSize,
    output_size: ImageSize,
    bits: u32,
}

impl Stage {
    /// Creates a pixel-input stage producing `size` raw pixels per frame.
    #[must_use]
    pub fn input(name: impl Into<String>, size: impl Into<ImageSize>) -> Self {
        let size = size.into();
        Self {
            name: name.into(),
            kind: StageKind::Input,
            input_size: size,
            output_size: size,
            bits: 8,
        }
    }

    /// Creates a stencil stage.
    #[must_use]
    pub fn stencil(
        name: impl Into<String>,
        input_size: impl Into<ImageSize>,
        output_size: impl Into<ImageSize>,
        kernel: [u32; 3],
        stride: [u32; 3],
    ) -> Self {
        assert!(
            kernel.iter().all(|&k| k > 0) && stride.iter().all(|&s| s > 0),
            "kernel and stride dimensions must be non-zero"
        );
        Self {
            name: name.into(),
            kind: StageKind::Stencil { kernel, stride },
            input_size: input_size.into(),
            output_size: output_size.into(),
            bits: 8,
        }
    }

    /// Creates an element-wise stage over `operands` aligned inputs.
    #[must_use]
    pub fn element_wise(
        name: impl Into<String>,
        size: impl Into<ImageSize>,
        operands: u32,
    ) -> Self {
        assert!(operands > 0, "element-wise stages need at least 1 operand");
        let size = size.into();
        Self {
            name: name.into(),
            kind: StageKind::ElementWise { operands },
            input_size: size,
            output_size: size,
            bits: 8,
        }
    }

    /// Creates a DNN stage with the given per-frame MAC count and weight
    /// parameter count.
    #[must_use]
    pub fn dnn(
        name: impl Into<String>,
        input_size: impl Into<ImageSize>,
        output_size: impl Into<ImageSize>,
        macs: u64,
        weights: u64,
    ) -> Self {
        assert!(macs > 0, "a DNN stage must perform at least one MAC");
        Self {
            name: name.into(),
            kind: StageKind::Dnn { macs, weights },
            input_size: input_size.into(),
            output_size: output_size.into(),
            bits: 8,
        }
    }

    /// Creates a stage from a published operation total and per-output
    /// read traffic.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is zero or `reads_per_output` is negative or
    /// non-finite.
    #[must_use]
    pub fn custom(
        name: impl Into<String>,
        input_size: impl Into<ImageSize>,
        output_size: impl Into<ImageSize>,
        ops: u64,
        reads_per_output: f64,
    ) -> Self {
        assert!(ops > 0, "a custom stage must perform at least one op");
        assert!(
            reads_per_output.is_finite() && reads_per_output >= 0.0,
            "reads per output must be non-negative and finite, got {reads_per_output}"
        );
        Self {
            name: name.into(),
            kind: StageKind::Custom {
                ops,
                reads_per_output,
            },
            input_size: input_size.into(),
            output_size: output_size.into(),
            bits: 8,
        }
    }

    /// Overrides the data resolution in bits (default 8) — builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn with_bits(mut self, bits: u32) -> Self {
        assert!(bits > 0, "data resolution must be at least 1 bit");
        self.bits = bits;
        self
    }

    /// The stage's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stage's kind.
    #[must_use]
    pub fn kind(&self) -> StageKind {
        self.kind
    }

    /// Input image size.
    #[must_use]
    pub fn input_size(&self) -> ImageSize {
        self.input_size
    }

    /// Output image size.
    #[must_use]
    pub fn output_size(&self) -> ImageSize {
        self.output_size
    }

    /// Data resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Bytes per output pixel (resolution rounded up to whole bytes).
    #[must_use]
    pub fn bytes_per_pixel(&self) -> u64 {
        u64::from(self.bits.div_ceil(8))
    }

    /// Output data volume per frame in bytes (drives Eq. 17).
    #[must_use]
    pub fn output_bytes(&self) -> u64 {
        self.output_size.count() * self.bytes_per_pixel()
    }

    /// Arithmetic operations per frame, derived from the declarative
    /// description (the numerator of Eq. 3):
    ///
    /// * input: one readout per produced pixel,
    /// * stencil: one op per kernel element per output pixel,
    /// * element-wise: one op per operand per output pixel,
    /// * DNN: the declared MAC count.
    #[must_use]
    pub fn ops_per_frame(&self) -> u64 {
        match self.kind {
            StageKind::Input => self.output_size.count(),
            StageKind::Stencil { kernel, .. } => {
                let k = u64::from(kernel[0]) * u64::from(kernel[1]) * u64::from(kernel[2]);
                self.output_size.count() * k
            }
            StageKind::ElementWise { operands } => self.output_size.count() * u64::from(operands),
            StageKind::Dnn { macs, .. } => macs,
            StageKind::Custom { ops, .. } => ops,
        }
    }

    /// Input pixels read per output pixel (stencil window, operands, or
    /// DNN activation traffic).
    #[must_use]
    pub fn reads_per_output(&self) -> f64 {
        match self.kind {
            StageKind::Input => 0.0,
            StageKind::Stencil { kernel, .. } => {
                (u64::from(kernel[0]) * u64::from(kernel[1]) * u64::from(kernel[2])) as f64
            }
            StageKind::ElementWise { operands } => f64::from(operands),
            StageKind::Dnn { macs, .. } => macs as f64 / self.output_size.count() as f64,
            StageKind::Custom {
                reads_per_output, ..
            } => reads_per_output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_stage_ops_equal_pixels() {
        let s = Stage::input("Input", [32, 32, 1]);
        assert_eq!(s.ops_per_frame(), 1024);
        assert_eq!(s.input_size(), s.output_size());
    }

    #[test]
    fn stencil_ops_scale_with_kernel() {
        let s = Stage::stencil("Edge", [16, 16, 1], [16, 16, 1], [3, 3, 1], [1, 1, 1]);
        assert_eq!(s.ops_per_frame(), 256 * 9);
        assert!((s.reads_per_output() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn binning_is_a_stencil() {
        let s = Stage::stencil("Binning", [32, 32, 1], [16, 16, 1], [2, 2, 1], [2, 2, 1]);
        assert_eq!(s.ops_per_frame(), 256 * 4);
    }

    #[test]
    fn element_wise_counts_operands() {
        let s = Stage::element_wise("FrameSub", [320, 200, 1], 2);
        assert_eq!(s.ops_per_frame(), 2 * 320 * 200);
    }

    #[test]
    fn dnn_uses_declared_macs() {
        let s = Stage::dnn("ROI-DNN", [320, 200, 1], [16, 16, 1], 57_600_000, 500_000);
        assert_eq!(s.ops_per_frame(), 57_600_000);
    }

    #[test]
    fn bytes_round_up() {
        let s = Stage::input("x", [10, 10, 1]).with_bits(10);
        assert_eq!(s.bytes_per_pixel(), 2);
        assert_eq!(s.output_bytes(), 200);
    }

    #[test]
    fn output_bytes_default_8bit() {
        let s = Stage::input("x", [1920, 1080, 1]);
        assert_eq!(s.output_bytes(), 1920 * 1080);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_kernel_rejected() {
        let _ = Stage::stencil("bad", [8, 8, 1], [8, 8, 1], [0, 3, 1], [1, 1, 1]);
    }
}
