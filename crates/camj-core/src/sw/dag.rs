//! The algorithm DAG (paper Sec. 3.3, `camj_sw_config`).
//!
//! Stages connect through `set_input_stage`-style edges into a directed
//! acyclic graph. [`AlgorithmGraph::validate`] implements the paper's
//! "well-formed dependencies" pre-simulation check: acyclicity, known
//! stage references, exactly one input stage per source, and matching
//! image sizes along every edge.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::CamjError;

use super::stage::{Stage, StageKind};

/// The algorithm description: stages plus dependency edges.
///
/// # Examples
///
/// ```
/// use camj_core::sw::{AlgorithmGraph, Stage};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's Fig. 5 pipeline: input → binning → edge detection.
/// let mut algo = AlgorithmGraph::new();
/// algo.add_stage(Stage::input("Input", [32, 32, 1]));
/// algo.add_stage(Stage::stencil(
///     "Binning", [32, 32, 1], [16, 16, 1], [2, 2, 1], [2, 2, 1],
/// ));
/// algo.add_stage(Stage::stencil(
///     "EdgeDetection", [16, 16, 1], [16, 16, 1], [3, 3, 1], [1, 1, 1],
/// ));
/// algo.connect("Input", "Binning")?;
/// algo.connect("Binning", "EdgeDetection")?;
/// algo.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmGraph {
    stages: Vec<Stage>,
    /// Edges as (producer index, consumer index).
    edges: Vec<(usize, usize)>,
}

impl AlgorithmGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a stage.
    ///
    /// # Panics
    ///
    /// Panics if a stage with the same name already exists (stage names
    /// are the identifiers used by edges and the mapping).
    pub fn add_stage(&mut self, stage: Stage) {
        assert!(
            self.index_of(stage.name()).is_none(),
            "duplicate stage name '{}'",
            stage.name()
        );
        self.stages.push(stage);
    }

    /// Connects producer `from` to consumer `to`.
    ///
    /// # Errors
    ///
    /// Returns [`CamjError::CheckDag`] if either stage is unknown.
    pub fn connect(&mut self, from: &str, to: &str) -> Result<(), CamjError> {
        let fi = self.index_of(from).ok_or_else(|| CamjError::CheckDag {
            reason: format!("unknown producer stage '{from}'"),
        })?;
        let ti = self.index_of(to).ok_or_else(|| CamjError::CheckDag {
            reason: format!("unknown consumer stage '{to}'"),
        })?;
        self.edges.push((fi, ti));
        Ok(())
    }

    /// All stages, in insertion order.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Looks up a stage by name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&Stage> {
        self.stages.iter().find(|s| s.name() == name)
    }

    /// Edges as (producer name, consumer name) pairs.
    #[must_use]
    pub fn edge_names(&self) -> Vec<(&str, &str)> {
        self.edges
            .iter()
            .map(|&(f, t)| (self.stages[f].name(), self.stages[t].name()))
            .collect()
    }

    /// Names of the producers feeding `name`.
    #[must_use]
    pub fn producers_of(&self, name: &str) -> Vec<&str> {
        match self.index_of(name) {
            Some(idx) => self
                .edges
                .iter()
                .filter(|&&(_, t)| t == idx)
                .map(|&(f, _)| self.stages[f].name())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Names of the consumers fed by `name`.
    #[must_use]
    pub fn consumers_of(&self, name: &str) -> Vec<&str> {
        match self.index_of(name) {
            Some(idx) => self
                .edges
                .iter()
                .filter(|&&(f, _)| f == idx)
                .map(|&(_, t)| self.stages[t].name())
                .collect(),
            None => Vec::new(),
        }
    }

    /// The sink stages (no consumers) — their output leaves the sensor.
    #[must_use]
    pub fn sinks(&self) -> Vec<&Stage> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.edges.iter().any(|&(f, _)| f == *i))
            .map(|(_, s)| s)
            .collect()
    }

    /// Stage names in topological order.
    ///
    /// # Errors
    ///
    /// Returns [`CamjError::CheckDag`] if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<&str>, CamjError> {
        let n = self.stages.len();
        let mut incoming = vec![0usize; n];
        for &(_, t) in &self.edges {
            incoming[t] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| incoming[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(self.stages[i].name());
            for &(f, t) in &self.edges {
                if f == i {
                    incoming[t] -= 1;
                    if incoming[t] == 0 {
                        ready.push(t);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(CamjError::CheckDag {
                reason: "the algorithm DAG contains a cycle".into(),
            });
        }
        Ok(order)
    }

    /// Runs the well-formedness checks: acyclicity, at least one input
    /// stage, every non-input stage has a producer, and image sizes match
    /// along every edge.
    ///
    /// # Errors
    ///
    /// Returns [`CamjError::CheckDag`] describing the first violation.
    pub fn validate(&self) -> Result<(), CamjError> {
        if self.stages.is_empty() {
            return Err(CamjError::CheckDag {
                reason: "the algorithm has no stages".into(),
            });
        }
        self.topo_order()?;
        let has_input = self
            .stages
            .iter()
            .any(|s| matches!(s.kind(), StageKind::Input));
        if !has_input {
            return Err(CamjError::CheckDag {
                reason: "the algorithm has no pixel-input stage".into(),
            });
        }
        // Producer coverage and size agreement.
        let mut producer_count: HashMap<usize, usize> = HashMap::new();
        for &(f, t) in &self.edges {
            *producer_count.entry(t).or_default() += 1;
            let prod = &self.stages[f];
            let cons = &self.stages[t];
            if prod.output_size() != cons.input_size() {
                return Err(CamjError::CheckDag {
                    reason: format!(
                        "size mismatch on edge '{}' → '{}': producer outputs \
                         {:?} but consumer expects {:?}",
                        prod.name(),
                        cons.name(),
                        prod.output_size(),
                        cons.input_size()
                    ),
                });
            }
        }
        for (i, stage) in self.stages.iter().enumerate() {
            let is_input = matches!(stage.kind(), StageKind::Input);
            let has_producer = producer_count.contains_key(&i);
            if !is_input && !has_producer {
                return Err(CamjError::CheckDag {
                    reason: format!("stage '{}' has no producer", stage.name()),
                });
            }
            if is_input && has_producer {
                return Err(CamjError::CheckDag {
                    reason: format!("input stage '{}' must not have a producer", stage.name()),
                });
            }
        }
        Ok(())
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.stages.iter().position(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_graph() -> AlgorithmGraph {
        let mut g = AlgorithmGraph::new();
        g.add_stage(Stage::input("Input", [32, 32, 1]));
        g.add_stage(Stage::stencil(
            "Binning",
            [32, 32, 1],
            [16, 16, 1],
            [2, 2, 1],
            [2, 2, 1],
        ));
        g.add_stage(Stage::stencil(
            "EdgeDetection",
            [16, 16, 1],
            [16, 16, 1],
            [3, 3, 1],
            [1, 1, 1],
        ));
        g.connect("Input", "Binning").unwrap();
        g.connect("Binning", "EdgeDetection").unwrap();
        g
    }

    #[test]
    fn fig5_validates() {
        fig5_graph().validate().unwrap();
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = fig5_graph();
        let order = g.topo_order().unwrap();
        let pos = |n: &str| order.iter().position(|&s| s == n).unwrap();
        assert!(pos("Input") < pos("Binning"));
        assert!(pos("Binning") < pos("EdgeDetection"));
    }

    #[test]
    fn sinks_are_stages_without_consumers() {
        let g = fig5_graph();
        let sinks = g.sinks();
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].name(), "EdgeDetection");
    }

    #[test]
    fn cycle_is_rejected() {
        let mut g = fig5_graph();
        g.connect("EdgeDetection", "Binning").unwrap();
        let err = g.validate().unwrap_err();
        assert!(matches!(err, CamjError::CheckDag { .. }));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut g = AlgorithmGraph::new();
        g.add_stage(Stage::input("Input", [32, 32, 1]));
        g.add_stage(Stage::stencil(
            "Edge",
            [16, 16, 1], // expects 16×16 but the input produces 32×32
            [16, 16, 1],
            [3, 3, 1],
            [1, 1, 1],
        ));
        g.connect("Input", "Edge").unwrap();
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("size mismatch"));
    }

    #[test]
    fn orphan_stage_rejected() {
        let mut g = fig5_graph();
        g.add_stage(Stage::element_wise("Orphan", [16, 16, 1], 1));
        let err = g.validate().unwrap_err();
        assert!(err.to_string().contains("no producer"));
    }

    #[test]
    fn missing_input_rejected() {
        let mut g = AlgorithmGraph::new();
        g.add_stage(Stage::element_wise("Lonely", [8, 8, 1], 1));
        // Orphan check happens after input check; both apply here.
        let err = g.validate().unwrap_err();
        assert!(matches!(err, CamjError::CheckDag { .. }));
    }

    #[test]
    fn unknown_stage_in_connect() {
        let mut g = fig5_graph();
        let err = g.connect("Nope", "Binning").unwrap_err();
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    #[should_panic(expected = "duplicate stage")]
    fn duplicate_names_rejected() {
        let mut g = fig5_graph();
        g.add_stage(Stage::input("Input", [8, 8, 1]));
    }

    #[test]
    fn producers_and_consumers() {
        let g = fig5_graph();
        assert_eq!(g.producers_of("Binning"), vec!["Input"]);
        assert_eq!(g.consumers_of("Binning"), vec!["EdgeDetection"]);
        assert!(g.producers_of("Input").is_empty());
    }
}
