//! Framework-level error types.

use std::error::Error;
use std::fmt;

use camj_digital::sim::SimError;

/// Any failure CamJ can report while checking or estimating a design.
///
/// The pre-simulation checks (paper Sec. 3.2) surface as the
/// `Check`-prefixed variants; the cycle-level simulation surfaces
/// [`CamjError::Sim`]; an over-committed frame budget surfaces
/// [`CamjError::FrameRateInfeasible`].
#[derive(Debug, Clone, PartialEq)]
pub enum CamjError {
    /// The algorithm DAG is malformed (cycle, unknown stage, size
    /// mismatch along an edge, …).
    CheckDag {
        /// What is wrong.
        reason: String,
    },
    /// The algorithm/hardware combination is not functionally viable
    /// (domain mismatch, missing ADC between analog and digital, …).
    CheckFunctional {
        /// What is wrong.
        reason: String,
    },
    /// The mapping is incomplete or references unknown units.
    CheckMapping {
        /// What is wrong.
        reason: String,
    },
    /// The digital pipeline cannot sustain the pixel readout rate at the
    /// target FPS; the paper asks the user to re-design the hardware.
    StallDetected {
        /// The underlying simulator diagnosis.
        cause: SimError,
    },
    /// The digital latency alone exceeds the frame time — no time is
    /// left for the analog pipeline at the target FPS.
    FrameRateInfeasible {
        /// Target frame time in seconds.
        frame_time_s: f64,
        /// Measured digital latency in seconds.
        digital_latency_s: f64,
    },
    /// The cycle-level simulation itself failed.
    Sim(SimError),
}

impl fmt::Display for CamjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CamjError::CheckDag { reason } => write!(f, "algorithm DAG check failed: {reason}"),
            CamjError::CheckFunctional { reason } => {
                write!(f, "functional viability check failed: {reason}")
            }
            CamjError::CheckMapping { reason } => write!(f, "mapping check failed: {reason}"),
            CamjError::StallDetected { cause } => {
                write!(f, "pipeline stall at the target frame rate: {cause}")
            }
            CamjError::FrameRateInfeasible {
                frame_time_s,
                digital_latency_s,
            } => write!(
                f,
                "digital latency {digital_latency_s:.6} s exceeds the frame time \
                 {frame_time_s:.6} s; no budget remains for the analog pipeline"
            ),
            CamjError::Sim(e) => write!(f, "cycle-level simulation failed: {e}"),
        }
    }
}

impl Error for CamjError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CamjError::Sim(e) | CamjError::StallDetected { cause: e } => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CamjError {
    fn from(e: SimError) -> Self {
        CamjError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CamjError::CheckFunctional {
            reason: "charge-domain producer feeds voltage-domain consumer".into(),
        };
        assert!(e.to_string().contains("charge-domain"));

        let e = CamjError::FrameRateInfeasible {
            frame_time_s: 0.033,
            digital_latency_s: 0.050,
        };
        assert!(e.to_string().contains("0.050000"));
    }

    #[test]
    fn sim_error_converts() {
        let sim = SimError::CycleLimitExceeded { limit: 10 };
        let e: CamjError = sim.clone().into();
        assert_eq!(e, CamjError::Sim(sim));
    }
}
