//! Noise-aware functional simulation: the signal-quality half of the
//! accuracy-vs-energy design space.
//!
//! The energy pipeline answers "what does a frame cost?"; this module
//! answers "what does a frame *look like*?". Both read the same model:
//! the analog units the routes traverse, the delay split the frame
//! budget solves, and the per-component [`NoiseSource`] descriptors
//! plus the implicit ADC quantization of digitising components
//! (`camj_digital::quantize`).
//!
//! Two complementary views exist:
//!
//! * the **analytic** [`NoiseReport`]
//!   ([`ValidatedModel::noise_report_at_fps`]) accumulates noise
//!   variance stage by stage for a mean signal level — closed-form, no
//!   RNG, cheap enough to attach to every
//!   [`EstimateReport`](crate::energy::EstimateReport) and to drive
//!   the explorer's `snr` objective deterministically, and
//! * the **sampled** [`FrameSimReport`]
//!   ([`ValidatedModel::simulate_frame`]) renders a [`Stimulus`] into
//!   a full-resolution frame and pushes it through the chain with a
//!   seeded Gaussian sampler, measuring the per-stage SNR empirically.
//!
//! Determinism rules (the same contract the energy side honours):
//! a simulated frame is a pure function of `(model, seed, stimulus)`.
//! The per-stage RNG streams are derived by fingerprint-mixing the
//! seed with the stage's position and unit name, so results are
//! byte-identical across runs, across serial/parallel sweeps, and
//! across `RAYON_NUM_THREADS` settings.
//!
//! [`ValidatedModel::noise_report_at_fps`]: crate::energy::ValidatedModel::noise_report_at_fps
//! [`ValidatedModel::simulate_frame`]: crate::energy::ValidatedModel::simulate_frame

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use camj_analog::noise::NoiseSource;
use camj_tech::fingerprint::FpHasher;
use camj_tech::units::Time;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The mean signal level (fraction of full scale) the analytic noise
/// report attached to every estimate assumes: a mid-scale scene, the
/// conventional operating point for SNR comparisons.
pub const DEFAULT_SIGNAL_FRACTION: f64 = 0.5;

/// An input scene for the frame simulator, normalised to full scale
/// (`0.0` = dark, `1.0` = full well): synthetic (`uniform`,
/// `gradient`) or decoded from a real PGM/PPM image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Stimulus {
    /// Every pixel at the same level.
    Uniform {
        /// Signal level, fraction of full scale in `[0, 1]`.
        level: f64,
    },
    /// A horizontal ramp from `low` (left edge) to `high` (right edge).
    Gradient {
        /// Level at the left edge, in `[0, 1]`.
        low: f64,
        /// Level at the right edge, in `[0, 1]`; at least `low`.
        high: f64,
    },
    /// A real image, decoded to a normalised luminance plane. Pixel
    /// data is carried inline so a parsed stimulus stays a pure value:
    /// the file is read exactly once, at parse/load time.
    Image {
        /// The path the image was loaded from (diagnostics and
        /// round-trip display only — the pixels below are the truth).
        path: String,
        /// Source image width in pixels.
        width: u32,
        /// Source image height in pixels.
        height: u32,
        /// Row-major luminance samples in `[0, 1]` (RGB sources are
        /// averaged to one plane), `width * height` values.
        pixels: Vec<f64>,
    },
}

impl Stimulus {
    /// A flat field at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, 1]`.
    #[must_use]
    pub fn uniform(level: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&level),
            "stimulus level must be in [0, 1], got {level}"
        );
        Stimulus::Uniform { level }
    }

    /// A horizontal ramp from `low` to `high`.
    ///
    /// # Panics
    ///
    /// Panics if either bound is outside `[0, 1]` or `low > high`.
    #[must_use]
    pub fn gradient(low: f64, high: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high),
            "stimulus levels must be in [0, 1], got {low}..{high}"
        );
        assert!(low <= high, "gradient must not descend: {low}..{high}");
        Stimulus::Gradient { low, high }
    }

    /// Loads a PGM/PPM image into an `image:` stimulus: samples are
    /// normalised by the file's `maxval`, RGB is averaged to one
    /// luminance plane.
    ///
    /// # Errors
    ///
    /// Returns the codec's diagnostic (I/O failure, or a malformed
    /// file with its byte offset), prefixed with the path.
    pub fn image_from_path(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let img = image::load(path)?;
        let scale = 1.0 / (f64::from(img.maxval) * f64::from(img.channels));
        let mut pixels = Vec::with_capacity(img.width as usize * img.height as usize);
        for y in 0..img.height {
            for x in 0..img.width {
                let sum: f64 = (0..img.channels)
                    .map(|c| f64::from(img.sample(x, y, c)))
                    .sum();
                pixels.push(sum * scale);
            }
        }
        Ok(Stimulus::Image {
            path: path.display().to_string(),
            width: img.width,
            height: img.height,
            pixels,
        })
    }

    /// The scene's mean level — the operating point analytic SNR is
    /// quoted at.
    #[must_use]
    pub fn mean_fraction(&self) -> f64 {
        match self {
            Stimulus::Uniform { level } => *level,
            Stimulus::Gradient { low, high } => (low + high) / 2.0,
            Stimulus::Image { pixels, .. } => {
                if pixels.is_empty() {
                    0.0
                } else {
                    pixels.iter().sum::<f64>() / pixels.len() as f64
                }
            }
        }
    }

    /// The clean value of pixel `(x, y)` on a `width` × `height`
    /// frame. Images resample nearest-neighbour — pure integer
    /// arithmetic, so rendering is exact and thread-independent.
    pub(crate) fn value_at(&self, x: u32, y: u32, width: u32, height: u32) -> f64 {
        match self {
            Stimulus::Uniform { level } => *level,
            Stimulus::Gradient { low, high } => {
                if width <= 1 {
                    *low
                } else {
                    low + (high - low) * f64::from(x) / f64::from(width - 1)
                }
            }
            Stimulus::Image {
                width: iw,
                height: ih,
                pixels,
                ..
            } => {
                let sx = (u64::from(x) * u64::from(*iw) / u64::from(width.max(1))) as u32;
                let sy = (u64::from(y) * u64::from(*ih) / u64::from(height.max(1))) as u32;
                let (sx, sy) = (sx.min(iw - 1), sy.min(ih - 1));
                pixels[sy as usize * *iw as usize + sx as usize]
            }
        }
    }

    /// Renders the clean frame: `width * height * channels` values in
    /// the simulator's canonical order (rows, then columns, channels
    /// interleaved). Both the vectorized planner and the scalar
    /// reference oracle call this, so their clean frames are
    /// identical by construction.
    pub(crate) fn render(&self, width: u32, height: u32, channels: u32) -> Vec<f64> {
        let mut clean = Vec::with_capacity(width as usize * height as usize * channels as usize);
        for y in 0..height {
            for x in 0..width {
                let value = self.value_at(x, y, width, height);
                for _c in 0..channels {
                    clean.push(value);
                }
            }
        }
        clean
    }
}

impl Default for Stimulus {
    /// The CLI default: a `0.1..0.9` ramp, exercising the
    /// signal-dependent sources across most of the dynamic range.
    fn default() -> Self {
        Stimulus::Gradient {
            low: 0.1,
            high: 0.9,
        }
    }
}

impl fmt::Display for Stimulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stimulus::Uniform { level } => write!(f, "uniform:{level}"),
            Stimulus::Gradient { low, high } => write!(f, "gradient:{low},{high}"),
            Stimulus::Image { path, .. } => write!(f, "image:{path}"),
        }
    }
}

impl FromStr for Stimulus {
    type Err = String;

    /// Parses the CLI grammar: `uniform:<level>`,
    /// `gradient:<low>,<high>` (levels in `[0, 1]`), or
    /// `image:<path>` — the image variant reads and decodes the file
    /// immediately, so the parsed value is self-contained.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_level = |text: &str| -> Result<f64, String> {
            let v = text
                .trim()
                .parse::<f64>()
                .map_err(|_| format!("invalid stimulus level '{text}'"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("stimulus level must be in [0, 1], got '{text}'"));
            }
            Ok(v)
        };
        if let Some(level) = s.strip_prefix("uniform:") {
            return Ok(Stimulus::Uniform {
                level: parse_level(level)?,
            });
        }
        if let Some(bounds) = s.strip_prefix("gradient:") {
            let Some((low, high)) = bounds.split_once(',') else {
                return Err(format!(
                    "gradient stimulus needs two levels 'gradient:<low>,<high>', got '{s}'"
                ));
            };
            let (low, high) = (parse_level(low)?, parse_level(high)?);
            if low > high {
                return Err(format!("gradient must not descend: '{s}'"));
            }
            return Ok(Stimulus::Gradient { low, high });
        }
        if let Some(path) = s.strip_prefix("image:") {
            if path.trim().is_empty() {
                return Err(format!(
                    "image stimulus needs a path 'image:<path>', got '{s}'"
                ));
            }
            return Stimulus::image_from_path(path.trim());
        }
        Err(format!(
            "unknown stimulus '{s}' (expected uniform:<level>, gradient:<low>,<high>, or image:<path>)"
        ))
    }
}

/// One stage of the resolved noise chain: an analog unit, the noise
/// sources its component declares, and the implicit quantization of a
/// digitising back end.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NoiseStage {
    /// The analog unit's name.
    pub(crate) unit: String,
    /// The component's declared noise sources.
    pub(crate) sources: Vec<NoiseSource>,
    /// Converter resolution when the component digitises its output.
    pub(crate) quant_bits: Option<u32>,
}

impl NoiseStage {
    /// Whether the stage contributes any noise at all.
    pub(crate) fn is_noisy(&self) -> bool {
        !self.sources.is_empty() || self.quant_bits.is_some()
    }

    /// The stage's added noise variance (fraction² of full scale) at a
    /// mean signal of `signal_fraction`, integrating over `exposure`.
    pub(crate) fn variance(&self, signal_fraction: f64, exposure: Time, temperature_k: f64) -> f64 {
        let mut var: f64 = self
            .sources
            .iter()
            .map(|s| {
                let rms = s.rms_fraction(signal_fraction, exposure, temperature_k);
                rms * rms
            })
            .sum();
        if let Some(bits) = self.quant_bits {
            let q = camj_digital::quantize::quantization_noise_rms(bits);
            var += q * q;
        }
        var
    }
}

/// The analytic per-stage noise budget of a design at one frame rate —
/// attached to every [`EstimateReport`](crate::energy::EstimateReport)
/// whose analog chain declares (or implies) any noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseReport {
    /// The mean signal level (fraction of full scale) the budget is
    /// quoted at.
    pub signal_fraction: f64,
    /// Per-stage accounting, in signal-flow order.
    pub stages: Vec<StageNoise>,
    /// Total RMS noise at the chain's output, fraction of full scale.
    pub output_noise_rms: f64,
    /// End-to-end SNR in dB: `20·log10(signal / output_noise_rms)`.
    pub output_snr_db: f64,
}

impl NoiseReport {
    /// The accounting row of one named stage, if present.
    #[must_use]
    pub fn stage(&self, unit: &str) -> Option<&StageNoise> {
        self.stages.iter().find(|s| s.unit == unit)
    }
}

/// One analytic accounting row: what a stage adds and where the
/// cumulative budget stands after it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageNoise {
    /// The analog unit's name.
    pub unit: String,
    /// RMS noise this stage adds (all its sources plus quantization),
    /// fraction of full scale.
    pub added_noise_rms: f64,
    /// Cumulative RMS noise after this stage, fraction of full scale.
    pub cumulative_noise_rms: f64,
    /// Cumulative SNR in dB after this stage; absent while the chain
    /// is still noise-free.
    pub snr_db: Option<f64>,
}

/// The result of one seeded functional frame simulation
/// ([`ValidatedModel::simulate_frame`]): per-stage measured SNR and a
/// digest that pins the output frame bit-for-bit.
///
/// [`ValidatedModel::simulate_frame`]: crate::energy::ValidatedModel::simulate_frame
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameSimReport {
    /// The RNG seed the frame was simulated with.
    pub seed: u64,
    /// The stimulus, in its CLI grammar (`uniform:0.5`, …).
    pub stimulus: String,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Channel count.
    pub channels: u32,
    /// Per-stage measurements, in signal-flow order.
    pub stages: Vec<StageSim>,
    /// Summary statistics of the final simulated frame.
    pub output: OutputStats,
    /// A 128-bit fingerprint of the final frame's raw `f64` bits,
    /// hex-encoded — byte-identical runs produce identical digests.
    pub digest: String,
    /// The digital-DAG functional pass: what the mapped algorithm
    /// actually computed from the (noisy, quantized) sensor frame.
    /// Absent when the algorithm has no non-input stages.
    pub dag: Option<DagSim>,
}

/// One measured stage of a simulated frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSim {
    /// The analog unit's name.
    pub unit: String,
    /// RMS deviation from the clean frame after this stage, fraction
    /// of full scale.
    pub noise_rms: f64,
    /// Measured SNR in dB after this stage
    /// (`20·log10(signal_rms / noise_rms)`); absent while the frame is
    /// still bit-exact.
    pub snr_db: Option<f64>,
}

/// Summary statistics of a simulated output frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputStats {
    /// Mean pixel value, fraction of full scale.
    pub mean: f64,
    /// Smallest pixel value.
    pub min: f64,
    /// Largest pixel value.
    pub max: f64,
    /// RMS deviation from the clean frame, fraction of full scale.
    pub noise_rms: f64,
    /// Measured end-to-end SNR in dB; absent for a noise-free chain.
    pub snr_db: Option<f64>,
}

/// The result of a Monte-Carlo functional simulation
/// ([`ValidatedModel::simulate_frames`]): per-stage noise statistics
/// aggregated over several independently seeded frames.
///
/// One frame samples one noise realisation; the analytic
/// [`NoiseReport`] and the explorer's `snr` objective rest on a single
/// closed-form estimate. Averaging seeded frames recovers an empirical
/// SNR with a quantified spread (`…_std`), which is what the
/// `mc_snr:<samples>` pareto objective minimises (as mean output noise
/// RMS).
///
/// [`ValidatedModel::simulate_frames`]: crate::energy::ValidatedModel::simulate_frames
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McFrameSimReport {
    /// The stimulus, in its CLI grammar (`uniform:0.5`, …).
    pub stimulus: String,
    /// The seeds simulated, in input order.
    pub seeds: Vec<u64>,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Channel count.
    pub channels: u32,
    /// Per-stage aggregates, in signal-flow order.
    pub stages: Vec<StageMcSim>,
    /// Aggregate statistics of the final simulated frames.
    pub output: McOutputStats,
    /// The per-seed frame digests, in seed order — pins every
    /// underlying frame bit-for-bit, so serial and parallel evaluations
    /// of the same seed list are byte-comparable.
    pub digests: Vec<String>,
    /// Monte-Carlo aggregate of the digital-DAG functional pass.
    /// Absent when the algorithm has no non-input stages.
    pub dag: Option<McDagSim>,
}

/// One stage's Monte-Carlo aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMcSim {
    /// The analog unit's name.
    pub unit: String,
    /// Mean over seeds of the stage's measured noise RMS.
    pub noise_rms_mean: f64,
    /// Sample standard deviation (n−1) of the noise RMS; `0` for a
    /// single seed.
    pub noise_rms_std: f64,
    /// Mean measured SNR in dB; absent while the frame is bit-exact.
    pub snr_db_mean: Option<f64>,
    /// Sample standard deviation of the SNR in dB.
    pub snr_db_std: Option<f64>,
}

/// Monte-Carlo aggregate of the output-frame statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McOutputStats {
    /// Mean over seeds of the output frame's mean pixel value.
    pub mean: f64,
    /// Mean over seeds of the end-to-end noise RMS.
    pub noise_rms_mean: f64,
    /// Sample standard deviation (n−1) of the noise RMS.
    pub noise_rms_std: f64,
    /// Mean end-to-end SNR in dB; absent for a noise-free chain.
    pub snr_db_mean: Option<f64>,
    /// Sample standard deviation of the SNR in dB.
    pub snr_db_std: Option<f64>,
}

/// The digital-DAG half of one simulated frame: each non-input stage
/// executed functionally (window means, element-wise combination,
/// shape adaptation) on the noisy sensor frame, requantized to the
/// stage's declared bit width, and compared against the same DAG run
/// on the clean frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagSim {
    /// Per-stage measurements, in topological order.
    pub stages: Vec<DagStageSim>,
    /// The sink stage whose output the task metrics judge.
    pub sink: String,
    /// Task-level quality of the sink output versus the clean-frame
    /// reference output.
    pub metrics: TaskMetrics,
    /// A 128-bit fingerprint of the sink tensor's raw `f64` bits,
    /// hex-encoded — pins the full-DAG output bit-for-bit.
    pub digest: String,
}

/// One functionally executed DAG stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagStageSim {
    /// The algorithm stage's name.
    pub stage: String,
    /// RMS deviation of the stage's output from the clean-frame
    /// reference output, fraction of full scale.
    pub error_rms: f64,
    /// SNR in dB of the stage output against its reference
    /// (`20·log10(reference_rms / error_rms)`); absent while the
    /// tensors are still bit-exact.
    pub snr_db: Option<f64>,
}

/// Task-level quality metrics of a DAG sink output against its
/// clean-frame reference: full-reference error (MSE/RMSE/PSNR) for
/// reconstruction-style pipelines, and the normalised gaze-centroid
/// error that judges detection-style pipelines like Ed-Gaze.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// Mean squared error, fraction² of full scale.
    pub mse: f64,
    /// Root of `mse`, fraction of full scale.
    pub rmse: f64,
    /// Peak SNR in dB (`10·log10(1 / mse)`); absent when the output is
    /// bit-exact (PSNR would be infinite).
    pub psnr_db: Option<f64>,
    /// Distance between the intensity-weighted centroids of the output
    /// and reference tensors, normalised so `1.0` is the frame
    /// diagonal — a gaze-error proxy for eye-tracking workloads.
    pub centroid_err: f64,
}

/// Monte-Carlo aggregate of the digital-DAG pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McDagSim {
    /// Per-stage aggregates, in topological order.
    pub stages: Vec<McDagStageSim>,
    /// The sink stage whose output the task metrics judge.
    pub sink: String,
    /// Aggregated task metrics over the seeds.
    pub metrics: McTaskMetrics,
    /// Per-seed sink digests, in seed order.
    pub digests: Vec<String>,
}

/// One DAG stage's Monte-Carlo aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McDagStageSim {
    /// The algorithm stage's name.
    pub stage: String,
    /// Mean over seeds of the stage's error RMS.
    pub error_rms_mean: f64,
    /// Sample standard deviation (n−1) of the error RMS.
    pub error_rms_std: f64,
    /// Mean SNR in dB; absent while the tensors are bit-exact.
    pub snr_db_mean: Option<f64>,
    /// Sample standard deviation of the SNR in dB.
    pub snr_db_std: Option<f64>,
}

/// Monte-Carlo aggregate of the task metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McTaskMetrics {
    /// Mean over seeds of the MSE.
    pub mse_mean: f64,
    /// Sample standard deviation (n−1) of the MSE.
    pub mse_std: f64,
    /// Mean over seeds of the RMSE.
    pub rmse_mean: f64,
    /// Sample standard deviation of the RMSE.
    pub rmse_std: f64,
    /// Mean PSNR in dB; absent when any seed was bit-exact.
    pub psnr_db_mean: Option<f64>,
    /// Sample standard deviation of the PSNR.
    pub psnr_db_std: Option<f64>,
    /// Mean normalised centroid error.
    pub centroid_err_mean: f64,
    /// Sample standard deviation of the centroid error.
    pub centroid_err_std: f64,
}

impl TaskMetrics {
    /// Measures `output` against `reference` on a `width` × `height`
    /// × `channels` tensor. Pure arithmetic in index order, so the
    /// result is deterministic across thread counts.
    ///
    /// # Panics
    ///
    /// Panics if the tensors disagree in length.
    #[must_use]
    pub fn measure(output: &[f64], reference: &[f64], width: u32, height: u32) -> Self {
        assert_eq!(output.len(), reference.len(), "tensor shapes must match");
        let n = output.len().max(1) as f64;
        let mse = output
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n;
        let psnr_db = if mse > 0.0 {
            Some(10.0 * (1.0 / mse).log10())
        } else {
            None
        };
        let (ox, oy) = centroid(output, width, height);
        let (rx, ry) = centroid(reference, width, height);
        let (dx, dy) = (ox - rx, oy - ry);
        Self {
            mse,
            rmse: mse.sqrt(),
            psnr_db,
            centroid_err: (dx * dx + dy * dy).sqrt() / std::f64::consts::SQRT_2,
        }
    }
}

/// The intensity-weighted centroid of a tensor (channels summed per
/// pixel), in coordinates normalised to `[0, 1]` per axis. A zero
/// total weight (an all-black frame) centres the centroid.
fn centroid(tensor: &[f64], width: u32, height: u32) -> (f64, f64) {
    let channels = tensor.len() / (width as usize * height as usize).max(1);
    let (mut wx, mut wy, mut total) = (0.0, 0.0, 0.0);
    let mut idx = 0;
    for y in 0..height {
        for x in 0..width {
            let mut w = 0.0;
            for _ in 0..channels {
                w += tensor[idx];
                idx += 1;
            }
            wx += w * f64::from(x);
            wy += w * f64::from(y);
            total += w;
        }
    }
    if total <= 0.0 {
        return (0.5, 0.5);
    }
    let nx = if width > 1 {
        wx / total / f64::from(width - 1)
    } else {
        0.5
    };
    let ny = if height > 1 {
        wy / total / f64::from(height - 1)
    } else {
        0.5
    };
    (nx, ny)
}

/// Mean and sample standard deviation (n−1 denominator; `0` when fewer
/// than two values).
pub(crate) fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Aggregates optional per-seed values: statistics are reported only
/// when every seed produced one (a noise realisation never changes
/// whether a chain is noisy, so mixed presence would be a bug upstream).
pub(crate) fn mean_std_opt(values: &[Option<f64>]) -> (Option<f64>, Option<f64>) {
    let present: Vec<f64> = values.iter().copied().flatten().collect();
    if present.len() != values.len() || present.is_empty() {
        return (None, None);
    }
    let (mean, std) = mean_std(&present);
    (Some(mean), Some(std))
}

/// `20·log10(signal / noise)`, or `None` when there is no noise to
/// compare against (SNR would be infinite, which JSON cannot carry).
pub(crate) fn snr_db(signal_rms: f64, noise_rms: f64) -> Option<f64> {
    if noise_rms > 0.0 && signal_rms > 0.0 {
        Some(20.0 * (signal_rms / noise_rms).log10())
    } else {
        None
    }
}

/// Derives the RNG stream of one noise stage: a pure mix of the frame
/// seed, the stage's position, and the unit name, so streams never
/// depend on evaluation order or thread count.
pub(crate) fn stage_rng(seed: u64, stage_index: usize, unit: &str) -> StdRng {
    let mut h = FpHasher::new();
    h.write_str("camj.frame-sim/v1");
    h.write_u64(seed);
    h.write_usize(stage_index);
    h.write_str(unit);
    let (hi, lo) = h.finish().parts();
    StdRng::seed_from_u64(hi ^ lo)
}

/// One standard-normal sample via Box–Muller (the shim RNG only offers
/// uniforms). Uses the open-closed unit interval so `ln` never sees 0.
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stimulus_grammar_round_trips() {
        for text in ["uniform:0.5", "gradient:0.1,0.9", "uniform:1", "uniform:0"] {
            let s: Stimulus = text.parse().unwrap();
            assert_eq!(s.to_string().parse::<Stimulus>().unwrap(), s, "{text}");
        }
        assert_eq!(
            Stimulus::default().to_string().parse::<Stimulus>().unwrap(),
            Stimulus::default()
        );
    }

    #[test]
    fn bad_stimuli_are_reported() {
        for text in [
            "uniform:1.5",
            "uniform:x",
            "gradient:0.9,0.1",
            "gradient:0.5",
            "noise",
        ] {
            assert!(text.parse::<Stimulus>().is_err(), "{text}");
        }
    }

    #[test]
    fn gradient_spans_its_bounds() {
        let s = Stimulus::gradient(0.2, 0.8);
        assert_eq!(s.value_at(0, 0, 100, 1), 0.2);
        assert_eq!(s.value_at(99, 0, 100, 1), 0.8);
        assert!((s.mean_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(Stimulus::gradient(0.3, 0.7).value_at(0, 0, 1, 1), 0.3);
    }

    #[test]
    fn image_stimulus_loads_resamples_and_round_trips() {
        let dir = std::env::temp_dir().join("camj-image-stimulus-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ramp.pgm");
        // 4x2 ramp: values 0..8 scaled by maxval/8.
        let img = image::Pnm::new(4, 2, 1, 200, vec![0, 25, 50, 75, 100, 125, 150, 175]).unwrap();
        image::save(&path, &img).unwrap();

        let spec = format!("image:{}", path.display());
        let s: Stimulus = spec.parse().unwrap();
        let Stimulus::Image {
            width,
            height,
            ref pixels,
            ..
        } = s
        else {
            panic!("expected an image stimulus");
        };
        assert_eq!((width, height), (4, 2));
        assert_eq!(pixels[0], 0.0);
        assert!((pixels[7] - 0.875).abs() < 1e-12);
        // Identity-size render reproduces the pixels exactly.
        assert_eq!(s.render(4, 2, 1), *pixels);
        // Nearest-neighbour upsample only repeats existing values.
        for v in s.render(8, 4, 1) {
            assert!(pixels.contains(&v), "{v}");
        }
        // Display/parse round-trips through the path.
        assert_eq!(s.to_string().parse::<Stimulus>().unwrap(), s);

        assert!("image:".parse::<Stimulus>().is_err());
        assert!("image:/nonexistent/x.pgm".parse::<Stimulus>().is_err());
    }

    #[test]
    fn stage_rng_streams_are_independent_and_stable() {
        let mut a = stage_rng(42, 0, "PixelArray");
        let mut a2 = stage_rng(42, 0, "PixelArray");
        let mut b = stage_rng(42, 1, "ADCArray");
        assert_eq!(a.next_u64(), a2.next_u64(), "same stage ⇒ same stream");
        let mut a = stage_rng(42, 0, "PixelArray");
        assert_ne!(a.next_u64(), b.next_u64(), "stages get distinct streams");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = stage_rng(7, 0, "x");
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn task_metrics_on_identical_tensors_are_zero() {
        let t = [0.1, 0.5, 0.9, 0.2];
        let m = TaskMetrics::measure(&t, &t, 2, 2);
        assert_eq!(m.mse, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.psnr_db, None);
        assert_eq!(m.centroid_err, 0.0);
    }

    #[test]
    fn centroid_error_tracks_mass_shift() {
        // All mass at the left edge vs all mass at the right edge of a
        // 4x1 strip: centroids land at nx = 0 and nx = 1.
        let reference = [1.0, 0.0, 0.0, 0.0];
        let output = [0.0, 0.0, 0.0, 1.0];
        let m = TaskMetrics::measure(&output, &reference, 4, 1);
        let expected = 1.0 / std::f64::consts::SQRT_2;
        assert!((m.centroid_err - expected).abs() < 1e-12, "{m:?}");
        assert!((m.mse - 0.5).abs() < 1e-12);
        // An all-black output centres its centroid rather than diverging.
        let black = [0.0; 4];
        let m = TaskMetrics::measure(&black, &reference, 4, 1);
        assert!(m.centroid_err.is_finite());
    }

    #[test]
    fn snr_handles_the_noise_free_edge() {
        assert_eq!(snr_db(0.5, 0.0), None);
        let db = snr_db(0.5, 0.005).unwrap();
        assert!((db - 40.0).abs() < 1e-9, "{db}");
    }
}
