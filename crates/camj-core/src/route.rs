//! Data-flow routing: from algorithm edges to physical paths.
//!
//! Every algorithm-DAG edge whose endpoints map to *different* hardware
//! units implies physical data movement. A [`Route`] records the unit
//! path the pixels take (derived from the hardware connectivity), the
//! pixel/byte volume, and the consuming stage — everything the
//! functional-viability check, the ADC access counter, and the
//! communication energy model (Eq. 17) need.
//!
//! Sink stages executing inside the sensor get an implicit route to the
//! off-chip host: semantic results always leave the package over MIPI.

use serde::{Deserialize, Serialize};

use crate::error::CamjError;
use crate::hw::HardwareDesc;
use crate::mapping::Mapping;
use crate::sw::AlgorithmGraph;

/// One physical data movement implied by the algorithm and mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// The producing stage.
    pub from_stage: String,
    /// The consuming stage, or `None` for the implicit host sink.
    pub to_stage: Option<String>,
    /// Unit names along the physical path, inclusive of both endpoints.
    /// Empty for the implicit host route (the data simply exits).
    pub path: Vec<String>,
    /// Pixels moved per frame.
    pub pixels: u64,
    /// Bytes moved per frame.
    pub bytes: u64,
}

impl Route {
    /// Units strictly between producer and consumer (pass-throughs:
    /// ADC arrays, analog buffers, memories). For host-exit routes every
    /// unit after the producer is a pass-through (the data leaves the
    /// chip after the last one).
    #[must_use]
    pub fn intermediates(&self) -> &[String] {
        if self.is_host_exit() {
            return &self.path[1..];
        }
        if self.path.len() <= 2 {
            &[]
        } else {
            &self.path[1..self.path.len() - 1]
        }
    }

    /// Whether this is the implicit exit to the off-chip host.
    #[must_use]
    pub fn is_host_exit(&self) -> bool {
        self.to_stage.is_none()
    }
}

/// Computes every route implied by `algo` + `mapping` over `hw`.
///
/// # Errors
///
/// Returns [`CamjError::CheckMapping`] when a stage is unmapped or bound
/// to an unknown unit, and [`CamjError::CheckFunctional`] when no
/// physical path connects two mapped units.
pub fn routes(
    algo: &AlgorithmGraph,
    hw: &HardwareDesc,
    mapping: &Mapping,
) -> Result<Vec<Route>, CamjError> {
    let mut out = Vec::new();
    for (from, to) in algo.edge_names() {
        let u1 = unit_of(mapping, hw, from)?;
        let u2 = unit_of(mapping, hw, to)?;
        if u1 == u2 {
            continue; // fused stages share a unit: no data movement
        }
        let path = hw.path(u1, u2).ok_or_else(|| CamjError::CheckFunctional {
            reason: format!(
                "no physical path from unit '{u1}' (stage '{from}') to \
                 unit '{u2}' (stage '{to}')"
            ),
        })?;
        let stage = algo
            .stage(from)
            .expect("edge endpoints exist by construction");
        out.push(Route {
            from_stage: from.to_owned(),
            to_stage: Some(to.to_owned()),
            path,
            pixels: stage.output_size().count(),
            bytes: stage.output_bytes(),
        });
    }
    // Implicit exits: sink stages running inside the sensor ship their
    // results to the host, traversing whatever downstream hardware
    // (e.g. a readout ADC chain) sits between them and the chip boundary.
    for sink in algo.sinks() {
        let unit = unit_of(mapping, hw, sink.name())?;
        let layer = hw
            .layer_of(unit)
            .expect("mapped units exist by construction");
        if layer.is_in_sensor() {
            out.push(Route {
                from_stage: sink.name().to_owned(),
                to_stage: None,
                path: exit_chain(hw, unit),
                pixels: sink.output_size().count(),
                bytes: sink.output_bytes(),
            });
        }
    }
    Ok(out)
}

/// Follows physical successors from `unit` to the chip's output port
/// (the last unit with no successor). Forks take the first-declared
/// branch; a visited-set guards against connection cycles.
fn exit_chain(hw: &HardwareDesc, unit: &str) -> Vec<String> {
    let mut chain = vec![unit.to_owned()];
    let mut current = unit.to_owned();
    while let Some(&next) = hw.successors(&current).first() {
        if chain.iter().any(|c| c == next) {
            break;
        }
        chain.push(next.to_owned());
        current = next.to_owned();
    }
    chain
}

/// Resolves and validates the unit a stage maps to.
pub(crate) fn unit_of<'m>(
    mapping: &'m Mapping,
    hw: &HardwareDesc,
    stage: &str,
) -> Result<&'m str, CamjError> {
    let unit = mapping
        .unit_for(stage)
        .ok_or_else(|| CamjError::CheckMapping {
            reason: format!("stage '{stage}' is not mapped to any hardware unit"),
        })?;
    if hw.kind_of(unit).is_none() {
        return Err(CamjError::CheckMapping {
            reason: format!("stage '{stage}' is mapped to unknown unit '{unit}'"),
        });
    }
    Ok(unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{AnalogCategory, AnalogUnitDesc, DigitalUnitDesc, Layer, MemoryDesc};
    use crate::sw::Stage;
    use camj_analog::array::AnalogArray;
    use camj_analog::components::{aps_4t, column_adc, ApsParams};
    use camj_digital::compute::ComputeUnit;
    use camj_digital::memory::MemoryStructure;

    fn fig5() -> (AlgorithmGraph, HardwareDesc, Mapping) {
        let mut algo = AlgorithmGraph::new();
        algo.add_stage(Stage::input("Input", [32, 32, 1]));
        algo.add_stage(Stage::stencil(
            "Binning",
            [32, 32, 1],
            [16, 16, 1],
            [2, 2, 1],
            [2, 2, 1],
        ));
        algo.add_stage(Stage::stencil(
            "EdgeDetection",
            [16, 16, 1],
            [16, 16, 1],
            [3, 3, 1],
            [1, 1, 1],
        ));
        algo.connect("Input", "Binning").unwrap();
        algo.connect("Binning", "EdgeDetection").unwrap();

        let mut hw = HardwareDesc::new(200e6);
        hw.add_analog(AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(aps_4t(ApsParams::default().with_shared_pixels(4)), 16, 16),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_analog(AnalogUnitDesc::new(
            "ADCArray",
            AnalogArray::new(column_adc(10), 1, 16),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_memory(MemoryDesc::new(
            MemoryStructure::line_buffer("LineBuffer", 3, 16),
            Layer::Sensor,
            0.0,
        ));
        hw.add_digital(DigitalUnitDesc::pipelined(
            ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2),
            Layer::Sensor,
        ));
        hw.connect("PixelArray", "ADCArray");
        hw.connect("ADCArray", "LineBuffer");
        hw.connect("LineBuffer", "EdgeUnit");

        let mapping = Mapping::new()
            .map("Input", "PixelArray")
            .map("Binning", "PixelArray")
            .map("EdgeDetection", "EdgeUnit");
        (algo, hw, mapping)
    }

    #[test]
    fn fused_stages_produce_no_route() {
        let (algo, hw, mapping) = fig5();
        let rs = routes(&algo, &hw, &mapping).unwrap();
        // Input→Binning fused on PixelArray; Binning→EdgeDetection moves;
        // EdgeDetection exits to the host.
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].from_stage, "Binning");
        assert_eq!(
            rs[0].path,
            vec!["PixelArray", "ADCArray", "LineBuffer", "EdgeUnit"]
        );
        assert_eq!(rs[0].pixels, 256);
        assert!(rs[1].is_host_exit());
        assert_eq!(rs[1].bytes, 256);
    }

    #[test]
    fn intermediates_exclude_endpoints() {
        let (algo, hw, mapping) = fig5();
        let rs = routes(&algo, &hw, &mapping).unwrap();
        assert_eq!(rs[0].intermediates(), ["ADCArray", "LineBuffer"]);
        assert!(rs[1].intermediates().is_empty());
    }

    #[test]
    fn unmapped_stage_is_reported() {
        let (algo, hw, _) = fig5();
        let incomplete = Mapping::new().map("Input", "PixelArray");
        let err = routes(&algo, &hw, &incomplete).unwrap_err();
        assert!(matches!(err, CamjError::CheckMapping { .. }));
    }

    #[test]
    fn unknown_unit_is_reported() {
        let (algo, hw, mapping) = fig5();
        let bad = mapping.map("EdgeDetection", "Ghost");
        let err = routes(&algo, &hw, &bad).unwrap_err();
        assert!(err.to_string().contains("Ghost"));
    }

    #[test]
    fn missing_physical_path_is_reported() {
        let (algo, mut hw, mapping) = fig5();
        // Rebuild hw without the LineBuffer→EdgeUnit link.
        hw = {
            let mut h = HardwareDesc::new(200e6);
            h.add_analog(hw.analog("PixelArray").unwrap().clone());
            h.add_analog(hw.analog("ADCArray").unwrap().clone());
            h.add_memory(hw.memory("LineBuffer").unwrap().clone());
            h.add_digital(hw.digital("EdgeUnit").unwrap().clone());
            h.connect("PixelArray", "ADCArray");
            h.connect("ADCArray", "LineBuffer");
            h
        };
        let err = routes(&algo, &hw, &mapping).unwrap_err();
        assert!(matches!(err, CamjError::CheckFunctional { .. }));
    }

    #[test]
    fn off_chip_sink_gets_no_exit_route() {
        let (algo, mut hw, mapping) = fig5();
        // Move the edge unit off-chip: results already live on the host.
        hw = {
            let mut h = HardwareDesc::new(200e6);
            h.add_analog(hw.analog("PixelArray").unwrap().clone());
            h.add_analog(hw.analog("ADCArray").unwrap().clone());
            h.add_memory(MemoryDesc::new(
                MemoryStructure::line_buffer("LineBuffer", 3, 16),
                Layer::OffChip,
                0.0,
            ));
            h.add_digital(DigitalUnitDesc::pipelined(
                ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2),
                Layer::OffChip,
            ));
            h.connect("PixelArray", "ADCArray");
            h.connect("ADCArray", "LineBuffer");
            h.connect("LineBuffer", "EdgeUnit");
            h
        };
        let rs = routes(&algo, &hw, &mapping).unwrap();
        assert_eq!(rs.len(), 1);
        assert!(!rs[0].is_host_exit());
    }
}
