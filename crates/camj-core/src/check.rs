//! Pre-simulation design checks (paper Sec. 3.2).
//!
//! Before estimating energy, CamJ verifies that the algorithm/hardware
//! combination is *functionally viable*: signal domains must match along
//! every physical route ("ADCs must exist between the analog and digital
//! domain"), input stages must land on photon-sensitive units, and every
//! stage must be mapped. DAG well-formedness is checked by
//! [`AlgorithmGraph::validate`]; stall freedom is checked against the
//! cycle-level simulation in the estimator.

use camj_analog::cell::AnalogCell;
use camj_analog::domain::SignalDomain;
use camj_analog::noise::MAX_RESOLUTION_BITS;

use crate::error::CamjError;
use crate::hw::{HardwareDesc, UnitKind};
use crate::mapping::Mapping;
use crate::route::{routes, unit_of};
use crate::sw::{AlgorithmGraph, StageKind};

/// Runs all static checks: DAG well-formedness, mapping completeness,
/// and functional viability of every route.
///
/// # Errors
///
/// Returns the first violation found as a [`CamjError`].
pub fn validate(
    algo: &AlgorithmGraph,
    hw: &HardwareDesc,
    mapping: &Mapping,
) -> Result<(), CamjError> {
    algo.validate()?;
    check_converter_resolutions(hw)?;
    check_mapping_targets(algo, hw, mapping)?;
    check_domains(algo, hw, mapping)?;
    Ok(())
}

/// Non-linear converter cells must stay within the supported
/// resolution range: beyond [`MAX_RESOLUTION_BITS`] the `2^bits`
/// arithmetic of the sizing and quantization models degenerates (and
/// no physical converter approaches it), so the Rust builder API is
/// rejected here with the same bound the description loader enforces.
fn check_converter_resolutions(hw: &HardwareDesc) -> Result<(), CamjError> {
    for unit in hw.analog_units() {
        for inst in unit.array().component().cells() {
            if let AnalogCell::NonLinear { bits, .. } = inst.cell {
                if bits > MAX_RESOLUTION_BITS {
                    return Err(CamjError::CheckFunctional {
                        reason: format!(
                            "cell '{}' of unit '{}' declares a {bits}-bit converter; \
                             resolutions above {MAX_RESOLUTION_BITS} bits are not \
                             supported",
                            inst.label,
                            unit.name()
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Every stage must map to a compute-capable unit (analog or digital —
/// not a bare memory), and input stages must map to photon-sensitive
/// analog units.
fn check_mapping_targets(
    algo: &AlgorithmGraph,
    hw: &HardwareDesc,
    mapping: &Mapping,
) -> Result<(), CamjError> {
    for stage in algo.stages() {
        let unit = unit_of(mapping, hw, stage.name())?;
        match hw.kind_of(unit) {
            Some(UnitKind::Memory) => {
                return Err(CamjError::CheckMapping {
                    reason: format!(
                        "stage '{}' is mapped to memory '{unit}'; stages need \
                         a compute unit",
                        stage.name()
                    ),
                });
            }
            Some(UnitKind::Analog | UnitKind::Digital) => {}
            None => unreachable!("unit_of validated existence"),
        }
        if matches!(stage.kind(), StageKind::Input) {
            let viable = hw
                .analog(unit)
                .is_some_and(|u| u.array().input_domain() == SignalDomain::Optical);
            if !viable {
                return Err(CamjError::CheckFunctional {
                    reason: format!(
                        "input stage '{}' must map to a photon-sensitive analog \
                         unit, but '{unit}' does not ingest the optical domain",
                        stage.name()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Walks every route checking signal-domain compatibility hop by hop.
fn check_domains(
    algo: &AlgorithmGraph,
    hw: &HardwareDesc,
    mapping: &Mapping,
) -> Result<(), CamjError> {
    for route in routes(algo, hw, mapping)? {
        let mut current = match hw.analog(&route.path[0]) {
            Some(a) => a.array().output_domain(),
            None => SignalDomain::Digital,
        };
        for hop in &route.path[1..] {
            match hw.kind_of(hop) {
                Some(UnitKind::Analog) => {
                    let a = hw.analog(hop).expect("kind says analog");
                    let expected = a.array().input_domain();
                    if !current.can_drive(expected) {
                        return Err(CamjError::CheckFunctional {
                            reason: format!(
                                "domain mismatch entering '{hop}' on route \
                                 '{}' → '{}': producer drives the {current} \
                                 domain but '{hop}' expects {expected}; insert \
                                 a conversion component",
                                route.from_stage,
                                route.to_stage.as_deref().unwrap_or("<host>")
                            ),
                        });
                    }
                    current = a.array().output_domain();
                }
                Some(UnitKind::Memory | UnitKind::Digital) => {
                    if current != SignalDomain::Digital {
                        return Err(CamjError::CheckFunctional {
                            reason: format!(
                                "'{hop}' is a digital unit but the signal on route \
                                 '{}' → '{}' is still in the {current} domain; \
                                 an ADC must sit between the analog and digital \
                                 domains",
                                route.from_stage,
                                route.to_stage.as_deref().unwrap_or("<host>")
                            ),
                        });
                    }
                }
                None => unreachable!("paths only contain known units"),
            }
        }
        // Data leaves the chip as digital bits: the end of a host-exit
        // chain must have reached the digital domain ("ADCs must exist
        // between the analog and digital domain").
        if route.is_host_exit() && current != SignalDomain::Digital {
            return Err(CamjError::CheckFunctional {
                reason: format!(
                    "stage '{}' produces the final output in the {current} \
                     domain; an ADC must digitise it before it can leave \
                     the sensor",
                    route.from_stage
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{AnalogCategory, AnalogUnitDesc, DigitalUnitDesc, Layer, MemoryDesc};
    use crate::sw::Stage;
    use camj_analog::array::AnalogArray;
    use camj_analog::components::{aps_4t, column_adc, switched_cap_mac, ApsParams};
    use camj_digital::compute::ComputeUnit;
    use camj_digital::memory::MemoryStructure;

    fn base_algo() -> AlgorithmGraph {
        let mut algo = AlgorithmGraph::new();
        algo.add_stage(Stage::input("Input", [32, 32, 1]));
        algo.add_stage(Stage::stencil(
            "Edge",
            [32, 32, 1],
            [32, 32, 1],
            [3, 3, 1],
            [1, 1, 1],
        ));
        algo.connect("Input", "Edge").unwrap();
        algo
    }

    fn hw_with_adc() -> HardwareDesc {
        let mut hw = HardwareDesc::new(200e6);
        hw.add_analog(AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(aps_4t(ApsParams::default()), 32, 32),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_analog(AnalogUnitDesc::new(
            "ADCArray",
            AnalogArray::new(column_adc(10), 1, 32),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_memory(MemoryDesc::new(
            MemoryStructure::line_buffer("LB", 3, 32),
            Layer::Sensor,
            0.0,
        ));
        hw.add_digital(DigitalUnitDesc::pipelined(
            ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2),
            Layer::Sensor,
        ));
        hw.connect("PixelArray", "ADCArray");
        hw.connect("ADCArray", "LB");
        hw.connect("LB", "EdgeUnit");
        hw
    }

    fn mapping() -> Mapping {
        Mapping::new()
            .map("Input", "PixelArray")
            .map("Edge", "EdgeUnit")
    }

    #[test]
    fn viable_design_passes() {
        validate(&base_algo(), &hw_with_adc(), &mapping()).unwrap();
    }

    #[test]
    fn missing_adc_is_caught() {
        // Pixel array (voltage out) wired directly into the line buffer.
        let mut hw = HardwareDesc::new(200e6);
        hw.add_analog(AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(aps_4t(ApsParams::default()), 32, 32),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_memory(MemoryDesc::new(
            MemoryStructure::line_buffer("LB", 3, 32),
            Layer::Sensor,
            0.0,
        ));
        hw.add_digital(DigitalUnitDesc::pipelined(
            ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2),
            Layer::Sensor,
        ));
        hw.connect("PixelArray", "LB");
        hw.connect("LB", "EdgeUnit");
        let err = validate(&base_algo(), &hw, &mapping()).unwrap_err();
        assert!(err.to_string().contains("ADC"), "{err}");
    }

    #[test]
    fn analog_domain_mismatch_is_caught() {
        // A voltage-domain pixel array feeding a current-domain WTA.
        let mut hw = HardwareDesc::new(200e6);
        hw.add_analog(AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(aps_4t(ApsParams::default()), 32, 32),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_analog(AnalogUnitDesc::new(
            "WTA",
            AnalogArray::new(camj_analog::components::max_wta(4, 1.0, 50e-15), 1, 32),
            Layer::Sensor,
            AnalogCategory::Compute,
        ));
        hw.add_analog(AnalogUnitDesc::new(
            "ADCArray",
            AnalogArray::new(column_adc(10), 1, 32),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.connect("PixelArray", "WTA");
        hw.connect("WTA", "ADCArray");
        let m = Mapping::new().map("Input", "PixelArray").map("Edge", "WTA");
        let err = validate(&base_algo(), &hw, &m).unwrap_err();
        assert!(err.to_string().contains("domain mismatch"), "{err}");
    }

    #[test]
    fn analog_sink_without_adc_is_caught() {
        // Final stage output in the voltage domain cannot exit the chip.
        let mut hw = HardwareDesc::new(200e6);
        hw.add_analog(AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(aps_4t(ApsParams::default()), 32, 32),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_analog(AnalogUnitDesc::new(
            "MacArray",
            AnalogArray::new(switched_cap_mac(8, 1.0), 1, 32),
            Layer::Sensor,
            AnalogCategory::Compute,
        ));
        hw.connect("PixelArray", "MacArray");
        let m = Mapping::new()
            .map("Input", "PixelArray")
            .map("Edge", "MacArray");
        let err = validate(&base_algo(), &hw, &m).unwrap_err();
        assert!(err.to_string().contains("ADC"), "{err}");
    }

    #[test]
    fn input_stage_must_be_photosensitive() {
        let hw = hw_with_adc();
        let m = Mapping::new()
            .map("Input", "EdgeUnit")
            .map("Edge", "EdgeUnit");
        let err = validate(&base_algo(), &hw, &m).unwrap_err();
        assert!(err.to_string().contains("photon-sensitive"), "{err}");
    }

    #[test]
    fn stage_mapped_to_memory_rejected() {
        let hw = hw_with_adc();
        let m = Mapping::new().map("Input", "PixelArray").map("Edge", "LB");
        let err = validate(&base_algo(), &hw, &m).unwrap_err();
        assert!(err.to_string().contains("memory"), "{err}");
    }

    #[test]
    fn out_of_range_converter_resolution_rejected() {
        // A 33-bit ADC must be caught at validation, not as a panic
        // inside the noise model's 2^bits arithmetic.
        let mut hw = hw_with_adc();
        hw.add_analog(AnalogUnitDesc::new(
            "WideAdc",
            AnalogArray::new(column_adc(33), 1, 4),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        let m = Mapping::new()
            .map("Input", "PixelArray")
            .map("Edge", "EdgeUnit");
        let err = validate(&base_algo(), &hw, &m).unwrap_err();
        assert!(err.to_string().contains("33-bit"), "{err}");
    }
}
