//! Algorithm-to-hardware mapping (paper Sec. 3.3, `camj_mapping`).
//!
//! The mapping binds each algorithm stage to the hardware unit that
//! executes it. Keeping it separate from both descriptions is the heart
//! of the paper's decoupled interface: exploring a new partition (analog
//! vs digital, in- vs off-sensor) is a re-mapping, not a rewrite. Mapping
//! several stages to one unit expresses hardware reuse.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A stage-name → unit-name mapping.
///
/// # Examples
///
/// ```
/// use camj_core::mapping::Mapping;
///
/// // The paper's Fig. 5 mapping.
/// let mapping = Mapping::new()
///     .map("Input", "PixelArray")
///     .map("Binning", "PixelArray")
///     .map("EdgeDetection", "EdgeUnit");
/// assert_eq!(mapping.unit_for("Binning"), Some("PixelArray"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    bindings: BTreeMap<String, String>,
}

impl Mapping {
    /// Creates an empty mapping.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `stage` to `unit` (builder-style; later bindings win).
    #[must_use]
    pub fn map(mut self, stage: impl Into<String>, unit: impl Into<String>) -> Self {
        self.bindings.insert(stage.into(), unit.into());
        self
    }

    /// The unit a stage is bound to, if any.
    #[must_use]
    pub fn unit_for(&self, stage: &str) -> Option<&str> {
        self.bindings.get(stage).map(String::as_str)
    }

    /// The stages bound to `unit`, in stage-name order.
    #[must_use]
    pub fn stages_on(&self, unit: &str) -> Vec<&str> {
        self.bindings
            .iter()
            .filter(|(_, u)| u.as_str() == unit)
            .map(|(s, _)| s.as_str())
            .collect()
    }

    /// Iterates over `(stage, unit)` bindings in stage-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.bindings.iter().map(|(s, u)| (s.as_str(), u.as_str()))
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the mapping is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_round_trip() {
        let m = Mapping::new().map("A", "U1").map("B", "U1").map("C", "U2");
        assert_eq!(m.unit_for("A"), Some("U1"));
        assert_eq!(m.unit_for("C"), Some("U2"));
        assert_eq!(m.unit_for("D"), None);
        assert_eq!(m.stages_on("U1"), vec!["A", "B"]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn later_bindings_win() {
        let m = Mapping::new().map("A", "U1").map("A", "U2");
        assert_eq!(m.unit_for("A"), Some("U2"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_mapping() {
        let m = Mapping::new();
        assert!(m.is_empty());
        assert!(m.stages_on("U").is_empty());
    }
}
