//! Physical placement layers and the interfaces between them.
//!
//! A computational CIS spans up to three placements: the sensor die, a
//! stacked compute die (3D designs, Fig. 2d), and the off-chip host SoC.
//! Data crossing between placements pays the corresponding interface
//! energy (paper Eq. 17): µTSV/hybrid-bond between stacked layers,
//! MIPI CSI-2 off the package.

use serde::{Deserialize, Serialize};

use camj_tech::interface::Interface;

/// Where a hardware unit physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// The pixel/sensor die (older CIS process node).
    Sensor,
    /// A stacked compute die (advanced logic node, 3D designs only).
    Compute,
    /// The host SoC outside the sensor package.
    OffChip,
}

impl Layer {
    /// The communication interface data pays when moving from `self` to
    /// `to`, or `None` when the hop is free (same layer).
    #[must_use]
    pub fn interface_to(self, to: Layer) -> Option<Interface> {
        use Layer::*;
        if self == to {
            return None;
        }
        match (self, to) {
            // Stacked dies talk over µTSV / hybrid bonds.
            (Sensor, Compute) | (Compute, Sensor) => Some(Interface::MicroTsv),
            // Anything leaving (or entering) the package rides MIPI CSI-2.
            (_, OffChip) | (OffChip, _) => Some(Interface::MipiCsi2),
            (Sensor, Sensor) | (Compute, Compute) => None,
        }
    }

    /// Whether this layer is inside the sensor package.
    #[must_use]
    pub fn is_in_sensor(self) -> bool {
        !matches!(self, Layer::OffChip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_layer_is_free() {
        assert_eq!(Layer::Sensor.interface_to(Layer::Sensor), None);
        assert_eq!(Layer::OffChip.interface_to(Layer::OffChip), None);
    }

    #[test]
    fn stacked_layers_use_tsv() {
        assert_eq!(
            Layer::Sensor.interface_to(Layer::Compute),
            Some(Interface::MicroTsv)
        );
        assert_eq!(
            Layer::Compute.interface_to(Layer::Sensor),
            Some(Interface::MicroTsv)
        );
    }

    #[test]
    fn leaving_package_uses_mipi() {
        assert_eq!(
            Layer::Sensor.interface_to(Layer::OffChip),
            Some(Interface::MipiCsi2)
        );
        assert_eq!(
            Layer::Compute.interface_to(Layer::OffChip),
            Some(Interface::MipiCsi2)
        );
    }

    #[test]
    fn in_sensor_predicate() {
        assert!(Layer::Sensor.is_in_sensor());
        assert!(Layer::Compute.is_in_sensor());
        assert!(!Layer::OffChip.is_in_sensor());
    }
}
