//! Hardware unit descriptors: analog units, digital units, and memories,
//! each pinned to a [`Layer`].

use serde::{Deserialize, Serialize};

use camj_analog::array::AnalogArray;
use camj_digital::compute::{ComputeUnit, SystolicArray};
use camj_digital::memory::MemoryStructure;

use super::layer::Layer;

/// How an analog unit's energy is categorised in breakdowns (the SEN /
/// COMP-A / MEM-A bars of the paper's Fig. 9 and Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnalogCategory {
    /// Pixel arrays and ADCs — "everything up to and including ADCs".
    Sensing,
    /// Analog processing elements (MACs, subtractors, comparators, …).
    Compute,
    /// Analog buffers / sample-and-hold frame memories.
    Memory,
}

/// An analog functional array placed on a layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalogUnitDesc {
    name: String,
    array: AnalogArray,
    layer: Layer,
    category: AnalogCategory,
    ops_per_stage_output: f64,
    pixel_pitch_um: Option<f64>,
}

impl AnalogUnitDesc {
    /// Creates an analog unit descriptor.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        array: AnalogArray,
        layer: Layer,
        category: AnalogCategory,
    ) -> Self {
        Self {
            name: name.into(),
            array,
            layer,
            category,
            ops_per_stage_output: 1.0,
            pixel_pitch_um: None,
        }
    }

    /// Sets how many component accesses each output pixel of a mapped
    /// stage costs (builder-style). Defaults to 1 — e.g. a binning pixel
    /// fires once per binned output. An analog convolution PE that
    /// computes a k×k window one MAC at a time would use `k*k`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is not positive and finite.
    #[must_use]
    pub fn with_ops_per_output(mut self, ops: f64) -> Self {
        assert!(
            ops.is_finite() && ops > 0.0,
            "ops per output must be positive and finite, got {ops}"
        );
        self.ops_per_stage_output = ops;
        self
    }

    /// Marks this unit as a pixel array with the given pixel pitch in
    /// micrometres (builder-style). Pixel arrays define the analog area
    /// in the paper's conservative power-density model.
    ///
    /// # Panics
    ///
    /// Panics if `pitch_um` is not positive and finite.
    #[must_use]
    pub fn with_pixel_pitch_um(mut self, pitch_um: f64) -> Self {
        assert!(
            pitch_um.is_finite() && pitch_um > 0.0,
            "pixel pitch must be positive and finite, got {pitch_um}"
        );
        self.pixel_pitch_um = Some(pitch_um);
        self
    }

    /// The unit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying analog array.
    #[must_use]
    pub fn array(&self) -> &AnalogArray {
        &self.array
    }

    /// The layer the unit sits on.
    #[must_use]
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// The breakdown category.
    #[must_use]
    pub fn category(&self) -> AnalogCategory {
        self.category
    }

    /// Component accesses per mapped-stage output pixel.
    #[must_use]
    pub fn ops_per_stage_output(&self) -> f64 {
        self.ops_per_stage_output
    }

    /// Pixel pitch in µm, if this unit is a pixel array.
    #[must_use]
    pub fn pixel_pitch_um(&self) -> Option<f64> {
        self.pixel_pitch_um
    }

    /// Die area in mm² under the paper's conservative model: pixel
    /// arrays contribute `pitch² × count`; other analog units contribute
    /// nothing (they are subsumed by the pixel array / SRAM estimate).
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        match self.pixel_pitch_um {
            Some(pitch) => {
                let pitch_mm = pitch * 1e-3;
                pitch_mm * pitch_mm * self.array.component_count() as f64
            }
            None => 0.0,
        }
    }
}

/// The digital compute flavors CamJ supports (paper Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DigitalUnitKind {
    /// A generic pipelined accelerator.
    Pipelined(ComputeUnit),
    /// A systolic MAC array for DNN stages.
    Systolic(SystolicArray),
}

/// A digital compute unit placed on a layer, with its memory bindings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigitalUnitDesc {
    name: String,
    kind: DigitalUnitKind,
    layer: Layer,
}

impl DigitalUnitDesc {
    /// Creates a pipelined-accelerator descriptor.
    #[must_use]
    pub fn pipelined(unit: ComputeUnit, layer: Layer) -> Self {
        Self {
            name: unit.name().to_owned(),
            kind: DigitalUnitKind::Pipelined(unit),
            layer,
        }
    }

    /// Creates a systolic-array descriptor.
    #[must_use]
    pub fn systolic(array: SystolicArray, layer: Layer) -> Self {
        Self {
            name: array.name().to_owned(),
            kind: DigitalUnitKind::Systolic(array),
            layer,
        }
    }

    /// The unit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compute flavor.
    #[must_use]
    pub fn kind(&self) -> &DigitalUnitKind {
        &self.kind
    }

    /// The layer the unit sits on.
    #[must_use]
    pub fn layer(&self) -> Layer {
        self.layer
    }
}

/// A digital memory structure placed on a layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryDesc {
    structure: MemoryStructure,
    layer: Layer,
    area_mm2: f64,
}

impl MemoryDesc {
    /// Creates a memory descriptor. `area_mm2` feeds the conservative
    /// digital-area model of Table 3 (use the SRAM macro's area; pass
    /// 0.0 for memories too small to matter).
    ///
    /// # Panics
    ///
    /// Panics if `area_mm2` is negative or non-finite.
    #[must_use]
    pub fn new(structure: MemoryStructure, layer: Layer, area_mm2: f64) -> Self {
        assert!(
            area_mm2.is_finite() && area_mm2 >= 0.0,
            "memory area must be non-negative and finite, got {area_mm2}"
        );
        Self {
            structure,
            layer,
            area_mm2,
        }
    }

    /// The memory's name (that of its structure).
    #[must_use]
    pub fn name(&self) -> &str {
        self.structure.name()
    }

    /// The memory structure descriptor.
    #[must_use]
    pub fn structure(&self) -> &MemoryStructure {
        &self.structure
    }

    /// The layer the memory sits on.
    #[must_use]
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// Macro area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_analog::components::{aps_4t, column_adc, ApsParams};

    #[test]
    fn pixel_array_area_from_pitch() {
        let arr = AnalogArray::new(aps_4t(ApsParams::default()), 100, 100);
        let unit = AnalogUnitDesc::new("px", arr, Layer::Sensor, AnalogCategory::Sensing)
            .with_pixel_pitch_um(3.0);
        // 10 000 pixels × 9 µm² = 0.09 mm².
        assert!((unit.area_mm2() - 0.09).abs() < 1e-9);
    }

    #[test]
    fn non_pixel_units_have_zero_area() {
        let arr = AnalogArray::new(column_adc(10), 1, 100);
        let unit = AnalogUnitDesc::new("adc", arr, Layer::Sensor, AnalogCategory::Sensing);
        assert_eq!(unit.area_mm2(), 0.0);
    }

    #[test]
    fn digital_descriptor_names_follow_inner_unit() {
        let cu = ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2);
        let d = DigitalUnitDesc::pipelined(cu, Layer::Sensor);
        assert_eq!(d.name(), "EdgeUnit");
        assert_eq!(d.layer(), Layer::Sensor);
    }

    #[test]
    fn memory_descriptor_round_trips() {
        let m = MemoryDesc::new(MemoryStructure::fifo("buf", 1024), Layer::Compute, 0.25);
        assert_eq!(m.name(), "buf");
        assert_eq!(m.layer(), Layer::Compute);
        assert!((m.area_mm2() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_pitch_rejected() {
        let arr = AnalogArray::new(column_adc(10), 1, 4);
        let _ = AnalogUnitDesc::new("a", arr, Layer::Sensor, AnalogCategory::Sensing)
            .with_pixel_pitch_um(-1.0);
    }
}
