//! The hardware description: all units plus their physical connectivity
//! (paper Sec. 3.3, `camj_hw_config`).
//!
//! Connectivity is declared unit-to-unit, mirroring the paper's
//! `pixel_array.set_output(adc_array)` / `edge_unit.set_input(line_buf)`
//! style. CamJ routes each algorithm-DAG edge along these physical paths
//! to derive ADC conversion counts, buffer traffic, and layer-crossing
//! communication volumes.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use super::layer::Layer;
use super::units::{AnalogUnitDesc, DigitalUnitDesc, MemoryDesc};

/// What kind of unit a name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// An analog functional array.
    Analog,
    /// A digital compute unit.
    Digital,
    /// A digital memory structure.
    Memory,
}

/// The complete hardware description.
///
/// # Examples
///
/// ```
/// use camj_analog::array::AnalogArray;
/// use camj_analog::components::{aps_4t, column_adc, ApsParams};
/// use camj_core::hw::{AnalogCategory, AnalogUnitDesc, HardwareDesc, Layer};
///
/// let mut hw = HardwareDesc::new(200e6);
/// hw.add_analog(AnalogUnitDesc::new(
///     "PixelArray",
///     AnalogArray::new(aps_4t(ApsParams::default()), 32, 32),
///     Layer::Sensor,
///     AnalogCategory::Sensing,
/// ));
/// hw.add_analog(AnalogUnitDesc::new(
///     "ADCArray",
///     AnalogArray::new(column_adc(10), 1, 16),
///     Layer::Sensor,
///     AnalogCategory::Sensing,
/// ));
/// hw.connect("PixelArray", "ADCArray");
/// assert_eq!(hw.path("PixelArray", "ADCArray").unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareDesc {
    analog: Vec<AnalogUnitDesc>,
    digital: Vec<DigitalUnitDesc>,
    memories: Vec<MemoryDesc>,
    connections: Vec<(String, String)>,
    digital_clock_hz: f64,
}

impl HardwareDesc {
    /// Creates an empty description with the given digital clock.
    ///
    /// # Panics
    ///
    /// Panics if `digital_clock_hz` is not positive and finite.
    #[must_use]
    pub fn new(digital_clock_hz: f64) -> Self {
        assert!(
            digital_clock_hz.is_finite() && digital_clock_hz > 0.0,
            "digital clock must be positive and finite, got {digital_clock_hz}"
        );
        Self {
            analog: Vec::new(),
            digital: Vec::new(),
            memories: Vec::new(),
            connections: Vec::new(),
            digital_clock_hz,
        }
    }

    /// The system digital clock in hertz.
    #[must_use]
    pub fn digital_clock_hz(&self) -> f64 {
        self.digital_clock_hz
    }

    /// Adds an analog unit.
    ///
    /// # Panics
    ///
    /// Panics on duplicate unit names.
    pub fn add_analog(&mut self, unit: AnalogUnitDesc) {
        self.assert_fresh(unit.name());
        self.analog.push(unit);
    }

    /// Adds a digital compute unit.
    ///
    /// # Panics
    ///
    /// Panics on duplicate unit names.
    pub fn add_digital(&mut self, unit: DigitalUnitDesc) {
        self.assert_fresh(unit.name());
        self.digital.push(unit);
    }

    /// Adds a memory structure.
    ///
    /// # Panics
    ///
    /// Panics on duplicate unit names.
    pub fn add_memory(&mut self, memory: MemoryDesc) {
        self.assert_fresh(memory.name());
        self.memories.push(memory);
    }

    /// Declares a physical connection from unit `from` to unit `to`.
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown.
    pub fn connect(&mut self, from: &str, to: &str) {
        assert!(self.kind_of(from).is_some(), "unknown unit '{from}'");
        assert!(self.kind_of(to).is_some(), "unknown unit '{to}'");
        self.connections.push((from.to_owned(), to.to_owned()));
    }

    /// All analog units.
    #[must_use]
    pub fn analog_units(&self) -> &[AnalogUnitDesc] {
        &self.analog
    }

    /// All digital units.
    #[must_use]
    pub fn digital_units(&self) -> &[DigitalUnitDesc] {
        &self.digital
    }

    /// All memories.
    #[must_use]
    pub fn memories(&self) -> &[MemoryDesc] {
        &self.memories
    }

    /// Looks up an analog unit by name.
    #[must_use]
    pub fn analog(&self, name: &str) -> Option<&AnalogUnitDesc> {
        self.analog.iter().find(|u| u.name() == name)
    }

    /// Looks up a digital unit by name.
    #[must_use]
    pub fn digital(&self, name: &str) -> Option<&DigitalUnitDesc> {
        self.digital.iter().find(|u| u.name() == name)
    }

    /// Looks up a memory by name.
    #[must_use]
    pub fn memory(&self, name: &str) -> Option<&MemoryDesc> {
        self.memories.iter().find(|m| m.name() == name)
    }

    /// The kind of unit `name` refers to, if any.
    #[must_use]
    pub fn kind_of(&self, name: &str) -> Option<UnitKind> {
        if self.analog(name).is_some() {
            Some(UnitKind::Analog)
        } else if self.digital(name).is_some() {
            Some(UnitKind::Digital)
        } else if self.memory(name).is_some() {
            Some(UnitKind::Memory)
        } else {
            None
        }
    }

    /// The layer a named unit sits on, if the unit exists.
    #[must_use]
    pub fn layer_of(&self, name: &str) -> Option<Layer> {
        self.analog(name)
            .map(AnalogUnitDesc::layer)
            .or_else(|| self.digital(name).map(DigitalUnitDesc::layer))
            .or_else(|| self.memory(name).map(MemoryDesc::layer))
    }

    /// All declared `(from, to)` connections, in declaration order —
    /// the raw connectivity a design description round-trips.
    #[must_use]
    pub fn connections(&self) -> &[(String, String)] {
        &self.connections
    }

    /// Direct successors of `name` in the physical connectivity.
    #[must_use]
    pub fn successors(&self, name: &str) -> Vec<&str> {
        self.connections
            .iter()
            .filter(|(f, _)| f == name)
            .map(|(_, t)| t.as_str())
            .collect()
    }

    /// Shortest physical path from `from` to `to` (inclusive of both
    /// endpoints), or `None` when no path exists.
    #[must_use]
    pub fn path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        if from == to {
            return Some(vec![from.to_owned()]);
        }
        let mut prev: HashMap<&str, &str> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            for next in self.successors(cur) {
                if next != from && !prev.contains_key(next) {
                    prev.insert(next, cur);
                    if next == to {
                        let mut path = vec![to.to_owned()];
                        let mut walk = to;
                        while let Some(&p) = prev.get(walk) {
                            path.push(p.to_owned());
                            walk = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    fn assert_fresh(&self, name: &str) {
        assert!(
            self.kind_of(name).is_none(),
            "duplicate hardware unit name '{name}'"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_analog::array::AnalogArray;
    use camj_analog::components::{aps_4t, column_adc, ApsParams};
    use camj_digital::compute::ComputeUnit;
    use camj_digital::memory::MemoryStructure;

    use super::super::units::AnalogCategory;

    fn sample_hw() -> HardwareDesc {
        let mut hw = HardwareDesc::new(200e6);
        hw.add_analog(AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(aps_4t(ApsParams::default()), 32, 32),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_analog(AnalogUnitDesc::new(
            "ADCArray",
            AnalogArray::new(column_adc(10), 1, 16),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
        hw.add_memory(MemoryDesc::new(
            MemoryStructure::line_buffer("LineBuffer", 3, 16),
            Layer::Sensor,
            0.0,
        ));
        hw.add_digital(DigitalUnitDesc::pipelined(
            ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2),
            Layer::Sensor,
        ));
        hw.connect("PixelArray", "ADCArray");
        hw.connect("ADCArray", "LineBuffer");
        hw.connect("LineBuffer", "EdgeUnit");
        hw
    }

    #[test]
    fn lookups_by_kind() {
        let hw = sample_hw();
        assert_eq!(hw.kind_of("PixelArray"), Some(UnitKind::Analog));
        assert_eq!(hw.kind_of("LineBuffer"), Some(UnitKind::Memory));
        assert_eq!(hw.kind_of("EdgeUnit"), Some(UnitKind::Digital));
        assert_eq!(hw.kind_of("Nope"), None);
    }

    #[test]
    fn path_follows_connections() {
        let hw = sample_hw();
        let p = hw.path("PixelArray", "EdgeUnit").unwrap();
        assert_eq!(p, vec!["PixelArray", "ADCArray", "LineBuffer", "EdgeUnit"]);
    }

    #[test]
    fn no_path_returns_none() {
        let hw = sample_hw();
        assert!(hw.path("EdgeUnit", "PixelArray").is_none());
    }

    #[test]
    fn path_to_self_is_singleton() {
        let hw = sample_hw();
        assert_eq!(hw.path("ADCArray", "ADCArray").unwrap().len(), 1);
    }

    #[test]
    fn layer_lookup() {
        let hw = sample_hw();
        assert_eq!(hw.layer_of("PixelArray"), Some(Layer::Sensor));
        assert_eq!(hw.layer_of("Nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate hardware unit")]
    fn duplicate_names_rejected() {
        let mut hw = sample_hw();
        hw.add_analog(AnalogUnitDesc::new(
            "PixelArray",
            AnalogArray::new(column_adc(8), 1, 4),
            Layer::Sensor,
            AnalogCategory::Sensing,
        ));
    }

    #[test]
    #[should_panic(expected = "unknown unit")]
    fn connecting_unknown_units_rejected() {
        let mut hw = sample_hw();
        hw.connect("PixelArray", "Ghost");
    }
}
