//! Hardware description: units, layers, and physical connectivity.

mod desc;
mod layer;
mod units;

pub use desc::{HardwareDesc, UnitKind};
pub use layer::Layer;
pub use units::{AnalogCategory, AnalogUnitDesc, DigitalUnitDesc, DigitalUnitKind, MemoryDesc};
