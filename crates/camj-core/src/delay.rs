//! Delay estimation (paper Sec. 4.1).
//!
//! The CIS pipeline never stalls: pixels arrive at a constant rate, so
//! every pipeline stage must share the frame budget. CamJ measures the
//! digital latency `T_D` by cycle-level simulation and then back-solves
//! the per-stage analog time from the prescribed frame rate:
//!
//! ```text
//! N_A × T_A + T_D = T_FR = 1 / FPS
//! ```
//!
//! where `N_A` counts the analog pipeline stages *including exposure*
//! (the paper's Fig. 6 example has exposure + binned readout + ADC = 3).

use serde::{Deserialize, Serialize};

use camj_tech::units::Time;

use crate::error::CamjError;

/// The timing split of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayEstimate {
    /// Frame time `T_FR = 1/FPS`.
    pub frame_time: Time,
    /// Digital-domain latency `T_D` from cycle-level simulation.
    pub digital_latency: Time,
    /// Analog pipeline stage count `N_A`, including exposure.
    pub analog_stage_count: usize,
    /// Per-stage analog time `T_A`.
    pub analog_unit_time: Time,
}

impl DelayEstimate {
    /// Solves `T_A` from the frame budget.
    ///
    /// # Errors
    ///
    /// Returns [`CamjError::FrameRateInfeasible`] when the digital
    /// latency leaves no time for the analog pipeline.
    pub fn solve(
        fps: f64,
        digital_latency: Time,
        analog_stage_count: usize,
    ) -> Result<Self, CamjError> {
        assert!(
            fps.is_finite() && fps > 0.0,
            "FPS must be positive, got {fps}"
        );
        assert!(
            analog_stage_count >= 1,
            "a CIS pipeline has at least the exposure stage"
        );
        let frame_time = Time::from_secs(1.0 / fps);
        let remaining = frame_time - digital_latency;
        if remaining.secs() <= 0.0 {
            return Err(CamjError::FrameRateInfeasible {
                frame_time_s: frame_time.secs(),
                digital_latency_s: digital_latency.secs(),
            });
        }
        Ok(Self {
            frame_time,
            digital_latency,
            analog_stage_count,
            analog_unit_time: remaining / analog_stage_count as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_arithmetic() {
        // 3 × T_A + T_D = T_FR.
        let est = DelayEstimate::solve(30.0, Time::from_millis(3.333), 3).unwrap();
        let reconstructed = est.analog_unit_time * 3.0 + est.digital_latency;
        assert!((reconstructed.secs() - est.frame_time.secs()).abs() < 1e-12);
    }

    #[test]
    fn higher_fps_shrinks_analog_time() {
        let slow = DelayEstimate::solve(30.0, Time::from_millis(1.0), 3).unwrap();
        let fast = DelayEstimate::solve(120.0, Time::from_millis(1.0), 3).unwrap();
        assert!(fast.analog_unit_time < slow.analog_unit_time);
    }

    #[test]
    fn infeasible_frame_rate_reported() {
        let err = DelayEstimate::solve(1000.0, Time::from_millis(2.0), 3).unwrap_err();
        assert!(matches!(err, CamjError::FrameRateInfeasible { .. }));
    }

    #[test]
    fn zero_digital_latency_gives_full_budget() {
        let est = DelayEstimate::solve(30.0, Time::ZERO, 2).unwrap();
        assert!((est.analog_unit_time.millis() - (1000.0 / 30.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "FPS")]
    fn bad_fps_rejected() {
        let _ = DelayEstimate::solve(0.0, Time::ZERO, 1);
    }
}
