//! # camj-core — the CamJ energy modeling framework
//!
//! A Rust reproduction of CamJ (ISCA'23): component-level energy
//! estimation for computational CMOS image sensors under a target frame
//! rate. Users provide three declarative descriptions —
//!
//! 1. the **algorithm** ([`sw`]): a DAG of stencil/element-wise/DNN
//!    stages with image dimensions only, no arithmetic details,
//! 2. the **hardware** ([`hw`]): analog functional arrays, digital
//!    compute units, and memory structures placed on physical layers and
//!    physically connected,
//! 3. the **mapping** ([`mapping`]): which stage runs on which unit —
//!
//! and CamJ infers everything else: access counts from the stencil
//! shapes, digital latency and memory traffic from a cycle-level
//! simulation ([`camj_digital::sim`]), analog delays from the frame-rate
//! budget ([`delay`]), and finally a component-level energy breakdown
//! ([`energy`]) with per-layer power densities ([`power_density`]).
//!
//! # Examples
//!
//! The paper's Fig. 5 running example — a 32×32 sensor that bins 2×2 in
//! the pixel array and edge-detects digitally before shipping results
//! over MIPI:
//!
//! ```
//! use camj_analog::array::AnalogArray;
//! use camj_analog::components::{aps_4t, column_adc, ApsParams};
//! use camj_core::energy::CamJ;
//! use camj_core::hw::{
//!     AnalogCategory, AnalogUnitDesc, DigitalUnitDesc, HardwareDesc, Layer, MemoryDesc,
//! };
//! use camj_core::mapping::Mapping;
//! use camj_core::sw::{AlgorithmGraph, Stage};
//! use camj_digital::compute::ComputeUnit;
//! use camj_digital::memory::{MemoryEnergy, MemoryStructure};
//! use camj_tech::units::Energy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Algorithm: input → 2×2 binning → 3×3 edge detection.
//! let mut algo = AlgorithmGraph::new();
//! algo.add_stage(Stage::input("Input", [32, 32, 1]));
//! algo.add_stage(Stage::stencil("Binning", [32, 32, 1], [16, 16, 1], [2, 2, 1], [2, 2, 1]));
//! algo.add_stage(Stage::stencil("EdgeDetection", [16, 16, 1], [16, 16, 1], [3, 3, 1], [1, 1, 1]));
//! algo.connect("Input", "Binning")?;
//! algo.connect("Binning", "EdgeDetection")?;
//!
//! // Hardware: binning pixel array → column ADCs → line buffer → edge unit.
//! let mut hw = HardwareDesc::new(200e6);
//! hw.add_analog(
//!     AnalogUnitDesc::new(
//!         "PixelArray",
//!         AnalogArray::new(aps_4t(ApsParams::default().with_shared_pixels(4)), 16, 16),
//!         Layer::Sensor,
//!         AnalogCategory::Sensing,
//!     )
//!     .with_pixel_pitch_um(3.0),
//! );
//! hw.add_analog(AnalogUnitDesc::new(
//!     "ADCArray",
//!     AnalogArray::new(column_adc(10), 1, 16),
//!     Layer::Sensor,
//!     AnalogCategory::Sensing,
//! ));
//! hw.add_memory(MemoryDesc::new(
//!     MemoryStructure::line_buffer("LineBuffer", 3, 16)
//!         .with_energy(MemoryEnergy::from_pj_per_word(0.3, 0.3, 0.0))
//!         .with_ports(3, 1),
//!     Layer::Sensor,
//!     0.0,
//! ));
//! hw.add_digital(DigitalUnitDesc::pipelined(
//!     ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2)
//!         .with_energy_per_cycle(Energy::from_picojoules(3.0)),
//!     Layer::Sensor,
//! ));
//! hw.connect("PixelArray", "ADCArray");
//! hw.connect("ADCArray", "LineBuffer");
//! hw.connect("LineBuffer", "EdgeUnit");
//!
//! // Mapping, exactly as in the paper's camj_mapping().
//! let mapping = Mapping::new()
//!     .map("Input", "PixelArray")
//!     .map("Binning", "PixelArray")
//!     .map("EdgeDetection", "EdgeUnit");
//!
//! let model = CamJ::new(algo, hw, mapping, 30.0)?;
//! let report = model.estimate()?;
//! assert!(report.total().picojoules() > 0.0);
//! println!("{:.1} pJ/px", report.energy_per_pixel().picojoules());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod check;
pub mod delay;
pub mod energy;
pub mod error;
pub mod fingerprint;
pub mod functional;
pub mod hw;
pub mod mapping;
pub mod power_density;
pub mod route;
pub mod sw;

pub use delay::DelayEstimate;
pub use energy::{
    CacheStats, CamJ, ElasticSim, EnergyBreakdown, EnergyCategory, EnergyItem, EnergyKernel,
    EstimateCache, EstimateReport, GateContext, GatedEstimate, KernelKind, ValidatedModel,
    ENERGY_KERNEL_COUNT,
};
pub use error::CamjError;
pub use functional::{
    FrameSimReport, McFrameSimReport, McOutputStats, NoiseReport, OutputStats, StageMcSim,
    StageNoise, StageSim, Stimulus, DEFAULT_SIGNAL_FRACTION,
};
pub use hw::{
    AnalogCategory, AnalogUnitDesc, DigitalUnitDesc, DigitalUnitKind, HardwareDesc, Layer,
    MemoryDesc,
};
pub use mapping::Mapping;
pub use power_density::{layer_powers, peak_density_mw_per_mm2, LayerPower};
pub use sw::{AlgorithmGraph, ImageSize, Stage, StageKind};
