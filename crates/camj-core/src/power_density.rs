//! Power-density estimation (paper Sec. 6.2, Table 3).
//!
//! 3D stacking shrinks footprint while concentrating power, raising
//! thermal-noise concerns. The paper uses a deliberately **conservative
//! area model** to bound density from above:
//!
//! * analog area ≈ the pixel-array area (pitch² × pixel count),
//! * digital area ≈ the SRAM macro area,
//! * everything else (column circuits, PE logic) is assumed to fit under
//!   those footprints.
//!
//! Density is reported per physical layer; the off-chip SoC is excluded
//! (its thermal budget is not the sensor's problem).

use serde::{Deserialize, Serialize};

use camj_tech::units::{Power, Time};

use crate::energy::EnergyBreakdown;
use crate::hw::{HardwareDesc, Layer};

/// Power and density of one physical layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPower {
    /// The layer.
    pub layer: Layer,
    /// Average power over the frame.
    pub power: Power,
    /// Conservative layer area in mm².
    pub area_mm2: f64,
    /// Power density in mW/mm², when the area is non-zero.
    pub density_mw_per_mm2: Option<f64>,
}

/// Computes per-layer power density for the in-sensor layers.
///
/// Communication energy is attributed to the layer it was booked on in
/// the breakdown (the transmitting side).
#[must_use]
pub fn layer_powers(
    breakdown: &EnergyBreakdown,
    hw: &HardwareDesc,
    frame_time: Time,
) -> Vec<LayerPower> {
    [Layer::Sensor, Layer::Compute]
        .into_iter()
        .filter_map(|layer| {
            let energy = breakdown.layer_total(layer);
            let area = layer_area_mm2(hw, layer);
            if energy.joules() == 0.0 && area == 0.0 {
                return None; // layer not present in this design
            }
            let power = energy / frame_time;
            LayerPower {
                layer,
                power,
                area_mm2: area,
                density_mw_per_mm2: (area > 0.0).then(|| power.milliwatts() / area),
            }
            .into()
        })
        .collect()
}

/// The conservative area of one layer: pixel arrays plus SRAM macros.
#[must_use]
pub fn layer_area_mm2(hw: &HardwareDesc, layer: Layer) -> f64 {
    let analog: f64 = hw
        .analog_units()
        .iter()
        .filter(|u| u.layer() == layer)
        .map(|u| u.area_mm2())
        .sum();
    let digital: f64 = hw
        .memories()
        .iter()
        .filter(|m| m.layer() == layer)
        .map(|m| m.area_mm2())
        .sum();
    analog + digital
}

/// The worst (highest) density across in-sensor layers, if any layer has
/// a defined density — the single number Table 3 reports per design.
#[must_use]
pub fn peak_density_mw_per_mm2(layers: &[LayerPower]) -> Option<f64> {
    layers
        .iter()
        .filter_map(|l| l.density_mw_per_mm2)
        .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::{EnergyCategory, EnergyItem};
    use camj_tech::units::Energy;

    fn breakdown_with(layer: Layer, uj: f64) -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        b.push(EnergyItem {
            unit: "u".into(),
            stage: None,
            category: EnergyCategory::Sensing,
            layer,
            energy: Energy::from_microjoules(uj),
        });
        b
    }

    #[test]
    fn density_is_power_over_area() {
        use crate::hw::{AnalogCategory, AnalogUnitDesc};
        use camj_analog::array::AnalogArray;
        use camj_analog::components::{aps_4t, ApsParams};

        let mut hw = HardwareDesc::new(100e6);
        hw.add_analog(
            AnalogUnitDesc::new(
                "px",
                AnalogArray::new(aps_4t(ApsParams::default()), 100, 100),
                Layer::Sensor,
                AnalogCategory::Sensing,
            )
            .with_pixel_pitch_um(10.0),
        );
        // 10 000 px × 100 µm² = 1 mm².
        let b = breakdown_with(Layer::Sensor, 33.3);
        let layers = layer_powers(&b, &hw, Time::from_millis(33.3));
        assert_eq!(layers.len(), 1);
        let l = &layers[0];
        assert!((l.area_mm2 - 1.0).abs() < 1e-9);
        // 33.3 µJ / 33.3 ms = 1 mW over 1 mm².
        assert!((l.density_mw_per_mm2.unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn absent_layers_are_skipped() {
        let hw = HardwareDesc::new(100e6);
        let b = breakdown_with(Layer::Sensor, 1.0);
        let layers = layer_powers(&b, &hw, Time::from_millis(33.3));
        // Sensor has energy but no area: still listed, density None.
        assert_eq!(layers.len(), 1);
        assert!(layers[0].density_mw_per_mm2.is_none());
    }

    #[test]
    fn peak_takes_maximum() {
        let layers = vec![
            LayerPower {
                layer: Layer::Sensor,
                power: Power::from_milliwatts(1.0),
                area_mm2: 1.0,
                density_mw_per_mm2: Some(1.0),
            },
            LayerPower {
                layer: Layer::Compute,
                power: Power::from_milliwatts(3.0),
                area_mm2: 1.0,
                density_mw_per_mm2: Some(3.0),
            },
        ];
        assert_eq!(peak_density_mw_per_mm2(&layers), Some(3.0));
    }

    #[test]
    fn peak_of_undefined_is_none() {
        assert_eq!(peak_density_mw_per_mm2(&[]), None);
    }
}
