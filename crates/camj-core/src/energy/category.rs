//! Energy breakdown categories — the bar segments of the paper's Fig. 9
//! and Fig. 11.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which budget an energy item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EnergyCategory {
    /// Everything up to and including ADCs (paper's "SEN").
    Sensing,
    /// Analog processing elements ("COMP-A").
    AnalogCompute,
    /// Analog buffers / sample-and-hold memories ("MEM-A").
    AnalogMemory,
    /// Digital compute units ("COMP" / "COMP-D").
    DigitalCompute,
    /// Digital memories, dynamic + leakage ("MEM" / "MEM-D").
    DigitalMemory,
    /// MIPI CSI-2 off-package communication ("MIPI").
    Mipi,
    /// µTSV / hybrid-bond inter-layer communication ("uTSV").
    MicroTsv,
}

impl EnergyCategory {
    /// All categories, in display order.
    pub const ALL: [EnergyCategory; 7] = [
        EnergyCategory::Sensing,
        EnergyCategory::AnalogCompute,
        EnergyCategory::AnalogMemory,
        EnergyCategory::DigitalCompute,
        EnergyCategory::DigitalMemory,
        EnergyCategory::Mipi,
        EnergyCategory::MicroTsv,
    ];

    /// The short label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::Sensing => "SEN",
            EnergyCategory::AnalogCompute => "COMP-A",
            EnergyCategory::AnalogMemory => "MEM-A",
            EnergyCategory::DigitalCompute => "COMP-D",
            EnergyCategory::DigitalMemory => "MEM-D",
            EnergyCategory::Mipi => "MIPI",
            EnergyCategory::MicroTsv => "uTSV",
        }
    }

    /// Whether this is a communication category.
    #[must_use]
    pub fn is_communication(self) -> bool {
        matches!(self, EnergyCategory::Mipi | EnergyCategory::MicroTsv)
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(EnergyCategory::Sensing.to_string(), "SEN");
        assert_eq!(EnergyCategory::MicroTsv.to_string(), "uTSV");
    }

    #[test]
    fn communication_predicate() {
        assert!(EnergyCategory::Mipi.is_communication());
        assert!(!EnergyCategory::Sensing.is_communication());
    }

    #[test]
    fn all_lists_every_variant_once() {
        assert_eq!(EnergyCategory::ALL.len(), 7);
        let mut sorted = EnergyCategory::ALL.to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
    }
}
