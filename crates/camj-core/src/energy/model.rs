//! The CamJ estimator facade: assembles the three descriptions and the
//! FPS target, then drives the staged pipeline in
//! [`pipeline`](super::pipeline) (paper Eq. 1: `E_frame = E_a + E_d +
//! E_c`).

use serde::{Deserialize, Serialize};

use camj_digital::sim::SimReport;
use camj_tech::units::Energy;

use crate::delay::DelayEstimate;
use crate::error::CamjError;
use crate::functional::NoiseReport;
use crate::hw::HardwareDesc;
use crate::mapping::Mapping;
use crate::power_density::LayerPower;
use crate::sw::AlgorithmGraph;

use super::breakdown::EnergyBreakdown;
use super::pipeline::ValidatedModel;

/// The assembled CamJ model: algorithm + hardware + mapping + FPS target.
///
/// Construction runs the **validate** and **route** stages of the
/// pipeline; [`CamJ::estimate`] runs the rest. For sweep-style repeated
/// estimation, [`CamJ::validated`] exposes the underlying
/// [`ValidatedModel`] whose cached artifacts (routes, elastic
/// simulation) are reused across frame-rate targets.
///
/// # Examples
///
/// See the crate-level documentation for a complete Fig. 5 walkthrough.
#[derive(Debug, Clone)]
pub struct CamJ {
    model: ValidatedModel,
}

/// The estimator's full output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateReport {
    /// Component-level per-frame energy breakdown.
    pub breakdown: EnergyBreakdown,
    /// Frame timing split (Sec. 4.1).
    pub delay: DelayEstimate,
    /// Cycle-level simulation statistics (absent for all-analog designs).
    pub sim: Option<SimReport>,
    /// Per-layer power and density (Sec. 6.2).
    pub layers: Vec<LayerPower>,
    /// Pixel count of the sensor's input stage(s), for per-pixel metrics.
    pub input_pixels: u64,
    /// The analytic noise budget of the analog chain at this frame
    /// rate (quoted at the default mid-scale signal level); absent for
    /// designs whose chain contributes no noise.
    #[serde(default)]
    pub noise: Option<NoiseReport>,
}

impl EstimateReport {
    /// Total per-frame energy (Eq. 1).
    #[must_use]
    pub fn total(&self) -> Energy {
        self.breakdown.total()
    }

    /// Energy per input pixel — the paper's Fig. 7 validation metric.
    #[must_use]
    pub fn energy_per_pixel(&self) -> Energy {
        self.breakdown.per_pixel(self.input_pixels.max(1))
    }

    /// Digital-domain latency `T_D` measured by the cycle-level
    /// simulation — the delay a design *needs*, as opposed to the
    /// frame time it was *given*.
    #[must_use]
    pub fn digital_latency(&self) -> camj_tech::units::Time {
        self.delay.digital_latency
    }

    /// The worst per-layer power density in mW/mm² (Sec. 6.2) — the
    /// single number Table 3 reports per design, and the thermal
    /// feasibility metric of multi-objective exploration. `None` when
    /// no in-sensor layer has a defined area.
    #[must_use]
    pub fn peak_power_density_mw_per_mm2(&self) -> Option<f64> {
        crate::power_density::peak_density_mw_per_mm2(&self.layers)
    }
}

impl CamJ {
    /// Assembles a model: runs all static pre-simulation checks and
    /// resolves the physical routes.
    ///
    /// # Errors
    ///
    /// Returns the first failed check as a [`CamjError`].
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    pub fn new(
        algo: AlgorithmGraph,
        hw: HardwareDesc,
        mapping: Mapping,
        fps: f64,
    ) -> Result<Self, CamjError> {
        Ok(Self {
            model: ValidatedModel::new(algo, hw, mapping, fps)?,
        })
    }

    /// The algorithm description.
    #[must_use]
    pub fn algorithm(&self) -> &AlgorithmGraph {
        self.model.algorithm()
    }

    /// The hardware description.
    #[must_use]
    pub fn hardware(&self) -> &HardwareDesc {
        self.model.hardware()
    }

    /// The stage-to-unit mapping.
    #[must_use]
    pub fn mapping(&self) -> &Mapping {
        self.model.mapping()
    }

    /// The target frame rate.
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.model.fps()
    }

    /// The underlying validated model: the staged pipeline's cached
    /// artifacts, reusable across sweep points.
    #[must_use]
    pub fn validated(&self) -> &ValidatedModel {
        &self.model
    }

    /// Unwraps into the underlying validated model.
    #[must_use]
    pub fn into_validated(self) -> ValidatedModel {
        self.model
    }

    /// A copy of this model targeting a different frame rate, sharing
    /// every already-computed pipeline artifact.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    #[must_use]
    pub fn at_fps(&self, fps: f64) -> Self {
        Self {
            model: self.model.with_fps(fps),
        }
    }

    /// Runs the full estimation flow: cycle-level simulation, delay
    /// solving, stall checking, and the three energy domains. (Checks
    /// and routing already ran in [`CamJ::new`].)
    ///
    /// # Errors
    ///
    /// * [`CamjError::FrameRateInfeasible`] — digital latency exceeds the
    ///   frame budget,
    /// * [`CamjError::StallDetected`] — the digital pipeline cannot keep
    ///   pace with the pixel readout at the target FPS,
    /// * [`CamjError::Sim`] — the simulation itself failed.
    pub fn estimate(&self) -> Result<EstimateReport, CamjError> {
        self.model.estimate()
    }
}
