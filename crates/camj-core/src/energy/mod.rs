//! Energy estimation: categories, breakdowns, the staged pipeline, and
//! the estimator facade.

mod breakdown;
mod category;
mod model;
mod pipeline;

pub use breakdown::{EnergyBreakdown, EnergyItem};
pub use category::EnergyCategory;
pub use model::{CamJ, EstimateReport};
pub use pipeline::{ElasticSim, ValidatedModel};
