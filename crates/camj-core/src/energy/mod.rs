//! Energy estimation: categories, breakdowns, the staged pipeline with
//! its content-addressed energy kernels and cross-point cache, and the
//! estimator facade.

mod breakdown;
mod cache;
mod category;
mod kernel;
mod model;
mod pipeline;

pub use breakdown::{EnergyBreakdown, EnergyItem};
pub use cache::{CacheStats, EstimateCache, PersistentTier, SHARD_COUNT};
pub use category::EnergyCategory;
pub use kernel::{
    AnalogKernel, DigitalComputeKernel, DigitalMemoryKernel, EnergyKernel, InterfaceKernel,
    KernelKind,
};
pub use model::{CamJ, EstimateReport};
pub use pipeline::{ElasticSim, GateContext, GatedEstimate, ValidatedModel, ENERGY_KERNEL_COUNT};
