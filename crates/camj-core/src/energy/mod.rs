//! Energy estimation: categories, breakdowns, and the estimator itself.

mod breakdown;
mod category;
mod model;

pub use breakdown::{EnergyBreakdown, EnergyItem};
pub use category::EnergyCategory;
pub use model::{CamJ, EstimateReport};
