//! The component-level energy breakdown — CamJ's primary output.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use camj_tech::units::Energy;

use crate::hw::Layer;

use super::category::EnergyCategory;

/// One line of the breakdown: a hardware unit's contribution, optionally
/// attributed to an algorithm stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyItem {
    /// The hardware unit (or interface) the energy is burned in.
    pub unit: String,
    /// The algorithm stage the work belongs to, when attributable.
    pub stage: Option<String>,
    /// Budget category.
    pub category: EnergyCategory,
    /// The physical layer the energy is dissipated on.
    pub layer: Layer,
    /// Per-frame energy.
    pub energy: Energy,
}

/// A full per-frame energy breakdown.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    items: Vec<EnergyItem>,
}

impl EnergyBreakdown {
    /// Creates an empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item.
    pub fn push(&mut self, item: EnergyItem) {
        self.items.push(item);
    }

    /// All items, in insertion order.
    #[must_use]
    pub fn items(&self) -> &[EnergyItem] {
        &self.items
    }

    /// Total per-frame energy.
    #[must_use]
    pub fn total(&self) -> Energy {
        self.items.iter().map(|i| i.energy).sum()
    }

    /// Total energy of one category.
    #[must_use]
    pub fn category_total(&self, category: EnergyCategory) -> Energy {
        self.items
            .iter()
            .filter(|i| i.category == category)
            .map(|i| i.energy)
            .sum()
    }

    /// Per-category totals, in [`EnergyCategory::ALL`] order, zero
    /// categories included.
    #[must_use]
    pub fn by_category(&self) -> Vec<(EnergyCategory, Energy)> {
        EnergyCategory::ALL
            .iter()
            .map(|&c| (c, self.category_total(c)))
            .collect()
    }

    /// Totals grouped by attributed stage; unattributed items group under
    /// `None`.
    #[must_use]
    pub fn by_stage(&self) -> BTreeMap<Option<String>, Energy> {
        let mut out: BTreeMap<Option<String>, Energy> = BTreeMap::new();
        for item in &self.items {
            let slot = out.entry(item.stage.clone()).or_insert(Energy::ZERO);
            *slot += item.energy;
        }
        out
    }

    /// Total energy dissipated on one physical layer.
    #[must_use]
    pub fn layer_total(&self, layer: Layer) -> Energy {
        self.items
            .iter()
            .filter(|i| i.layer == layer)
            .map(|i| i.energy)
            .sum()
    }

    /// Energy per pixel for an `n_pixels` sensor — the paper's Fig. 7
    /// validation metric.
    #[must_use]
    pub fn per_pixel(&self, n_pixels: u64) -> Energy {
        self.total() / n_pixels as f64
    }

    /// Merges another breakdown into this one.
    pub fn extend(&mut self, other: EnergyBreakdown) {
        self.items.extend(other.items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(
        unit: &str,
        stage: Option<&str>,
        cat: EnergyCategory,
        layer: Layer,
        pj: f64,
    ) -> EnergyItem {
        EnergyItem {
            unit: unit.into(),
            stage: stage.map(Into::into),
            category: cat,
            layer,
            energy: Energy::from_picojoules(pj),
        }
    }

    fn sample() -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        b.push(item(
            "px",
            Some("Input"),
            EnergyCategory::Sensing,
            Layer::Sensor,
            100.0,
        ));
        b.push(item(
            "adc",
            Some("Input"),
            EnergyCategory::Sensing,
            Layer::Sensor,
            50.0,
        ));
        b.push(item(
            "pe",
            Some("Edge"),
            EnergyCategory::DigitalCompute,
            Layer::Compute,
            30.0,
        ));
        b.push(item(
            "mipi",
            Some("Edge"),
            EnergyCategory::Mipi,
            Layer::Compute,
            20.0,
        ));
        b
    }

    #[test]
    fn totals_add_up() {
        let b = sample();
        assert!((b.total().picojoules() - 200.0).abs() < 1e-9);
        assert!((b.category_total(EnergyCategory::Sensing).picojoules() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn by_category_covers_all_and_sums_to_total() {
        let b = sample();
        let cats = b.by_category();
        assert_eq!(cats.len(), EnergyCategory::ALL.len());
        let sum: Energy = cats.iter().map(|(_, e)| *e).sum();
        assert!((sum.picojoules() - b.total().picojoules()).abs() < 1e-9);
    }

    #[test]
    fn by_stage_groups() {
        let b = sample();
        let stages = b.by_stage();
        assert!((stages[&Some("Input".to_owned())].picojoules() - 150.0).abs() < 1e-9);
        assert!((stages[&Some("Edge".to_owned())].picojoules() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn layer_totals() {
        let b = sample();
        assert!((b.layer_total(Layer::Sensor).picojoules() - 150.0).abs() < 1e-9);
        assert!((b.layer_total(Layer::Compute).picojoules() - 50.0).abs() < 1e-9);
        assert_eq!(b.layer_total(Layer::OffChip), Energy::ZERO);
    }

    #[test]
    fn per_pixel_divides() {
        let b = sample();
        assert!((b.per_pixel(100).picojoules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn extend_merges() {
        let mut a = sample();
        let b = sample();
        a.extend(b);
        assert!((a.total().picojoules() - 400.0).abs() < 1e-9);
    }
}
