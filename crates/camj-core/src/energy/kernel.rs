//! Per-domain energy kernels: the four independent passes of the
//! **energy** stage, each behind the unified [`EnergyKernel`] trait.
//!
//! A kernel is a *resolved* computation: its constructor runs the
//! model-wide derivations (analog access counting, simulated traffic
//! aggregation, DNN weight-loading attribution) once, leaving `compute`
//! a pure function of the captured inputs. That purity is what makes
//! kernels content-addressable — [`EnergyKernel::fingerprint`] hashes
//! exactly the captured inputs (component parameters, inferred access
//! counts, the delay budget, technology-derived energies), so two
//! kernels with equal fingerprints are guaranteed to produce
//! bit-identical [`EnergyItem`] lists, and the cross-point
//! [`EstimateCache`](super::EstimateCache) can replay one's output for
//! the other.
//!
//! The four kernels mirror the paper's Eq. 1 decomposition plus
//! communication:
//!
//! | kernel | paper | books |
//! |---|---|---|
//! | [`AnalogKernel`] | Eq. 2–13 | pixel arrays, ADCs, analog PEs/memories |
//! | [`DigitalComputeKernel`] | Eq. 15 | pipelined accelerators, systolic arrays |
//! | [`DigitalMemoryKernel`] | Eq. 16 | SRAM/STT-RAM dynamic traffic + leakage |
//! | [`InterfaceKernel`] | Eq. 17 | µTSV / MIPI layer crossings |

use std::collections::BTreeMap;

use camj_digital::sim::SimReport;
use camj_tech::fingerprint::{Fingerprint, Fingerprintable, FpHasher};
use camj_tech::units::Time;

use crate::delay::DelayEstimate;
use crate::hw::{DigitalUnitKind, HardwareDesc, Layer};
use crate::route::Route;
use crate::sw::StageKind;

use super::breakdown::EnergyItem;
use super::category::EnergyCategory;
use super::pipeline::{StagePlan, ValidatedModel};

/// Which energy domain a kernel books.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Analog functional arrays (sensing, analog compute, analog memory).
    Analog,
    /// Digital compute units (pipelined accelerators, systolic arrays).
    DigitalCompute,
    /// Digital memory structures (dynamic traffic + leakage).
    DigitalMemory,
    /// Layer-crossing interfaces (µTSV, MIPI).
    Interface,
}

impl KernelKind {
    /// All kinds, in booking order (the order items appear in a
    /// breakdown).
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Analog,
        KernelKind::DigitalCompute,
        KernelKind::DigitalMemory,
        KernelKind::Interface,
    ];

    /// Short human label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Analog => "analog",
            KernelKind::DigitalCompute => "digital-compute",
            KernelKind::DigitalMemory => "digital-memory",
            KernelKind::Interface => "interface",
        }
    }

    fn tag(self) -> u8 {
        match self {
            KernelKind::Analog => 0xa0,
            KernelKind::DigitalCompute => 0xa1,
            KernelKind::DigitalMemory => 0xa2,
            KernelKind::Interface => 0xa3,
        }
    }
}

/// A resolved, content-addressable energy computation.
pub trait EnergyKernel {
    /// The energy domain this kernel books.
    fn kind(&self) -> KernelKind;

    /// Feeds every captured input into `h`. Implementations must cover
    /// *everything* [`EnergyKernel::compute`] reads — the cache replays
    /// outputs across design points on the strength of this hash.
    fn feed(&self, h: &mut FpHasher);

    /// This kernel's cache key: the kind tag plus all captured inputs.
    fn fingerprint(&self) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_tag(self.kind().tag());
        self.feed(&mut h);
        h.finish()
    }

    /// Books the kernel's energy items, in deterministic order.
    fn compute(&self) -> Vec<EnergyItem>;
}

// ---------------------------------------------------------------------
// Analog
// ---------------------------------------------------------------------

/// Analog energy (Sec. 4.2, Eq. 2–3): access counts inferred from the
/// mapping and routing, per-access energy from the component models
/// under the inferred delay budget.
pub struct AnalogKernel<'a> {
    hw: &'a HardwareDesc,
    analog_unit_time: Time,
    accesses: BTreeMap<String, f64>,
    attribution: BTreeMap<String, String>,
}

impl<'a> AnalogKernel<'a> {
    /// Resolves per-unit access counts and stage attributions from the
    /// model's mapping and routes.
    pub(crate) fn new(model: &'a ValidatedModel, delay: &DelayEstimate) -> Self {
        let hw = model.hardware();
        let algo = model.algorithm();
        let mapping = model.mapping();
        let mut accesses: BTreeMap<String, f64> = BTreeMap::new();
        let mut attribution: BTreeMap<String, String> = BTreeMap::new();

        // Mapped stages: the exit stage of each fused group drives the
        // unit's access count.
        for unit in hw.analog_units() {
            for stage_name in mapping.stages_on(unit.name()) {
                let Some(stage) = algo.stage(stage_name) else {
                    continue;
                };
                let consumers = algo.consumers_of(stage_name);
                let is_exit = consumers.is_empty()
                    || consumers
                        .iter()
                        .any(|c| mapping.unit_for(c) != Some(unit.name()));
                if is_exit {
                    *accesses.entry(unit.name().to_owned()).or_default() +=
                        stage.output_size().count() as f64 * unit.ops_per_stage_output();
                    attribution.insert(unit.name().to_owned(), stage_name.to_owned());
                }
            }
        }

        // Pass-through units on routes: ADC arrays convert every pixel;
        // analog buffers additionally serve the consumer's reads.
        for route in model.routes() {
            let inter = route.intermediates();
            for (i, hop) in inter.iter().enumerate() {
                if hw.analog(hop).is_none() {
                    continue;
                }
                *accesses.entry(hop.clone()).or_default() += route.pixels as f64;
                let is_last = i + 1 == inter.len();
                if is_last {
                    if let Some(to_stage) = &route.to_stage {
                        let consumer_unit = mapping.unit_for(to_stage);
                        let consumer_is_analog =
                            consumer_unit.is_some_and(|u| hw.analog(u).is_some());
                        if consumer_is_analog {
                            let cons = algo.stage(to_stage).expect("stage exists");
                            *accesses.entry(hop.clone()).or_default() +=
                                cons.reads_per_output() * cons.output_size().count() as f64;
                        }
                    }
                }
                attribution
                    .entry(hop.clone())
                    .or_insert_with(|| route.from_stage.clone());
            }
        }

        Self {
            hw,
            analog_unit_time: delay.analog_unit_time,
            accesses,
            attribution,
        }
    }
}

impl EnergyKernel for AnalogKernel<'_> {
    fn kind(&self) -> KernelKind {
        KernelKind::Analog
    }

    fn feed(&self, h: &mut FpHasher) {
        self.analog_unit_time.feed(h);
        // Only units with a non-zero access count contribute items; the
        // rest are invisible to `compute` and stay out of the key.
        for unit in self.hw.analog_units() {
            let Some(&n) = self.accesses.get(unit.name()) else {
                continue;
            };
            if n <= 0.0 {
                continue;
            }
            unit.feed(h);
            h.write_f64(n);
            self.attribution.get(unit.name()).feed(h);
        }
    }

    fn compute(&self) -> Vec<EnergyItem> {
        let mut items = Vec::new();
        for unit in self.hw.analog_units() {
            let Some(&n) = self.accesses.get(unit.name()) else {
                continue;
            };
            if n <= 0.0 {
                continue;
            }
            // Eq. 3: accesses spread uniformly over the AFA's components;
            // each component gets T_A / (n / count) per access.
            let per_component = n / unit.array().component_count() as f64;
            let per_access_delay = self.analog_unit_time / per_component.max(1.0);
            let energy = unit.array().component().energy_per_access(per_access_delay) * n;
            items.push(EnergyItem {
                unit: unit.name().to_owned(),
                stage: self.attribution.get(unit.name()).cloned(),
                category: match unit.category() {
                    crate::hw::AnalogCategory::Sensing => EnergyCategory::Sensing,
                    crate::hw::AnalogCategory::Compute => EnergyCategory::AnalogCompute,
                    crate::hw::AnalogCategory::Memory => EnergyCategory::AnalogMemory,
                },
                layer: unit.layer(),
                energy,
            });
        }
        items
    }
}

// ---------------------------------------------------------------------
// Digital compute
// ---------------------------------------------------------------------

/// The work a digital unit performed for one stage, as resolved from
/// the simulation (or its static fallback).
enum Work {
    Cycles(u64),
    Macs(u64),
}

impl Fingerprintable for Work {
    fn feed(&self, h: &mut FpHasher) {
        match self {
            Work::Cycles(c) => {
                h.write_tag(0);
                h.write_u64(*c);
            }
            Work::Macs(m) => {
                h.write_tag(1);
                h.write_u64(*m);
            }
        }
    }
}

struct ComputeRow {
    stage: String,
    unit: String,
    work: Work,
}

/// Digital compute energy (Eq. 15): per-cycle energy × simulated cycles
/// for pipelined units, per-MAC energy × MACs for systolic arrays.
pub struct DigitalComputeKernel<'a> {
    hw: &'a HardwareDesc,
    rows: Vec<ComputeRow>,
}

impl<'a> DigitalComputeKernel<'a> {
    /// Resolves each planned stage's work from the simulation report.
    pub(crate) fn new(
        model: &'a ValidatedModel,
        plans: &[StagePlan<'_>],
        sim: Option<&SimReport>,
    ) -> Self {
        let hw = model.hardware();
        let mapping = model.mapping();
        let rows = plans
            .iter()
            .map(|plan| {
                let unit_name = mapping
                    .unit_for(plan.stage.name())
                    .expect("planned stages are mapped");
                let unit = hw.digital(unit_name).expect("planned units are digital");
                let work = match unit.kind() {
                    DigitalUnitKind::Pipelined(_) => {
                        let cycles = sim
                            .and_then(|r| r.stage(plan.stage.name()))
                            .map_or(plan.firings, |s| s.active_cycles);
                        Work::Cycles(cycles)
                    }
                    DigitalUnitKind::Systolic(_) => {
                        let macs = match plan.stage.kind() {
                            StageKind::Dnn { macs, .. } => macs,
                            _ => plan.stage.ops_per_frame(),
                        };
                        Work::Macs(macs)
                    }
                };
                ComputeRow {
                    stage: plan.stage.name().to_owned(),
                    unit: unit_name.to_owned(),
                    work,
                }
            })
            .collect();
        Self { hw, rows }
    }
}

impl EnergyKernel for DigitalComputeKernel<'_> {
    fn kind(&self) -> KernelKind {
        KernelKind::DigitalCompute
    }

    fn feed(&self, h: &mut FpHasher) {
        h.write_usize(self.rows.len());
        for row in &self.rows {
            h.write_str(&row.stage);
            let unit = self.hw.digital(&row.unit).expect("row units are digital");
            unit.feed(h);
            row.work.feed(h);
        }
    }

    fn compute(&self) -> Vec<EnergyItem> {
        self.rows
            .iter()
            .map(|row| {
                let unit = self.hw.digital(&row.unit).expect("row units are digital");
                let energy = match (unit.kind(), &row.work) {
                    (DigitalUnitKind::Pipelined(cu), Work::Cycles(cycles)) => {
                        cu.energy_per_cycle() * *cycles as f64
                    }
                    (DigitalUnitKind::Systolic(sa), Work::Macs(macs)) => sa.energy_for_macs(*macs),
                    _ => unreachable!("work kind follows unit kind by construction"),
                };
                EnergyItem {
                    unit: row.unit.clone(),
                    stage: Some(row.stage.clone()),
                    category: EnergyCategory::DigitalCompute,
                    layer: unit.layer(),
                    energy,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Digital memory
// ---------------------------------------------------------------------

/// Digital memory energy (Eq. 16): dynamic traffic from the simulation
/// plus DNN weight loading, and leakage over the powered fraction of
/// the frame.
pub struct DigitalMemoryKernel<'a> {
    hw: &'a HardwareDesc,
    frame_time: Time,
    /// Per-memory `(pixels_read, pixels_written)`.
    traffic: BTreeMap<String, (f64, f64)>,
    /// Per-memory consuming stage, from the first route through it.
    attribution: BTreeMap<String, Option<String>>,
}

impl<'a> DigitalMemoryKernel<'a> {
    /// Aggregates simulated traffic and DNN weight loads per memory.
    pub(crate) fn new(
        model: &'a ValidatedModel,
        plans: &[StagePlan<'_>],
        sim: Option<&SimReport>,
        delay: &DelayEstimate,
    ) -> Self {
        let hw = model.hardware();
        let algo = model.algorithm();
        let mut traffic: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        if let Some(report) = sim {
            for buf in &report.buffers {
                let slot = traffic.entry(buf.name.clone()).or_default();
                slot.0 += buf.pixels_read;
                slot.1 += buf.pixels_written;
            }
        }
        // DNN weights are loaded into the stage's input buffer once per
        // frame (weight-stationary reuse across the frame's tiles).
        for plan in plans {
            if let StageKind::Dnn { weights, .. } = plan.stage.kind() {
                for producer in algo.producers_of(plan.stage.name()) {
                    let buffer = model.buffer_between(producer, plan.stage.name());
                    if hw.memory(buffer.name()).is_some() {
                        traffic.entry(buffer.name().to_owned()).or_default().1 += weights as f64;
                    }
                }
            }
        }
        let attribution = hw
            .memories()
            .iter()
            .map(|mem| {
                let stage = model
                    .routes()
                    .iter()
                    .find(|r| r.intermediates().iter().any(|h| h == mem.name()))
                    .and_then(|r| r.to_stage.clone());
                (mem.name().to_owned(), stage)
            })
            .collect();
        Self {
            hw,
            frame_time: delay.frame_time,
            traffic,
            attribution,
        }
    }
}

impl EnergyKernel for DigitalMemoryKernel<'_> {
    fn kind(&self) -> KernelKind {
        KernelKind::DigitalMemory
    }

    fn feed(&self, h: &mut FpHasher) {
        self.frame_time.feed(h);
        for mem in self.hw.memories() {
            let (reads, writes) = self.traffic.get(mem.name()).copied().unwrap_or((0.0, 0.0));
            mem.feed(h);
            h.write_f64(reads);
            h.write_f64(writes);
            self.attribution.get(mem.name()).feed(h);
        }
    }

    fn compute(&self) -> Vec<EnergyItem> {
        let mut items = Vec::new();
        for mem in self.hw.memories() {
            let (reads, writes) = self.traffic.get(mem.name()).copied().unwrap_or((0.0, 0.0));
            let s = mem.structure();
            let dynamic = s.dynamic_energy(reads, writes);
            let leakage = s.leakage() * self.frame_time * s.active_fraction();
            let energy = dynamic + leakage;
            if energy.joules() == 0.0 {
                continue;
            }
            items.push(EnergyItem {
                unit: mem.name().to_owned(),
                stage: self.attribution.get(mem.name()).cloned().flatten(),
                category: EnergyCategory::DigitalMemory,
                layer: mem.layer(),
                energy,
            });
        }
        items
    }
}

// ---------------------------------------------------------------------
// Interface
// ---------------------------------------------------------------------

/// Communication energy (Eq. 17): bytes crossing layer boundaries pay
/// the boundary's interface energy; results exiting the package pay
/// MIPI.
pub struct InterfaceKernel<'a> {
    routes: &'a [Route],
    /// Per-route `(unit, layer)` hop lists, host exits appended.
    hops: Vec<Vec<(String, Layer)>>,
}

impl<'a> InterfaceKernel<'a> {
    /// Resolves each route's layer-crossing hop list.
    pub(crate) fn new(model: &'a ValidatedModel) -> Self {
        let hw = model.hardware();
        let hops = model
            .routes()
            .iter()
            .map(|route| {
                let mut hops: Vec<(String, Layer)> = route
                    .path
                    .iter()
                    .map(|h| (h.clone(), hw.layer_of(h).expect("path units exist")))
                    .collect();
                if route.is_host_exit() {
                    hops.push(("<host>".to_owned(), Layer::OffChip));
                }
                hops
            })
            .collect();
        Self {
            routes: model.routes(),
            hops,
        }
    }
}

impl EnergyKernel for InterfaceKernel<'_> {
    fn kind(&self) -> KernelKind {
        KernelKind::Interface
    }

    fn feed(&self, h: &mut FpHasher) {
        h.write_usize(self.routes.len());
        for (route, hops) in self.routes.iter().zip(&self.hops) {
            h.write_str(&route.from_stage);
            h.write_u64(route.bytes);
            h.write_usize(hops.len());
            for (unit, layer) in hops {
                h.write_str(unit);
                layer.feed(h);
            }
        }
    }

    fn compute(&self) -> Vec<EnergyItem> {
        use camj_tech::interface::Interface;
        let mut items = Vec::new();
        for (route, hops) in self.routes.iter().zip(&self.hops) {
            for pair in hops.windows(2) {
                let (from, from_layer) = &pair[0];
                let (_, to_layer) = &pair[1];
                let Some(iface) = from_layer.interface_to(*to_layer) else {
                    continue;
                };
                let category = match iface {
                    Interface::MicroTsv => EnergyCategory::MicroTsv,
                    // Custom interfaces are booked as package-exit links.
                    Interface::MipiCsi2 | Interface::Custom { .. } => EnergyCategory::Mipi,
                };
                items.push(EnergyItem {
                    unit: format!("{}:{}", category.label(), from),
                    stage: Some(route.from_stage.clone()),
                    category,
                    layer: *from_layer,
                    energy: iface.transfer_energy(route.bytes),
                });
            }
        }
        items
    }
}
