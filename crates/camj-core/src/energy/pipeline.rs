//! The staged estimation pipeline.
//!
//! [`CamJ::estimate`](super::CamJ::estimate) used to be one monolithic
//! pass. It is now five explicit, independently-invokable stages over a
//! [`ValidatedModel`]:
//!
//! ```text
//! validate ─→ route ─→ simulate ─→ estimate_delay ─→ energy
//! (new)       (new)    (cached)     (per FPS)         (kernels)
//! ```
//!
//! * **validate + route** run once, in [`ValidatedModel::new`]: the
//!   static checks (paper Sec. 3.2) and the physical routes are
//!   intrinsic to the design, not to the frame-rate target.
//! * **simulate** ([`ValidatedModel::simulate`]) runs the elastic
//!   cycle-level simulation that measures digital latency `T_D`. It is
//!   FPS-independent, so the result is memoised per model — and, when a
//!   cross-point [`EstimateCache`] is attached, shared across *models*
//!   keyed by [`ValidatedModel::sim_fingerprint`]: a hash of the
//!   dataflow topology only, independent of analog parameters and
//!   energy numbers, so sweeping bit widths or technology nodes pays
//!   for one simulation, not one per point.
//! * **estimate_delay** ([`ValidatedModel::estimate_delay`]) solves the
//!   frame budget `N_A·T_A + T_D = 1/FPS` (Sec. 4.1).
//! * **energy** ([`ValidatedModel::energy_breakdown`]) books the three
//!   energy domains of Eq. 1 plus communication through the four
//!   [`EnergyKernel`](super::EnergyKernel)s, each content-addressed by
//!   a fingerprint of its resolved inputs and replayed from the shared
//!   cache on a hit.
//!
//! [`ValidatedModel::estimate`] chains the stages into the classic
//! one-call flow (including the constant-rate-readout stall check);
//! [`ValidatedModel::estimate_at_fps`] re-runs only the FPS-dependent
//! tail. The `camj-explore` crate drives either entry point across
//! design grids in parallel, threading one shared cache through every
//! point via [`ValidatedModel::with_cache`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use camj_digital::memory::MemoryStructure;
use camj_digital::sim::{NodeId, PipelineSimBuilder, SimError, SimReport, SourceMode};
use camj_tech::fingerprint::{Fingerprint, FpHasher};
use camj_tech::units::{Energy, Time};

use crate::check;
use crate::delay::DelayEstimate;
use crate::error::CamjError;
use crate::functional::{
    self, DagSim, DagStageSim, FrameSimReport, McDagSim, McDagStageSim, McFrameSimReport,
    McOutputStats, McTaskMetrics, NoiseReport, NoiseStage, OutputStats, StageMcSim, StageNoise,
    StageSim, Stimulus, TaskMetrics, DEFAULT_SIGNAL_FRACTION,
};
use crate::hw::{AnalogUnitDesc, DigitalUnitKind, HardwareDesc, UnitKind};
use crate::mapping::Mapping;
use crate::power_density::layer_powers;
use crate::route::{routes, Route};
use crate::sw::{AlgorithmGraph, Stage, StageKind};

use super::breakdown::EnergyBreakdown;
use super::cache::EstimateCache;
use super::kernel::{
    AnalogKernel, DigitalComputeKernel, DigitalMemoryKernel, EnergyKernel, InterfaceKernel,
    KernelKind,
};
use super::model::EstimateReport;

/// Safety bound for the cycle-level simulation.
const MAX_SIM_CYCLES: u64 = 200_000_000;

/// Number of energy kernels the **energy** stage runs per estimate
/// (analog, digital compute, digital memory, interface — in that
/// order). Gated estimation reports progress against this total.
pub const ENERGY_KERNEL_COUNT: usize = 4;

/// The partial estimation state an energy gate inspects between
/// pipeline steps (see [`ValidatedModel::estimate_at_fps_gated`]).
///
/// Every component energy is non-negative, so any aggregate over
/// [`GateContext::partial`] — a total, a category split, a per-layer
/// power density — is a **lower bound** of the value the completed
/// breakdown would report. That makes "abort when a partial aggregate
/// already exceeds a budget" a sound pruning rule: it can only reject
/// points the finished estimate would also reject.
#[derive(Debug)]
pub struct GateContext<'a> {
    /// The solved frame-timing split for this point.
    pub delay: &'a DelayEstimate,
    /// Energy items booked so far (empty before the first kernel).
    pub partial: &'a EnergyBreakdown,
    /// Kernels that have already contributed to `partial`, in
    /// `0..=ENERGY_KERNEL_COUNT`. Zero means the gate runs right after
    /// the delay solve, before the stall check and every kernel.
    pub kernels_done: usize,
}

/// Outcome of [`ValidatedModel::estimate_at_fps_gated`].
#[derive(Debug, Clone, PartialEq)]
pub enum GatedEstimate {
    /// The gate admitted every step; the report is byte-identical to
    /// what [`ValidatedModel::estimate_at_fps`] returns for the same
    /// frame rate.
    Complete(Box<EstimateReport>),
    /// The gate stopped the pass. `kernels_done` counts the energy
    /// kernels that ran before the stop (the remaining
    /// `ENERGY_KERNEL_COUNT - kernels_done` were skipped entirely);
    /// `partial` retains their bookings for reporting.
    Pruned {
        /// The solved frame-timing split (always available: pruning
        /// happens after the delay solve).
        delay: DelayEstimate,
        /// The partial breakdown at the moment the gate said stop.
        partial: EnergyBreakdown,
        /// Number of energy kernels that ran (`0..=ENERGY_KERNEL_COUNT`).
        kernels_done: usize,
    },
}

impl GatedEstimate {
    /// Energy kernels that contributed to this outcome:
    /// [`ENERGY_KERNEL_COUNT`] when complete, the gate's stopping point
    /// when pruned.
    #[must_use]
    pub fn kernels_done(&self) -> usize {
        match self {
            GatedEstimate::Complete(_) => ENERGY_KERNEL_COUNT,
            GatedEstimate::Pruned { kernels_done, .. } => *kernels_done,
        }
    }

    /// The energy booked so far: the full per-frame total when
    /// complete, the partial aggregate when pruned. Because kernels
    /// only ever *add* energy, a pruned outcome's value is a sound
    /// lower bound on the point's true total — the property adaptive
    /// search's successive-halving warm-up ranks candidates by.
    #[must_use]
    pub fn partial_total(&self) -> Energy {
        match self {
            GatedEstimate::Complete(report) => report.total(),
            GatedEstimate::Pruned { partial, .. } => partial.total(),
        }
    }
}

/// Domain tag of the elastic-simulation fingerprint; bump when the
/// simulator's semantics change so stale cache keys cannot alias.
const SIM_FINGERPRINT_DOMAIN: &str = "camj.sim/v1";

/// Domain tag of the functional (task-metrics) fingerprint; bump when
/// the frame pipeline or DAG semantics change so stale cache keys
/// cannot alias.
const FUNCTIONAL_FINGERPRINT_DOMAIN: &str = "camj.functional/v1";

/// The FPS-independent result of the **simulate** stage: the elastic
/// cycle-level simulation and the digital latency derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticSim {
    /// Simulation statistics (`None` for all-analog designs, which have
    /// nothing to simulate).
    pub report: Option<SimReport>,
    /// Digital latency `T_D` at the hardware's digital clock.
    pub digital_latency: Time,
}

/// Per-digital-stage simulation parameters.
pub(crate) struct StagePlan<'a> {
    pub(crate) stage: &'a Stage,
    pub(crate) firings: u64,
    pub(crate) out_rate: f64,
    pub(crate) pipeline_depth: u32,
    /// Physical buffer reads per fresh input pixel.
    pub(crate) reads_per_fresh: f64,
}

/// Memoised stall-check verdict, exploiting monotonicity in the
/// readout time: a pipeline that keeps pace with a readout of `T_A`
/// seconds per stage also keeps pace with any slower readout. Sweeping
/// the frame-rate axis therefore needs one stall simulation at its
/// fastest passing point instead of one per point. Only passes are
/// cached: failures re-simulate so each failing point reports a
/// diagnosis exact for its own readout.
///
/// This is the per-model L1; with an [`EstimateCache`] attached the
/// verdict is also shared cross-model, keyed by the simulation
/// fingerprint plus the analog stage count.
#[derive(Debug, Clone, Default)]
struct StallCache {
    /// Fastest (smallest) per-stage readout time known to pass.
    pass_min: Option<f64>,
}

/// Locks the per-model stall cache, recovering from poisoning: the
/// guarded scalar is only ever overwritten whole, so the cache stays
/// consistent even if a panicking thread died while holding the lock
/// (per-point panics are caught by sweep drivers and must not corrupt
/// neighbouring evaluations).
/// The observability span name of one energy kernel; a static table so
/// recording never formats (see `obs_core`'s static-name rule).
fn kernel_span_name(kind: KernelKind) -> &'static str {
    match kind {
        KernelKind::Analog => "kernel.analog",
        KernelKind::DigitalCompute => "kernel.digital_compute",
        KernelKind::DigitalMemory => "kernel.digital_memory",
        KernelKind::Interface => "kernel.interface",
    }
}

fn lock_stall(stall: &Mutex<StallCache>) -> std::sync::MutexGuard<'_, StallCache> {
    stall
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A design that has passed the **validate** and **route** stages, with
/// the routes and (lazily) the elastic simulation cached for reuse.
///
/// The caches are what make sweeps cheap: clones made through
/// [`ValidatedModel::with_fps`] share the already-resolved routes and
/// simulation, [`ValidatedModel::estimate_at_fps`] re-runs only the
/// FPS-dependent stages, and a cross-point [`EstimateCache`] attached
/// via [`ValidatedModel::with_cache`] shares simulations, stall
/// verdicts, and energy-kernel outputs *between* models whose
/// fingerprinted inputs coincide.
#[derive(Debug)]
pub struct ValidatedModel {
    algo: AlgorithmGraph,
    hw: HardwareDesc,
    mapping: Mapping,
    fps: f64,
    stimulus: Stimulus,
    routes: Vec<Route>,
    elastic: OnceLock<Arc<Result<ElasticSim, CamjError>>>,
    sim_fp: OnceLock<Fingerprint>,
    stall: Mutex<StallCache>,
    cache: Option<Arc<EstimateCache>>,
}

impl Clone for ValidatedModel {
    fn clone(&self) -> Self {
        Self {
            algo: self.algo.clone(),
            hw: self.hw.clone(),
            mapping: self.mapping.clone(),
            fps: self.fps,
            stimulus: self.stimulus.clone(),
            routes: self.routes.clone(),
            elastic: self.elastic.clone(),
            sim_fp: self.sim_fp.clone(),
            stall: Mutex::new(lock_stall(&self.stall).clone()),
            cache: self.cache.clone(),
        }
    }
}

impl ValidatedModel {
    /// The **validate** and **route** stages: runs all static checks
    /// (paper Sec. 3.2) and resolves every physical route.
    ///
    /// # Errors
    ///
    /// Returns the first failed check as a [`CamjError`].
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    pub fn new(
        algo: AlgorithmGraph,
        hw: HardwareDesc,
        mapping: Mapping,
        fps: f64,
    ) -> Result<Self, CamjError> {
        assert!(
            fps.is_finite() && fps > 0.0,
            "FPS must be positive, got {fps}"
        );
        {
            let _span = obs_core::span("pipeline.validate");
            check::validate(&algo, &hw, &mapping)?;
        }
        let routes = {
            let _span = obs_core::span("pipeline.route");
            routes(&algo, &hw, &mapping)?
        };
        Ok(Self {
            algo,
            hw,
            mapping,
            fps,
            stimulus: Stimulus::default(),
            routes,
            elastic: OnceLock::new(),
            sim_fp: OnceLock::new(),
            stall: Mutex::new(StallCache::default()),
            cache: None,
        })
    }

    /// The algorithm description.
    #[must_use]
    pub fn algorithm(&self) -> &AlgorithmGraph {
        &self.algo
    }

    /// The hardware description.
    #[must_use]
    pub fn hardware(&self) -> &HardwareDesc {
        &self.hw
    }

    /// The stage-to-unit mapping.
    #[must_use]
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The target frame rate.
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// The resolved physical routes (the **route** stage's artifact).
    #[must_use]
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Attaches a cross-point estimate cache (builder-style). All
    /// models of one sweep should share one cache: simulations, stall
    /// verdicts, and energy-kernel outputs are then computed once per
    /// distinct fingerprint instead of once per model.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<EstimateCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cross-point cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&Arc<EstimateCache>> {
        self.cache.as_ref()
    }

    /// A copy of this model targeting a different frame rate, sharing
    /// the cached routes and elastic simulation. Checks do not re-run:
    /// FPS feasibility is established by the delay/stall stages, not by
    /// the static checks.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    #[must_use]
    pub fn with_fps(&self, fps: f64) -> Self {
        assert!(
            fps.is_finite() && fps > 0.0,
            "FPS must be positive, got {fps}"
        );
        let mut clone = self.clone();
        clone.fps = fps;
        clone
    }

    /// Attaches the scene the functional pipeline simulates
    /// (builder-style). This is the stimulus `accuracy:<metric>`
    /// objectives and [`Self::task_metrics`] evaluate under; explicit
    /// `stimulus` arguments to [`Self::simulate_frame`] /
    /// [`Self::simulate_frames`] are unaffected.
    #[must_use]
    pub fn with_stimulus(mut self, stimulus: Stimulus) -> Self {
        self.stimulus = stimulus;
        self
    }

    /// The attached scene (defaults to [`Stimulus::default`]).
    #[must_use]
    pub fn stimulus(&self) -> &Stimulus {
        &self.stimulus
    }

    /// The content address of this model's elastic simulation: a hash
    /// of the dataflow topology the cycle-level simulator reads —
    /// stage firing plans, producer/consumer edges, buffer geometry,
    /// and the digital clock. Deliberately independent of analog
    /// parameters and of every energy number, so designs differing
    /// only along those axes share one cached simulation.
    #[must_use]
    pub fn sim_fingerprint(&self) -> Fingerprint {
        *self
            .sim_fp
            .get_or_init(|| self.compute_sim_fingerprint(&self.stage_plans()))
    }

    fn compute_sim_fingerprint(&self, plans: &[StagePlan<'_>]) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_str(SIM_FINGERPRINT_DOMAIN);
        h.write_f64(self.hw.digital_clock_hz());
        h.write_usize(plans.len());
        for plan in plans {
            h.write_str(plan.stage.name());
            h.write_u64(plan.firings);
            h.write_f64(plan.out_rate);
            h.write_u32(plan.pipeline_depth);
            h.write_f64(plan.reads_per_fresh);
            let producers = self.algo.producers_of(plan.stage.name());
            h.write_usize(producers.len());
            for producer_name in producers {
                h.write_str(producer_name);
                let producer_stage = self.algo.stage(producer_name).expect("producer exists");
                h.write_u64(producer_stage.output_size().count());
                // Digital producers connect stage-to-stage; analog
                // producers become readout sources.
                let is_digital = plans.iter().any(|p| p.stage.name() == producer_name);
                h.write_bool(is_digital);
                self.buffer_between(producer_name, plan.stage.name())
                    .feed_sim_view(&mut h);
            }
        }
        h.finish()
    }

    /// The cross-model stall-verdict key: the simulation topology plus
    /// the analog stage count (which converts a readout time into the
    /// frame budget the stall simulation runs under).
    fn stall_fingerprint(&self) -> Fingerprint {
        let (hi, lo) = self.sim_fingerprint().parts();
        let mut h = FpHasher::new();
        h.write_u64(hi);
        h.write_u64(lo);
        h.write_str("stall");
        h.write_usize(self.analog_stage_count());
        h.finish()
    }

    /// The **simulate** stage: the elastic cycle-level simulation
    /// measuring digital latency `T_D` (Sec. 4.1). FPS-independent and
    /// memoised — repeated calls (and calls on [`Self::with_fps`]
    /// clones made *after* the first call) return the cached artifact.
    /// With an attached [`EstimateCache`], the artifact is shared
    /// across every model whose [`Self::sim_fingerprint`] matches.
    ///
    /// # Errors
    ///
    /// Returns [`CamjError::Sim`] when the simulation fails.
    pub fn simulate(&self) -> Result<&ElasticSim, CamjError> {
        self.elastic
            .get_or_init(|| match &self.cache {
                Some(cache) => cache.elastic_or(self.sim_fingerprint(), || self.run_elastic()),
                None => Arc::new(self.run_elastic()),
            })
            .as_ref()
            .as_ref()
            .map_err(Clone::clone)
    }

    fn run_elastic(&self) -> Result<ElasticSim, CamjError> {
        // Inside the cache's compute closure, so the span count is one
        // per *unique* topology — deterministic across thread counts.
        let _span = obs_core::span("pipeline.simulate");
        let plans = self.stage_plans();
        if plans.is_empty() {
            return Ok(ElasticSim {
                report: None,
                digital_latency: Time::ZERO,
            });
        }
        let sim = self.build_sim(&plans, None)?;
        let report = sim.run(MAX_SIM_CYCLES)?;
        let digital_latency = report.digital_latency(self.hw.digital_clock_hz());
        Ok(ElasticSim {
            report: Some(report),
            digital_latency,
        })
    }

    /// The **estimate_delay** stage at this model's frame rate.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; returns
    /// [`CamjError::FrameRateInfeasible`] when `T_D` exceeds the frame
    /// budget.
    pub fn estimate_delay(&self) -> Result<DelayEstimate, CamjError> {
        self.estimate_delay_at(self.fps)
    }

    /// The **estimate_delay** stage at an explicit frame rate.
    ///
    /// # Errors
    ///
    /// See [`Self::estimate_delay`].
    pub fn estimate_delay_at(&self, fps: f64) -> Result<DelayEstimate, CamjError> {
        let t_d = self.simulate()?.digital_latency;
        DelayEstimate::solve(fps, t_d, self.analog_stage_count())
    }

    /// Whether the stall check for readout `t_a` is already answered by
    /// a cached pass — the per-model L1 first, then the cross-model
    /// cache.
    fn stall_settled(&self, t_a: f64) -> bool {
        if lock_stall(&self.stall)
            .pass_min
            .is_some_and(|pass| t_a >= pass)
        {
            return true;
        }
        match &self.cache {
            Some(cache) => cache.stall_settled(self.stall_fingerprint(), t_a),
            None => false,
        }
    }

    /// Records a stall pass in the per-model L1 and the cross-model
    /// cache.
    fn record_stall_pass(&self, t_a: f64) {
        let mut local = lock_stall(&self.stall);
        local.pass_min = Some(local.pass_min.map_or(t_a, |p| p.min(t_a)));
        drop(local);
        if let Some(cache) = &self.cache {
            cache.record_stall_pass(self.stall_fingerprint(), t_a);
        }
    }

    /// The stall check (Sec. 4.1): re-simulates with the source pinned
    /// to the constant readout rate the delay estimate implies.
    ///
    /// Passing verdicts are memoised by readout time (stall freedom is
    /// monotone in it: a slower readout only relaxes the source rate),
    /// so a frame-rate sweep pays for one stall simulation at its
    /// fastest passing point plus one per failing point. Failures are
    /// never answered from cache — each re-simulates so the overflow
    /// diagnosis is exact for that readout and results stay identical
    /// across serial and parallel sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`CamjError::StallDetected`] when the digital pipeline
    /// cannot keep pace with the pixel readout.
    pub fn check_stall(&self, delay: &DelayEstimate) -> Result<(), CamjError> {
        if self.stall_settled(delay.analog_unit_time.secs()) {
            return Ok(());
        }
        self.check_stall_with(&self.stage_plans(), delay)
    }

    fn check_stall_with(
        &self,
        plans: &[StagePlan<'_>],
        delay: &DelayEstimate,
    ) -> Result<(), CamjError> {
        if plans.is_empty() {
            return Ok(());
        }
        // How many checks reach this point depends on which sibling
        // settled the monotone stall verdict first — the span count is
        // inherently racy across thread counts (see `camj-obs`).
        let _span = obs_core::span("pipeline.stall_check");
        let t_a = delay.analog_unit_time.secs();
        let readout = delay.analog_unit_time;
        let sim = self.build_sim(plans, Some(readout))?;
        let budget =
            (delay.frame_time.secs() * self.hw.digital_clock_hz() * 2.0) as u64 + 1_000_000;
        // Verdict-only: a passing stall check discards the report, so
        // the simulator may fast-forward recurrent readout periods; a
        // failing one re-simulates exactly inside `run_check` so the
        // diagnosis below matches a cycle-exact run byte for byte.
        match sim.run_check(budget.min(MAX_SIM_CYCLES)) {
            Ok(()) => {
                self.record_stall_pass(t_a);
                Ok(())
            }
            Err(e @ SimError::SourceOverflow { .. }) => Err(CamjError::StallDetected { cause: e }),
            Err(e) => Err(e.into()),
        }
    }

    /// The **energy** stage: books all component energies (Eq. 1's
    /// three domains plus communication) for a solved delay split, by
    /// running the four energy kernels (replaying cached outputs when a
    /// cross-point cache is attached).
    #[must_use]
    pub fn energy_breakdown(
        &self,
        sim: Option<&SimReport>,
        delay: &DelayEstimate,
    ) -> EnergyBreakdown {
        self.energy_breakdown_with(&self.stage_plans(), sim, delay)
    }

    fn energy_breakdown_with(
        &self,
        plans: &[StagePlan<'_>],
        sim: Option<&SimReport>,
        delay: &DelayEstimate,
    ) -> EnergyBreakdown {
        self.run_energy_kernels(plans, sim, delay, &mut |_| true)
            .unwrap_or_else(|_| unreachable!("an always-admitting gate never prunes"))
    }

    /// Runs the four energy kernels in order, consulting `gate` after
    /// each one. Both the gated and the ungated estimate paths go
    /// through here, so an admitted pass is byte-identical to a plain
    /// [`Self::energy_breakdown`] — same kernels, same order, same
    /// cache fingerprints.
    ///
    /// Returns the completed breakdown, or `Err((partial, done))` when
    /// the gate stopped after `done` kernels.
    fn run_energy_kernels(
        &self,
        plans: &[StagePlan<'_>],
        sim: Option<&SimReport>,
        delay: &DelayEstimate,
        gate: &mut dyn FnMut(&GateContext<'_>) -> bool,
    ) -> Result<EnergyBreakdown, (EnergyBreakdown, usize)> {
        let analog = AnalogKernel::new(self, delay);
        let digital_compute = DigitalComputeKernel::new(self, plans, sim);
        let digital_memory = DigitalMemoryKernel::new(self, plans, sim, delay);
        let interface = InterfaceKernel::new(self);
        let kernels: [&dyn EnergyKernel; ENERGY_KERNEL_COUNT] =
            [&analog, &digital_compute, &digital_memory, &interface];
        let mut breakdown = EnergyBreakdown::new();
        for (ran, kernel) in kernels.into_iter().enumerate() {
            // The span/invocation counter sits inside the compute path,
            // so cached replays cost nothing and the invocation count
            // is one per unique kernel fingerprint.
            let instrumented = || {
                let _span = obs_core::span(kernel_span_name(kernel.kind()));
                obs_core::counter("kernel.invocations", ran as u64, 1);
                kernel.compute()
            };
            match &self.cache {
                Some(cache) => {
                    let items = cache.energy_or(kernel.fingerprint(), instrumented);
                    for item in items.iter() {
                        breakdown.push(item.clone());
                    }
                }
                None => {
                    for item in instrumented() {
                        breakdown.push(item);
                    }
                }
            }
            let kernels_done = ran + 1;
            let admitted = gate(&GateContext {
                delay,
                partial: &breakdown,
                kernels_done,
            });
            if !admitted {
                return Err((breakdown, kernels_done));
            }
        }
        Ok(breakdown)
    }

    /// Runs the full staged flow at this model's frame rate.
    ///
    /// # Errors
    ///
    /// See [`super::CamJ::estimate`].
    pub fn estimate(&self) -> Result<EstimateReport, CamjError> {
        self.estimate_at_fps(self.fps)
    }

    /// Runs the FPS-dependent stages (delay → stall check → energy) at
    /// an explicit frame rate, reusing the cached routes and elastic
    /// simulation. This is the sweep fast path: across N frame-rate
    /// targets the checks, routing, and latency simulation run once
    /// instead of N times.
    ///
    /// # Errors
    ///
    /// See [`super::CamJ::estimate`].
    pub fn estimate_at_fps(&self, fps: f64) -> Result<EstimateReport, CamjError> {
        let elastic = self.simulate()?;
        let delay = {
            let _span = obs_core::span("pipeline.delay");
            DelayEstimate::solve(fps, elastic.digital_latency, self.analog_stage_count())?
        };
        // Plans serve both the stall check and the energy passes; build
        // them once (and only after the cheap feasibility solve above).
        let stall_settled = self.stall_settled(delay.analog_unit_time.secs());
        let plans = self.stage_plans();
        if !stall_settled {
            self.check_stall_with(&plans, &delay)?;
        }
        let breakdown = self.energy_breakdown_with(&plans, elastic.report.as_ref(), &delay);
        Ok(self.assemble_report(breakdown, delay, elastic))
    }

    /// The budget-gated variant of [`Self::estimate_at_fps`]: runs the
    /// same FPS-dependent stages, but consults `gate` right after the
    /// delay solve (with `kernels_done == 0`, before the stall check)
    /// and again after each energy kernel. The first `false` stops the
    /// pass and returns [`GatedEstimate::Pruned`], skipping every
    /// remaining kernel.
    ///
    /// This is the engine behind constraint-based sweep pruning
    /// (`camj-explore`'s Pareto path): a point whose partial energy
    /// already blows a power-density or total-energy budget — or whose
    /// digital latency blows a delay budget — never pays for the
    /// kernels it no longer needs. Admitted passes stay cache-compatible
    /// and byte-identical to the ungated path: kernels run in the same
    /// order with the same fingerprints, so surviving points replay and
    /// populate a shared [`EstimateCache`] exactly as a plain sweep
    /// would.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Self::estimate_at_fps`]; a gate stop is
    /// not an error but a [`GatedEstimate::Pruned`] outcome. Note that
    /// a point pruned at `kernels_done == 0` skips the stall check, so
    /// a design that would *also* stall reports as pruned, not stalled.
    pub fn estimate_at_fps_gated<G>(
        &self,
        fps: f64,
        mut gate: G,
    ) -> Result<GatedEstimate, CamjError>
    where
        G: FnMut(&GateContext<'_>) -> bool,
    {
        let elastic = self.simulate()?;
        let delay = {
            let _span = obs_core::span("pipeline.delay");
            DelayEstimate::solve(fps, elastic.digital_latency, self.analog_stage_count())?
        };
        let empty = EnergyBreakdown::new();
        let admitted = gate(&GateContext {
            delay: &delay,
            partial: &empty,
            kernels_done: 0,
        });
        if !admitted {
            return Ok(GatedEstimate::Pruned {
                delay,
                partial: empty,
                kernels_done: 0,
            });
        }
        let stall_settled = self.stall_settled(delay.analog_unit_time.secs());
        let plans = self.stage_plans();
        if !stall_settled {
            self.check_stall_with(&plans, &delay)?;
        }
        match self.run_energy_kernels(&plans, elastic.report.as_ref(), &delay, &mut gate) {
            Ok(breakdown) => Ok(GatedEstimate::Complete(Box::new(
                self.assemble_report(breakdown, delay, elastic),
            ))),
            Err((partial, kernels_done)) => Ok(GatedEstimate::Pruned {
                delay,
                partial,
                kernels_done,
            }),
        }
    }

    /// Bundles a completed breakdown into the full [`EstimateReport`]
    /// (per-layer power densities, input pixel count, simulation
    /// statistics). Shared by the gated and ungated estimate paths.
    fn assemble_report(
        &self,
        breakdown: EnergyBreakdown,
        delay: DelayEstimate,
        elastic: &ElasticSim,
    ) -> EstimateReport {
        let layers = layer_powers(&breakdown, &self.hw, delay.frame_time);
        let input_pixels = self
            .algo
            .stages()
            .iter()
            .filter(|s| matches!(s.kind(), StageKind::Input))
            .map(|s| s.output_size().count())
            .sum();
        let noise = self.noise_report_for(&delay, DEFAULT_SIGNAL_FRACTION);
        EstimateReport {
            breakdown,
            delay,
            sim: elastic.report.clone(),
            layers,
            input_pixels,
            noise,
        }
    }

    /// Builds per-digital-stage simulation parameters.
    pub(crate) fn stage_plans(&self) -> Vec<StagePlan<'_>> {
        let mut plans = Vec::new();
        for stage in self.algo.stages() {
            let Some(unit_name) = self.mapping.unit_for(stage.name()) else {
                continue;
            };
            let Some(unit) = self.hw.digital(unit_name) else {
                continue;
            };
            let outputs = stage.output_size().count();
            let fresh_total: f64 = self
                .algo
                .producers_of(stage.name())
                .iter()
                .map(|p| {
                    self.algo
                        .stage(p)
                        .expect("producer exists")
                        .output_size()
                        .count() as f64
                })
                .sum();
            let (firings, out_rate, depth, reads_total) = match unit.kind() {
                DigitalUnitKind::Pipelined(cu) => {
                    // The unit fires until BOTH its output quota and its
                    // input stream are through — a reducing stage (many
                    // inputs per output) is input-throughput-limited.
                    let out_limited = outputs.div_ceil(cu.output_pixels_per_cycle());
                    let in_limited =
                        (fresh_total / cu.input_pixels_per_cycle() as f64).ceil() as u64;
                    let firings = out_limited.max(in_limited).max(1);
                    let reads = stage.reads_per_output() * outputs as f64;
                    (
                        firings,
                        outputs as f64 / firings as f64,
                        cu.num_stages(),
                        reads,
                    )
                }
                DigitalUnitKind::Systolic(sa) => {
                    let (macs, weights) = match stage.kind() {
                        StageKind::Dnn { macs, weights } => (macs, weights),
                        _ => (stage.ops_per_frame(), 0),
                    };
                    let firings = sa.cycles_for_macs(macs).max(1);
                    // Tiled weight-stationary dataflow with on-array
                    // register reuse: each activation and each weight is
                    // fetched from SRAM a small constant number of times
                    // across tiles (2 on average), not once per MAC.
                    const SRAM_FETCH_PASSES: f64 = 2.0;
                    let reads = SRAM_FETCH_PASSES * (fresh_total + weights as f64);
                    (firings, outputs as f64 / firings as f64, sa.rows(), reads)
                }
            };
            let reads_per_fresh = if fresh_total > 0.0 {
                reads_total / fresh_total
            } else {
                0.0
            };
            plans.push(StagePlan {
                stage,
                firings,
                out_rate,
                pipeline_depth: depth,
                reads_per_fresh,
            });
        }
        plans
    }

    /// Builds the pipeline simulation. `readout_time` selects the source
    /// mode: `None` ⇒ elastic (latency measurement), `Some(T_A)` ⇒
    /// continuous at the physical readout rate (stall check).
    fn build_sim(
        &self,
        plans: &[StagePlan<'_>],
        readout_time: Option<Time>,
    ) -> Result<camj_digital::sim::PipelineSim, CamjError> {
        let mut b = PipelineSimBuilder::new();
        let mut nodes: BTreeMap<&str, NodeId> = BTreeMap::new();
        for plan in plans {
            let id = b.add_stage(plan.stage.name(), plan.pipeline_depth);
            nodes.insert(plan.stage.name(), id);
        }
        for plan in plans {
            let consumer = nodes[plan.stage.name()];
            for producer_name in self.algo.producers_of(plan.stage.name()) {
                let producer_stage = self.algo.stage(producer_name).expect("producer exists");
                let edge_pixels = producer_stage.output_size().count() as f64;
                let fresh_rate = (edge_pixels / plan.firings as f64).max(f64::MIN_POSITIVE);
                let buffer = self.buffer_between(producer_name, plan.stage.name());
                let (from, producer_rate) = match nodes.get(producer_name) {
                    Some(&id) => {
                        let producer_plan = plans
                            .iter()
                            .find(|p| p.stage.name() == producer_name)
                            .expect("digital producer has a plan");
                        (id, producer_plan.out_rate)
                    }
                    None => {
                        // Analog producer: a readout source.
                        let (mode, rate) = match readout_time {
                            None => (SourceMode::Elastic, fresh_rate),
                            Some(t_a) => {
                                let cycles = t_a.secs() * self.hw.digital_clock_hz();
                                (SourceMode::Continuous, edge_pixels / cycles.max(1.0))
                            }
                        };
                        let id = b.add_source(format!("src:{producer_name}"), mode);
                        (id, rate)
                    }
                };
                b.connect_with_reuse(
                    from,
                    consumer,
                    &buffer,
                    producer_rate,
                    fresh_rate,
                    edge_pixels,
                    plan.reads_per_fresh,
                );
            }
        }
        b.build().map_err(CamjError::from)
    }

    /// The physical buffer a consumer reads its input from: the last
    /// memory on the route, or a synthetic free wire when the units are
    /// directly connected (or fused on one unit).
    pub(crate) fn buffer_between(&self, producer: &str, consumer: &str) -> MemoryStructure {
        let route = self
            .routes
            .iter()
            .find(|r| r.from_stage == producer && r.to_stage.as_deref() == Some(consumer));
        if let Some(route) = route {
            let mem = route
                .intermediates()
                .iter()
                .rev()
                .find(|hop| self.hw.kind_of(hop) == Some(UnitKind::Memory));
            if let Some(name) = mem {
                return self
                    .hw
                    .memory(name)
                    .expect("kind said memory")
                    .structure()
                    .clone();
            }
        }
        // Fused or directly-wired: a generous free conduit.
        MemoryStructure::fifo(format!("wire:{producer}->{consumer}"), 1 << 20)
            .with_pixels_per_word(64)
            .with_ports(64, 64)
    }

    /// Analog pipeline stage count `N_A`, including exposure.
    pub(crate) fn analog_stage_count(&self) -> usize {
        let mut units: Vec<String> = Vec::new();
        let mapped = self
            .mapping
            .iter()
            .filter(|(stage, _)| self.algo.stage(stage).is_some())
            .map(|(_, unit)| unit);
        let routed = self
            .routes
            .iter()
            .flat_map(|r| r.path.iter().map(String::as_str));
        for name in mapped.chain(routed) {
            if self.hw.analog(name).is_some() && !units.iter().any(|u| u == name) {
                units.push(name.to_owned());
            }
        }
        units.len() + 1 // + exposure
    }

    // -----------------------------------------------------------------
    // Noise-aware functional simulation
    // -----------------------------------------------------------------

    /// The analog units of the signal chain in signal-flow order:
    /// the units Input stages map onto first (the pixel array leads),
    /// then every analog unit the routes traverse in route order, then
    /// any remaining mapped analog unit.
    fn analog_signal_chain(&self) -> Vec<&AnalogUnitDesc> {
        fn push<'a>(hw: &'a HardwareDesc, name: &str, units: &mut Vec<&'a AnalogUnitDesc>) {
            if let Some(unit) = hw.analog(name) {
                if !units.iter().any(|u| u.name() == name) {
                    units.push(unit);
                }
            }
        }
        let mut units: Vec<&AnalogUnitDesc> = Vec::new();
        for stage in self.algo.stages() {
            if matches!(stage.kind(), StageKind::Input) {
                if let Some(unit) = self.mapping.unit_for(stage.name()) {
                    push(&self.hw, unit, &mut units);
                }
            }
        }
        for route in &self.routes {
            for hop in &route.path {
                push(&self.hw, hop, &mut units);
            }
        }
        for (stage, unit) in self.mapping.iter() {
            if self.algo.stage(stage).is_some() {
                push(&self.hw, unit, &mut units);
            }
        }
        units
    }

    /// Resolves the noise chain: one [`NoiseStage`] per analog unit,
    /// carrying the component's declared [`NoiseSource`]s and the
    /// implicit quantization of a digitising back end.
    ///
    /// [`NoiseSource`]: camj_analog::noise::NoiseSource
    fn noise_chain(&self) -> Vec<NoiseStage> {
        self.analog_signal_chain()
            .into_iter()
            .map(|unit| {
                let component = unit.array().component();
                NoiseStage {
                    unit: unit.name().to_owned(),
                    sources: component.noise_sources().to_vec(),
                    quant_bits: component.conversion_bits(),
                }
            })
            .collect()
    }

    /// The analytic noise budget for an already-solved delay split:
    /// per-stage variance accumulation at `signal_fraction` of full
    /// scale. `None` when the chain contributes no noise at all —
    /// no descriptors and no digitising component, or only
    /// zero-amplitude sources (a `read` of 0, a dark current of
    /// 0 e⁻/s), which validation deliberately allows.
    pub(crate) fn noise_report_for(
        &self,
        delay: &DelayEstimate,
        signal_fraction: f64,
    ) -> Option<NoiseReport> {
        assert!(
            signal_fraction > 0.0 && signal_fraction <= 1.0,
            "signal fraction must be in (0, 1], got {signal_fraction}"
        );
        let chain = self.noise_chain();
        if !chain.iter().any(NoiseStage::is_noisy) {
            return None;
        }
        let exposure = delay.analog_unit_time;
        let mut cumulative_var = 0.0;
        let stages: Vec<StageNoise> = chain
            .iter()
            .map(|stage| {
                let added_var = stage.variance(
                    signal_fraction,
                    exposure,
                    camj_tech::constants::DEFAULT_TEMPERATURE_K,
                );
                cumulative_var += added_var;
                let cumulative = cumulative_var.sqrt();
                StageNoise {
                    unit: stage.unit.clone(),
                    added_noise_rms: added_var.sqrt(),
                    cumulative_noise_rms: cumulative,
                    snr_db: functional::snr_db(signal_fraction, cumulative),
                }
            })
            .collect();
        let output_noise_rms = cumulative_var.sqrt();
        // Declared sources can all be zero-amplitude; such a chain is
        // effectively noise-free, not an error.
        let output_snr_db = functional::snr_db(signal_fraction, output_noise_rms)?;
        Some(NoiseReport {
            signal_fraction,
            stages,
            output_noise_rms,
            output_snr_db,
        })
    }

    /// The analytic noise budget at an explicit frame rate, quoted at
    /// the default mid-scale signal level. This is the quantity the
    /// explorer's `snr` objective minimises (as output noise RMS), and
    /// what [`EstimateReport::noise`](super::EstimateReport) carries.
    ///
    /// # Errors
    ///
    /// Propagates simulation/feasibility failures from the delay solve
    /// (the exposure time the dark-current sources integrate over
    /// comes from the frame budget).
    pub fn noise_report_at_fps(&self, fps: f64) -> Result<Option<NoiseReport>, CamjError> {
        let delay = self.estimate_delay_at(fps)?;
        Ok(self.noise_report_for(&delay, DEFAULT_SIGNAL_FRACTION))
    }

    /// Simulates one frame functionally: renders `stimulus` at the
    /// input stage's resolution, pushes it through the analog signal
    /// chain injecting each stage's noise with a seeded Gaussian
    /// sampler (and applying real mid-tread quantization at digitising
    /// stages), and measures per-stage SNR against the clean frame.
    ///
    /// Determinism contract: the result is a pure function of
    /// `(model, seed, stimulus)` — per-stage RNG streams are derived
    /// by fingerprint-mixing, never shared, so repeated runs and any
    /// `RAYON_NUM_THREADS` setting produce byte-identical reports
    /// (pinned by [`FrameSimReport::digest`]).
    ///
    /// # Errors
    ///
    /// * [`CamjError::CheckDag`] when the algorithm has no input stage
    ///   to render the stimulus at,
    /// * the delay-solve errors of [`Self::estimate_delay`] (exposure
    ///   time comes from the frame budget).
    pub fn simulate_frame(
        &self,
        seed: u64,
        stimulus: &Stimulus,
    ) -> Result<FrameSimReport, CamjError> {
        Ok(self.frame_plan(stimulus)?.simulate(seed))
    }

    /// Simulates the same stimulus under several independent seeds and
    /// aggregates the per-stage noise statistics — the Monte-Carlo SNR
    /// estimate behind the explorer's `mc_snr:<samples>` objective and
    /// `camj simulate --samples N`.
    ///
    /// The frame plan (clean frame, resolved variance terms, per-pixel
    /// noise std) is built once and shared; seeds then simulate
    /// independently, in parallel when more than one worker is
    /// available. Because every seed's RNG streams are derived by
    /// fingerprint-mixing (never shared), each per-seed frame — and
    /// therefore the whole report — is byte-identical whatever
    /// `RAYON_NUM_THREADS` says.
    ///
    /// Batch runs draw noise with the ziggurat sampler instead of the
    /// single-seed path's digest-pinned Box–Muller stream: the samples
    /// are exactly N(0, 1) and fully deterministic per seed, but
    /// `simulate_frames(&[s], …)` is *not* bitwise the same frame as
    /// [`Self::simulate_frame`]`(s, …)` — it is a different (equally
    /// valid) realisation, at a fraction of the per-seed cost.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::simulate_frame`].
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty (there is nothing to aggregate).
    pub fn simulate_frames(
        &self,
        seeds: &[u64],
        stimulus: &Stimulus,
    ) -> Result<McFrameSimReport, CamjError> {
        use rayon::prelude::*;
        assert!(!seeds.is_empty(), "simulate_frames needs at least one seed");
        let _span = obs_core::span("frame.simulate_mc");
        obs_core::counter("frame.seeds", 0, seeds.len() as u64);
        let plan = self.frame_plan(stimulus)?;
        let stds = plan.noise_stds();
        let reports: Vec<FrameSimReport> = seeds
            .par_iter()
            .map(|&seed| plan.simulate_fast(seed, &stds))
            .collect();
        let stages = (0..reports[0].stages.len())
            .map(|i| {
                let rms: Vec<f64> = reports.iter().map(|r| r.stages[i].noise_rms).collect();
                let snr: Vec<Option<f64>> = reports.iter().map(|r| r.stages[i].snr_db).collect();
                let (noise_rms_mean, noise_rms_std) = functional::mean_std(&rms);
                let (snr_db_mean, snr_db_std) = functional::mean_std_opt(&snr);
                StageMcSim {
                    unit: reports[0].stages[i].unit.clone(),
                    noise_rms_mean,
                    noise_rms_std,
                    snr_db_mean,
                    snr_db_std,
                }
            })
            .collect();
        let means: Vec<f64> = reports.iter().map(|r| r.output.mean).collect();
        let rms: Vec<f64> = reports.iter().map(|r| r.output.noise_rms).collect();
        let snr: Vec<Option<f64>> = reports.iter().map(|r| r.output.snr_db).collect();
        let (noise_rms_mean, noise_rms_std) = functional::mean_std(&rms);
        let (snr_db_mean, snr_db_std) = functional::mean_std_opt(&snr);
        let dag = reports[0].dag.as_ref().map(|first| {
            // Every report shares the plan, so dag presence and stage
            // lists agree across seeds.
            let per_seed: Vec<&DagSim> = reports
                .iter()
                .map(|r| r.dag.as_ref().expect("shared plan"))
                .collect();
            let stages = (0..first.stages.len())
                .map(|i| {
                    let rms: Vec<f64> = per_seed.iter().map(|d| d.stages[i].error_rms).collect();
                    let snr: Vec<Option<f64>> =
                        per_seed.iter().map(|d| d.stages[i].snr_db).collect();
                    let (error_rms_mean, error_rms_std) = functional::mean_std(&rms);
                    let (snr_db_mean, snr_db_std) = functional::mean_std_opt(&snr);
                    McDagStageSim {
                        stage: first.stages[i].stage.clone(),
                        error_rms_mean,
                        error_rms_std,
                        snr_db_mean,
                        snr_db_std,
                    }
                })
                .collect();
            let mse: Vec<f64> = per_seed.iter().map(|d| d.metrics.mse).collect();
            let rmse: Vec<f64> = per_seed.iter().map(|d| d.metrics.rmse).collect();
            let psnr: Vec<Option<f64>> = per_seed.iter().map(|d| d.metrics.psnr_db).collect();
            let cent: Vec<f64> = per_seed.iter().map(|d| d.metrics.centroid_err).collect();
            let (mse_mean, mse_std) = functional::mean_std(&mse);
            let (rmse_mean, rmse_std) = functional::mean_std(&rmse);
            let (psnr_db_mean, psnr_db_std) = functional::mean_std_opt(&psnr);
            let (centroid_err_mean, centroid_err_std) = functional::mean_std(&cent);
            McDagSim {
                stages,
                sink: first.sink.clone(),
                metrics: McTaskMetrics {
                    mse_mean,
                    mse_std,
                    rmse_mean,
                    rmse_std,
                    psnr_db_mean,
                    psnr_db_std,
                    centroid_err_mean,
                    centroid_err_std,
                },
                digests: per_seed.iter().map(|d| d.digest.clone()).collect(),
            }
        });
        Ok(McFrameSimReport {
            stimulus: stimulus.to_string(),
            seeds: seeds.to_vec(),
            width: reports[0].width,
            height: reports[0].height,
            channels: reports[0].channels,
            stages,
            output: McOutputStats {
                mean: functional::mean_std(&means).0,
                noise_rms_mean,
                noise_rms_std,
                snr_db_mean,
                snr_db_std,
            },
            digests: reports.into_iter().map(|r| r.digest).collect(),
            dag,
        })
    }

    /// Task-level accuracy of the **attached** stimulus
    /// ([`Self::with_stimulus`]) pushed through the full functional
    /// pipeline — analog chain, ADC quantization, then the mapped
    /// digital DAG — averaged over `seeds` Monte-Carlo noise
    /// realisations. This is the quantity `accuracy:<metric>`
    /// objectives minimise.
    ///
    /// With an [`EstimateCache`] attached, the result is shared across
    /// models keyed by [`Self::functional_fingerprint`], the same
    /// machinery the energy kernels use: repeated evaluations of a
    /// point (or of fingerprint-identical points) replay instead of
    /// re-simulating.
    ///
    /// # Errors
    ///
    /// * [`CamjError::CheckDag`] when the algorithm has no non-input
    ///   stage (there is no task output to judge),
    /// * the conditions of [`Self::simulate_frames`].
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn task_metrics(&self, seeds: &[u64]) -> Result<TaskMetrics, CamjError> {
        assert!(!seeds.is_empty(), "task_metrics needs at least one seed");
        let compute = || -> Result<TaskMetrics, CamjError> {
            let report = self.simulate_frames(seeds, &self.stimulus)?;
            match report.dag {
                Some(dag) => Ok(TaskMetrics {
                    mse: dag.metrics.mse_mean,
                    rmse: dag.metrics.rmse_mean,
                    psnr_db: dag.metrics.psnr_db_mean,
                    centroid_err: dag.metrics.centroid_err_mean,
                }),
                None => Err(CamjError::CheckDag {
                    reason: "accuracy metrics need at least one non-input algorithm stage to judge"
                        .to_owned(),
                }),
            }
        };
        match &self.cache {
            Some(cache) => {
                let fp = self.functional_fingerprint(seeds)?;
                cache.functional_or(fp, compute).as_ref().clone()
            }
            None => compute(),
        }
    }

    /// The content address of one functional (task-metrics) evaluation:
    /// everything [`Self::task_metrics`] reads — the exposure time from
    /// the delay solve, the resolved noise chain, the stimulus content
    /// (pixel data included, path excluded), the algorithm DAG with its
    /// bit widths, and the seed list. Models agreeing on all of that
    /// produce byte-identical metrics, so they may share one cache
    /// entry.
    ///
    /// # Errors
    ///
    /// Propagates the delay-solve errors of [`Self::estimate_delay`].
    pub fn functional_fingerprint(&self, seeds: &[u64]) -> Result<Fingerprint, CamjError> {
        let delay = self.estimate_delay()?;
        let mut h = FpHasher::new();
        h.write_str(FUNCTIONAL_FINGERPRINT_DOMAIN);
        h.write_f64(delay.analog_unit_time.secs());
        let chain = self.noise_chain();
        h.write_usize(chain.len());
        for stage in &chain {
            h.write_str(&stage.unit);
            // The source list is tiny; its JSON encoding (shortest
            // round-trip floats) is an exact, stable content key.
            h.write_str(&serde_json::to_string(&stage.sources).unwrap_or_default());
            match stage.quant_bits {
                Some(bits) => {
                    h.write_bool(true);
                    h.write_u32(bits);
                }
                None => h.write_bool(false),
            }
        }
        match &self.stimulus {
            Stimulus::Uniform { level } => {
                h.write_tag(1);
                h.write_f64(*level);
            }
            Stimulus::Gradient { low, high } => {
                h.write_tag(2);
                h.write_f64(*low);
                h.write_f64(*high);
            }
            Stimulus::Image {
                width,
                height,
                pixels,
                ..
            } => {
                h.write_tag(3);
                h.write_u32(*width);
                h.write_u32(*height);
                h.write_f64_slice_bulk(pixels);
            }
        }
        use camj_tech::fingerprint::Fingerprintable;
        let stages = self.algo.stages();
        h.write_usize(stages.len());
        for stage in stages {
            stage.feed(&mut h);
        }
        let edges = self.algo.edge_names();
        h.write_usize(edges.len());
        for (from, to) in edges {
            h.write_str(from);
            h.write_str(to);
        }
        h.write_usize(seeds.len());
        for seed in seeds {
            h.write_u64(*seed);
        }
        Ok(h.finish())
    }

    /// Resolves everything about a frame simulation that does not
    /// depend on the seed: the rendered clean frame, the signal level,
    /// and each stage's variance terms. One plan serves every seed of a
    /// Monte-Carlo run.
    fn frame_plan(&self, stimulus: &Stimulus) -> Result<FramePlan, CamjError> {
        let _span = obs_core::span("frame.plan");
        let delay = self.estimate_delay()?;
        let input = self
            .algo
            .stages()
            .iter()
            .find(|s| matches!(s.kind(), StageKind::Input))
            .ok_or_else(|| CamjError::CheckDag {
                reason: "functional simulation needs an input stage to render the stimulus at"
                    .to_owned(),
            })?;
        let size = input.output_size();
        let (width, height, channels) = (size.width, size.height, size.channels);
        let pixels = size.count() as usize;

        let clean = stimulus.render(width, height, channels);
        let signal_rms = (clean.iter().map(|v| v * v).sum::<f64>() / pixels.max(1) as f64).sqrt();
        let dag = DagPlan::build(&self.algo, (width, height, channels), &clean);

        let exposure = delay.analog_unit_time;
        let temperature_k = camj_tech::constants::DEFAULT_TEMPERATURE_K;
        let stages = self
            .noise_chain()
            .iter()
            .map(|stage| PlanStage {
                unit: stage.unit.clone(),
                // Only photon shot noise depends on the pixel value;
                // every other source's variance is constant across the
                // frame, so evaluate it once per stage. Per-pixel terms
                // keep the exact per-source expression and summation
                // order, so frames stay bit-identical to the scalar
                // per-pixel evaluation.
                terms: if stage.sources.is_empty() {
                    None
                } else {
                    Some(
                        stage
                            .sources
                            .iter()
                            .map(|s| match *s {
                                camj_analog::noise::NoiseSource::PhotonShot {
                                    full_well_electrons,
                                } => VarTerm::Shot {
                                    full_well_electrons,
                                },
                                _ => {
                                    let rms = s.rms_fraction(0.0, exposure, temperature_k);
                                    VarTerm::Constant(rms * rms)
                                }
                            })
                            .collect(),
                    )
                },
                quant_bits: stage.quant_bits,
            })
            .collect();
        Ok(FramePlan {
            stimulus: stimulus.to_string(),
            width,
            height,
            channels,
            clean,
            signal_rms,
            stages,
            dag,
        })
    }

    /// The original per-pixel scalar frame simulation, retained
    /// verbatim as the bit-exactness oracle for the vectorized path
    /// (property tests compare digests against it). Not part of the
    /// public API surface.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::simulate_frame`].
    #[doc(hidden)]
    pub fn simulate_frame_reference(
        &self,
        seed: u64,
        stimulus: &Stimulus,
    ) -> Result<FrameSimReport, CamjError> {
        let delay = self.estimate_delay()?;
        let input = self
            .algo
            .stages()
            .iter()
            .find(|s| matches!(s.kind(), StageKind::Input))
            .ok_or_else(|| CamjError::CheckDag {
                reason: "functional simulation needs an input stage to render the stimulus at"
                    .to_owned(),
            })?;
        let size = input.output_size();
        let (width, height, channels) = (size.width, size.height, size.channels);
        let pixels = size.count() as usize;

        let clean = stimulus.render(width, height, channels);
        let signal_rms = (clean.iter().map(|v| v * v).sum::<f64>() / pixels.max(1) as f64).sqrt();

        let exposure = delay.analog_unit_time;
        let temperature_k = camj_tech::constants::DEFAULT_TEMPERATURE_K;
        let mut noisy = clean.clone();
        let mut stages = Vec::new();
        for (index, stage) in self.noise_chain().iter().enumerate() {
            let mut rng = functional::stage_rng(seed, index, &stage.unit);
            if !stage.sources.is_empty() {
                let terms: Vec<VarTerm> = stage
                    .sources
                    .iter()
                    .map(|s| match *s {
                        camj_analog::noise::NoiseSource::PhotonShot {
                            full_well_electrons,
                        } => VarTerm::Shot {
                            full_well_electrons,
                        },
                        _ => {
                            let rms = s.rms_fraction(0.0, exposure, temperature_k);
                            VarTerm::Constant(rms * rms)
                        }
                    })
                    .collect();
                for (value, reference) in noisy.iter_mut().zip(&clean) {
                    // Signal-dependent sources (photon shot) read the
                    // clean pixel value: deterministic, and unbiased by
                    // upstream noise realisations.
                    let var: f64 = terms
                        .iter()
                        .map(|term| match *term {
                            VarTerm::Shot {
                                full_well_electrons,
                            } => {
                                let rms = (*reference / full_well_electrons).sqrt();
                                rms * rms
                            }
                            VarTerm::Constant(var) => var,
                        })
                        .sum();
                    if var > 0.0 {
                        *value += functional::gaussian(&mut rng) * var.sqrt();
                    }
                    // The physical rails clip: charge saturates at the
                    // full well, swings at the supplies.
                    *value = value.clamp(0.0, 1.0);
                }
            }
            if let Some(bits) = stage.quant_bits {
                for value in &mut noisy {
                    *value = camj_digital::quantize::quantize(*value, bits);
                }
            }
            let noise_rms = rms_error(&noisy, &clean);
            stages.push(StageSim {
                unit: stage.unit.clone(),
                noise_rms,
                snr_db: functional::snr_db(signal_rms, noise_rms),
            });
        }

        let mut report = finish_frame_report(
            seed,
            &stimulus.to_string(),
            width,
            height,
            channels,
            stages,
            signal_rms,
            &noisy,
            &clean,
            FrameDigest::Pinned,
        );
        // The digital-DAG pass runs strictly after the analog report is
        // sealed, on the final frame — the analog digest stream is
        // untouched, so committed pre-DAG digests remain valid.
        report.dag = DagPlan::build(&self.algo, (width, height, channels), &clean)
            .map(|dag| dag.run(&noisy));
        Ok(report)
    }
}

/// One resolved variance term of a noise stage (see
/// [`ValidatedModel::frame_plan`]).
enum VarTerm {
    Shot { full_well_electrons: f64 },
    Constant(f64),
}

/// One stage of a frame plan: the unit name (cold path — report rows
/// only), its resolved variance terms, and the back-end quantization.
struct PlanStage {
    unit: String,
    /// `None` when the stage declares no sources (noise injection is
    /// skipped entirely, matching the scalar path).
    terms: Option<Vec<VarTerm>>,
    quant_bits: Option<u32>,
}

/// Everything about a frame simulation that is independent of the
/// seed. Plain shared data — seeds simulate concurrently against one
/// plan.
struct FramePlan {
    stimulus: String,
    width: u32,
    height: u32,
    channels: u32,
    clean: Vec<f64>,
    signal_rms: f64,
    stages: Vec<PlanStage>,
    /// The digital-DAG functional pass, resolved once per plan (clean
    /// reference tensors included); `None` when the algorithm has no
    /// non-input stages.
    dag: Option<DagPlan>,
}

/// Pixels processed per vectorized span: the variance and normal
/// scratch buffers stay L1-resident at this size.
const FRAME_CHUNK: usize = 1024;

impl FramePlan {
    /// Pushes one seeded noise realisation through the planned chain.
    ///
    /// The hot loops run per [`FRAME_CHUNK`] span: variance terms
    /// accumulate term-outer into a span buffer (preserving the scalar
    /// path's per-pixel summation order), Gaussians are block-filled
    /// for exactly the pixels with positive variance (preserving the
    /// scalar path's RNG consumption order), then applied and clamped
    /// in pixel order — so the frame is bit-identical to
    /// [`ValidatedModel::simulate_frame_reference`].
    fn simulate(&self, seed: u64) -> FrameSimReport {
        // One coarse span per frame; the chunked loops below are never
        // probed individually.
        let _span = obs_core::span("frame.simulate");
        obs_core::counter("frame.pixels", 0, self.clean.len() as u64);
        obs_core::counter(
            "frame.chunks",
            0,
            (self.clean.len().div_ceil(FRAME_CHUNK) * self.stages.len()) as u64,
        );
        let mut noisy = self.clean.clone();
        let mut var = [0.0_f64; FRAME_CHUNK];
        let mut normals = [0.0_f64; FRAME_CHUNK];
        let mut stages = Vec::with_capacity(self.stages.len());
        for (index, stage) in self.stages.iter().enumerate() {
            let mut rng = functional::stage_rng(seed, index, &stage.unit);
            if let Some(terms) = &stage.terms {
                for (noisy_span, clean_span) in noisy
                    .chunks_mut(FRAME_CHUNK)
                    .zip(self.clean.chunks(FRAME_CHUNK))
                {
                    let var = &mut var[..noisy_span.len()];
                    var.fill(0.0);
                    for term in terms {
                        match *term {
                            VarTerm::Shot {
                                full_well_electrons,
                            } => {
                                // Signal-dependent sources (photon
                                // shot) read the clean pixel value:
                                // deterministic, and unbiased by
                                // upstream noise realisations.
                                for (v, reference) in var.iter_mut().zip(clean_span) {
                                    let rms = (*reference / full_well_electrons).sqrt();
                                    *v += rms * rms;
                                }
                            }
                            VarTerm::Constant(c) => {
                                for v in var.iter_mut() {
                                    *v += c;
                                }
                            }
                        }
                    }
                    let draws = var.iter().filter(|v| **v > 0.0).count();
                    let normals = &mut normals[..draws];
                    rand::normal::fill_standard_normal(&mut rng, normals);
                    let mut next = 0;
                    for (value, v) in noisy_span.iter_mut().zip(var.iter()) {
                        if *v > 0.0 {
                            *value += normals[next] * v.sqrt();
                            next += 1;
                        }
                        // The physical rails clip: charge saturates at
                        // the full well, swings at the supplies.
                        *value = value.clamp(0.0, 1.0);
                    }
                }
            }
            if let Some(bits) = stage.quant_bits {
                camj_digital::quantize::quantize_slice(&mut noisy, bits);
            }
            let noise_rms = rms_error(&noisy, &self.clean);
            stages.push(StageSim {
                unit: stage.unit.clone(),
                noise_rms,
                snr_db: functional::snr_db(self.signal_rms, noise_rms),
            });
        }
        let mut report = finish_frame_report(
            seed,
            &self.stimulus,
            self.width,
            self.height,
            self.channels,
            stages,
            self.signal_rms,
            &noisy,
            &self.clean,
            FrameDigest::Pinned,
        );
        // DAG pass after the analog report is sealed: the committed
        // analog digest stream stays exactly as before.
        report.dag = self.dag.as_ref().map(|dag| dag.run(&noisy));
        report
    }

    /// Resolves every stage's per-pixel noise standard deviation. The
    /// variance is seed-independent, so a Monte-Carlo batch computes
    /// this once and shares it across all seeds — the per-seed loop
    /// then touches no variance term, no division, and no square root.
    /// Accumulation order matches [`Self::simulate`] exactly, so the
    /// stored `std` equals the bits `v.sqrt()` would produce there.
    fn noise_stds(&self) -> Vec<Option<Vec<f64>>> {
        self.stages
            .iter()
            .map(|stage| {
                let terms = stage.terms.as_ref()?;
                let mut std = vec![0.0_f64; self.clean.len()];
                for (std_span, clean_span) in std
                    .chunks_mut(FRAME_CHUNK)
                    .zip(self.clean.chunks(FRAME_CHUNK))
                {
                    for term in terms {
                        match *term {
                            VarTerm::Shot {
                                full_well_electrons,
                            } => {
                                for (v, reference) in std_span.iter_mut().zip(clean_span) {
                                    let rms = (*reference / full_well_electrons).sqrt();
                                    *v += rms * rms;
                                }
                            }
                            VarTerm::Constant(c) => {
                                for v in std_span.iter_mut() {
                                    *v += c;
                                }
                            }
                        }
                    }
                    for v in std_span.iter_mut() {
                        *v = if *v > 0.0 { v.sqrt() } else { 0.0 };
                    }
                }
                Some(std)
            })
            .collect()
    }

    /// The Monte-Carlo batch realisation: same planned chain, but noise
    /// is applied from the precomputed [`Self::noise_stds`] lanes and
    /// drawn with the ziggurat sampler
    /// ([`rand::normal::fill_standard_normal_fast`]) — exactly N(0, 1),
    /// deterministic for the seed, but a different stream than the
    /// single-seed path, whose Box–Muller draw order is pinned by the
    /// committed frame digests. Per-seed cost is a fraction of a scalar
    /// frame, which is what makes `mc_snr:<samples>` affordable inside
    /// a sweep.
    fn simulate_fast(&self, seed: u64, stds: &[Option<Vec<f64>>]) -> FrameSimReport {
        let _span = obs_core::span("frame.simulate");
        obs_core::counter("frame.pixels", 0, self.clean.len() as u64);
        obs_core::counter(
            "frame.chunks",
            0,
            (self.clean.len().div_ceil(FRAME_CHUNK) * self.stages.len()) as u64,
        );
        let mut noisy = self.clean.clone();
        let mut normals = [0.0_f64; FRAME_CHUNK];
        let mut stages = Vec::with_capacity(self.stages.len());
        let len = noisy.len().max(1) as f64;
        for (index, stage) in self.stages.iter().enumerate() {
            let mut rng = functional::stage_rng(seed, index, &stage.unit);
            // Squared error against the clean frame, accumulated by
            // whichever fused pass ran last (pixel order, so the value
            // matches what `rms_error` would measure).
            let mut sq = None;
            if let Some(std) = &stds[index] {
                let mut acc = 0.0;
                for ((noisy_span, std_span), clean_span) in noisy
                    .chunks_mut(FRAME_CHUNK)
                    .zip(std.chunks(FRAME_CHUNK))
                    .zip(self.clean.chunks(FRAME_CHUNK))
                {
                    // One draw per pixel, zero-std lanes included: the
                    // add of `n · 0.0` is exact, and the branch-free
                    // span keeps the loop superscalar. (Zero-std
                    // pixels are rare — they need a shot-only stage
                    // over black pixels.)
                    let normals = &mut normals[..noisy_span.len()];
                    rand::normal::fill_standard_normal_fast(&mut rng, normals);
                    for (((value, s), n), c) in noisy_span
                        .iter_mut()
                        .zip(std_span.iter())
                        .zip(normals.iter())
                        .zip(clean_span.iter())
                    {
                        *value = (*value + n * s).clamp(0.0, 1.0);
                        let d = *value - c;
                        acc += d * d;
                    }
                }
                sq = Some(acc);
            }
            if let Some(bits) = stage.quant_bits {
                sq = Some(camj_digital::quantize::quantize_slice_sq_err(
                    &mut noisy,
                    &self.clean,
                    bits,
                ));
            }
            let noise_rms =
                sq.map_or_else(|| rms_error(&noisy, &self.clean), |sq| (sq / len).sqrt());
            stages.push(StageSim {
                unit: stage.unit.clone(),
                noise_rms,
                snr_db: functional::snr_db(self.signal_rms, noise_rms),
            });
        }
        let mut report = finish_frame_report(
            seed,
            &self.stimulus,
            self.width,
            self.height,
            self.channels,
            stages,
            self.signal_rms,
            &noisy,
            &self.clean,
            FrameDigest::Bulk,
        );
        report.dag = self.dag.as_ref().map(|dag| dag.run(&noisy));
        report
    }
}

/// One functionally executable stage of a [`DagPlan`].
struct DagPlanStage {
    name: String,
    kind: StageKind,
    /// Producer tensor slots: `0` is the sensor frame, `i + 1` is plan
    /// stage `i`'s output. Edge order matches the DAG's edge list, so
    /// execution is deterministic.
    producers: Vec<usize>,
    in_shape: (u32, u32, u32),
    out_shape: (u32, u32, u32),
    bits: u32,
}

/// The resolved digital-DAG functional pass: every non-input stage of
/// the algorithm in topological order, plus the clean-frame reference
/// tensors the noisy pass is judged against.
///
/// Execution semantics per stage kind live in
/// [`camj_digital::functional`]; each stage output is requantized to
/// the stage's declared bit width (`camj_digital::quantize`), applied
/// identically to the clean reference run so the metrics isolate what
/// the *noise* cost the task. Everything here is pure slice
/// arithmetic in index order — a DAG pass is a deterministic function
/// of its input tensor alone, byte-identical across thread counts.
struct DagPlan {
    frame_shape: (u32, u32, u32),
    stages: Vec<DagPlanStage>,
    /// The judged output: index of the last stage in topological order.
    sink: usize,
    /// Per-stage clean-frame reference outputs.
    references: Vec<Vec<f64>>,
    /// RMS of each reference tensor (the signal level stage SNR is
    /// quoted against).
    reference_rms: Vec<f64>,
}

impl DagPlan {
    /// Resolves the plan and runs the clean reference pass. `None`
    /// when the algorithm has no non-input stages (nothing digital to
    /// execute).
    fn build(
        algo: &AlgorithmGraph,
        frame_shape: (u32, u32, u32),
        clean: &[f64],
    ) -> Option<DagPlan> {
        let topo = algo.topo_order().ok()?;
        let mut slot_of: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        let mut stages: Vec<DagPlanStage> = Vec::new();
        for name in topo {
            let stage = algo.stage(name).expect("topo-ordered stages exist");
            if matches!(stage.kind(), StageKind::Input) {
                slot_of.insert(name, 0);
                continue;
            }
            let producers = algo.producers_of(name).iter().map(|p| slot_of[p]).collect();
            slot_of.insert(name, stages.len() + 1);
            let (i, o) = (stage.input_size(), stage.output_size());
            stages.push(DagPlanStage {
                name: name.to_owned(),
                kind: stage.kind(),
                producers,
                in_shape: (i.width, i.height, i.channels),
                out_shape: (o.width, o.height, o.channels),
                bits: stage.bits(),
            });
        }
        if stages.is_empty() {
            return None;
        }
        let sink = stages.len() - 1;
        let mut plan = DagPlan {
            frame_shape,
            stages,
            sink,
            references: Vec::new(),
            reference_rms: Vec::new(),
        };
        let references = plan.execute(clean);
        plan.reference_rms = references
            .iter()
            .map(|t| (t.iter().map(|v| v * v).sum::<f64>() / t.len().max(1) as f64).sqrt())
            .collect();
        plan.references = references;
        Some(plan)
    }

    /// Pushes one source frame through every stage, returning the
    /// per-stage output tensors in plan order.
    fn execute(&self, source: &[f64]) -> Vec<Vec<f64>> {
        use camj_digital::functional::{box_stencil, elementwise_mean, resample_nearest};
        let mut outputs: Vec<Vec<f64>> = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            // Gather producer tensors, shape-adapting each to the
            // stage's declared input shape.
            let adapted: Vec<Vec<f64>> = stage
                .producers
                .iter()
                .map(|&slot| {
                    let (tensor, shape) = if slot == 0 {
                        (source, self.frame_shape)
                    } else {
                        (
                            outputs[slot - 1].as_slice(),
                            self.stages[slot - 1].out_shape,
                        )
                    };
                    resample_nearest(tensor, shape, stage.in_shape)
                })
                .collect();
            let operands: Vec<&[f64]> = adapted.iter().map(Vec::as_slice).collect();
            // Multiple producers (and temporal element-wise operands at
            // steady state) combine as their mean, which keeps the
            // signal in [0, 1].
            let combined = elementwise_mean(&operands);
            let mut out = match stage.kind {
                StageKind::Stencil { kernel, stride } => {
                    box_stencil(&combined, stage.in_shape, kernel, stride, stage.out_shape)
                }
                // Element-wise stages already combined above; DNN and
                // custom stages carry no declarative arithmetic, so
                // they act as shape adapters preserving signal content.
                StageKind::Input
                | StageKind::ElementWise { .. }
                | StageKind::Dnn { .. }
                | StageKind::Custom { .. } => {
                    resample_nearest(&combined, stage.in_shape, stage.out_shape)
                }
            };
            // Requantize at the stage's declared data resolution —
            // the same bit width the energy side prices.
            camj_digital::quantize::quantize_slice(&mut out, stage.bits);
            outputs.push(out);
        }
        outputs
    }

    /// Runs the noisy pass and measures every stage against its clean
    /// reference, judging the sink at the task level.
    fn run(&self, noisy: &[f64]) -> DagSim {
        let _span = obs_core::span("functional.dag");
        obs_core::counter("functional.stages", 0, self.stages.len() as u64);
        let outputs = self.execute(noisy);
        let stages: Vec<DagStageSim> = outputs
            .iter()
            .enumerate()
            .map(|(i, out)| {
                let error_rms = rms_error(out, &self.references[i]);
                DagStageSim {
                    stage: self.stages[i].name.clone(),
                    error_rms,
                    snr_db: functional::snr_db(self.reference_rms[i], error_rms),
                }
            })
            .collect();
        let sink_out = &outputs[self.sink];
        let (sw, sh, _) = self.stages[self.sink].out_shape;
        let metrics = TaskMetrics::measure(sink_out, &self.references[self.sink], sw, sh);
        let mut h = FpHasher::new();
        h.write_str("camj.dag-digest/v1");
        for span in sink_out.chunks(FRAME_CHUNK) {
            h.write_f64_slice_bulk(span);
        }
        let (hi, lo) = h.finish().parts();
        DagSim {
            stages,
            sink: self.stages[self.sink].name.clone(),
            metrics,
            digest: format!("{hi:016x}{lo:016x}"),
        }
    }
}

/// Digest flavour of a finished frame (see [`finish_frame_report`]).
enum FrameDigest {
    /// Per-value hashing under the committed `camj.frame-digest/v1`
    /// domain — the single-seed compatibility digest.
    Pinned,
    /// Word-at-a-time hashing under its own domain — ~6x cheaper, used
    /// by Monte-Carlo batch frames (which are not stream-compatible
    /// with the pinned path anyway).
    Bulk,
}

/// Shared tail of a frame simulation: output statistics and the
/// bit-pinning digest of the final frame.
#[allow(clippy::too_many_arguments)]
fn finish_frame_report(
    seed: u64,
    stimulus: &str,
    width: u32,
    height: u32,
    channels: u32,
    stages: Vec<StageSim>,
    signal_rms: f64,
    noisy: &[f64],
    clean: &[f64],
    digest: FrameDigest,
) -> FrameSimReport {
    // The last stage already measured the final frame against the
    // clean frame; recompute only when there was no stage at all.
    let noise_rms = stages
        .last()
        .map_or_else(|| rms_error(noisy, clean), |s| s.noise_rms);
    // Statistics fuse into the digest walk: the sum runs in the same
    // left-to-right order a plain `iter().sum()` would, so `mean` is
    // bit-identical to a separate-pass formulation, and the frame makes
    // one trip through memory instead of two.
    let mut sum = 0.0;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut h = FpHasher::new();
    match digest {
        FrameDigest::Pinned => {
            h.write_str("camj.frame-digest/v1");
            for v in noisy {
                sum += *v;
                min = min.min(*v);
                max = max.max(*v);
                h.write_f64(*v);
            }
        }
        FrameDigest::Bulk => {
            h.write_str("camj.frame-digest-mc/v1");
            // Chunked interleave: statistics and the word-at-a-time
            // hash visit each span while it is still L1-resident.
            // Hashing span-by-span yields the exact stream one whole-
            // slice call would.
            for span in noisy.chunks(FRAME_CHUNK) {
                for v in span {
                    sum += *v;
                    min = min.min(*v);
                    max = max.max(*v);
                }
                h.write_f64_slice_bulk(span);
            }
        }
    }
    let mean = sum / noisy.len().max(1) as f64;
    let (hi, lo) = h.finish().parts();
    FrameSimReport {
        seed,
        stimulus: stimulus.to_owned(),
        width,
        height,
        channels,
        stages,
        output: OutputStats {
            mean,
            min,
            max,
            noise_rms,
            snr_db: functional::snr_db(signal_rms, noise_rms),
        },
        digest: format!("{hi:016x}{lo:016x}"),
        dag: None,
    }
}

/// RMS deviation of `noisy` from `clean`, fraction of full scale.
fn rms_error(noisy: &[f64], clean: &[f64]) -> f64 {
    if noisy.is_empty() {
        return 0.0;
    }
    (noisy
        .iter()
        .zip(clean)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / noisy.len() as f64)
        .sqrt()
}
