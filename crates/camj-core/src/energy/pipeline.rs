//! The staged estimation pipeline.
//!
//! [`CamJ::estimate`](super::CamJ::estimate) used to be one monolithic
//! pass. It is now five explicit, independently-invokable stages over a
//! [`ValidatedModel`]:
//!
//! ```text
//! validate ─→ route ─→ simulate ─→ estimate_delay ─→ energy
//! (new)       (new)    (cached)     (per FPS)         (per FPS)
//! ```
//!
//! * **validate + route** run once, in [`ValidatedModel::new`]: the
//!   static checks (paper Sec. 3.2) and the physical routes are
//!   intrinsic to the design, not to the frame-rate target.
//! * **simulate** ([`ValidatedModel::simulate`]) runs the elastic
//!   cycle-level simulation that measures digital latency `T_D`. It is
//!   FPS-independent, so the result is memoised — re-estimating the
//!   same design at another frame rate (the common design-space-sweep
//!   axis) reuses it for free.
//! * **estimate_delay** ([`ValidatedModel::estimate_delay`]) solves the
//!   frame budget `N_A·T_A + T_D = 1/FPS` (Sec. 4.1).
//! * **energy** ([`ValidatedModel::energy_breakdown`]) books the three
//!   energy domains of Eq. 1 plus communication.
//!
//! [`ValidatedModel::estimate`] chains the stages into the classic
//! one-call flow (including the constant-rate-readout stall check);
//! [`ValidatedModel::estimate_at_fps`] re-runs only the FPS-dependent
//! tail. The `camj-explore` crate drives either entry point across
//! design grids in parallel.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use camj_digital::memory::MemoryStructure;
use camj_digital::sim::{NodeId, PipelineSimBuilder, SimError, SimReport, SourceMode};
use camj_tech::units::Time;

use crate::check;
use crate::delay::DelayEstimate;
use crate::error::CamjError;
use crate::hw::{DigitalUnitKind, HardwareDesc, UnitKind};
use crate::mapping::Mapping;
use crate::power_density::layer_powers;
use crate::route::{routes, Route};
use crate::sw::{AlgorithmGraph, Stage, StageKind};

use super::breakdown::{EnergyBreakdown, EnergyItem};
use super::category::EnergyCategory;
use super::model::EstimateReport;

/// Safety bound for the cycle-level simulation.
const MAX_SIM_CYCLES: u64 = 200_000_000;

/// The FPS-independent result of the **simulate** stage: the elastic
/// cycle-level simulation and the digital latency derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticSim {
    /// Simulation statistics (`None` for all-analog designs, which have
    /// nothing to simulate).
    pub report: Option<SimReport>,
    /// Digital latency `T_D` at the hardware's digital clock.
    pub digital_latency: Time,
}

/// Per-digital-stage simulation parameters.
struct StagePlan<'a> {
    stage: &'a Stage,
    firings: u64,
    out_rate: f64,
    pipeline_depth: u32,
    /// Physical buffer reads per fresh input pixel.
    reads_per_fresh: f64,
}

/// Memoised stall-check verdict, exploiting monotonicity in the
/// readout time: a pipeline that keeps pace with a readout of `T_A`
/// seconds per stage also keeps pace with any slower readout. Sweeping
/// the frame-rate axis therefore needs one stall simulation at its
/// fastest passing point instead of one per point. Only passes are
/// cached: failures re-simulate so each failing point reports a
/// diagnosis exact for its own readout.
#[derive(Debug, Clone, Default)]
struct StallCache {
    /// Fastest (smallest) per-stage readout time known to pass.
    pass_min: Option<f64>,
}

/// A design that has passed the **validate** and **route** stages, with
/// the routes and (lazily) the elastic simulation cached for reuse.
///
/// The cache is what makes sweeps cheap: clones made through
/// [`ValidatedModel::with_fps`] share the already-resolved routes and
/// simulation instead of re-deriving them, and
/// [`ValidatedModel::estimate_at_fps`] re-runs only the FPS-dependent
/// stages on a single instance.
#[derive(Debug)]
pub struct ValidatedModel {
    algo: AlgorithmGraph,
    hw: HardwareDesc,
    mapping: Mapping,
    fps: f64,
    routes: Vec<Route>,
    elastic: OnceLock<Result<ElasticSim, CamjError>>,
    stall: Mutex<StallCache>,
}

impl Clone for ValidatedModel {
    fn clone(&self) -> Self {
        Self {
            algo: self.algo.clone(),
            hw: self.hw.clone(),
            mapping: self.mapping.clone(),
            fps: self.fps,
            routes: self.routes.clone(),
            elastic: self.elastic.clone(),
            stall: Mutex::new(self.stall.lock().expect("stall cache lock").clone()),
        }
    }
}

impl ValidatedModel {
    /// The **validate** and **route** stages: runs all static checks
    /// (paper Sec. 3.2) and resolves every physical route.
    ///
    /// # Errors
    ///
    /// Returns the first failed check as a [`CamjError`].
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    pub fn new(
        algo: AlgorithmGraph,
        hw: HardwareDesc,
        mapping: Mapping,
        fps: f64,
    ) -> Result<Self, CamjError> {
        assert!(
            fps.is_finite() && fps > 0.0,
            "FPS must be positive, got {fps}"
        );
        check::validate(&algo, &hw, &mapping)?;
        let routes = routes(&algo, &hw, &mapping)?;
        Ok(Self {
            algo,
            hw,
            mapping,
            fps,
            routes,
            elastic: OnceLock::new(),
            stall: Mutex::new(StallCache::default()),
        })
    }

    /// The algorithm description.
    #[must_use]
    pub fn algorithm(&self) -> &AlgorithmGraph {
        &self.algo
    }

    /// The hardware description.
    #[must_use]
    pub fn hardware(&self) -> &HardwareDesc {
        &self.hw
    }

    /// The stage-to-unit mapping.
    #[must_use]
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The target frame rate.
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// The resolved physical routes (the **route** stage's artifact).
    #[must_use]
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// A copy of this model targeting a different frame rate, sharing
    /// the cached routes and elastic simulation. Checks do not re-run:
    /// FPS feasibility is established by the delay/stall stages, not by
    /// the static checks.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    #[must_use]
    pub fn with_fps(&self, fps: f64) -> Self {
        assert!(
            fps.is_finite() && fps > 0.0,
            "FPS must be positive, got {fps}"
        );
        let mut clone = self.clone();
        clone.fps = fps;
        clone
    }

    /// The **simulate** stage: the elastic cycle-level simulation
    /// measuring digital latency `T_D` (Sec. 4.1). FPS-independent and
    /// memoised — repeated calls (and calls on [`Self::with_fps`]
    /// clones made *after* the first call) return the cached artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CamjError::Sim`] when the simulation fails.
    pub fn simulate(&self) -> Result<&ElasticSim, CamjError> {
        self.elastic
            .get_or_init(|| self.run_elastic())
            .as_ref()
            .map_err(Clone::clone)
    }

    fn run_elastic(&self) -> Result<ElasticSim, CamjError> {
        let plans = self.stage_plans();
        if plans.is_empty() {
            return Ok(ElasticSim {
                report: None,
                digital_latency: Time::ZERO,
            });
        }
        let sim = self.build_sim(&plans, None)?;
        let report = sim.run(MAX_SIM_CYCLES)?;
        let digital_latency = report.digital_latency(self.hw.digital_clock_hz());
        Ok(ElasticSim {
            report: Some(report),
            digital_latency,
        })
    }

    /// The **estimate_delay** stage at this model's frame rate.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; returns
    /// [`CamjError::FrameRateInfeasible`] when `T_D` exceeds the frame
    /// budget.
    pub fn estimate_delay(&self) -> Result<DelayEstimate, CamjError> {
        self.estimate_delay_at(self.fps)
    }

    /// The **estimate_delay** stage at an explicit frame rate.
    ///
    /// # Errors
    ///
    /// See [`Self::estimate_delay`].
    pub fn estimate_delay_at(&self, fps: f64) -> Result<DelayEstimate, CamjError> {
        let t_d = self.simulate()?.digital_latency;
        DelayEstimate::solve(fps, t_d, self.analog_stage_count())
    }

    /// The stall check (Sec. 4.1): re-simulates with the source pinned
    /// to the constant readout rate the delay estimate implies.
    ///
    /// Passing verdicts are memoised by readout time (stall freedom is
    /// monotone in it: a slower readout only relaxes the source rate),
    /// so a frame-rate sweep pays for one stall simulation at its
    /// fastest passing point plus one per failing point. Failures are
    /// never answered from cache — each re-simulates so the overflow
    /// diagnosis is exact for that readout and results stay identical
    /// across serial and parallel sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`CamjError::StallDetected`] when the digital pipeline
    /// cannot keep pace with the pixel readout.
    pub fn check_stall(&self, delay: &DelayEstimate) -> Result<(), CamjError> {
        let t_a = delay.analog_unit_time.secs();
        if self
            .stall
            .lock()
            .expect("stall cache lock")
            .pass_min
            .is_some_and(|pass| t_a >= pass)
        {
            return Ok(());
        }
        self.check_stall_with(&self.stage_plans(), delay)
    }

    fn check_stall_with(
        &self,
        plans: &[StagePlan<'_>],
        delay: &DelayEstimate,
    ) -> Result<(), CamjError> {
        if plans.is_empty() {
            return Ok(());
        }
        let t_a = delay.analog_unit_time.secs();
        let readout = delay.analog_unit_time;
        let sim = self.build_sim(plans, Some(readout))?;
        let budget =
            (delay.frame_time.secs() * self.hw.digital_clock_hz() * 2.0) as u64 + 1_000_000;
        match sim.run(budget.min(MAX_SIM_CYCLES)) {
            Ok(_) => {
                let mut cache = self.stall.lock().expect("stall cache lock");
                cache.pass_min = Some(cache.pass_min.map_or(t_a, |p| p.min(t_a)));
                Ok(())
            }
            Err(e @ SimError::SourceOverflow { .. }) => Err(CamjError::StallDetected { cause: e }),
            Err(e) => Err(e.into()),
        }
    }

    /// The **energy** stage: books all component energies (Eq. 1's
    /// three domains plus communication) for a solved delay split.
    #[must_use]
    pub fn energy_breakdown(
        &self,
        sim: Option<&SimReport>,
        delay: &DelayEstimate,
    ) -> EnergyBreakdown {
        self.energy_breakdown_with(&self.stage_plans(), sim, delay)
    }

    fn energy_breakdown_with(
        &self,
        plans: &[StagePlan<'_>],
        sim: Option<&SimReport>,
        delay: &DelayEstimate,
    ) -> EnergyBreakdown {
        let mut breakdown = EnergyBreakdown::new();
        self.analog_energy(delay, &mut breakdown);
        self.digital_compute_energy(plans, sim, &mut breakdown);
        self.digital_memory_energy(plans, sim, delay, &mut breakdown);
        self.communication_energy(&mut breakdown);
        breakdown
    }

    /// Runs the full staged flow at this model's frame rate.
    ///
    /// # Errors
    ///
    /// See [`super::CamJ::estimate`].
    pub fn estimate(&self) -> Result<EstimateReport, CamjError> {
        self.estimate_at_fps(self.fps)
    }

    /// Runs the FPS-dependent stages (delay → stall check → energy) at
    /// an explicit frame rate, reusing the cached routes and elastic
    /// simulation. This is the sweep fast path: across N frame-rate
    /// targets the checks, routing, and latency simulation run once
    /// instead of N times.
    ///
    /// # Errors
    ///
    /// See [`super::CamJ::estimate`].
    pub fn estimate_at_fps(&self, fps: f64) -> Result<EstimateReport, CamjError> {
        let elastic = self.simulate()?;
        let delay = DelayEstimate::solve(fps, elastic.digital_latency, self.analog_stage_count())?;
        // Plans serve both the stall check and the energy passes; build
        // them once (and only after the cheap feasibility solve above).
        let t_a = delay.analog_unit_time.secs();
        let stall_settled = self
            .stall
            .lock()
            .expect("stall cache lock")
            .pass_min
            .is_some_and(|pass| t_a >= pass);
        let plans = self.stage_plans();
        if !stall_settled {
            self.check_stall_with(&plans, &delay)?;
        }
        let breakdown = self.energy_breakdown_with(&plans, elastic.report.as_ref(), &delay);
        let layers = layer_powers(&breakdown, &self.hw, delay.frame_time);
        let input_pixels = self
            .algo
            .stages()
            .iter()
            .filter(|s| matches!(s.kind(), StageKind::Input))
            .map(|s| s.output_size().count())
            .sum();
        Ok(EstimateReport {
            breakdown,
            delay,
            sim: elastic.report.clone(),
            layers,
            input_pixels,
        })
    }

    /// Builds per-digital-stage simulation parameters.
    fn stage_plans(&self) -> Vec<StagePlan<'_>> {
        let mut plans = Vec::new();
        for stage in self.algo.stages() {
            let Some(unit_name) = self.mapping.unit_for(stage.name()) else {
                continue;
            };
            let Some(unit) = self.hw.digital(unit_name) else {
                continue;
            };
            let outputs = stage.output_size().count();
            let fresh_total: f64 = self
                .algo
                .producers_of(stage.name())
                .iter()
                .map(|p| {
                    self.algo
                        .stage(p)
                        .expect("producer exists")
                        .output_size()
                        .count() as f64
                })
                .sum();
            let (firings, out_rate, depth, reads_total) = match unit.kind() {
                DigitalUnitKind::Pipelined(cu) => {
                    // The unit fires until BOTH its output quota and its
                    // input stream are through — a reducing stage (many
                    // inputs per output) is input-throughput-limited.
                    let out_limited = outputs.div_ceil(cu.output_pixels_per_cycle());
                    let in_limited =
                        (fresh_total / cu.input_pixels_per_cycle() as f64).ceil() as u64;
                    let firings = out_limited.max(in_limited).max(1);
                    let reads = stage.reads_per_output() * outputs as f64;
                    (
                        firings,
                        outputs as f64 / firings as f64,
                        cu.num_stages(),
                        reads,
                    )
                }
                DigitalUnitKind::Systolic(sa) => {
                    let (macs, weights) = match stage.kind() {
                        StageKind::Dnn { macs, weights } => (macs, weights),
                        _ => (stage.ops_per_frame(), 0),
                    };
                    let firings = sa.cycles_for_macs(macs).max(1);
                    // Tiled weight-stationary dataflow with on-array
                    // register reuse: each activation and each weight is
                    // fetched from SRAM a small constant number of times
                    // across tiles (2 on average), not once per MAC.
                    const SRAM_FETCH_PASSES: f64 = 2.0;
                    let reads = SRAM_FETCH_PASSES * (fresh_total + weights as f64);
                    (firings, outputs as f64 / firings as f64, sa.rows(), reads)
                }
            };
            let reads_per_fresh = if fresh_total > 0.0 {
                reads_total / fresh_total
            } else {
                0.0
            };
            plans.push(StagePlan {
                stage,
                firings,
                out_rate,
                pipeline_depth: depth,
                reads_per_fresh,
            });
        }
        plans
    }

    /// Builds the pipeline simulation. `readout_time` selects the source
    /// mode: `None` ⇒ elastic (latency measurement), `Some(T_A)` ⇒
    /// continuous at the physical readout rate (stall check).
    fn build_sim(
        &self,
        plans: &[StagePlan<'_>],
        readout_time: Option<Time>,
    ) -> Result<camj_digital::sim::PipelineSim, CamjError> {
        let mut b = PipelineSimBuilder::new();
        let mut nodes: BTreeMap<&str, NodeId> = BTreeMap::new();
        for plan in plans {
            let id = b.add_stage(plan.stage.name(), plan.pipeline_depth);
            nodes.insert(plan.stage.name(), id);
        }
        for plan in plans {
            let consumer = nodes[plan.stage.name()];
            for producer_name in self.algo.producers_of(plan.stage.name()) {
                let producer_stage = self.algo.stage(producer_name).expect("producer exists");
                let edge_pixels = producer_stage.output_size().count() as f64;
                let fresh_rate = (edge_pixels / plan.firings as f64).max(f64::MIN_POSITIVE);
                let buffer = self.buffer_between(producer_name, plan.stage.name());
                let (from, producer_rate) = match nodes.get(producer_name) {
                    Some(&id) => {
                        let producer_plan = plans
                            .iter()
                            .find(|p| p.stage.name() == producer_name)
                            .expect("digital producer has a plan");
                        (id, producer_plan.out_rate)
                    }
                    None => {
                        // Analog producer: a readout source.
                        let (mode, rate) = match readout_time {
                            None => (SourceMode::Elastic, fresh_rate),
                            Some(t_a) => {
                                let cycles = t_a.secs() * self.hw.digital_clock_hz();
                                (SourceMode::Continuous, edge_pixels / cycles.max(1.0))
                            }
                        };
                        let id = b.add_source(format!("src:{producer_name}"), mode);
                        (id, rate)
                    }
                };
                b.connect_with_reuse(
                    from,
                    consumer,
                    &buffer,
                    producer_rate,
                    fresh_rate,
                    edge_pixels,
                    plan.reads_per_fresh,
                );
            }
        }
        b.build().map_err(CamjError::from)
    }

    /// The physical buffer a consumer reads its input from: the last
    /// memory on the route, or a synthetic free wire when the units are
    /// directly connected (or fused on one unit).
    fn buffer_between(&self, producer: &str, consumer: &str) -> MemoryStructure {
        let route = self
            .routes
            .iter()
            .find(|r| r.from_stage == producer && r.to_stage.as_deref() == Some(consumer));
        if let Some(route) = route {
            let mem = route
                .intermediates()
                .iter()
                .rev()
                .find(|hop| self.hw.kind_of(hop) == Some(UnitKind::Memory));
            if let Some(name) = mem {
                return self
                    .hw
                    .memory(name)
                    .expect("kind said memory")
                    .structure()
                    .clone();
            }
        }
        // Fused or directly-wired: a generous free conduit.
        MemoryStructure::fifo(format!("wire:{producer}->{consumer}"), 1 << 20)
            .with_pixels_per_word(64)
            .with_ports(64, 64)
    }

    /// Analog pipeline stage count `N_A`, including exposure.
    fn analog_stage_count(&self) -> usize {
        let mut units: Vec<String> = Vec::new();
        let mapped = self
            .mapping
            .iter()
            .filter(|(stage, _)| self.algo.stage(stage).is_some())
            .map(|(_, unit)| unit);
        let routed = self
            .routes
            .iter()
            .flat_map(|r| r.path.iter().map(String::as_str));
        for name in mapped.chain(routed) {
            if self.hw.analog(name).is_some() && !units.iter().any(|u| u == name) {
                units.push(name.to_owned());
            }
        }
        units.len() + 1 // + exposure
    }

    /// Analog energy (Sec. 4.2, Eq. 2–3): access counts from the mapping
    /// and routing, per-access energy from the component models under the
    /// inferred delay budget.
    fn analog_energy(&self, delay: &DelayEstimate, breakdown: &mut EnergyBreakdown) {
        let mut accesses: BTreeMap<String, f64> = BTreeMap::new();
        let mut attribution: BTreeMap<String, String> = BTreeMap::new();

        // Mapped stages: the exit stage of each fused group drives the
        // unit's access count.
        for unit in self.hw.analog_units() {
            for stage_name in self.mapping.stages_on(unit.name()) {
                let Some(stage) = self.algo.stage(stage_name) else {
                    continue;
                };
                let consumers = self.algo.consumers_of(stage_name);
                let is_exit = consumers.is_empty()
                    || consumers
                        .iter()
                        .any(|c| self.mapping.unit_for(c) != Some(unit.name()));
                if is_exit {
                    *accesses.entry(unit.name().to_owned()).or_default() +=
                        stage.output_size().count() as f64 * unit.ops_per_stage_output();
                    attribution.insert(unit.name().to_owned(), stage_name.to_owned());
                }
            }
        }

        // Pass-through units on routes: ADC arrays convert every pixel;
        // analog buffers additionally serve the consumer's reads.
        for route in &self.routes {
            let inter = route.intermediates();
            for (i, hop) in inter.iter().enumerate() {
                if self.hw.analog(hop).is_none() {
                    continue;
                }
                *accesses.entry(hop.clone()).or_default() += route.pixels as f64;
                let is_last = i + 1 == inter.len();
                if is_last {
                    if let Some(to_stage) = &route.to_stage {
                        let consumer_unit = self.mapping.unit_for(to_stage);
                        let consumer_is_analog =
                            consumer_unit.is_some_and(|u| self.hw.analog(u).is_some());
                        if consumer_is_analog {
                            let cons = self.algo.stage(to_stage).expect("stage exists");
                            *accesses.entry(hop.clone()).or_default() +=
                                cons.reads_per_output() * cons.output_size().count() as f64;
                        }
                    }
                }
                attribution
                    .entry(hop.clone())
                    .or_insert_with(|| route.from_stage.clone());
            }
        }

        for unit in self.hw.analog_units() {
            let Some(&n) = accesses.get(unit.name()) else {
                continue;
            };
            if n <= 0.0 {
                continue;
            }
            // Eq. 3: accesses spread uniformly over the AFA's components;
            // each component gets T_A / (n / count) per access.
            let per_component = n / unit.array().component_count() as f64;
            let per_access_delay = delay.analog_unit_time / per_component.max(1.0);
            let energy = unit.array().component().energy_per_access(per_access_delay) * n;
            breakdown.push(EnergyItem {
                unit: unit.name().to_owned(),
                stage: attribution.get(unit.name()).cloned(),
                category: match unit.category() {
                    crate::hw::AnalogCategory::Sensing => EnergyCategory::Sensing,
                    crate::hw::AnalogCategory::Compute => EnergyCategory::AnalogCompute,
                    crate::hw::AnalogCategory::Memory => EnergyCategory::AnalogMemory,
                },
                layer: unit.layer(),
                energy,
            });
        }
    }

    /// Digital compute energy (Eq. 15): per-cycle energy × simulated
    /// cycles for pipelined units, per-MAC energy × MACs for systolic
    /// arrays.
    fn digital_compute_energy(
        &self,
        plans: &[StagePlan<'_>],
        sim: Option<&SimReport>,
        breakdown: &mut EnergyBreakdown,
    ) {
        for plan in plans {
            let unit_name = self
                .mapping
                .unit_for(plan.stage.name())
                .expect("planned stages are mapped");
            let unit = self
                .hw
                .digital(unit_name)
                .expect("planned units are digital");
            let energy = match unit.kind() {
                DigitalUnitKind::Pipelined(cu) => {
                    let cycles = sim
                        .and_then(|r| r.stage(plan.stage.name()))
                        .map_or(plan.firings, |s| s.active_cycles);
                    cu.energy_per_cycle() * cycles as f64
                }
                DigitalUnitKind::Systolic(sa) => {
                    let macs = match plan.stage.kind() {
                        StageKind::Dnn { macs, .. } => macs,
                        _ => plan.stage.ops_per_frame(),
                    };
                    sa.energy_for_macs(macs)
                }
            };
            breakdown.push(EnergyItem {
                unit: unit_name.to_owned(),
                stage: Some(plan.stage.name().to_owned()),
                category: EnergyCategory::DigitalCompute,
                layer: unit.layer(),
                energy,
            });
        }
    }

    /// Digital memory energy (Eq. 16): dynamic traffic from the
    /// simulation plus DNN weight loading, and leakage over the powered
    /// fraction of the frame.
    fn digital_memory_energy(
        &self,
        plans: &[StagePlan<'_>],
        sim: Option<&SimReport>,
        delay: &DelayEstimate,
        breakdown: &mut EnergyBreakdown,
    ) {
        // Aggregate traffic per physical memory name.
        let mut traffic: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        if let Some(report) = sim {
            for buf in &report.buffers {
                let slot = traffic.entry(buf.name.clone()).or_default();
                slot.0 += buf.pixels_read;
                slot.1 += buf.pixels_written;
            }
        }
        // DNN weights are loaded into the stage's input buffer once per
        // frame (weight-stationary reuse across the frame's tiles).
        for plan in plans {
            if let StageKind::Dnn { weights, .. } = plan.stage.kind() {
                for producer in self.algo.producers_of(plan.stage.name()) {
                    let buffer = self.buffer_between(producer, plan.stage.name());
                    if self.hw.memory(buffer.name()).is_some() {
                        traffic.entry(buffer.name().to_owned()).or_default().1 += weights as f64;
                    }
                }
            }
        }

        for mem in self.hw.memories() {
            let (reads, writes) = traffic.get(mem.name()).copied().unwrap_or((0.0, 0.0));
            let s = mem.structure();
            let dynamic = s.dynamic_energy(reads, writes);
            let leakage = s.leakage() * delay.frame_time * s.active_fraction();
            let energy = dynamic + leakage;
            if energy.joules() == 0.0 {
                continue;
            }
            let stage = self
                .routes
                .iter()
                .find(|r| r.intermediates().iter().any(|h| h == mem.name()))
                .and_then(|r| r.to_stage.clone());
            breakdown.push(EnergyItem {
                unit: mem.name().to_owned(),
                stage,
                category: EnergyCategory::DigitalMemory,
                layer: mem.layer(),
                energy,
            });
        }
    }

    /// Communication energy (Eq. 17): bytes crossing layer boundaries pay
    /// the boundary's interface energy; results exiting the package pay
    /// MIPI.
    fn communication_energy(&self, breakdown: &mut EnergyBreakdown) {
        use camj_tech::interface::Interface;
        for route in &self.routes {
            let mut hops: Vec<(&str, crate::hw::Layer)> = route
                .path
                .iter()
                .map(|h| (h.as_str(), self.hw.layer_of(h).expect("path units exist")))
                .collect();
            if route.is_host_exit() {
                hops.push(("<host>", crate::hw::Layer::OffChip));
            }
            for pair in hops.windows(2) {
                let (from, from_layer) = pair[0];
                let (_, to_layer) = pair[1];
                let Some(iface) = from_layer.interface_to(to_layer) else {
                    continue;
                };
                let category = match iface {
                    Interface::MicroTsv => EnergyCategory::MicroTsv,
                    // Custom interfaces are booked as package-exit links.
                    Interface::MipiCsi2 | Interface::Custom { .. } => EnergyCategory::Mipi,
                };
                breakdown.push(EnergyItem {
                    unit: format!("{}:{}", category.label(), from),
                    stage: Some(route.from_stage.clone()),
                    category,
                    layer: from_layer,
                    energy: iface.transfer_energy(route.bytes),
                });
            }
        }
    }
}
