//! The cross-point estimate cache: a sharded concurrent map from input
//! [`Fingerprint`]s to computed artifacts.
//!
//! One cache is shared by every design point of a sweep (and by every
//! worker thread of a parallel sweep). Three artifact families live in
//! it, all keyed content-addressed — by a hash of *everything the
//! computation reads* — so a hit is guaranteed to replay a bit-identical
//! result:
//!
//! * **elastic simulations** ([`ElasticSim`]): the expensive cycle-level
//!   digital simulation, keyed by the dataflow topology (stages, rates,
//!   buffer geometry, clock) and *not* by energy parameters — so points
//!   differing only in technology node, bit width, or memory energy
//!   share one simulation,
//! * **energy kernel outputs** (`Vec<EnergyItem>`): the per-domain
//!   energy bookings of [`super::EnergyKernel`]s, keyed by component
//!   parameters + inferred access counts + the delay budget,
//! * **stall verdicts**: the fastest per-stage readout time known to
//!   pass the constant-rate stall check for a given topology — stall
//!   freedom is monotone in the readout time, so one cached pass settles
//!   every slower point. Failures are never cached: each failing point
//!   re-simulates so its overflow diagnosis stays exact.
//!
//! Locking: the map is split into [`SHARD_COUNT`] mutex-guarded shards
//! selected by the fingerprint's low half, and the shard lock is held
//! only for map bookkeeping — never across a computation. A missing
//! entry is claimed by inserting a per-entry **in-flight slot**
//! (an `Arc<OnceLock>`); the expensive computation then runs inside
//! `OnceLock::get_or_init` *outside* the shard critical section.
//! Duplicate requests for the same fingerprint still run the
//! computation exactly once (late arrivals block on the slot, not the
//! shard), while distinct fingerprints that merely hash to the same
//! shard proceed concurrently instead of convoying behind each other's
//! simulations.
//!
//! Panic safety: sweep drivers catch per-point panics
//! (`camj-explore`'s explorer wraps every evaluation in
//! `catch_unwind`), so the cache must survive a computation that
//! unwinds mid-flight. Two properties guarantee that:
//!
//! * a panic inside `get_or_init` leaves the slot **uninitialized**
//!   (std's `OnceLock` is unwind-safe by design), so the next request
//!   for the same fingerprint simply recomputes, and
//! * every `Mutex` acquisition recovers from poisoning via
//!   [`PoisonError::into_inner`] — safe here because shard maps are
//!   only ever mutated by whole-entry inserts and the scalar
//!   stall-pass minimum, both of which leave the map consistent even
//!   if the panicking thread died between them. A captured panic at
//!   one design point therefore can never manufacture a fake
//!   `"cache shard lock"` panic at a healthy neighbouring point (or in
//!   the final [`EstimateCache::stats`] call a CLI prints).

//!
//! Persistence: a cache can be backed by a [`PersistentTier`] — a
//! content-addressed byte store (typically `camj-serve`'s on-disk
//! tier) consulted on an in-memory miss and written through on every
//! compute. Only the **energy** and **stall** families persist: their
//! artifacts round-trip exactly (energy items through the
//! shortest-round-trip JSON codec, stall minima as raw `f64` bits), so
//! a tier-warmed cache replays byte-identical estimates. Elastic
//! simulations stay memory-only — post-arena they cost well under a
//! millisecond to recompute, less than a disk round-trip is worth.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use camj_tech::fingerprint::Fingerprint;

use crate::error::CamjError;
use crate::functional::TaskMetrics;

use super::breakdown::EnergyItem;
use super::pipeline::ElasticSim;

/// Number of independent shards; a power of two keeps selection cheap.
pub const SHARD_COUNT: usize = 64;

/// A persistent content-addressed storage tier behind the in-memory
/// cache: a byte store keyed by `(family, fingerprint)`.
///
/// The cache consults the tier on an in-memory miss (`load`) and
/// writes every freshly computed artifact through (`store`), so warm
/// starts survive process restarts. Implementations own durability and
/// integrity: `load` must return `None` for entries it cannot prove
/// intact (truncated, corrupted, or written by an incompatible
/// version) — the cache then recomputes and re-`store`s, restoring the
/// entry. Both calls may run concurrently from many threads.
///
/// The payload encodings are the cache's business, not the tier's:
/// energy items travel as compact JSON (the workspace codec prints
/// floats shortest-round-trip, so `f64`s survive exactly) and stall
/// minima as 8 raw little-endian `f64` bits. A tier never needs to
/// understand them.
pub trait PersistentTier: Send + Sync + std::fmt::Debug {
    /// The payload stored for `(family, fp)`, or `None` when absent or
    /// not provably intact.
    fn load(&self, family: &'static str, fp: Fingerprint) -> Option<Vec<u8>>;
    /// Write-through store of `(family, fp) → payload`. Failures must
    /// be swallowed (a broken disk degrades to a smaller cache, never
    /// to a broken estimate).
    fn store(&self, family: &'static str, fp: Fingerprint, payload: &[u8]);
}

/// Tier family names (also the `key` of the `cache.tier.*` counters:
/// the family's index in this list).
const TIER_FAMILIES: [&str; 2] = ["energy", "stall"];

/// The `cache.tier.*` counter key for a family name.
fn tier_key(family: &'static str) -> u64 {
    TIER_FAMILIES.iter().position(|f| *f == family).unwrap_or(0) as u64
}

/// A point-in-time snapshot of cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then stored the result).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate resident payload size in bytes.
    pub bytes: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; zero for an unused cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} entries, ~{} KiB)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.bytes / 1024
        )
    }
}

/// An in-flight-or-completed artifact slot. The slot is inserted into
/// the shard map *before* the computation runs; the value materialises
/// via `OnceLock::get_or_init` outside the shard lock.
type Slot<T> = Arc<OnceLock<T>>;

/// `obs_core` counter names for one artifact family, all keyed by the
/// fingerprint's shard index so a trace shows per-shard pressure.
/// `lookup` and `miss` are deterministic for a deterministic workload
/// (one miss per unique fingerprint — the slot creator); whether a
/// concurrent duplicate request lands as `wait` (blocked on the
/// in-flight slot) or `hit` (arrived after completion) is a race, and
/// `camj-obs` excludes those from its determinism digest.
struct FamilyCounters {
    lookup: &'static str,
    hit: &'static str,
    miss: &'static str,
    wait: &'static str,
}

const ELASTIC_COUNTERS: FamilyCounters = FamilyCounters {
    lookup: "cache.elastic.lookup",
    hit: "cache.elastic.hit",
    miss: "cache.elastic.miss",
    wait: "cache.elastic.wait",
};

const ENERGY_COUNTERS: FamilyCounters = FamilyCounters {
    lookup: "cache.energy.lookup",
    hit: "cache.energy.hit",
    miss: "cache.energy.miss",
    wait: "cache.energy.wait",
};

const FUNCTIONAL_COUNTERS: FamilyCounters = FamilyCounters {
    lookup: "cache.functional.lookup",
    hit: "cache.functional.hit",
    miss: "cache.functional.miss",
    wait: "cache.functional.wait",
};

/// One stored artifact.
#[derive(Debug, Clone)]
enum CacheEntry {
    Elastic(Slot<Arc<Result<ElasticSim, CamjError>>>),
    Energy(Slot<Arc<Vec<EnergyItem>>>),
    /// Task-accuracy metrics of one functional frame simulation, keyed
    /// by the functional fingerprint (noise chain + stimulus content +
    /// DAG structure + seeds). Memory-only, like the elastic family.
    Functional(Slot<Arc<Result<TaskMetrics, CamjError>>>),
    /// Fastest per-stage readout time (seconds) known to pass the stall
    /// check for this topology.
    StallPass(f64),
}

impl CacheEntry {
    /// Whether the entry holds a materialised value (an in-flight slot
    /// whose computation has not finished — or panicked — does not).
    fn is_resident(&self) -> bool {
        match self {
            CacheEntry::Elastic(slot) => slot.get().is_some(),
            CacheEntry::Energy(slot) => slot.get().is_some(),
            CacheEntry::Functional(slot) => slot.get().is_some(),
            CacheEntry::StallPass(_) => true,
        }
    }
}

/// Locks a shard, recovering from poisoning: entries are inserted
/// whole (never mutated in place mid-compute except the scalar stall
/// minimum), so the map is consistent even after a panicking holder.
fn lock_shard(
    shard: &Mutex<HashMap<Fingerprint, CacheEntry>>,
) -> MutexGuard<'_, HashMap<Fingerprint, CacheEntry>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The sharded cross-point cache. Cheap to share: wrap it in an [`Arc`]
/// and hand clones to every model / worker of a sweep.
#[derive(Debug)]
pub struct EstimateCache {
    shards: Vec<Mutex<HashMap<Fingerprint, CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
    /// Optional persistent tier; set once (at construction or via
    /// [`Self::attach_tier`]) and never replaced, so lookups need no
    /// lock.
    tier: OnceLock<Arc<dyn PersistentTier>>,
}

impl Default for EstimateCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EstimateCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            tier: OnceLock::new(),
        }
    }

    /// An empty cache behind an [`Arc`], ready to thread through a sweep.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// An empty cache backed by a persistent tier: in-memory misses of
    /// the energy and stall families consult `tier` before computing,
    /// and every computed artifact is written through.
    #[must_use]
    pub fn shared_with_tier(tier: Arc<dyn PersistentTier>) -> Arc<Self> {
        let cache = Self::new();
        let _ = cache.tier.set(tier);
        Arc::new(cache)
    }

    /// Attaches a persistent tier to a tier-less cache. The first tier
    /// wins; returns `false` (and changes nothing) if one was already
    /// attached.
    pub fn attach_tier(&self, tier: Arc<dyn PersistentTier>) -> bool {
        self.tier.set(tier).is_ok()
    }

    fn tier(&self) -> Option<&Arc<dyn PersistentTier>> {
        self.tier.get()
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<HashMap<Fingerprint, CacheEntry>> {
        &self.shards[fp.shard(SHARD_COUNT)]
    }

    /// The elastic simulation for topology `fp`, computing (and storing)
    /// it on first request. Concurrent requests for the same topology
    /// run `compute` exactly once (late arrivals block on the entry's
    /// slot); requests for *different* topologies never wait on each
    /// other, even when they share a shard.
    pub fn elastic_or(
        &self,
        fp: Fingerprint,
        compute: impl FnOnce() -> Result<ElasticSim, CamjError>,
    ) -> Arc<Result<ElasticSim, CamjError>> {
        self.slot_or_compute(
            fp,
            |entry| match entry {
                CacheEntry::Elastic(slot) => Some(Arc::clone(slot)),
                _ => None,
            },
            CacheEntry::Elastic,
            || Arc::new(compute()),
            |value| approx_elastic_bytes(value.as_ref()),
            &ELASTIC_COUNTERS,
        )
    }

    /// The task-accuracy metrics for functional fingerprint `fp`,
    /// computing (and storing) them on first request. Same concurrency
    /// contract as [`Self::elastic_or`]; memory-only like the elastic
    /// family — a functional simulation is cheap to recompute relative
    /// to a disk round-trip and re-runs rarely within one process.
    pub fn functional_or(
        &self,
        fp: Fingerprint,
        compute: impl FnOnce() -> Result<TaskMetrics, CamjError>,
    ) -> Arc<Result<TaskMetrics, CamjError>> {
        self.slot_or_compute(
            fp,
            |entry| match entry {
                CacheEntry::Functional(slot) => Some(Arc::clone(slot)),
                _ => None,
            },
            CacheEntry::Functional,
            || Arc::new(compute()),
            |_| std::mem::size_of::<TaskMetrics>() as u64 + 32,
            &FUNCTIONAL_COUNTERS,
        )
    }

    /// The energy items for kernel input `fp`, computing (and storing)
    /// them on first request. Same concurrency contract as
    /// [`Self::elastic_or`].
    ///
    /// With a [`PersistentTier`] attached, an in-memory miss first
    /// consults the tier (a decodable payload replays without running
    /// `compute`), and a computed result is written through — so the
    /// items a warm restart replays are byte-identical to the cold
    /// computation that produced them.
    pub fn energy_or(
        &self,
        fp: Fingerprint,
        compute: impl FnOnce() -> Vec<EnergyItem>,
    ) -> Arc<Vec<EnergyItem>> {
        self.slot_or_compute(
            fp,
            |entry| match entry {
                CacheEntry::Energy(slot) => Some(Arc::clone(slot)),
                _ => None,
            },
            CacheEntry::Energy,
            || Arc::new(self.energy_through_tier(fp, compute)),
            |value| approx_energy_bytes(value.as_ref()),
            &ENERGY_COUNTERS,
        )
    }

    /// The energy family's tier protocol, run inside the in-flight
    /// slot (so tier I/O and `compute` both happen exactly once per
    /// fingerprint): load-and-decode, else compute-and-write-through.
    fn energy_through_tier(
        &self,
        fp: Fingerprint,
        compute: impl FnOnce() -> Vec<EnergyItem>,
    ) -> Vec<EnergyItem> {
        let Some(tier) = self.tier() else {
            return compute();
        };
        let key = tier_key("energy");
        if let Some(payload) = tier.load("energy", fp) {
            match std::str::from_utf8(&payload)
                .ok()
                .and_then(|text| serde_json::from_str::<Vec<EnergyItem>>(text).ok())
            {
                Some(items) => {
                    obs_core::counter("cache.tier.hit", key, 1);
                    return items;
                }
                None => {
                    // The tier vouched for the bytes but they don't
                    // decode — a schema change, not corruption. Treat
                    // as a miss; the write-through below re-stamps the
                    // entry with the current encoding.
                    obs_core::counter("cache.tier.decode_drop", key, 1);
                }
            }
        }
        obs_core::counter("cache.tier.miss", key, 1);
        let items = compute();
        if let Ok(json) = serde_json::to_string(&items) {
            tier.store("energy", fp, json.as_bytes());
            obs_core::counter("cache.tier.store", key, 1);
        }
        items
    }

    /// The shared claim-slot protocol of [`Self::elastic_or`] and
    /// [`Self::energy_or`]: under the shard lock, reuse the entry's
    /// in-flight slot (`as_slot`) or insert a fresh one (`wrap`); then
    /// — outside the lock — materialise the value via `get_or_init`,
    /// booking its approximate size and one miss when this caller
    /// computed, one hit otherwise.
    fn slot_or_compute<T: Clone>(
        &self,
        fp: Fingerprint,
        as_slot: impl Fn(&CacheEntry) -> Option<Slot<T>>,
        wrap: impl FnOnce(Slot<T>) -> CacheEntry,
        compute: impl FnOnce() -> T,
        approx_bytes: impl FnOnce(&T) -> u64,
        counters: &FamilyCounters,
    ) -> T {
        let (slot, claimed) = {
            let mut shard = lock_shard(self.shard(fp));
            match shard.get(&fp).and_then(as_slot) {
                Some(slot) => (slot, false),
                None => {
                    let slot: Slot<T> = Arc::new(OnceLock::new());
                    shard.insert(fp, wrap(Arc::clone(&slot)));
                    (slot, true)
                }
            }
        };
        // A reused slot whose value has not materialised yet means the
        // computing claimant is still in flight: `get_or_init` below
        // will block on it. Sampled before the wait, for the trace only.
        let in_flight = !claimed && obs_core::enabled() && slot.get().is_none();
        let mut computed = false;
        let value = slot
            .get_or_init(|| {
                computed = true;
                let value = compute();
                self.bytes
                    .fetch_add(approx_bytes(&value), Ordering::Relaxed);
                value
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        if obs_core::enabled() {
            let key = fp.shard(SHARD_COUNT) as u64;
            obs_core::counter(counters.lookup, key, 1);
            let outcome = if computed {
                counters.miss
            } else if in_flight {
                counters.wait
            } else {
                counters.hit
            };
            obs_core::counter(outcome, key, 1);
        }
        value
    }

    /// Whether a readout of `t_a_secs` per analog stage is already known
    /// to pass the stall check for topology `fp` (monotonicity: any
    /// readout at least as slow as a recorded pass also passes).
    ///
    /// Counts both outcomes: a settled lookup is a hit, an unsettled
    /// one (which the caller answers with a stall simulation) is a
    /// miss — so [`CacheStats::hit_rate`] stays honest across all three
    /// artifact families.
    #[must_use]
    pub fn stall_settled(&self, fp: Fingerprint, t_a_secs: f64) -> bool {
        let shard = lock_shard(self.shard(fp));
        let known = matches!(shard.get(&fp), Some(CacheEntry::StallPass(_)));
        let mut settled = matches!(
            shard.get(&fp),
            Some(CacheEntry::StallPass(pass_min)) if t_a_secs >= *pass_min
        );
        drop(shard);
        // With no in-memory verdict at all, a persisted pass minimum
        // from an earlier process may settle this point. Loaded minima
        // are adopted into the map so later lookups stay in memory.
        if !known {
            if let Some(pass_min) = self.tier_stall_load(fp) {
                let mut shard = lock_shard(self.shard(fp));
                match shard.entry(fp) {
                    std::collections::hash_map::Entry::Occupied(mut slot) => {
                        if let CacheEntry::StallPass(existing) = slot.get_mut() {
                            *existing = existing.min(pass_min);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        self.bytes.fetch_add(48, Ordering::Relaxed);
                        slot.insert(CacheEntry::StallPass(pass_min));
                    }
                }
                settled = t_a_secs >= pass_min;
            }
        }
        if settled {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if obs_core::enabled() {
            let key = fp.shard(SHARD_COUNT) as u64;
            obs_core::counter("cache.stall.lookup", key, 1);
            obs_core::counter(
                if settled {
                    "cache.stall.hit"
                } else {
                    "cache.stall.miss"
                },
                key,
                1,
            );
        }
        settled
    }

    /// Records that readout `t_a_secs` passed the stall check for
    /// topology `fp`, keeping the fastest known pass (written through
    /// to the persistent tier whenever the minimum improves).
    pub fn record_stall_pass(&self, fp: Fingerprint, t_a_secs: f64) {
        let mut shard = lock_shard(self.shard(fp));
        let new_min = match shard.get_mut(&fp) {
            Some(CacheEntry::StallPass(pass_min)) => {
                if t_a_secs < *pass_min {
                    *pass_min = t_a_secs;
                    Some(t_a_secs)
                } else {
                    None
                }
            }
            Some(_) => None,
            None => {
                self.bytes.fetch_add(48, Ordering::Relaxed);
                shard.insert(fp, CacheEntry::StallPass(t_a_secs));
                Some(t_a_secs)
            }
        };
        drop(shard);
        if let (Some(pass_min), Some(tier)) = (new_min, self.tier()) {
            tier.store("stall", fp, &pass_min.to_bits().to_le_bytes());
            obs_core::counter("cache.tier.store", tier_key("stall"), 1);
        }
    }

    /// Loads a persisted stall-pass minimum (8 little-endian `f64`
    /// bits) for `fp`, if a tier is attached and holds a decodable
    /// entry.
    fn tier_stall_load(&self, fp: Fingerprint) -> Option<f64> {
        let tier = self.tier()?;
        let key = tier_key("stall");
        let Some(payload) = tier.load("stall", fp) else {
            obs_core::counter("cache.tier.miss", key, 1);
            return None;
        };
        let Ok(bits) = <[u8; 8]>::try_from(payload.as_slice()) else {
            obs_core::counter("cache.tier.decode_drop", key, 1);
            return None;
        };
        let pass_min = f64::from_bits(u64::from_le_bytes(bits));
        if pass_min.is_finite() && pass_min >= 0.0 {
            obs_core::counter("cache.tier.hit", key, 1);
            Some(pass_min)
        } else {
            obs_core::counter("cache.tier.decode_drop", key, 1);
            None
        }
    }

    /// A snapshot of the hit/miss counters and resident size. Counts
    /// only materialised entries — an in-flight (or panicked-and-
    /// abandoned) slot is not yet an entry.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| lock_shard(s).values().filter(|e| e.is_resident()).count() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Rough resident size of an elastic-simulation entry. The arena the
/// engine steps through is dropped when the run finishes — what the
/// cache retains is the flat `SimReport` rows, so this counts the
/// row structs (stage: name + 2 counters, buffer: name + 3 counters)
/// plus their heap-resident name bytes, mirroring
/// [`approx_energy_bytes`].
fn approx_elastic_bytes(value: &Result<ElasticSim, CamjError>) -> u64 {
    match value {
        Ok(sim) => {
            96 + sim.report.as_ref().map_or(0, |r| {
                let stages: u64 = r.stages.iter().map(|s| 40 + s.name.len() as u64).sum();
                let buffers: u64 = r.buffers.iter().map(|b| 48 + b.name.len() as u64).sum();
                56 + stages + buffers
            })
        }
        Err(_) => 128,
    }
}

/// Rough resident size of an energy-kernel entry.
fn approx_energy_bytes(items: &[EnergyItem]) -> u64 {
    items
        .iter()
        .map(|i| 96 + i.unit.len() as u64 + i.stage.as_ref().map_or(0, |s| s.len() as u64))
        .sum::<u64>()
        + 48
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_tech::fingerprint::Fingerprintable;

    #[test]
    fn energy_entries_replay_identically() {
        let cache = EstimateCache::new();
        let fp = ("kernel", 1u32).fingerprint();
        let first = cache.energy_or(fp, Vec::new);
        let second = cache.energy_or(fp, || panic!("must not recompute"));
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn stall_passes_are_monotone() {
        let cache = EstimateCache::new();
        let fp = ("topology", 7u32).fingerprint();
        assert!(!cache.stall_settled(fp, 1.0));
        cache.record_stall_pass(fp, 0.5);
        assert!(cache.stall_settled(fp, 0.5));
        assert!(cache.stall_settled(fp, 2.0));
        assert!(!cache.stall_settled(fp, 0.1));
        cache.record_stall_pass(fp, 0.1);
        assert!(cache.stall_settled(fp, 0.1));
    }

    #[test]
    fn artifact_families_do_not_collide() {
        // Same base fingerprint, different derived domains.
        let cache = EstimateCache::new();
        let base = ("model", 3u32).fingerprint();
        cache.record_stall_pass(base.derive("stall"), 0.2);
        let energy = cache.energy_or(base.derive("energy"), Vec::new);
        assert!(energy.is_empty());
        assert_eq!(cache.stats().entries, 2);
    }

    /// `CacheStats.bytes` must track what an elastic entry actually
    /// retains: the report rows and their names, not the (dropped)
    /// simulation arena. A bigger report ⇒ strictly more bytes, and an
    /// empty (all-analog) entry still costs its fixed overhead.
    #[test]
    fn elastic_bytes_scale_with_report_content() {
        use camj_digital::sim::{BufferStats, SimReport, StageStats};
        use camj_tech::units::Time;

        let report = |stages: usize, buffers: usize| {
            Ok(ElasticSim {
                report: Some(SimReport {
                    total_cycles: 1,
                    stages: (0..stages)
                        .map(|i| StageStats {
                            name: format!("stage-{i}"),
                            active_cycles: 1,
                            stalled_cycles: 0,
                        })
                        .collect(),
                    buffers: (0..buffers)
                        .map(|i| BufferStats {
                            name: format!("buffer-{i}"),
                            pixels_written: 1.0,
                            pixels_read: 1.0,
                            peak_occupancy: 1.0,
                        })
                        .collect(),
                }),
                digital_latency: Time::from_secs(1e-3),
            })
        };

        let cache = EstimateCache::new();
        cache.elastic_or(("elastic", 1u32).fingerprint(), || report(2, 1));
        let small = cache.stats().bytes;
        cache.elastic_or(("elastic", 2u32).fingerprint(), || report(8, 4));
        let grown = cache.stats().bytes - small;
        assert!(
            grown > small,
            "8 stages + 4 buffers ({grown}B) must outweigh 2 + 1 ({small}B)"
        );
        // Per-row floor: each stage keeps its counters and name bytes.
        assert!(grown >= 8 * 40 + 4 * 48, "grown {grown}B");

        // All-analog designs cache a report-free marker at fixed cost.
        cache.elastic_or(("elastic", 3u32).fingerprint(), || {
            Ok(ElasticSim {
                report: None,
                digital_latency: Time::from_secs(0.0),
            })
        });
        assert_eq!(cache.stats().bytes - small - grown, 96);
    }

    /// An in-memory [`PersistentTier`] for the tests below: a plain
    /// byte map, plus a corruption knob.
    #[derive(Debug, Default)]
    struct MemTier {
        entries: Mutex<HashMap<(&'static str, Fingerprint), Vec<u8>>>,
        loads: AtomicU64,
        stores: AtomicU64,
    }

    impl PersistentTier for MemTier {
        fn load(&self, family: &'static str, fp: Fingerprint) -> Option<Vec<u8>> {
            self.loads.fetch_add(1, Ordering::Relaxed);
            self.entries.lock().unwrap().get(&(family, fp)).cloned()
        }
        fn store(&self, family: &'static str, fp: Fingerprint, payload: &[u8]) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.entries
                .lock()
                .unwrap()
                .insert((family, fp), payload.to_vec());
        }
    }

    fn item(unit: &str, pj: f64) -> EnergyItem {
        EnergyItem {
            unit: unit.to_owned(),
            stage: Some("stage".to_owned()),
            category: crate::energy::EnergyCategory::DigitalCompute,
            layer: crate::hw::Layer::Sensor,
            energy: camj_tech::units::Energy::from_picojoules(pj),
        }
    }

    /// Energy artifacts written through the tier replay bit-exactly in
    /// a fresh cache (the warm-restart contract), without recomputing.
    #[test]
    fn energy_entries_persist_through_the_tier() {
        let tier = Arc::new(MemTier::default());
        let fp = ("tiered-kernel", 1u32).fingerprint();
        // Awkward floats: must survive the JSON round trip exactly.
        let items = vec![item("adc", 0.1 + 0.2), item("mac", 1.0 / 3.0)];

        let cold = EstimateCache::shared_with_tier(Arc::clone(&tier) as _);
        let first = cold.energy_or(fp, || items.clone());
        assert_eq!(*first, items);
        assert_eq!(tier.stores.load(Ordering::Relaxed), 1, "write-through");

        // A fresh cache over the same tier replays without computing.
        let warm = EstimateCache::shared_with_tier(Arc::clone(&tier) as _);
        let replayed = warm.energy_or(fp, || panic!("must replay from the tier"));
        assert_eq!(*replayed, items);
        for (a, b) in replayed.iter().zip(items.iter()) {
            assert_eq!(
                a.energy.joules().to_bits(),
                b.energy.joules().to_bits(),
                "tier round trip must be bit-exact"
            );
        }
    }

    /// A payload the tier returns but the cache cannot decode (schema
    /// drift) falls back to computing and re-stores the fresh encoding.
    #[test]
    fn undecodable_tier_payloads_recompute_and_rewrite() {
        let tier = Arc::new(MemTier::default());
        let fp = ("drifted", 2u32).fingerprint();
        tier.store("energy", fp, b"not json at all");
        let cache = EstimateCache::shared_with_tier(Arc::clone(&tier) as _);
        let value = cache.energy_or(fp, || vec![item("pix", 4.5)]);
        assert_eq!(value.len(), 1);
        // The bad payload was replaced by the fresh encoding…
        let warm = EstimateCache::shared_with_tier(Arc::clone(&tier) as _);
        let replay = warm.energy_or(fp, || panic!("rewritten entry must replay"));
        assert_eq!(*replay, *value);
    }

    /// Stall minima persist: a pass recorded in one cache settles
    /// lookups in a fresh cache over the same tier.
    #[test]
    fn stall_passes_persist_through_the_tier() {
        let tier = Arc::new(MemTier::default());
        let fp = ("tiered-stall", 3u32).fingerprint();
        let cold = EstimateCache::shared_with_tier(Arc::clone(&tier) as _);
        cold.record_stall_pass(fp, 0.25);
        // Worse passes don't rewrite; better ones do.
        let stores = tier.stores.load(Ordering::Relaxed);
        cold.record_stall_pass(fp, 0.5);
        assert_eq!(tier.stores.load(Ordering::Relaxed), stores);
        cold.record_stall_pass(fp, 0.125);
        assert_eq!(tier.stores.load(Ordering::Relaxed), stores + 1);

        let warm = EstimateCache::shared_with_tier(Arc::clone(&tier) as _);
        assert!(warm.stall_settled(fp, 0.125));
        assert!(warm.stall_settled(fp, 2.0));
        assert!(!warm.stall_settled(fp, 0.01));
    }

    /// `attach_tier` is first-wins, and a tier-less cache behaves
    /// exactly as before.
    #[test]
    fn attach_tier_is_first_wins() {
        let cache = EstimateCache::new();
        let a = Arc::new(MemTier::default());
        let b = Arc::new(MemTier::default());
        assert!(cache.attach_tier(Arc::clone(&a) as _));
        assert!(!cache.attach_tier(b as _));
        let fp = ("late-tier", 4u32).fingerprint();
        let _ = cache.energy_or(fp, Vec::new);
        assert_eq!(a.stores.load(Ordering::Relaxed), 1, "first tier serves");
    }

    #[test]
    fn stats_display_is_human_readable() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            bytes: 2048,
        };
        let text = s.to_string();
        assert!(text.contains("75.0%"), "{text}");
    }

    /// The ISSUE 5 poison regression: a computation that panics (and is
    /// caught per-point by a sweep driver) must not corrupt the shard —
    /// the same fingerprint recomputes cleanly, other fingerprints are
    /// untouched, and `stats()` keeps working.
    #[test]
    fn panicking_compute_does_not_poison_the_shard() {
        let cache = EstimateCache::new();
        let fp = ("poison", 1u32).fingerprint();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.energy_or(fp, || panic!("injected kernel panic"))
        }));
        assert!(boom.is_err(), "the injected panic must propagate");
        // The same fingerprint recovers: the abandoned slot recomputes.
        let value = cache.energy_or(fp, Vec::new);
        assert!(value.is_empty());
        // A different fingerprint in the same shard map is unaffected.
        let other = cache.energy_or(fp.derive("neighbour"), Vec::new);
        assert!(other.is_empty());
        // And the stats snapshot still works (the CLI calls it last).
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.misses >= 2);
    }

    /// Same for the elastic family: a panicked simulation must not take
    /// the shard down with it.
    #[test]
    fn panicking_elastic_compute_recovers() {
        let cache = EstimateCache::new();
        let fp = ("elastic-poison", 9u32).fingerprint();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.elastic_or(fp, || panic!("injected sim panic"))
        }));
        assert!(boom.is_err());
        let value = cache.elastic_or(fp, || {
            Ok(ElasticSim {
                report: None,
                digital_latency: camj_tech::units::Time::ZERO,
            })
        });
        assert!(value.is_ok());
        assert_eq!(cache.stats().entries, 1);
    }

    /// The convoying regression: computing one entry must not hold the
    /// shard-wide lock, so a computation that itself consults the cache
    /// for a *different* fingerprint on the same shard must not
    /// deadlock. (Under the old held-across-compute locking this test
    /// hangs on the re-entrant shard acquisition.)
    #[test]
    fn nested_compute_on_the_same_shard_does_not_deadlock() {
        let cache = EstimateCache::new();
        let a = ("nested", 1u32).fingerprint();
        // Find a sibling fingerprint landing on the same shard.
        let b = (2u32..)
            .map(|i| ("nested", i).fingerprint())
            .find(|fp| fp.shard(SHARD_COUNT) == a.shard(SHARD_COUNT))
            .expect("some sibling shares the shard");
        let value = cache.energy_or(a, || {
            let inner = cache.energy_or(b, Vec::new);
            assert!(inner.is_empty());
            Vec::new()
        });
        assert!(value.is_empty());
        assert_eq!(cache.stats().entries, 2);
    }

    /// Duplicate concurrent requests still compute exactly once: the
    /// in-flight slot, not the shard lock, serialises them.
    #[test]
    fn concurrent_requests_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(EstimateCache::new());
        let fp = ("race", 5u32).fingerprint();
        let runs = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                scope.spawn(move || {
                    cache.energy_or(fp, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window a little.
                        std::thread::yield_now();
                        Vec::new()
                    })
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "compute must run once");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(stats.misses, 1);
    }
}
