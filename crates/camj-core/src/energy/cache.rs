//! The cross-point estimate cache: a sharded concurrent map from input
//! [`Fingerprint`]s to computed artifacts.
//!
//! One cache is shared by every design point of a sweep (and by every
//! worker thread of a parallel sweep). Three artifact families live in
//! it, all keyed content-addressed — by a hash of *everything the
//! computation reads* — so a hit is guaranteed to replay a bit-identical
//! result:
//!
//! * **elastic simulations** ([`ElasticSim`]): the expensive cycle-level
//!   digital simulation, keyed by the dataflow topology (stages, rates,
//!   buffer geometry, clock) and *not* by energy parameters — so points
//!   differing only in technology node, bit width, or memory energy
//!   share one simulation,
//! * **energy kernel outputs** (`Vec<EnergyItem>`): the per-domain
//!   energy bookings of [`super::EnergyKernel`]s, keyed by component
//!   parameters + inferred access counts + the delay budget,
//! * **stall verdicts**: the fastest per-stage readout time known to
//!   pass the constant-rate stall check for a given topology — stall
//!   freedom is monotone in the readout time, so one cached pass settles
//!   every slower point. Failures are never cached: each failing point
//!   re-simulates so its overflow diagnosis stays exact.
//!
//! Locking: the map is split into [`SHARD_COUNT`] mutex-guarded shards
//! selected by the fingerprint's low half. A shard's lock **is held
//! while computing a missing entry** — that serialises duplicate
//! requests for the same expensive simulation into one computation
//! instead of racing N workers through it, while requests for different
//! shards proceed untouched.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use camj_tech::fingerprint::Fingerprint;

use crate::error::CamjError;

use super::breakdown::EnergyItem;
use super::pipeline::ElasticSim;

/// Number of independent shards; a power of two keeps selection cheap.
pub const SHARD_COUNT: usize = 64;

/// A point-in-time snapshot of cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then stored the result).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate resident payload size in bytes.
    pub bytes: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; zero for an unused cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} entries, ~{} KiB)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.bytes / 1024
        )
    }
}

/// One stored artifact.
#[derive(Debug, Clone)]
enum CacheEntry {
    Elastic(Arc<Result<ElasticSim, CamjError>>),
    Energy(Arc<Vec<EnergyItem>>),
    /// Fastest per-stage readout time (seconds) known to pass the stall
    /// check for this topology.
    StallPass(f64),
}

/// The sharded cross-point cache. Cheap to share: wrap it in an [`Arc`]
/// and hand clones to every model / worker of a sweep.
#[derive(Debug)]
pub struct EstimateCache {
    shards: Vec<Mutex<HashMap<Fingerprint, CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

impl Default for EstimateCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EstimateCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// An empty cache behind an [`Arc`], ready to thread through a sweep.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<HashMap<Fingerprint, CacheEntry>> {
        &self.shards[fp.shard(SHARD_COUNT)]
    }

    /// The elastic simulation for topology `fp`, computing (and storing)
    /// it on first request. The shard lock is held across `compute`, so
    /// concurrent requests for the same topology run it exactly once.
    pub fn elastic_or(
        &self,
        fp: Fingerprint,
        compute: impl FnOnce() -> Result<ElasticSim, CamjError>,
    ) -> Arc<Result<ElasticSim, CamjError>> {
        let mut shard = self.shard(fp).lock().expect("cache shard lock");
        if let Some(CacheEntry::Elastic(arc)) = shard.get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(arc);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        self.bytes
            .fetch_add(approx_elastic_bytes(&value), Ordering::Relaxed);
        shard.insert(fp, CacheEntry::Elastic(Arc::clone(&value)));
        value
    }

    /// The energy items for kernel input `fp`, computing (and storing)
    /// them on first request.
    pub fn energy_or(
        &self,
        fp: Fingerprint,
        compute: impl FnOnce() -> Vec<EnergyItem>,
    ) -> Arc<Vec<EnergyItem>> {
        let mut shard = self.shard(fp).lock().expect("cache shard lock");
        if let Some(CacheEntry::Energy(arc)) = shard.get(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(arc);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        self.bytes
            .fetch_add(approx_energy_bytes(&value), Ordering::Relaxed);
        shard.insert(fp, CacheEntry::Energy(Arc::clone(&value)));
        value
    }

    /// Whether a readout of `t_a_secs` per analog stage is already known
    /// to pass the stall check for topology `fp` (monotonicity: any
    /// readout at least as slow as a recorded pass also passes).
    ///
    /// Counts both outcomes: a settled lookup is a hit, an unsettled
    /// one (which the caller answers with a stall simulation) is a
    /// miss — so [`CacheStats::hit_rate`] stays honest across all three
    /// artifact families.
    #[must_use]
    pub fn stall_settled(&self, fp: Fingerprint, t_a_secs: f64) -> bool {
        let shard = self.shard(fp).lock().expect("cache shard lock");
        let settled = matches!(
            shard.get(&fp),
            Some(CacheEntry::StallPass(pass_min)) if t_a_secs >= *pass_min
        );
        drop(shard);
        if settled {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        settled
    }

    /// Records that readout `t_a_secs` passed the stall check for
    /// topology `fp`, keeping the fastest known pass.
    pub fn record_stall_pass(&self, fp: Fingerprint, t_a_secs: f64) {
        let mut shard = self.shard(fp).lock().expect("cache shard lock");
        match shard.get_mut(&fp) {
            Some(CacheEntry::StallPass(pass_min)) => {
                *pass_min = pass_min.min(t_a_secs);
            }
            Some(_) => {}
            None => {
                self.bytes.fetch_add(48, Ordering::Relaxed);
                shard.insert(fp, CacheEntry::StallPass(t_a_secs));
            }
        }
    }

    /// A snapshot of the hit/miss counters and resident size.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Rough resident size of an elastic-simulation entry.
fn approx_elastic_bytes(value: &Result<ElasticSim, CamjError>) -> u64 {
    match value {
        Ok(sim) => {
            let report = sim.report.as_ref();
            let stages = report.map_or(0, |r| r.stages.len()) as u64;
            let buffers = report.map_or(0, |r| r.buffers.len()) as u64;
            96 + stages * 56 + buffers * 64
        }
        Err(_) => 128,
    }
}

/// Rough resident size of an energy-kernel entry.
fn approx_energy_bytes(items: &[EnergyItem]) -> u64 {
    items
        .iter()
        .map(|i| 96 + i.unit.len() as u64 + i.stage.as_ref().map_or(0, |s| s.len() as u64))
        .sum::<u64>()
        + 48
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_tech::fingerprint::Fingerprintable;

    #[test]
    fn energy_entries_replay_identically() {
        let cache = EstimateCache::new();
        let fp = ("kernel", 1u32).fingerprint();
        let first = cache.energy_or(fp, Vec::new);
        let second = cache.energy_or(fp, || panic!("must not recompute"));
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn stall_passes_are_monotone() {
        let cache = EstimateCache::new();
        let fp = ("topology", 7u32).fingerprint();
        assert!(!cache.stall_settled(fp, 1.0));
        cache.record_stall_pass(fp, 0.5);
        assert!(cache.stall_settled(fp, 0.5));
        assert!(cache.stall_settled(fp, 2.0));
        assert!(!cache.stall_settled(fp, 0.1));
        cache.record_stall_pass(fp, 0.1);
        assert!(cache.stall_settled(fp, 0.1));
    }

    #[test]
    fn artifact_families_do_not_collide() {
        // Same base fingerprint, different derived domains.
        let cache = EstimateCache::new();
        let base = ("model", 3u32).fingerprint();
        cache.record_stall_pass(base.derive("stall"), 0.2);
        let energy = cache.energy_or(base.derive("energy"), Vec::new);
        assert!(energy.is_empty());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn stats_display_is_human_readable() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            bytes: 2048,
        };
        let text = s.to_string();
        assert!(text.contains("75.0%"), "{text}");
    }
}
