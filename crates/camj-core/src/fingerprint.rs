//! [`Fingerprintable`] implementations for the framework-level
//! descriptors: hardware units, algorithm stages, mappings, and routes.
//!
//! These compose the substrate implementations from `camj-analog` /
//! `camj-digital` / `camj-tech` into full-descriptor fingerprints, which
//! the energy kernels ([`crate::energy::EnergyKernel`]) and the elastic
//! simulation cache key their artifacts by.

use camj_tech::fingerprint::{Fingerprintable, FpHasher};

use crate::hw::{
    AnalogCategory, AnalogUnitDesc, DigitalUnitDesc, DigitalUnitKind, Layer, MemoryDesc,
};
use crate::mapping::Mapping;
use crate::route::Route;
use crate::sw::{ImageSize, Stage, StageKind};

impl Fingerprintable for Layer {
    fn feed(&self, h: &mut FpHasher) {
        h.write_tag(match self {
            Layer::Sensor => 0,
            Layer::Compute => 1,
            Layer::OffChip => 2,
        });
    }
}

impl Fingerprintable for AnalogCategory {
    fn feed(&self, h: &mut FpHasher) {
        h.write_tag(match self {
            AnalogCategory::Sensing => 0,
            AnalogCategory::Compute => 1,
            AnalogCategory::Memory => 2,
        });
    }
}

impl Fingerprintable for AnalogUnitDesc {
    fn feed(&self, h: &mut FpHasher) {
        h.write_str(self.name());
        self.array().feed(h);
        self.layer().feed(h);
        self.category().feed(h);
        h.write_f64(self.ops_per_stage_output());
        self.pixel_pitch_um().feed(h);
    }
}

impl Fingerprintable for DigitalUnitKind {
    fn feed(&self, h: &mut FpHasher) {
        match self {
            DigitalUnitKind::Pipelined(cu) => {
                h.write_tag(0);
                cu.feed(h);
            }
            DigitalUnitKind::Systolic(sa) => {
                h.write_tag(1);
                sa.feed(h);
            }
        }
    }
}

impl Fingerprintable for DigitalUnitDesc {
    fn feed(&self, h: &mut FpHasher) {
        h.write_str(self.name());
        self.kind().feed(h);
        self.layer().feed(h);
    }
}

impl Fingerprintable for MemoryDesc {
    fn feed(&self, h: &mut FpHasher) {
        self.structure().feed(h);
        self.layer().feed(h);
        h.write_f64(self.area_mm2());
    }
}

impl Fingerprintable for ImageSize {
    fn feed(&self, h: &mut FpHasher) {
        h.write_u32(self.width);
        h.write_u32(self.height);
        h.write_u32(self.channels);
    }
}

impl Fingerprintable for StageKind {
    fn feed(&self, h: &mut FpHasher) {
        match self {
            StageKind::Input => h.write_tag(0),
            StageKind::Stencil { kernel, stride } => {
                h.write_tag(1);
                for v in kernel.iter().chain(stride.iter()) {
                    h.write_u32(*v);
                }
            }
            StageKind::ElementWise { operands } => {
                h.write_tag(2);
                h.write_u32(*operands);
            }
            StageKind::Dnn { macs, weights } => {
                h.write_tag(3);
                h.write_u64(*macs);
                h.write_u64(*weights);
            }
            StageKind::Custom {
                ops,
                reads_per_output,
            } => {
                h.write_tag(4);
                h.write_u64(*ops);
                h.write_f64(*reads_per_output);
            }
        }
    }
}

impl Fingerprintable for Stage {
    fn feed(&self, h: &mut FpHasher) {
        h.write_str(self.name());
        self.kind().feed(h);
        self.input_size().feed(h);
        self.output_size().feed(h);
        h.write_u32(self.bits());
    }
}

impl Fingerprintable for Mapping {
    fn feed(&self, h: &mut FpHasher) {
        h.write_usize(self.len());
        for (stage, unit) in self.iter() {
            h.write_str(stage);
            h.write_str(unit);
        }
    }
}

impl Fingerprintable for Route {
    fn feed(&self, h: &mut FpHasher) {
        h.write_str(&self.from_stage);
        self.to_stage.feed(h);
        self.path.feed(h);
        h.write_u64(self.pixels);
        h.write_u64(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_analog::array::AnalogArray;
    use camj_analog::components::{aps_4t, ApsParams};

    #[test]
    fn analog_unit_layer_matters() {
        let arr = AnalogArray::new(aps_4t(ApsParams::default()), 8, 8);
        let a = AnalogUnitDesc::new("px", arr.clone(), Layer::Sensor, AnalogCategory::Sensing);
        let b = AnalogUnitDesc::new("px", arr, Layer::Compute, AnalogCategory::Sensing);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn stage_kind_discriminants_never_alias() {
        let input = Stage::input("s", [4, 4, 1]);
        let dnn = Stage::dnn("s", [4, 4, 1], [4, 4, 1], 16, 0);
        assert_ne!(input.fingerprint(), dnn.fingerprint());
    }

    #[test]
    fn mapping_bindings_are_ordered_and_counted() {
        let a = Mapping::new().map("x", "u1").map("y", "u2");
        let b = Mapping::new().map("x", "u2").map("y", "u1");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
