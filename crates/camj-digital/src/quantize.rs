//! ADC quantization: the digital side of the noise model.
//!
//! Every analog-to-digital conversion rounds the continuous signal to
//! one of `2^bits` levels. The rounding error is the one noise source
//! that is *intrinsic* to the architecture rather than to a circuit,
//! so the functional simulation derives it from a component's declared
//! converter resolution instead of asking for a descriptor:
//!
//! ```text
//! LSB = 1 / 2^bits (of full scale),   σ_q = LSB / sqrt(12)
//! ```
//!
//! (the classic uniform-quantization result: the error of an unclipped
//! mid-tread quantizer is uniform over `±LSB/2`).
//!
//! All values here are normalised to full scale: signals live in
//! `[0, 1]` and noise amplitudes are fractions of full scale, matching
//! `camj_analog::noise::NoiseSource::rms_fraction`.

/// The widest converter resolution the quantization model accepts,
/// matching `camj_analog::noise::MAX_RESOLUTION_BITS`.
pub const MAX_QUANTIZE_BITS: u32 = 32;

fn assert_bits(bits: u32) {
    assert!(bits > 0, "conversion needs at least 1 bit");
    assert!(
        bits <= MAX_QUANTIZE_BITS,
        "conversion resolution must be at most {MAX_QUANTIZE_BITS} bits, got {bits}"
    );
}

/// One least-significant bit as a fraction of full scale, `2^-bits`.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds [`MAX_QUANTIZE_BITS`].
#[must_use]
pub fn lsb_fraction(bits: u32) -> f64 {
    assert_bits(bits);
    (0.5f64).powi(bits as i32)
}

/// RMS quantization noise as a fraction of full scale,
/// `LSB / sqrt(12)`.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds [`MAX_QUANTIZE_BITS`].
#[must_use]
pub fn quantization_noise_rms(bits: u32) -> f64 {
    lsb_fraction(bits) / 12f64.sqrt()
}

/// Quantizes a full-scale-normalised `value` onto the uniform
/// mid-tread grid of step [`lsb_fraction`]`(bits)` (values round to
/// the nearest level; out-of-range inputs clip to the rails first, as
/// a saturating converter does). The rounding error is therefore
/// bounded by half an LSB, consistent with [`quantization_noise_rms`].
///
/// Deterministic and branch-free in the data, so a simulated frame
/// quantizes byte-identically on every run and thread count.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds [`MAX_QUANTIZE_BITS`], or
/// `value` is NaN.
#[must_use]
pub fn quantize(value: f64, bits: u32) -> f64 {
    assert_bits(bits);
    assert!(!value.is_nan(), "cannot quantize NaN");
    let step = lsb_fraction(bits);
    ((value.clamp(0.0, 1.0) / step).round() * step).min(1.0)
}

/// Quantizes a whole buffer in place, bit-identical to applying
/// [`quantize`] per element. The step (and its reciprocal) resolve
/// once per call instead of once per pixel — `step` is an exact power
/// of two, so `value / step` and `value * (1/step)` round identically
/// and the per-pixel `powi` disappears from frame-simulation hot
/// loops.
///
/// # Panics
///
/// Same conditions as [`quantize`], for any element.
pub fn quantize_slice(values: &mut [f64], bits: u32) {
    assert_bits(bits);
    let step = lsb_fraction(bits);
    let inv_step = 1.0 / step;
    for value in values {
        assert!(!value.is_nan(), "cannot quantize NaN");
        *value = ((value.clamp(0.0, 1.0) * inv_step).round() * step).min(1.0);
    }
}

/// [`quantize_slice`], fused with a squared-error accumulation against
/// a reference buffer (element order, plain left-to-right sum): one
/// memory pass instead of two for simulation hot loops that measure
/// post-quantization RMS. The quantized values are bit-identical to
/// [`quantize_slice`]'s.
///
/// # Panics
///
/// Same conditions as [`quantize`] for any element, or when the buffer
/// lengths differ.
#[must_use]
pub fn quantize_slice_sq_err(values: &mut [f64], reference: &[f64], bits: u32) -> f64 {
    assert_bits(bits);
    assert_eq!(values.len(), reference.len(), "buffer length mismatch");
    let step = lsb_fraction(bits);
    let inv_step = 1.0 / step;
    let mut sq = 0.0;
    for (value, r) in values.iter_mut().zip(reference) {
        assert!(!value.is_nan(), "cannot quantize NaN");
        *value = ((value.clamp(0.0, 1.0) * inv_step).round() * step).min(1.0);
        let d = *value - r;
        sq += d * d;
    }
    sq
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The slice path is an optimization, not a new definition: every
    /// element must come out bit-for-bit as the scalar `quantize`.
    #[test]
    fn slice_quantize_matches_scalar_bitwise() {
        for bits in [1, 2, 8, 10, 12, MAX_QUANTIZE_BITS] {
            let mut values: Vec<f64> = (0..4096)
                .map(|i| -0.1 + 1.3 * (i as f64) / 4095.0)
                .collect();
            values.extend([0.0, 1.0, -5.0, 7.0, 0.5 + lsb_fraction(bits) / 2.0]);
            let mut slice = values.clone();
            quantize_slice(&mut slice, bits);
            for (got, v) in slice.iter().zip(&values) {
                assert_eq!(
                    got.to_bits(),
                    quantize(*v, bits).to_bits(),
                    "bits {bits}, value {v}"
                );
            }
        }
    }

    #[test]
    fn lsb_halves_per_bit() {
        assert_eq!(lsb_fraction(1), 0.5);
        assert_eq!(lsb_fraction(8), 1.0 / 256.0);
        assert!((lsb_fraction(10) / lsb_fraction(11) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rms_matches_uniform_error_statistics() {
        // 10-bit: LSB ≈ 977 ppm, σ_q ≈ 282 ppm.
        let rms = quantization_noise_rms(10);
        assert!((rms - (1.0 / 1024.0) / 12f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn quantize_is_idempotent_and_clipping() {
        for bits in [1, 4, 8, 12] {
            for v in [0.0, 0.123, 0.5, 0.9999, 1.0] {
                let q = quantize(v, bits);
                assert_eq!(quantize(q, bits), q, "bits={bits} v={v}");
                assert!((q - v).abs() <= lsb_fraction(bits) / 2.0 + 1e-12);
            }
        }
        assert_eq!(quantize(-0.3, 8), 0.0);
        assert_eq!(quantize(1.7, 8), 1.0);
    }

    #[test]
    fn one_bit_is_a_comparator() {
        assert_eq!(quantize(0.2, 1), 0.0);
        assert_eq!(quantize(0.8, 1), 1.0);
    }

    #[test]
    fn measured_error_matches_predicted_rms() {
        // Sweep a dense ramp and compare the empirical RMS error to
        // LSB/sqrt(12); they agree within a few percent.
        let bits = 8;
        let n = 100_000;
        let mse: f64 = (0..n)
            .map(|i| {
                let v = (i as f64 + 0.5) / n as f64;
                let e = quantize(v, bits) - v;
                e * e
            })
            .sum::<f64>()
            / n as f64;
        let measured = mse.sqrt();
        let predicted = quantization_noise_rms(bits);
        assert!(
            (measured / predicted - 1.0).abs() < 0.05,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    #[should_panic(expected = "at most 32 bits")]
    fn out_of_range_bits_rejected() {
        let _ = quantization_noise_rms(33);
    }
}
