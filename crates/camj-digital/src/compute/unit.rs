//! The generic pipelined accelerator descriptor (paper `ComputeUnit`).
//!
//! CamJ abstracts digital accelerators behind three parameters: the shape
//! of pixels read per cycle, the shape of pixels produced per cycle, and
//! the pipeline depth — plus the synthesised per-cycle energy the user
//! supplies (paper Sec. 3.3, "Digital Units").

use serde::{Deserialize, Serialize};

use camj_tech::units::Energy;

/// A 3-D pixel shape `[width, height, channels]`, as used by the paper's
/// `input_pixel_per_cycle = [1, 3, 1]` style listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PixelShape {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Channel count.
    pub channels: u32,
}

impl PixelShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32, channels: u32) -> Self {
        assert!(
            width > 0 && height > 0 && channels > 0,
            "pixel shape dimensions must be non-zero: [{width}, {height}, {channels}]"
        );
        Self {
            width,
            height,
            channels,
        }
    }

    /// Total pixels in the shape.
    #[must_use]
    pub fn count(self) -> u64 {
        u64::from(self.width) * u64::from(self.height) * u64::from(self.channels)
    }
}

impl From<[u32; 3]> for PixelShape {
    fn from([width, height, channels]: [u32; 3]) -> Self {
        Self::new(width, height, channels)
    }
}

/// A generic pipelined digital accelerator.
///
/// # Examples
///
/// ```
/// use camj_digital::compute::ComputeUnit;
/// use camj_tech::units::Energy;
///
/// // The paper's Fig. 5 edge-detection unit: reads a 1×3 column window,
/// // produces one pixel per cycle, 2-stage pipeline, 3 pJ per cycle.
/// let edge = ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2)
///     .with_energy_per_cycle(Energy::from_picojoules(3.0));
/// assert_eq!(edge.input_pixels_per_cycle(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeUnit {
    name: String,
    input_per_cycle: PixelShape,
    output_per_cycle: PixelShape,
    num_stages: u32,
    energy_per_cycle: Energy,
}

impl ComputeUnit {
    /// Creates a compute unit descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `num_stages` is zero or any shape dimension is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        input_per_cycle: impl Into<PixelShape>,
        output_per_cycle: impl Into<PixelShape>,
        num_stages: u32,
    ) -> Self {
        assert!(num_stages > 0, "pipeline depth must be at least 1");
        Self {
            name: name.into(),
            input_per_cycle: input_per_cycle.into(),
            output_per_cycle: output_per_cycle.into(),
            num_stages,
            energy_per_cycle: Energy::ZERO,
        }
    }

    /// Sets the per-cycle energy (from synthesis/HLS) — builder-style.
    #[must_use]
    pub fn with_energy_per_cycle(mut self, energy: Energy) -> Self {
        self.energy_per_cycle = energy;
        self
    }

    /// The unit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape consumed per active cycle.
    #[must_use]
    pub fn input_shape(&self) -> PixelShape {
        self.input_per_cycle
    }

    /// Output shape produced per active cycle.
    #[must_use]
    pub fn output_shape(&self) -> PixelShape {
        self.output_per_cycle
    }

    /// Total input pixels consumed per active cycle.
    #[must_use]
    pub fn input_pixels_per_cycle(&self) -> u64 {
        self.input_per_cycle.count()
    }

    /// Total output pixels produced per active cycle.
    #[must_use]
    pub fn output_pixels_per_cycle(&self) -> u64 {
        self.output_per_cycle.count()
    }

    /// Pipeline depth in stages.
    #[must_use]
    pub fn num_stages(&self) -> u32 {
        self.num_stages
    }

    /// Per-cycle energy.
    #[must_use]
    pub fn energy_per_cycle(&self) -> Energy {
        self.energy_per_cycle
    }

    /// Active cycles needed to produce `output_pixels` outputs.
    #[must_use]
    pub fn cycles_for_output(&self, output_pixels: u64) -> u64 {
        output_pixels.div_ceil(self.output_pixels_per_cycle()) + u64::from(self.num_stages - 1)
    }

    /// Compute energy for producing `output_pixels` outputs (Eq. 15).
    #[must_use]
    pub fn energy_for_output(&self, output_pixels: u64) -> Energy {
        self.energy_per_cycle * self.cycles_for_output(output_pixels) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_count() {
        assert_eq!(PixelShape::new(2, 3, 4).count(), 24);
        let s: PixelShape = [1, 3, 1].into();
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn cycles_include_pipeline_fill() {
        let u = ComputeUnit::new("u", [1, 1, 1], [1, 1, 1], 4);
        // 10 outputs at 1/cycle + 3 fill cycles.
        assert_eq!(u.cycles_for_output(10), 13);
    }

    #[test]
    fn wider_output_needs_fewer_cycles() {
        let narrow = ComputeUnit::new("n", [1, 1, 1], [1, 1, 1], 1);
        let wide = ComputeUnit::new("w", [4, 1, 1], [4, 1, 1], 1);
        assert!(wide.cycles_for_output(1000) < narrow.cycles_for_output(1000));
    }

    #[test]
    fn energy_is_cycles_times_per_cycle() {
        let u = ComputeUnit::new("u", [1, 1, 1], [1, 1, 1], 1)
            .with_energy_per_cycle(Energy::from_picojoules(3.0));
        let e = u.energy_for_output(100);
        assert!((e.picojoules() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn partial_last_cycle_rounds_up() {
        let u = ComputeUnit::new("u", [1, 1, 1], [4, 1, 1], 1);
        assert_eq!(u.cycles_for_output(9), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_stage_pipeline_rejected() {
        let _ = ComputeUnit::new("u", [1, 1, 1], [1, 1, 1], 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shape_rejected() {
        let _ = PixelShape::new(0, 1, 1);
    }
}
