//! Digital compute units (paper Table 1: generic pipelined accelerator
//! and systolic array).

mod systolic;
mod unit;

pub use systolic::{mac_energy_at, SystolicArray, MAC_ENERGY_65NM_PJ, MAC_REFERENCE_NODE};
pub use unit::{ComputeUnit, PixelShape};
