//! Systolic array descriptor for DNN execution (paper `SystolicArray`).
//!
//! The paper singles out systolic arrays "due to [their] importance in
//! executing DNNs". The model is occupancy-based: a `rows × cols` grid of
//! MAC PEs retires `rows × cols × utilization` MACs per cycle, and the
//! per-MAC energy comes from synthesis at a reference node, rescaled by
//! [`camj_tech::scaling`] — exactly how the paper's validation treats its
//! 65 nm MAC datum.

use serde::{Deserialize, Serialize};

use camj_tech::node::ProcessNode;
use camj_tech::scaling::ScalingTable;
use camj_tech::units::Energy;

/// The 65 nm synthesised MAC energy the paper's validation uses \[5\],
/// in picojoules per multiply-accumulate.
///
/// 0.55 pJ corresponds to an 8-bit fixed-point MAC at 65 nm — the
/// precision the in-sensor DNN chips the paper validates against use
/// (an 8-bit multiply costs ≈0.2 pJ at 45 nm in Horowitz's classic
/// energy table; rescaled to 65 nm with the add and register overheads
/// lands near 0.5–0.6 pJ).
pub const MAC_ENERGY_65NM_PJ: f64 = 0.55;

/// The node the reference MAC energy was synthesised at.
pub const MAC_REFERENCE_NODE: ProcessNode = ProcessNode::N65;

/// Per-MAC energy at `node`, scaled from the 65 nm synthesis datum.
#[must_use]
pub fn mac_energy_at(node: ProcessNode) -> Energy {
    let table = ScalingTable::default();
    table.scale_energy(
        Energy::from_picojoules(MAC_ENERGY_65NM_PJ),
        MAC_REFERENCE_NODE,
        node,
    )
}

/// A systolic MAC array.
///
/// # Examples
///
/// ```
/// use camj_digital::compute::SystolicArray;
/// use camj_tech::node::ProcessNode;
///
/// // Ed-Gaze's 16×16 DNN engine at the sensor's 65 nm node:
/// let dnn = SystolicArray::new("ROI-DNN", 16, 16, ProcessNode::N65);
/// let macs = 57_600_000;
/// assert!(dnn.cycles_for_macs(macs) > macs / 256);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystolicArray {
    name: String,
    rows: u32,
    cols: u32,
    node: ProcessNode,
    mac_energy: Energy,
    utilization: f64,
}

impl SystolicArray {
    /// Creates a `rows × cols` systolic array at `node`, with per-MAC
    /// energy scaled from the 65 nm reference and a default 85 %
    /// utilization (typical for conv layers with matched tiling).
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, rows: u32, cols: u32, node: ProcessNode) -> Self {
        assert!(rows > 0 && cols > 0, "systolic array must be non-empty");
        Self {
            name: name.into(),
            rows,
            cols,
            node,
            mac_energy: mac_energy_at(node),
            utilization: 0.85,
        }
    }

    /// Overrides the per-MAC energy (e.g. from a custom synthesis run).
    #[must_use]
    pub fn with_mac_energy(mut self, energy: Energy) -> Self {
        self.mac_energy = energy;
        self
    }

    /// Overrides the utilization factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization <= 1`.
    #[must_use]
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1], got {utilization}"
        );
        self.utilization = utilization;
        self
    }

    /// The array's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// PE grid rows.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// PE grid columns.
    #[must_use]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Process node of the array.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        self.node
    }

    /// Total PE count.
    #[must_use]
    pub fn pe_count(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }

    /// Per-MAC energy.
    #[must_use]
    pub fn mac_energy(&self) -> Energy {
        self.mac_energy
    }

    /// Utilization factor in `(0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Effective MACs retired per cycle (PEs × utilization).
    #[must_use]
    pub fn macs_per_cycle(&self) -> f64 {
        self.pe_count() as f64 * self.utilization
    }

    /// Cycles to retire `macs` multiply-accumulates.
    #[must_use]
    pub fn cycles_for_macs(&self, macs: u64) -> u64 {
        (macs as f64 / self.macs_per_cycle()).ceil() as u64
    }

    /// Compute energy for `macs` multiply-accumulates (Eq. 15: only
    /// active PEs burn dynamic energy).
    #[must_use]
    pub fn energy_for_macs(&self, macs: u64) -> Energy {
        self.mac_energy * macs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_energy_scales_down_with_node() {
        assert!(mac_energy_at(ProcessNode::N22) < mac_energy_at(ProcessNode::N65));
        assert!(mac_energy_at(ProcessNode::N65) < mac_energy_at(ProcessNode::N130));
    }

    #[test]
    fn reference_node_returns_reference_energy() {
        let e = mac_energy_at(ProcessNode::N65);
        assert!((e.picojoules() - MAC_ENERGY_65NM_PJ).abs() < 1e-9);
    }

    #[test]
    fn cycles_account_for_utilization() {
        let arr = SystolicArray::new("a", 16, 16, ProcessNode::N65).with_utilization(0.5);
        // 256 PEs at 50 % → 128 MACs/cycle.
        assert_eq!(arr.cycles_for_macs(1280), 10);
    }

    #[test]
    fn energy_counts_macs_not_cycles() {
        // Idle PEs are clock/power-gated: halving utilization must not
        // change compute energy, only latency.
        let full = SystolicArray::new("a", 8, 8, ProcessNode::N65);
        let half = full.clone().with_utilization(0.4);
        assert_eq!(full.energy_for_macs(1_000), half.energy_for_macs(1_000));
        assert!(half.cycles_for_macs(1_000) > full.cycles_for_macs(1_000));
    }

    #[test]
    fn edgaze_dnn_cycle_count_is_plausible() {
        let arr = SystolicArray::new("dnn", 16, 16, ProcessNode::N65);
        let cycles = arr.cycles_for_macs(57_600_000);
        // 5.76e7 / (256 × 0.85) ≈ 264 706 cycles.
        assert!(cycles > 260_000 && cycles < 270_000, "cycles {cycles}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_array_rejected() {
        let _ = SystolicArray::new("a", 0, 16, ProcessNode::N65);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let _ = SystolicArray::new("a", 4, 4, ProcessNode::N65).with_utilization(1.5);
    }
}
