//! Per-access energy parameters of a digital memory structure.
//!
//! CamJ asks users for per-access read/write energy and leakage power
//! (paper Eq. 16) — "obtained by an ASIC synthesis flow or from commonly
//! used tools (e.g., CACTI and OpenRAM)". [`MemoryEnergy`] carries those
//! three numbers; convenience conversions derive them from the analytical
//! SRAM/STT-RAM macros in [`camj_tech`].

use serde::{Deserialize, Serialize};

use camj_tech::sram::SramMacro;
use camj_tech::sttram::SttRamMacro;
use camj_tech::units::{Energy, Power};

/// Read/write/leakage parameters of one memory structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryEnergy {
    /// Energy per word read.
    pub read_per_word: Energy,
    /// Energy per word written.
    pub write_per_word: Energy,
    /// Leakage power while the structure is not power-gated.
    pub leakage: Power,
}

impl MemoryEnergy {
    /// Creates parameters from explicit per-word energies in picojoules
    /// and leakage in microwatts — the unit mix used in the paper's
    /// code listings (`write_energy_per_word = 0.3  # pJ`).
    #[must_use]
    pub fn from_pj_per_word(read_pj: f64, write_pj: f64, leakage_uw: f64) -> Self {
        Self {
            read_per_word: Energy::from_picojoules(read_pj),
            write_per_word: Energy::from_picojoules(write_pj),
            leakage: Power::from_microwatts(leakage_uw),
        }
    }

    /// Zero-cost memory (useful for modelling ideal wires in ablations).
    #[must_use]
    pub fn free() -> Self {
        Self {
            read_per_word: Energy::ZERO,
            write_per_word: Energy::ZERO,
            leakage: Power::ZERO,
        }
    }
}

impl From<&SramMacro> for MemoryEnergy {
    fn from(m: &SramMacro) -> Self {
        Self {
            read_per_word: m.read_energy(),
            write_per_word: m.write_energy(),
            leakage: m.leakage_power(),
        }
    }
}

impl From<&SttRamMacro> for MemoryEnergy {
    fn from(m: &SttRamMacro) -> Self {
        Self {
            read_per_word: m.read_energy(),
            write_per_word: m.write_energy(),
            leakage: m.leakage_power(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_tech::node::ProcessNode;

    #[test]
    fn explicit_constructor_round_trips() {
        let e = MemoryEnergy::from_pj_per_word(0.3, 0.4, 12.0);
        assert!((e.read_per_word.picojoules() - 0.3).abs() < 1e-12);
        assert!((e.write_per_word.picojoules() - 0.4).abs() < 1e-12);
        assert!((e.leakage.microwatts() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn from_sram_macro() {
        let m = SramMacro::new(64 * 1024, 64, ProcessNode::N65);
        let e = MemoryEnergy::from(&m);
        assert_eq!(e.read_per_word, m.read_energy());
        assert_eq!(e.leakage, m.leakage_power());
    }

    #[test]
    fn from_sttram_macro() {
        let m = SttRamMacro::new(64 * 1024, 64, ProcessNode::N22).unwrap();
        let e = MemoryEnergy::from(&m);
        assert!(e.write_per_word > e.read_per_word);
    }

    #[test]
    fn free_is_zero() {
        let e = MemoryEnergy::free();
        assert_eq!(e.read_per_word, Energy::ZERO);
        assert_eq!(e.leakage, Power::ZERO);
    }
}
