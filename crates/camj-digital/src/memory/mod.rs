//! Digital memory structures (paper Table 1: FIFO, line buffer,
//! double-buffered SRAM) and their energy parameters.

mod energy;
mod structure;

pub use energy::MemoryEnergy;
pub use structure::{MemoryKind, MemoryStructure};
