//! The three digital memory structures CamJ supports (paper Table 1):
//! FIFO, line buffer, and double-buffered SRAM.
//!
//! A [`MemoryStructure`] is a *descriptor*: capacity, geometry, port
//! counts, word packing, and energy parameters. The cycle-level simulator
//! ([`crate::sim`]) instantiates runtime state from it; the energy model
//! multiplies its per-word energies by simulated access counts.

use serde::{Deserialize, Serialize};

use camj_tech::units::{Energy, Power};

use super::energy::MemoryEnergy;

/// Which of the supported structures a memory is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// First-in-first-out queue between two units.
    Fifo,
    /// Sliding-window line buffer holding a few image rows — the classic
    /// stencil-hardware structure.
    LineBuffer,
    /// Double-buffered SRAM: producer fills one bank while the consumer
    /// drains the other (frame buffers, DNN activation/weight buffers).
    DoubleBuffer,
}

/// A digital memory structure descriptor.
///
/// # Examples
///
/// ```
/// use camj_digital::memory::{MemoryEnergy, MemoryStructure};
///
/// // The 3×16-pixel line buffer of the paper's Fig. 5 listing:
/// let lb = MemoryStructure::line_buffer("LineBuffer", 3, 16)
///     .with_energy(MemoryEnergy::from_pj_per_word(0.3, 0.3, 0.0));
/// assert_eq!(lb.capacity_pixels(), 48);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryStructure {
    name: String,
    kind: MemoryKind,
    capacity_pixels: u64,
    pixels_per_word: u32,
    read_ports: u32,
    write_ports: u32,
    energy: MemoryEnergy,
    /// Fraction of the frame time the structure is powered (paper's `α`).
    active_fraction: f64,
}

impl MemoryStructure {
    fn new(name: impl Into<String>, kind: MemoryKind, capacity_pixels: u64) -> Self {
        assert!(capacity_pixels > 0, "memory capacity must be non-zero");
        Self {
            name: name.into(),
            kind,
            capacity_pixels,
            pixels_per_word: 1,
            read_ports: 1,
            write_ports: 1,
            energy: MemoryEnergy::free(),
            active_fraction: 1.0,
        }
    }

    /// Creates a FIFO of `depth_pixels` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth_pixels` is zero.
    #[must_use]
    pub fn fifo(name: impl Into<String>, depth_pixels: u64) -> Self {
        Self::new(name, MemoryKind::Fifo, depth_pixels)
    }

    /// Creates a line buffer of `rows` rows × `cols` pixels.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    #[must_use]
    pub fn line_buffer(name: impl Into<String>, rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "line buffer must be non-empty");
        Self::new(
            name,
            MemoryKind::LineBuffer,
            u64::from(rows) * u64::from(cols),
        )
    }

    /// Creates a double-buffered SRAM of two banks of `bank_pixels` each.
    ///
    /// # Panics
    ///
    /// Panics if `bank_pixels` is zero.
    #[must_use]
    pub fn double_buffer(name: impl Into<String>, bank_pixels: u64) -> Self {
        assert!(bank_pixels > 0, "double buffer bank must be non-empty");
        Self::new(name, MemoryKind::DoubleBuffer, 2 * bank_pixels)
    }

    /// Creates a structure from its kind and **total** capacity — the
    /// inverse of [`Self::kind`] + [`Self::capacity_pixels`], used when
    /// rebuilding a structure from a design description. For
    /// [`MemoryKind::DoubleBuffer`] the capacity covers both banks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pixels` is zero, or odd for a double buffer.
    #[must_use]
    pub fn from_kind(name: impl Into<String>, kind: MemoryKind, capacity_pixels: u64) -> Self {
        assert!(
            kind != MemoryKind::DoubleBuffer || capacity_pixels % 2 == 0,
            "double buffer capacity covers two equal banks and must be even, got {capacity_pixels}"
        );
        Self::new(name, kind, capacity_pixels)
    }

    /// Sets the energy parameters (builder-style).
    #[must_use]
    pub fn with_energy(mut self, energy: MemoryEnergy) -> Self {
        self.energy = energy;
        self
    }

    /// Sets how many pixels pack into one physical word (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `pixels_per_word` is zero.
    #[must_use]
    pub fn with_pixels_per_word(mut self, pixels_per_word: u32) -> Self {
        assert!(pixels_per_word > 0, "pixels per word must be non-zero");
        self.pixels_per_word = pixels_per_word;
        self
    }

    /// Sets the read/write port counts (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if either port count is zero.
    #[must_use]
    pub fn with_ports(mut self, read_ports: u32, write_ports: u32) -> Self {
        assert!(
            read_ports > 0 && write_ports > 0,
            "memories need at least one port of each kind"
        );
        self.read_ports = read_ports;
        self.write_ports = write_ports;
        self
    }

    /// Sets the powered fraction `α` of the frame time (builder-style).
    ///
    /// `1.0` (the default) models a structure that can never be
    /// power-gated — like Ed-Gaze's frame buffer, which must retain the
    /// previous frame across the whole frame time.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    #[must_use]
    pub fn with_active_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "active fraction must be in [0, 1], got {fraction}"
        );
        self.active_fraction = fraction;
        self
    }

    /// The structure's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structure kind.
    #[must_use]
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Total capacity in pixels.
    #[must_use]
    pub fn capacity_pixels(&self) -> u64 {
        self.capacity_pixels
    }

    /// Pixels per physical word.
    #[must_use]
    pub fn pixels_per_word(&self) -> u32 {
        self.pixels_per_word
    }

    /// Read port count (words per cycle the structure can serve).
    #[must_use]
    pub fn read_ports(&self) -> u32 {
        self.read_ports
    }

    /// Write port count (words per cycle the structure can absorb).
    #[must_use]
    pub fn write_ports(&self) -> u32 {
        self.write_ports
    }

    /// Energy parameters.
    #[must_use]
    pub fn energy(&self) -> MemoryEnergy {
        self.energy
    }

    /// Powered fraction of the frame time (`α` in Eq. 16).
    #[must_use]
    pub fn active_fraction(&self) -> f64 {
        self.active_fraction
    }

    /// Converts a pixel count to physical word accesses (rounding up).
    #[must_use]
    pub fn pixels_to_words(&self, pixels: f64) -> f64 {
        pixels / f64::from(self.pixels_per_word)
    }

    /// Dynamic energy for the given pixel-granular access counts.
    #[must_use]
    pub fn dynamic_energy(&self, pixels_read: f64, pixels_written: f64) -> Energy {
        self.energy.read_per_word * self.pixels_to_words(pixels_read)
            + self.energy.write_per_word * self.pixels_to_words(pixels_written)
    }

    /// Leakage power while powered (zero when `α = 0`).
    #[must_use]
    pub fn leakage(&self) -> Power {
        self.energy.leakage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_capacity() {
        let f = MemoryStructure::fifo("f", 256);
        assert_eq!(f.kind(), MemoryKind::Fifo);
        assert_eq!(f.capacity_pixels(), 256);
    }

    #[test]
    fn line_buffer_capacity_is_rows_times_cols() {
        let lb = MemoryStructure::line_buffer("lb", 3, 640);
        assert_eq!(lb.capacity_pixels(), 1920);
    }

    #[test]
    fn double_buffer_doubles_bank() {
        let db = MemoryStructure::double_buffer("db", 1000);
        assert_eq!(db.capacity_pixels(), 2000);
    }

    #[test]
    fn word_packing_reduces_accesses() {
        let m = MemoryStructure::fifo("f", 64).with_pixels_per_word(4);
        assert!((m.pixels_to_words(100.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_energy_accounts_reads_and_writes() {
        let m = MemoryStructure::fifo("f", 64)
            .with_energy(MemoryEnergy::from_pj_per_word(1.0, 2.0, 0.0));
        let e = m.dynamic_energy(10.0, 5.0);
        assert!((e.picojoules() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bad_active_fraction_rejected() {
        let _ = MemoryStructure::fifo("f", 64).with_active_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = MemoryStructure::fifo("f", 0);
    }

    #[test]
    fn builder_chain() {
        let m = MemoryStructure::double_buffer("buf", 512)
            .with_pixels_per_word(8)
            .with_ports(2, 2)
            .with_active_fraction(0.5);
        assert_eq!(m.pixels_per_word(), 8);
        assert_eq!(m.read_ports(), 2);
        assert_eq!(m.write_ports(), 2);
        assert!((m.active_fraction() - 0.5).abs() < 1e-12);
    }
}
