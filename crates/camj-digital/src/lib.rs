//! # camj-digital — digital substrate for CamJ-rs
//!
//! The digital half of the paper's methodology (Sec. 3.3, 4.1, 4.3):
//!
//! * [`memory`] — the three supported memory structures (FIFO, line
//!   buffer, double-buffered SRAM) with per-access energy and leakage
//!   parameters (Eq. 16),
//! * [`compute`] — the generic pipelined accelerator (`ComputeUnit`) and
//!   the DNN-oriented `SystolicArray` (Eq. 15),
//! * [`sim`] — a cycle-level pipeline simulator that verifies the CIS
//!   pipeline never stalls, measures the digital latency `T_D`, and
//!   counts unit cycles and memory accesses for the energy equations,
//! * [`quantize`] — ADC quantization (LSB sizing, `LSB/sqrt(12)` noise,
//!   and a deterministic mid-tread quantizer) for the noise-aware
//!   functional simulation,
//! * [`functional`] — executable tensor semantics for declared stages
//!   (stencil window means, element-wise combination, shape-adapting
//!   resampling), the digital half of the end-to-end frame pipeline.
//!
//! # Examples
//!
//! ```
//! use camj_digital::compute::ComputeUnit;
//! use camj_digital::memory::{MemoryEnergy, MemoryStructure};
//! use camj_digital::sim::{PipelineSimBuilder, SourceMode};
//! use camj_tech::units::Energy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 5 digital back half: a line buffer feeding an
//! // edge-detection accelerator over a 16×16 binned image.
//! let edge = ComputeUnit::new("EdgeUnit", [1, 3, 1], [1, 1, 1], 2)
//!     .with_energy_per_cycle(Energy::from_picojoules(3.0));
//! let lb = MemoryStructure::line_buffer("LineBuffer", 3, 16)
//!     .with_energy(MemoryEnergy::from_pj_per_word(0.3, 0.3, 0.0))
//!     .with_ports(3, 1);
//!
//! let mut b = PipelineSimBuilder::new();
//! let adc = b.add_source("ADC", SourceMode::Elastic);
//! let unit = b.add_stage(edge.name(), edge.num_stages());
//! b.connect(adc, unit, &lb, 1.0, 3.0, 3.0 * 256.0);
//! let report = b.build()?.run(100_000)?;
//! let compute_energy = edge.energy_per_cycle()
//!     * report.stage("EdgeUnit").unwrap().active_cycles as f64;
//! assert!(compute_energy.picojoules() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod compute;
pub mod fingerprint;
pub mod functional;
pub mod memory;
pub mod quantize;
pub mod sim;

pub use compute::{ComputeUnit, PixelShape, SystolicArray};
pub use memory::{MemoryEnergy, MemoryKind, MemoryStructure};
pub use sim::{PipelineSim, PipelineSimBuilder, SimError, SimReport, SourceMode};
