//! Functional execution of digital algorithm stages: the tensor
//! transforms behind the end-to-end frame pipeline.
//!
//! The energy/latency side of this crate treats stages declaratively
//! (shapes, op counts); this module gives the same declarations an
//! *executable* meaning so a simulated frame can flow through the
//! mapped DAG and be judged at the task level. The semantics are
//! deliberately the simplest faithful choice per stage kind:
//!
//! * stencils compute the **window mean** (binning, pooling, and
//!   normalized convolution all reduce to this under the declarative
//!   description, which carries no kernel weights),
//! * element-wise stages average their aligned operands,
//! * DNN/custom stages act as shape adapters (nearest-neighbour
//!   resample) — their arithmetic is not described declaratively, so
//!   the pipeline preserves the signal content and lets the task
//!   metric judge the noise that reached them.
//!
//! Every function here is a pure, allocation-deterministic slice
//! transform: no RNG, no floats ordered by thread, so functional
//! frames stay byte-identical across thread counts.
//!
//! Tensors are row-major with channels interleaved:
//! `index = (y * width + x) * channels + c`.

/// The mean over the (clamped) stencil window anchored at each output
/// pixel: one deterministic execution of a declared
/// stencil/binning/pooling stage.
///
/// The window for output `(x, y, c)` starts at
/// `(x·stride, y·stride, c·stride)` in the input and spans the kernel
/// shape, clamped to the input bounds (windows never wrap).
///
/// # Panics
///
/// Panics if `input` does not match `iw * ih * ic`, or a kernel or
/// stride component is zero.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn box_stencil(
    input: &[f64],
    (iw, ih, ic): (u32, u32, u32),
    kernel: [u32; 3],
    stride: [u32; 3],
    (ow, oh, oc): (u32, u32, u32),
) -> Vec<f64> {
    assert_eq!(input.len(), iw as usize * ih as usize * ic as usize);
    assert!(kernel.iter().all(|&k| k > 0) && stride.iter().all(|&s| s > 0));
    let mut out = Vec::with_capacity(ow as usize * oh as usize * oc as usize);
    for y in 0..oh {
        for x in 0..ow {
            for c in 0..oc {
                let x0 = (x * stride[0]).min(iw - 1);
                let y0 = (y * stride[1]).min(ih - 1);
                let c0 = (c * stride[2]).min(ic - 1);
                let x1 = (x0 + kernel[0]).min(iw);
                let y1 = (y0 + kernel[1]).min(ih);
                let c1 = (c0 + kernel[2]).min(ic);
                let mut sum = 0.0;
                for wy in y0..y1 {
                    for wx in x0..x1 {
                        for wc in c0..c1 {
                            sum += input[((wy * iw + wx) * ic + wc) as usize];
                        }
                    }
                }
                let count = u64::from(x1 - x0) * u64::from(y1 - y0) * u64::from(c1 - c0);
                out.push(sum / count as f64);
            }
        }
    }
    out
}

/// The per-index mean of aligned operand tensors: one deterministic
/// execution of a declared element-wise stage. With a single operand
/// this is the identity; with several (e.g. frame subtraction's
/// current + previous frame at steady state) it is the unbiased
/// combination that keeps the signal in `[0, 1]`.
///
/// # Panics
///
/// Panics if `operands` is empty or the slices disagree in length.
#[must_use]
pub fn elementwise_mean(operands: &[&[f64]]) -> Vec<f64> {
    assert!(
        !operands.is_empty(),
        "element-wise needs at least 1 operand"
    );
    let len = operands[0].len();
    assert!(
        operands.iter().all(|o| o.len() == len),
        "element-wise operands must be aligned"
    );
    let scale = 1.0 / operands.len() as f64;
    (0..len)
        .map(|i| operands.iter().map(|o| o[i]).sum::<f64>() * scale)
        .collect()
}

/// Nearest-neighbour resample between tensor shapes — the shape
/// adapter for DNN/custom stages (and size-mismatched edges), chosen
/// because integer index arithmetic is exact and thread-independent.
///
/// # Panics
///
/// Panics if `input` does not match `iw * ih * ic` or any dimension is
/// zero.
#[must_use]
pub fn resample_nearest(
    input: &[f64],
    (iw, ih, ic): (u32, u32, u32),
    (ow, oh, oc): (u32, u32, u32),
) -> Vec<f64> {
    assert_eq!(input.len(), iw as usize * ih as usize * ic as usize);
    assert!(ow > 0 && oh > 0 && oc > 0 && iw > 0 && ih > 0 && ic > 0);
    if (iw, ih, ic) == (ow, oh, oc) {
        return input.to_vec();
    }
    let mut out = Vec::with_capacity(ow as usize * oh as usize * oc as usize);
    for y in 0..oh {
        let sy = ((u64::from(y) * u64::from(ih)) / u64::from(oh)) as u32;
        for x in 0..ow {
            let sx = ((u64::from(x) * u64::from(iw)) / u64::from(ow)) as u32;
            for c in 0..oc {
                let sc = ((u64::from(c) * u64::from(ic)) / u64::from(oc)) as u32;
                out.push(input[((sy * iw + sx) * ic + sc) as usize]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_averages_disjoint_windows() {
        // 4x2 input, 2x2 binning -> 2x1.
        let input = [0.0, 1.0, 0.5, 0.5, 1.0, 0.0, 0.5, 0.5];
        let out = box_stencil(&input, (4, 2, 1), [2, 2, 1], [2, 2, 1], (2, 1, 1));
        assert_eq!(out, vec![0.5, 0.5]);
    }

    #[test]
    fn stencil_windows_clamp_at_edges() {
        // 3x1, 3-wide kernel, stride 1: last window clamps to 1 pixel.
        let input = [0.0, 0.3, 0.9];
        let out = box_stencil(&input, (3, 1, 1), [3, 1, 1], [1, 1, 1], (3, 1, 1));
        assert!((out[0] - 0.4).abs() < 1e-12);
        assert!((out[1] - 0.6).abs() < 1e-12);
        assert!((out[2] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn identity_stencil_is_identity() {
        let input = [0.1, 0.2, 0.3, 0.4];
        let out = box_stencil(&input, (2, 2, 1), [1, 1, 1], [1, 1, 1], (2, 2, 1));
        assert_eq!(out, input.to_vec());
    }

    #[test]
    fn elementwise_single_operand_is_identity() {
        let a = [0.25, 0.75];
        assert_eq!(elementwise_mean(&[&a]), a.to_vec());
        let b = [0.75, 0.25];
        assert_eq!(elementwise_mean(&[&a, &b]), vec![0.5, 0.5]);
    }

    #[test]
    fn resample_identity_and_upsample() {
        let input = [0.1, 0.9];
        assert_eq!(
            resample_nearest(&input, (2, 1, 1), (2, 1, 1)),
            input.to_vec()
        );
        assert_eq!(
            resample_nearest(&input, (2, 1, 1), (4, 1, 1)),
            vec![0.1, 0.1, 0.9, 0.9]
        );
        // Downsample picks the nearest source sample.
        let wide = [0.0, 0.25, 0.5, 0.75];
        assert_eq!(
            resample_nearest(&wide, (4, 1, 1), (2, 1, 1)),
            vec![0.0, 0.5]
        );
    }
}
