//! Cycle-level simulation of the digital pipeline (paper Sec. 3.3, 4.1):
//! stall checking, digital-latency measurement, and access counting.

mod engine;
mod error;
mod report;

pub use engine::{NodeId, PipelineSim, PipelineSimBuilder, SourceMode};
pub use error::SimError;
pub use report::{BufferStats, SimReport, StageStats};
