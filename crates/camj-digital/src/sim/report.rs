//! Simulation results: cycle counts and access statistics.
//!
//! A [`SimReport`] carries everything the energy model needs from the
//! cycle-level simulation (paper Sec. 4.3): per-unit active cycle counts
//! (Eq. 15) and per-memory read/write word counts (Eq. 16), plus the
//! total digital latency used by the analog delay estimator (Sec. 4.1).

use serde::{Deserialize, Serialize};

use camj_tech::units::Time;

/// Per-stage activity statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name.
    pub name: String,
    /// Cycles the stage fired (consumed and/or produced).
    pub active_cycles: u64,
    /// Cycles the stage wanted to fire but was blocked.
    pub stalled_cycles: u64,
}

/// Per-buffer traffic statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Buffer name.
    pub name: String,
    /// Pixels written into the buffer over the frame.
    pub pixels_written: f64,
    /// Pixels read out of the buffer over the frame.
    pub pixels_read: f64,
    /// Peak occupancy in pixels.
    pub peak_occupancy: f64,
}

/// The outcome of a completed cycle-level simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total cycles from first injection to last production.
    pub total_cycles: u64,
    /// Per-stage statistics, in insertion order.
    pub stages: Vec<StageStats>,
    /// Per-buffer statistics, in insertion order.
    pub buffers: Vec<BufferStats>,
}

impl SimReport {
    /// The digital-domain latency `T_D` at the given clock (Sec. 4.1).
    #[must_use]
    pub fn digital_latency(&self, clock_hz: f64) -> Time {
        Time::from_secs(self.total_cycles as f64 / clock_hz)
    }

    /// Looks up a stage's statistics by name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Looks up a buffer's statistics by name.
    #[must_use]
    pub fn buffer(&self, name: &str) -> Option<&BufferStats> {
        self.buffers.iter().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_from_clock() {
        let r = SimReport {
            total_cycles: 1_000_000,
            stages: vec![],
            buffers: vec![],
        };
        let t = r.digital_latency(100e6);
        assert!((t.millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_by_name() {
        let r = SimReport {
            total_cycles: 1,
            stages: vec![StageStats {
                name: "edge".into(),
                active_cycles: 5,
                stalled_cycles: 0,
            }],
            buffers: vec![BufferStats {
                name: "lb".into(),
                pixels_written: 10.0,
                pixels_read: 10.0,
                peak_occupancy: 3.0,
            }],
        };
        assert_eq!(r.stage("edge").unwrap().active_cycles, 5);
        assert!(r.buffer("lb").is_some());
        assert!(r.stage("missing").is_none());
    }
}
