//! The cycle-level pipeline simulation engine (paper Sec. 3.3, 4.1).
//!
//! The digital part of a computational CIS is a dataflow graph: compute
//! units connected through memory structures. CamJ simulates it cycle by
//! cycle to (1) verify the pipeline never stalls against the constant-
//! rate pixel readout, (2) measure the digital latency `T_D` that the
//! analog delay estimator subtracts from the frame budget, and (3) count
//! the per-unit active cycles and per-memory accesses that the energy
//! equations consume.
//!
//! ## Token model
//!
//! Pixels flow as *fluid* token quantities (`f64`): each unit fires at
//! most once per cycle, consuming `consumer_rate` pixels from every
//! in-edge and producing `producer_rate` pixels into every out-edge
//! (after its pipeline has filled). Fractional rates model units that
//! fire every few cycles. Cycle counts, stall detection, and access
//! totals are exact; sub-cycle interleaving inside one unit is not
//! modelled — the same fidelity class as the paper's simulator, which
//! tracks shapes per cycle, not bit-level timing.
//!
//! ## Sources
//!
//! A [`SourceMode::Continuous`] source models the pixel readout: light
//! arrives whether or not the pipeline is ready, so a full output buffer
//! is an immediate [`SimError::SourceOverflow`]. A [`SourceMode::Elastic`]
//! source waits politely — used when measuring best-case digital latency.
//!
//! ## Hot/cold split
//!
//! The steady-state token loop is the workspace's hottest code: one
//! elastic latency run plus one stall-check run is the entire cost of a
//! sweep cache miss. [`PipelineSim::run`] therefore steps a string-free
//! [`arena::Arena`] — contiguous per-edge and per-node arrays laid out
//! in topological firing order, with CSR adjacency lists — and touches
//! the named graph only on the *cold* side: at build time (port checks),
//! after a stall verdict (error formatting), and when assembling the
//! final [`SimReport`]. By construction no `String` is reachable from
//! the stepping path, which a counting-allocator test pins.

use camj_tech::units::Time;

use crate::memory::MemoryStructure;

use super::error::SimError;
use super::report::{BufferStats, SimReport, StageStats};

use arena::{Arena, RunState, Verdict};

/// Relative scale of the fluid-token comparison tolerance, see
/// [`flow_tolerance`].
const REL_EPS: f64 = 1e-8;
/// Tolerance floor: guards edges whose totals are far below one pixel.
const MIN_EPS: f64 = 1e-12;
/// Tolerance ceiling: even the largest edge never gets a slack
/// approaching one pixel.
const MAX_EPS: f64 = 1e-2;

/// Tolerance for fluid-token comparisons on an edge moving `total`
/// pixels with `min_rate` as its slower per-cycle rate.
///
/// Fractional rates accumulate floating-point error over millions of
/// cycles, and the error is proportional to the magnitude of the
/// accumulators — an absolute epsilon either drowns sub-pixel rates
/// (too large) or trips on drift at O(10⁷)-pixel frames (too small).
/// The tolerance therefore scales with the edge's token volume,
/// clamped to [`MIN_EPS`]..[`MAX_EPS`] and capped well below the edge's
/// slower rate so flow control (which compares against per-cycle
/// amounts) is never swamped.
fn flow_tolerance(total: f64, min_rate: f64) -> f64 {
    let scale = (total * REL_EPS).clamp(MIN_EPS, MAX_EPS);
    scale.min(0.25 * min_rate).max(MIN_EPS)
}

/// Handle to a node added to a [`PipelineSimBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// How a source behaves when its output buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceMode {
    /// Pixel readout: cannot be backpressured; overflow is an error.
    Continuous,
    /// Waits for space; used for latency measurement.
    Elastic,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Source { mode: SourceMode },
    Stage { pipeline_depth: u32 },
}

/// Cold node record: names and adjacency for build-time validation,
/// stall diagnostics, and report assembly. Never touched while
/// stepping.
#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
    in_edges: Vec<usize>,
    out_edges: Vec<usize>,
}

/// Cold edge record. The stepping path reads the compact
/// [`arena::HotEdge`] copy instead; this keeps the name and the
/// statistics-only fields (`reads_per_pixel`, port widths).
#[derive(Debug, Clone)]
struct Edge {
    name: String,
    capacity: f64,
    producer_rate: f64,
    consumer_rate: f64,
    total: f64,
    pixels_per_word: f64,
    read_ports: u32,
    write_ports: u32,
    /// Physical reads per fresh pixel consumed (stencil-window reuse,
    /// weight re-reads): flow control moves fresh pixels, the energy
    /// statistics multiply by this factor.
    reads_per_pixel: f64,
    /// Precomputed [`flow_tolerance`] — rates and totals are immutable
    /// after construction, and the simulation loop compares against
    /// this every edge every cycle.
    tolerance: f64,
}

impl Edge {
    /// This edge's fluid-token comparison tolerance.
    fn tol(&self) -> f64 {
        self.tolerance
    }
}

/// String-free hot state: everything [`PipelineSim::run`] touches per
/// cycle. Kept in a submodule so the split is visible at the type
/// level — no field in here can reach a `String`.
mod arena {

    /// Node behaviour, flattened for the stepping loop.
    #[derive(Debug, Clone, Copy)]
    pub(super) enum HotKind {
        /// Continuous source: stalling is a [`SourceOverflow`]
        /// verdict.
        ///
        /// [`SourceOverflow`]: crate::sim::SimError::SourceOverflow
        Continuous,
        /// Elastic source: waits for space.
        Elastic,
        /// Compute stage; produces once `fired + 1 >= depth`.
        Stage {
            /// Pipeline depth, pre-widened to the comparison type.
            depth: u64,
        },
    }

    /// The per-edge constants the stepping loop reads, contiguous and
    /// compact (one cache line holds a whole edge plus change).
    #[derive(Debug, Clone, Copy)]
    pub(super) struct HotEdge {
        pub capacity: f64,
        pub producer_rate: f64,
        pub consumer_rate: f64,
        pub total: f64,
        pub tolerance: f64,
        /// Precomputed `total - tolerance`: the "done" threshold both
        /// accumulators are compared against every cycle.
        pub done_at: f64,
    }

    /// The immutable simulation arena: nodes laid out in topological
    /// firing order (so the per-cycle scan is a linear walk), CSR
    /// adjacency lists, and the hot edge constants. Edge indices match
    /// the cold graph; node indices are arena-local with `orig`
    /// mapping back.
    #[derive(Debug)]
    pub(super) struct Arena {
        pub kinds: Vec<HotKind>,
        /// CSR starts into `in_list`, length `nodes + 1`.
        pub in_start: Vec<u32>,
        pub in_list: Vec<u32>,
        /// CSR starts into `out_list`, length `nodes + 1`.
        pub out_start: Vec<u32>,
        pub out_list: Vec<u32>,
        /// Arena node → original (insertion-order) node index.
        pub orig: Vec<u32>,
        /// Original node index → arena node index.
        pub arena_of: Vec<u32>,
        pub edges: Vec<HotEdge>,
        /// Edge → arena index of its producing node.
        pub edge_producer: Vec<u32>,
        /// Edge → arena index of its consuming node.
        pub edge_consumer: Vec<u32>,
    }

    /// Why the stepping loop stopped.
    #[derive(Debug, Clone, Copy)]
    pub(super) enum Verdict {
        /// Every edge moved its total: the frame completed.
        Done { cycles: u64 },
        /// A continuous source (arena index) stalled mid-cycle.
        Overflow { node: u32, cycle: u64 },
        /// No node fired this cycle.
        Deadlock { cycle: u64 },
        /// The cycle budget ran out.
        CycleLimit,
    }

    /// Mutable per-run state, all flat arrays indexed by edge or arena
    /// node. The `*_done` flags cache the monotone threshold
    /// comparisons (`produced >= done_at` can never become false
    /// again), and the `node_open`/`open_edges` counters turn the
    /// per-node and whole-graph done checks into O(1) reads.
    #[derive(Debug)]
    pub(super) struct RunState {
        pub produced: Vec<f64>,
        pub consumed: Vec<f64>,
        pub peak: Vec<f64>,
        pub fired: Vec<u64>,
        pub stalled: Vec<u64>,
        produced_done: Vec<bool>,
        consumed_done: Vec<bool>,
        /// Per arena node: in-edges not consumed-done plus out-edges
        /// not produced-done. Zero ⇔ the node is finished.
        node_open: Vec<u32>,
        /// Edges where either accumulator is still short of `done_at`.
        /// Zero ⇔ the frame is done.
        pub open_edges: u32,
        /// Leap-chunk snapshot storage (3 floats per edge), allocated
        /// once here so the stepping path stays allocation-free.
        snapshot: Vec<f64>,
        /// Per-edge firing amounts stashed by the check pass of
        /// [`Arena::try_fire`] so the apply pass skips the min-chain
        /// recomputation. Allocated once, like `snapshot`.
        amount: Vec<f64>,
        /// Steady-state anchor for the verdict-only early pass (see
        /// [`Arena::steady_pass`]): per-edge accumulators as of the
        /// anchor idle event, plus how many idle events have elapsed
        /// since.
        anchor_produced: Vec<f64>,
        anchor_consumed: Vec<f64>,
        anchor_open: u32,
        anchor_cycle: u64,
        anchor_events: u32,
        anchor_valid: bool,
    }

    impl RunState {
        pub(super) fn new(arena: &Arena) -> Self {
            let (n, m) = (arena.kinds.len(), arena.edges.len());
            let mut state = Self {
                produced: vec![0.0; m],
                consumed: vec![0.0; m],
                peak: vec![0.0; m],
                fired: vec![0; n],
                stalled: vec![0; n],
                produced_done: vec![false; m],
                consumed_done: vec![false; m],
                node_open: vec![0; n],
                open_edges: 0,
                snapshot: vec![0.0; 3 * m],
                amount: vec![0.0; m],
                anchor_produced: vec![0.0; m],
                anchor_consumed: vec![0.0; m],
                anchor_open: 0,
                anchor_cycle: 0,
                anchor_events: 0,
                anchor_valid: false,
            };
            // Zero-total edges are born done (done_at < 0); everything
            // else opens both node counters.
            for (e, ed) in arena.edges.iter().enumerate() {
                let pd = 0.0 >= ed.done_at;
                let cd = 0.0 >= ed.done_at;
                state.produced_done[e] = pd;
                state.consumed_done[e] = cd;
                if !pd {
                    state.node_open[arena.edge_producer[e] as usize] += 1;
                }
                if !cd {
                    state.node_open[arena.edge_consumer[e] as usize] += 1;
                }
                if !(pd && cd) {
                    state.open_edges += 1;
                }
            }
            state
        }

        #[inline]
        fn mark_produced_done(&mut self, e: usize, producer: u32) {
            self.produced_done[e] = true;
            self.node_open[producer as usize] -= 1;
            if self.consumed_done[e] {
                self.open_edges -= 1;
            }
        }

        #[inline]
        fn mark_consumed_done(&mut self, e: usize, consumer: u32) {
            self.consumed_done[e] = true;
            self.node_open[consumer as usize] -= 1;
            if self.produced_done[e] {
                self.open_edges -= 1;
            }
        }
    }

    impl Arena {
        #[inline]
        fn in_edges(&self, ni: usize) -> &[u32] {
            &self.in_list[self.in_start[ni] as usize..self.in_start[ni + 1] as usize]
        }

        #[inline]
        fn out_edges(&self, ni: usize) -> &[u32] {
            &self.out_list[self.out_start[ni] as usize..self.out_start[ni + 1] as usize]
        }

        #[inline]
        fn production_enabled(&self, ni: usize, state: &RunState) -> bool {
            match self.kinds[ni] {
                HotKind::Continuous | HotKind::Elastic => true,
                HotKind::Stage { depth } => state.fired[ni] + 1 >= depth,
            }
        }

        /// Checks whether node `ni` can fire this cycle and, if so,
        /// fires it — one fused pass so the min-chains and levels are
        /// computed once instead of twice (check + apply). Amounts are
        /// stashed per edge in `state.amount` during the check pass;
        /// no state mutates unless every check passes, and on failure
        /// the method returns at the first violated edge, exactly like
        /// the split check used to.
        #[inline]
        pub(super) fn try_fire(&self, ni: usize, state: &mut RunState) -> bool {
            // Inputs: every unfinished in-edge must hold enough pixels
            // — unless the inputs are exhausted (drain phase).
            for &e in self.in_edges(ni) {
                let e = e as usize;
                if state.consumed_done[e] {
                    continue;
                }
                let ed = &self.edges[e];
                let need = ed.consumer_rate.min(ed.total - state.consumed[e]);
                let level = (state.produced[e] - state.consumed[e]).max(0.0);
                if level < need - ed.tolerance {
                    return false;
                }
                // Clamp to the actual level so float drift can never
                // push the buffer negative (the check above guaranteed
                // level ≥ need − EPS).
                state.amount[e] = need.min(level);
            }
            // Outputs: every unfinished out-edge must have space, once
            // the pipeline has filled.
            let enabled = self.production_enabled(ni, state);
            if enabled {
                for &e in self.out_edges(ni) {
                    let e = e as usize;
                    if state.produced_done[e] {
                        continue;
                    }
                    let ed = &self.edges[e];
                    let amount = ed.producer_rate.min(ed.total - state.produced[e]);
                    let level = (state.produced[e] - state.consumed[e]).max(0.0);
                    if ed.capacity - level < amount - ed.tolerance {
                        return false;
                    }
                    state.amount[e] = amount;
                }
            }
            // A node with nothing left to consume and production
            // disabled (or nothing left to produce) must not spin;
            // `node_open == 0` covers the fully-finished case, so here
            // at least one side has work. Apply the stashed amounts.
            for &e in self.in_edges(ni) {
                let e = e as usize;
                if state.consumed_done[e] {
                    continue;
                }
                state.consumed[e] += state.amount[e];
                if state.consumed[e] >= self.edges[e].done_at {
                    state.mark_consumed_done(e, self.edge_consumer[e]);
                }
            }
            if enabled {
                for &e in self.out_edges(ni) {
                    let e = e as usize;
                    if state.produced_done[e] {
                        continue;
                    }
                    state.produced[e] += state.amount[e];
                    let level = (state.produced[e] - state.consumed[e]).max(0.0);
                    state.peak[e] = state.peak[e].max(level);
                    if state.produced[e] >= self.edges[e].done_at {
                        state.mark_produced_done(e, self.edge_producer[e]);
                    }
                }
            }
            state.fired[ni] += 1;
            true
        }

        /// The out-edge that made a stalled continuous source
        /// overflow, if identifiable (cold path: only called to
        /// format the error).
        pub(super) fn overflow_edge(&self, ni: usize, state: &RunState) -> Option<usize> {
            self.out_edges(ni).iter().map(|&e| e as usize).find(|&e| {
                let ed = &self.edges[e];
                let level = (state.produced[e] - state.consumed[e]).max(0.0);
                state.produced[e] < ed.done_at
                    && ed.capacity - level
                        < ed.producer_rate.min(ed.total - state.produced[e]) - ed.tolerance
            })
        }

        /// How many identical cycles can be skipped while only sources
        /// fire: bounded by (a) the first consumer in-edge reaching
        /// its need, (b) any firing source filling its buffer, and
        /// (c) any firing source exhausting its total.
        pub(super) fn idle_skip_cycles(&self, fired_sources: &[u32], state: &RunState) -> u64 {
            const MAX_SKIP: u64 = 1 << 40;
            let mut k = MAX_SKIP;
            // (a) consumer deficits on source-fed edges.
            for &si in fired_sources {
                for &e in self.out_edges(si as usize) {
                    let e = e as usize;
                    if state.consumed_done[e] {
                        continue;
                    }
                    let ed = &self.edges[e];
                    let need = ed.consumer_rate.min(ed.total - state.consumed[e]);
                    let level = (state.produced[e] - state.consumed[e]).max(0.0);
                    let deficit = need - level;
                    if deficit > ed.tolerance && ed.producer_rate > 0.0 {
                        k = k.min((deficit / ed.producer_rate).ceil() as u64);
                    }
                }
            }
            if k == MAX_SKIP {
                return 1;
            }
            // (b) capacity and (c) totals on every firing source's
            // out-edges.
            for &si in fired_sources {
                for &e in self.out_edges(si as usize) {
                    let e = e as usize;
                    if state.produced_done[e] {
                        continue;
                    }
                    let ed = &self.edges[e];
                    let level = (state.produced[e] - state.consumed[e]).max(0.0);
                    let headroom = ((ed.capacity - level) / ed.producer_rate).floor() as u64;
                    let remaining =
                        ((ed.total - state.produced[e]) / ed.producer_rate).ceil() as u64;
                    k = k.min(headroom.max(1)).min(remaining.max(1));
                }
            }
            k.max(1)
        }

        /// Applies `times` identical firings of a source in one
        /// batched step.
        pub(super) fn fire_source_batch(&self, si: usize, times: u64, state: &mut RunState) {
            for &e in self.out_edges(si) {
                let e = e as usize;
                if state.produced_done[e] {
                    continue;
                }
                let ed = &self.edges[e];
                let amount = (ed.producer_rate * times as f64).min(ed.total - state.produced[e]);
                state.produced[e] += amount;
                let level = (state.produced[e] - state.consumed[e]).max(0.0);
                state.peak[e] = state.peak[e].max(level);
                if state.produced[e] >= ed.done_at {
                    state.mark_produced_done(e, self.edge_producer[e]);
                }
            }
            state.fired[si] += times;
        }

        /// Verdict-only steady-state early pass: returns `true` when
        /// the run is provably stable and will finish without a stall,
        /// so stepping can stop with a `Done` verdict immediately.
        ///
        /// Sampled once per idle fast-forward event (one readout
        /// period in a stall-shaped pipeline). With constant rates,
        /// fractional readout phases make buffer levels *quasi*-
        /// periodic — they wander in a bounded band rather than recur
        /// exactly — so the criterion is band stability over a long
        /// baseline instead of state recurrence. After
        /// [`STEADY_WINDOWS`] consecutive idle events with
        ///
        /// * no done-mark movement (no total/`done_at` clamp began),
        /// * every open stage past its pipeline-fill point,
        /// * both accumulators of every open edge strictly
        ///   progressing, and
        /// * each edge's projected level drift over the *whole*
        ///   remaining frame — its per-window trend times the windows
        ///   left until the earliest total clamp — at most a quarter
        ///   of the headroom above the highest level seen so far,
        ///
        /// the regime is a stable steady state: constant-rate token
        /// flow past pipeline fill is either bounded or linearly
        /// trending, the trend is measured (noise from the phase band
        /// is divided down by the long baseline), and the only
        /// remaining phases — totals clamping, then the drain —
        /// strictly reduce load. Hence no overflow or deadlock can
        /// follow and the verdict is `Done`. Any wobble (a clamp, a
        /// failed drift projection) re-anchors and keeps exact
        /// stepping, so a verdict this pass cannot prove is simply
        /// decided by the stepper as before.
        fn steady_pass(&self, state: &mut RunState, cycle: u64, max_cycles: u64) -> bool {
            if !state.anchor_valid || state.anchor_open != state.open_edges {
                state.anchor_produced.copy_from_slice(&state.produced);
                state.anchor_consumed.copy_from_slice(&state.consumed);
                state.anchor_open = state.open_edges;
                state.anchor_cycle = cycle;
                state.anchor_events = 0;
                state.anchor_valid = true;
                return false;
            }
            state.anchor_events += 1;
            if state.anchor_events < STEADY_WINDOWS {
                return false;
            }
            let verdict = self.steady_verdict(state, cycle, max_cycles);
            if !verdict {
                // Re-anchor: the regime may have shifted (or still be
                // settling); measure a fresh baseline before retrying.
                state.anchor_valid = false;
            }
            verdict
        }

        /// The evaluation half of [`Self::steady_pass`], run once the
        /// anchor baseline is [`STEADY_WINDOWS`] idle events old.
        fn steady_verdict(&self, state: &RunState, cycle: u64, max_cycles: u64) -> bool {
            let (n, m) = (self.kinds.len(), self.edges.len());
            for ni in 0..n {
                if state.node_open[ni] > 0 && !self.production_enabled(ni, state) {
                    return false;
                }
            }
            let window = f64::from(STEADY_WINDOWS);
            // Pass 1: windows left until the last total clamp, and the
            // progress requirement (a stalled accumulator would mean
            // the frame never completes on its own).
            let mut windows_left: f64 = 0.0;
            for e in 0..m {
                let ed = &self.edges[e];
                let dp = state.produced[e] - state.anchor_produced[e];
                let dc = state.consumed[e] - state.anchor_consumed[e];
                if !state.produced_done[e] {
                    if dp <= 0.0 {
                        return false;
                    }
                    windows_left = windows_left.max((ed.total - state.produced[e]) / (dp / window));
                }
                if !state.consumed_done[e] {
                    if dc <= 0.0 {
                        return false;
                    }
                    windows_left = windows_left.max((ed.total - state.consumed[e]) / (dc / window));
                }
            }
            // The projected remainder must comfortably fit the cycle
            // budget, or a budget-limited exact run could instead end
            // in `CycleLimit` — keep stepping and let it decide.
            let span = (cycle - state.anchor_cycle) as f64 / window;
            if cycle as f64 + 1.5 * windows_left * span > max_cycles as f64 {
                return false;
            }
            // Pass 2: project each edge's level trend over the whole
            // remaining frame against the headroom above its observed
            // peak.
            for e in 0..m {
                let ed = &self.edges[e];
                let drift = (state.produced[e] - state.anchor_produced[e])
                    - (state.consumed[e] - state.anchor_consumed[e]);
                if drift > 0.0
                    && (drift / window) * windows_left > 0.25 * (ed.capacity - state.peak[e])
                {
                    return false;
                }
            }
            true
        }

        /// The string-free steady-state loop: steps until a verdict.
        /// `fired_sources` is caller-provided scratch so repeated runs
        /// (and the allocation-count test) see a fixed allocation
        /// profile.
        /// When `verdict_only` is set the run may additionally end
        /// early with `Done` once steady-state stability is proven
        /// (see [`Self::steady_pass`]); counters and accumulators are
        /// then frame-incomplete, so that mode must never feed a
        /// report — only the verdict may be used.
        pub(super) fn step_to_verdict(
            &self,
            state: &mut RunState,
            max_cycles: u64,
            fired_sources: &mut Vec<u32>,
            verdict_only: bool,
        ) -> Verdict {
            let n = self.kinds.len();
            // Leap bookkeeping is a 64-bit firing mask; wider graphs
            // simply never leap (they still step correctly).
            let leapable = n <= 64;
            let mut prev_mask: u64 = 0;
            // The last firing set whose leap attempt came up empty:
            // short periodic runs (a drain of a few cycles every
            // readout period) would otherwise pay a doomed bound
            // computation each period. Cleared every few thousand
            // stepped cycles so a set whose spans have meanwhile grown
            // gets another look.
            let mut failed_mask: u64 = 0;
            let mut amnesty: u32 = 0;
            let mut cycle: u64 = 0;
            loop {
                if state.open_edges == 0 {
                    return Verdict::Done { cycles: cycle };
                }
                if cycle >= max_cycles {
                    return Verdict::CycleLimit;
                }
                let mut any_fired = false;
                let mut only_sources_fired = true;
                let mut mask: u64 = 0;
                fired_sources.clear();
                for ni in 0..n {
                    if state.node_open[ni] == 0 {
                        continue;
                    }
                    if self.try_fire(ni, state) {
                        any_fired = true;
                        mask |= 1u64 << (ni & 63);
                        if matches!(self.kinds[ni], HotKind::Stage { .. }) {
                            only_sources_fired = false;
                        } else {
                            fired_sources.push(ni as u32);
                        }
                    } else {
                        state.stalled[ni] += 1;
                        if matches!(self.kinds[ni], HotKind::Continuous) {
                            return Verdict::Overflow {
                                node: ni as u32,
                                cycle,
                            };
                        }
                    }
                }
                if !any_fired {
                    return Verdict::Deadlock { cycle };
                }
                cycle += 1;
                amnesty += 1;
                if amnesty >= 4096 {
                    failed_mask = 0;
                    amnesty = 0;
                }
                // Idle fast-forward: when only sources made progress,
                // every consumer is waiting for tokens to accumulate.
                // Rates are constant, so the next `k−1` cycles are
                // identical source firings — apply them in one step.
                // Exact: token totals and firing counts match the
                // cycle-by-cycle execution.
                if only_sources_fired && !fired_sources.is_empty() {
                    let k = self.idle_skip_cycles(fired_sources, state);
                    if k > 1 {
                        for &si in fired_sources.iter() {
                            self.fire_source_batch(si as usize, k - 1, state);
                        }
                        cycle += k - 1;
                    }
                    // Idle events mark readout-period boundaries — the
                    // natural sampling points for the verdict-only
                    // steady-state early pass.
                    if verdict_only && self.steady_pass(state, cycle, max_cycles) {
                        return Verdict::Done { cycles: cycle };
                    }
                } else if leapable && mask == prev_mask && mask != failed_mask {
                    // Uniform leap: the same node set fired two cycles
                    // running — if the pattern provably persists, replay
                    // it wholesale (exact op-for-op, see `leap`).
                    let k = self.leap_cycles(mask, state).min(max_cycles - cycle);
                    let applied = if k >= LEAP_MIN {
                        self.leap(mask, k, state)
                    } else {
                        0
                    };
                    cycle += applied;
                    if applied == 0 {
                        failed_mask = mask;
                    }
                }
                prev_mask = mask;
            }
        }

        /// How many upcoming cycles are *guaranteed* to repeat the
        /// firing set `mask` exactly — every firing amount staying the
        /// pure per-cycle rate (no total/`done_at` clamping, no
        /// capacity squeeze) and every stalled node staying blocked.
        ///
        /// All bounds are conservative: token spans are divided by the
        /// per-cycle drift rate and shrunk by [`leap_slack`], which
        /// over-covers the worst-case float drift [`LEAP_MAX`] cycles
        /// of accumulation can introduce. Underestimating merely hands
        /// the boundary cycles back to the exact stepping loop.
        fn leap_cycles(&self, mask: u64, state: &RunState) -> u64 {
            let n = self.kinds.len();
            let mut k = LEAP_MAX as f64;
            let mut any_open_firing = false;
            for ni in 0..n {
                if state.node_open[ni] == 0 {
                    continue;
                }
                if mask >> (ni & 63) & 1 == 1 {
                    any_open_firing = true;
                    k = k.min(self.firing_persists(ni, mask, state));
                } else {
                    k = k.min(self.stall_persists(ni, mask, state));
                }
                if k < 1.0 {
                    return 0;
                }
            }
            // A leap must move tokens: if every node that fired has
            // meanwhile finished, the repeat heuristic is stale.
            if !any_open_firing {
                return 0;
            }
            k as u64
        }

        /// Cycles for which firing node `ni` provably keeps firing with
        /// pure-rate amounts (helper of [`Self::leap_cycles`]).
        fn firing_persists(&self, ni: usize, mask: u64, state: &RunState) -> f64 {
            let mut k = LEAP_MAX as f64;
            let enabled = self.production_enabled(ni, state);
            if let HotKind::Stage { depth } = self.kinds[ni] {
                // Production coming online mid-leap would change the op
                // pattern — but only if there is anything left to push.
                let pushes = self
                    .out_edges(ni)
                    .iter()
                    .any(|&e| !state.produced_done[e as usize]);
                if !enabled && pushes {
                    k = k.min((depth - 1 - state.fired[ni]) as f64);
                }
            }
            for &e in self.in_edges(ni) {
                let e = e as usize;
                if state.consumed_done[e] {
                    continue;
                }
                let ed = &self.edges[e];
                let c = ed.consumer_rate;
                // Purity: amount == rate needs rate ≤ total − consumed
                // and consumed must not cross `done_at` (marks flip).
                // The other purity leg — the level covering the full
                // rate — is verified exactly inside the replay loop
                // ([`Self::leap`] aborts the chunk on a shortfall), so
                // matched-rate edges whose level sits exactly at the
                // rate still leap.
                let limit = (ed.total - c).min(ed.done_at);
                let slack = leap_slack(ed);
                k = k.min((limit - state.consumed[e] - slack) / c);
                // Declining levels additionally bound the schedule —
                // without this, a short drain run would book a doomed
                // leap and pay the rollback every time.
                let level = (state.produced[e] - state.consumed[e]).max(0.0);
                let d = self.push_rate(e, mask, state) - c;
                if d < 0.0 {
                    k = k.min((level - c - slack) / -d);
                }
            }
            if enabled {
                for &e in self.out_edges(ni) {
                    let e = e as usize;
                    if state.produced_done[e] {
                        continue;
                    }
                    let ed = &self.edges[e];
                    let p = ed.producer_rate;
                    let slack = leap_slack(ed);
                    let limit = (ed.total - p).min(ed.done_at);
                    k = k.min((limit - state.produced[e] - slack) / p);
                    // Capacity: headroom must cover the rate (minus the
                    // flow tolerance, as in `can_fire`).
                    let level = (state.produced[e] - state.consumed[e]).max(0.0);
                    let headroom = ed.capacity - level - (p - ed.tolerance);
                    let d = p - self.pull_rate(e, mask, state);
                    if d > 0.0 {
                        k = k.min((headroom - slack) / d);
                    } else if headroom < slack {
                        return 0.0;
                    }
                }
            }
            k
        }

        /// Cycles for which stalled node `ni` provably stays blocked:
        /// the max over its currently-active blockers' persistence
        /// (helper of [`Self::leap_cycles`]).
        fn stall_persists(&self, ni: usize, mask: u64, state: &RunState) -> f64 {
            let mut k: f64 = 0.0;
            for &e in self.in_edges(ni) {
                let e = e as usize;
                if state.consumed_done[e] {
                    continue;
                }
                let ed = &self.edges[e];
                let need = ed.consumer_rate.min(ed.total - state.consumed[e]);
                let level = (state.produced[e] - state.consumed[e]).max(0.0);
                let deficit = need - ed.tolerance - level;
                let slack = leap_slack(ed);
                if deficit > slack {
                    let p_in = self.push_rate(e, mask, state);
                    if p_in > 0.0 {
                        k = k.max((deficit - slack) / p_in);
                    } else {
                        return LEAP_MAX as f64;
                    }
                }
            }
            if self.production_enabled(ni, state) {
                for &e in self.out_edges(ni) {
                    let e = e as usize;
                    if state.produced_done[e] {
                        continue;
                    }
                    let ed = &self.edges[e];
                    let amount = ed.producer_rate.min(ed.total - state.produced[e]);
                    let level = (state.produced[e] - state.consumed[e]).max(0.0);
                    let overfull = level - (ed.capacity - amount + ed.tolerance);
                    let slack = leap_slack(ed);
                    if overfull > slack {
                        let c_out = self.pull_rate(e, mask, state);
                        if c_out > 0.0 {
                            k = k.max((overfull - slack) / c_out);
                        } else {
                            return LEAP_MAX as f64;
                        }
                    }
                }
            }
            k
        }

        /// Per-cycle push onto edge `e` during a leap of firing set
        /// `mask`: the producer rate if its producer fires and
        /// actually produces, else zero.
        fn push_rate(&self, e: usize, mask: u64, state: &RunState) -> f64 {
            let prod = self.edge_producer[e] as usize;
            if mask >> (prod & 63) & 1 == 1
                && !state.produced_done[e]
                && self.production_enabled(prod, state)
            {
                self.edges[e].producer_rate
            } else {
                0.0
            }
        }

        /// Per-cycle pull off edge `e` during a leap of firing set
        /// `mask`.
        fn pull_rate(&self, e: usize, mask: u64, state: &RunState) -> f64 {
            let cons = self.edge_consumer[e] as usize;
            if mask >> (cons & 63) & 1 == 1 && !state.consumed_done[e] {
                self.edges[e].consumer_rate
            } else {
                0.0
            }
        }

        /// Replays up to `k` cycles of the firing set `mask` —
        /// bit-identical to stepping them, cheaper by the per-cycle
        /// scan — and returns how many cycles were actually applied.
        ///
        /// Exactness: per edge, `produced` and `consumed` are
        /// independent addition chains (each only ever accumulates its
        /// own rate while amounts stay pure), so replaying each edge's
        /// additions in cycle order — producer before consumer, the
        /// topological scan order — reproduces the exact float
        /// trajectory, including every intermediate `peak` candidate.
        /// [`Self::leap_cycles`] pre-proves every purity condition
        /// except the consumer level covering the full rate (levels
        /// of matched-rate edges sit *exactly* at the rate, which no
        /// conservative upfront bound can clear); that one is checked
        /// branchlessly inside the replay, per chunk: a chunk that
        /// observes a shortfall is rolled back from the snapshot and
        /// the boundary is handed back to the exact stepping loop.
        fn leap(&self, mask: u64, k: u64, state: &mut RunState) -> u64 {
            let m = self.edges.len();
            let mut applied: u64 = 0;
            while applied < k {
                let chunk = (k - applied).min(LEAP_CHUNK);
                let mut ok = true;
                for e in 0..m {
                    let ed = &self.edges[e];
                    let pushing = self.push_rate(e, mask, state) > 0.0;
                    let pulling = self.pull_rate(e, mask, state) > 0.0;
                    let (p, c) = (ed.producer_rate, ed.consumer_rate);
                    let mut produced = state.produced[e];
                    let mut consumed = state.consumed[e];
                    state.snapshot[3 * e] = produced;
                    state.snapshot[3 * e + 1] = consumed;
                    state.snapshot[3 * e + 2] = state.peak[e];
                    if pushing && pulling {
                        let mut peak = state.peak[e];
                        for _ in 0..chunk {
                            produced += p;
                            let level = (produced - consumed).max(0.0);
                            peak = peak.max(level);
                            ok &= level >= c;
                            consumed += c;
                        }
                        state.peak[e] = peak;
                    } else if pushing {
                        for _ in 0..chunk {
                            produced += p;
                        }
                        // Levels rise monotonically while the consumer
                        // idles: the running max equals the last level.
                        let level = (produced - consumed).max(0.0);
                        state.peak[e] = state.peak[e].max(level);
                    } else if pulling {
                        for _ in 0..chunk {
                            let level = (produced - consumed).max(0.0);
                            ok &= level >= c;
                            consumed += c;
                        }
                    } else {
                        continue;
                    }
                    state.produced[e] = produced;
                    state.consumed[e] = consumed;
                }
                if !ok {
                    // Roll the whole chunk back: the replay and the
                    // stepping loop must part ways exactly at the
                    // first impure cycle, which stepping re-executes.
                    for e in 0..m {
                        state.produced[e] = state.snapshot[3 * e];
                        state.consumed[e] = state.snapshot[3 * e + 1];
                        state.peak[e] = state.snapshot[3 * e + 2];
                    }
                    break;
                }
                applied += chunk;
            }
            for ni in 0..self.kinds.len() {
                if state.node_open[ni] == 0 {
                    continue;
                }
                if mask >> (ni & 63) & 1 == 1 {
                    state.fired[ni] += applied;
                } else {
                    state.stalled[ni] += applied;
                }
            }
            applied
        }
    }

    /// Minimum profitable leap: computing the persistence bounds costs
    /// about two stepped cycles.
    const LEAP_MIN: u64 = 16;

    /// Idle events a steady-state anchor must survive before the
    /// verdict-only early pass may conclude (see
    /// [`Arena::steady_pass`]). Long enough that quasi-periodic phase
    /// wander divides down to a negligible trend estimate; short
    /// enough that the stepped prefix stays a sliver of a full frame.
    const STEADY_WINDOWS: u32 = 256;
    /// Leap cap, sized so the drift slack stays small (see
    /// [`leap_slack`]).
    const LEAP_MAX: u64 = 1 << 24;
    /// Replay chunk: the granularity of the in-loop purity check's
    /// snapshot/rollback (chunk bookkeeping is ~1% of the replay cost
    /// at this size).
    const LEAP_CHUNK: u64 = 1 << 10;

    /// Absolute token slack subtracted from every leap span: an upper
    /// bound on the float drift [`LEAP_MAX`] cycles of rate
    /// accumulation can introduce on this edge (each accumulator's
    /// error per add is ≤ ε times its magnitude, bounded by the
    /// edge's token volume plus its capacity), with a 4× safety
    /// factor. Spans too small to absorb the slack fall back to exact
    /// stepping.
    fn leap_slack(ed: &HotEdge) -> f64 {
        4.0 * (LEAP_MAX as f64) * f64::EPSILON * (ed.total + ed.capacity + 1.0)
    }
}

/// Builder assembling a digital pipeline graph for simulation.
///
/// # Examples
///
/// ```
/// use camj_digital::memory::MemoryStructure;
/// use camj_digital::sim::{PipelineSimBuilder, SourceMode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // ADC feeds an edge-detection unit through a 3-row line buffer.
/// let mut b = PipelineSimBuilder::new();
/// let adc = b.add_source("ADC", SourceMode::Elastic);
/// let edge = b.add_stage("EdgeUnit", 2);
/// // The buffer's word width and ports must cover the per-cycle rates:
/// let lb = MemoryStructure::line_buffer("lb", 3, 16).with_pixels_per_word(16);
/// b.connect(
///     adc,
///     edge,
///     &lb,
///     16.0, // ADC writes one 16-pixel row per firing
///     16.0, // edge unit reads a row's worth per firing
///     16.0 * 16.0,
/// );
/// let report = b.build()?.run(100_000)?;
/// assert!(report.total_cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct PipelineSimBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl PipelineSimBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a data source (pixel readout, DMA engine, …).
    pub fn add_source(&mut self, name: impl Into<String>, mode: SourceMode) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind: NodeKind::Source { mode },
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a compute stage with the given pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if `pipeline_depth` is zero.
    pub fn add_stage(&mut self, name: impl Into<String>, pipeline_depth: u32) -> NodeId {
        assert!(pipeline_depth > 0, "pipeline depth must be at least 1");
        self.nodes.push(Node {
            name: name.into(),
            kind: NodeKind::Stage { pipeline_depth },
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Connects `from` to `to` through `buffer`, transferring
    /// `total_pixels` per frame: the producer pushes `producer_rate`
    /// pixels per firing, the consumer pops `consumer_rate` per firing.
    ///
    /// # Panics
    ///
    /// Panics if rates or totals are negative/non-finite, or if the node
    /// handles do not belong to this builder.
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        buffer: &MemoryStructure,
        producer_rate: f64,
        consumer_rate: f64,
        total_pixels: f64,
    ) {
        self.connect_with_reuse(
            from,
            to,
            buffer,
            producer_rate,
            consumer_rate,
            total_pixels,
            1.0,
        );
    }

    /// Like [`Self::connect`], but each fresh pixel consumed counts as
    /// `reads_per_pixel` physical reads in the buffer statistics —
    /// modelling stencil-window reuse out of a line buffer or weight
    /// re-reads out of a DNN buffer without inflating the flow control.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::connect`], or if
    /// `reads_per_pixel` is negative or non-finite.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with_reuse(
        &mut self,
        from: NodeId,
        to: NodeId,
        buffer: &MemoryStructure,
        producer_rate: f64,
        consumer_rate: f64,
        total_pixels: f64,
        reads_per_pixel: f64,
    ) {
        assert!(
            reads_per_pixel.is_finite() && reads_per_pixel >= 0.0,
            "reads per pixel must be non-negative and finite, got {reads_per_pixel}"
        );
        assert!(from.0 < self.nodes.len(), "unknown producer node");
        assert!(to.0 < self.nodes.len(), "unknown consumer node");
        assert!(
            producer_rate.is_finite() && producer_rate > 0.0,
            "producer rate must be positive and finite, got {producer_rate}"
        );
        assert!(
            consumer_rate.is_finite() && consumer_rate > 0.0,
            "consumer rate must be positive and finite, got {consumer_rate}"
        );
        assert!(
            total_pixels.is_finite() && total_pixels >= 0.0,
            "total pixels must be non-negative and finite, got {total_pixels}"
        );
        let idx = self.edges.len();
        self.edges.push(Edge {
            name: buffer.name().to_owned(),
            capacity: buffer.capacity_pixels() as f64,
            producer_rate,
            consumer_rate,
            total: total_pixels,
            pixels_per_word: f64::from(buffer.pixels_per_word()),
            read_ports: buffer.read_ports(),
            write_ports: buffer.write_ports(),
            reads_per_pixel,
            tolerance: flow_tolerance(total_pixels, producer_rate.min(consumer_rate)),
        });
        self.nodes[from.0].out_edges.push(idx);
        self.nodes[to.0].in_edges.push(idx);
    }

    /// Validates the graph and produces a runnable simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InsufficientPorts`] if any unit's per-cycle
    /// word demand exceeds a buffer's ports (stall scenario 3), or
    /// [`SimError::Deadlock`] (cycle 0) if the graph contains a cycle.
    pub fn build(self) -> Result<PipelineSim, SimError> {
        // Static port checks.
        for edge in &self.edges {
            let write_words = (edge.producer_rate / edge.pixels_per_word).ceil() as u64;
            if write_words > u64::from(edge.write_ports) {
                return Err(SimError::InsufficientPorts {
                    buffer: edge.name.clone(),
                    demanded_words_per_cycle: write_words,
                    ports: edge.write_ports,
                    is_read: false,
                });
            }
            let read_words = (edge.consumer_rate / edge.pixels_per_word).ceil() as u64;
            if read_words > u64::from(edge.read_ports) {
                return Err(SimError::InsufficientPorts {
                    buffer: edge.name.clone(),
                    demanded_words_per_cycle: read_words,
                    ports: edge.read_ports,
                    is_read: true,
                });
            }
        }
        // Topological order (Kahn); a residual node means a graph cycle.
        let order = topo_order(&self.nodes).ok_or_else(|| SimError::Deadlock {
            cycle: 0,
            stage: "<graph>".into(),
            reason: "the digital pipeline graph contains a cycle".into(),
        })?;
        let arena = build_arena(&self.nodes, &self.edges, &order);
        Ok(PipelineSim {
            nodes: self.nodes,
            edges: self.edges,
            arena,
        })
    }
}

fn topo_order(nodes: &[Node]) -> Option<Vec<usize>> {
    // Build per-node predecessor counts through edges.
    let mut incoming = vec![0usize; nodes.len()];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        for &e in &node.out_edges {
            for (j, other) in nodes.iter().enumerate() {
                if other.in_edges.contains(&e) {
                    incoming[j] += 1;
                    consumers[i].push(j);
                }
            }
        }
    }
    let mut ready: Vec<usize> = (0..nodes.len()).filter(|&i| incoming[i] == 0).collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(i) = ready.pop() {
        order.push(i);
        for &j in &consumers[i] {
            incoming[j] -= 1;
            if incoming[j] == 0 {
                ready.push(j);
            }
        }
    }
    (order.len() == nodes.len()).then_some(order)
}

/// Flattens the validated cold graph into the stepping arena, nodes
/// permuted into topological firing order.
fn build_arena(nodes: &[Node], edges: &[Edge], order: &[usize]) -> Arena {
    use arena::{HotEdge, HotKind};
    let n = nodes.len();
    let mut kinds = Vec::with_capacity(n);
    let mut in_start = Vec::with_capacity(n + 1);
    let mut in_list = Vec::new();
    let mut out_start = Vec::with_capacity(n + 1);
    let mut out_list = Vec::new();
    let mut orig = Vec::with_capacity(n);
    let mut arena_of = vec![0u32; n];
    for (ai, &oi) in order.iter().enumerate() {
        let node = &nodes[oi];
        kinds.push(match node.kind {
            NodeKind::Source {
                mode: SourceMode::Continuous,
            } => HotKind::Continuous,
            NodeKind::Source {
                mode: SourceMode::Elastic,
            } => HotKind::Elastic,
            NodeKind::Stage { pipeline_depth } => HotKind::Stage {
                depth: u64::from(pipeline_depth),
            },
        });
        in_start.push(in_list.len() as u32);
        in_list.extend(node.in_edges.iter().map(|&e| e as u32));
        out_start.push(out_list.len() as u32);
        out_list.extend(node.out_edges.iter().map(|&e| e as u32));
        orig.push(oi as u32);
        arena_of[oi] = ai as u32;
    }
    in_start.push(in_list.len() as u32);
    out_start.push(out_list.len() as u32);
    let mut edge_producer = vec![0u32; edges.len()];
    let mut edge_consumer = vec![0u32; edges.len()];
    for (ai, &oi) in order.iter().enumerate() {
        for &e in &nodes[oi].out_edges {
            edge_producer[e] = ai as u32;
        }
        for &e in &nodes[oi].in_edges {
            edge_consumer[e] = ai as u32;
        }
    }
    Arena {
        kinds,
        in_start,
        in_list,
        out_start,
        out_list,
        orig,
        arena_of,
        edges: edges
            .iter()
            .map(|e| HotEdge {
                capacity: e.capacity,
                producer_rate: e.producer_rate,
                consumer_rate: e.consumer_rate,
                total: e.total,
                tolerance: e.tolerance,
                done_at: e.total - e.tolerance,
            })
            .collect(),
        edge_producer,
        edge_consumer,
    }
}

/// A runnable cycle-level pipeline simulation.
#[derive(Debug)]
pub struct PipelineSim {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    arena: Arena,
}

impl PipelineSim {
    /// Runs the simulation for at most `max_cycles` cycles.
    ///
    /// The steady-state loop steps the string-free arena; names are
    /// only touched here — after the verdict — to format errors and
    /// assemble the report.
    ///
    /// # Errors
    ///
    /// * [`SimError::SourceOverflow`] — a continuous source hit a full
    ///   buffer (the pipeline cannot sustain the readout rate),
    /// * [`SimError::Deadlock`] — no unit can make progress,
    /// * [`SimError::CycleLimitExceeded`] — the frame did not finish
    ///   within `max_cycles`.
    pub fn run(&self, max_cycles: u64) -> Result<SimReport, SimError> {
        // One coarse span per run — never per token/cycle, so the
        // stepping loop below stays allocation- and probe-free.
        let _span = obs_core::span("sim.run");
        let mut state = RunState::new(&self.arena);
        let mut fired_sources: Vec<u32> = Vec::new();
        // The hot region: step_to_verdict neither allocates nor
        // formats — names come back into play only below.
        let verdict = self
            .arena
            .step_to_verdict(&mut state, max_cycles, &mut fired_sources, false);
        match verdict {
            Verdict::Done { cycles } => {
                obs_core::counter("sim.cycles", 0, cycles);
                Ok(self.assemble_report(cycles, &state))
            }
            Verdict::CycleLimit => Err(SimError::CycleLimitExceeded { limit: max_cycles }),
            Verdict::Overflow { node, cycle } => Err(self.overflow_error(node, cycle, &state)),
            Verdict::Deadlock { cycle } => {
                let (stage, reason) = self.diagnose_block(&state);
                Err(SimError::Deadlock {
                    cycle,
                    stage,
                    reason,
                })
            }
        }
    }

    /// Convenience wrapper measuring digital latency `T_D` at `clock_hz`.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from [`Self::run`].
    pub fn digital_latency(&self, clock_hz: f64, max_cycles: u64) -> Result<Time, SimError> {
        Ok(self.run(max_cycles)?.digital_latency(clock_hz))
    }

    /// Verdict-only run for the stall check: same stepping semantics
    /// as [`Self::run`], plus a steady-state early pass that stops
    /// stepping once the token flow is provably stable for the rest
    /// of the frame — orders of magnitude faster on long frames. An
    /// early pass leaves counters frame-incomplete, so this entry
    /// point deliberately returns no report, and every *failing*
    /// verdict falls back to the cycle-exact [`Self::run`] so stall
    /// diagnoses (cycle numbers, buffer levels) stay byte-identical
    /// to an exact simulation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::run`].
    pub fn run_check(&self, max_cycles: u64) -> Result<(), SimError> {
        let _span = obs_core::span("sim.check");
        let mut state = RunState::new(&self.arena);
        let mut fired_sources: Vec<u32> = Vec::new();
        let verdict = self
            .arena
            .step_to_verdict(&mut state, max_cycles, &mut fired_sources, true);
        match verdict {
            Verdict::Done { .. } => Ok(()),
            // Failures re-run exactly: they terminate early (at the
            // overflow/deadlock), and the diagnosis must not carry
            // fast-forward drift.
            _ => self.run(max_cycles).map(drop),
        }
    }

    fn assemble_report(&self, total_cycles: u64, state: &RunState) -> SimReport {
        SimReport {
            total_cycles,
            stages: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    let ai = self.arena.arena_of[i] as usize;
                    StageStats {
                        name: n.name.clone(),
                        active_cycles: state.fired[ai],
                        stalled_cycles: state.stalled[ai],
                    }
                })
                .collect(),
            buffers: self
                .edges
                .iter()
                .enumerate()
                .map(|(e, ed)| BufferStats {
                    name: ed.name.clone(),
                    pixels_written: state.produced[e],
                    pixels_read: state.consumed[e] * ed.reads_per_pixel,
                    peak_occupancy: state.peak[e],
                })
                .collect(),
        }
    }

    /// Formats the overflow error for a stalled continuous source
    /// (cold path).
    fn overflow_error(&self, node: u32, cycle: u64, state: &RunState) -> SimError {
        let source = self.nodes[self.arena.orig[node as usize] as usize]
            .name
            .clone();
        let buffer = self
            .arena
            .overflow_edge(node as usize, state)
            .map(|e| self.edges[e].name.clone())
            .unwrap_or_else(|| "<unknown>".into());
        SimError::SourceOverflow {
            cycle,
            source,
            buffer,
        }
    }

    fn node_done(&self, node: &Node, state: &RunState) -> bool {
        let out_done = node
            .out_edges
            .iter()
            .all(|&e| state.produced[e] >= self.edges[e].total - self.edges[e].tol());
        let in_done = node
            .in_edges
            .iter()
            .all(|&e| state.consumed[e] >= self.edges[e].total - self.edges[e].tol());
        out_done && in_done
    }

    /// Names the first blocked stage and why (cold path: only called
    /// once a deadlock verdict is already decided).
    fn diagnose_block(&self, state: &RunState) -> (String, String) {
        for node in &self.nodes {
            if self.node_done(node, state) {
                continue;
            }
            for &e in &node.in_edges {
                let ed = &self.edges[e];
                if state.consumed[e] < ed.total - ed.tol() {
                    let need = ed.consumer_rate.min(ed.total - state.consumed[e]);
                    let level = (state.produced[e] - state.consumed[e]).max(0.0);
                    if level < need - ed.tol() {
                        return (
                            node.name.clone(),
                            format!(
                                "is starved on buffer '{}' (needs {:.1} pixels, has {:.1})",
                                ed.name, need, level
                            ),
                        );
                    }
                }
            }
            for &e in &node.out_edges {
                let ed = &self.edges[e];
                if state.produced[e] < ed.total - ed.tol() {
                    let amount = ed.producer_rate.min(ed.total - state.produced[e]);
                    let level = (state.produced[e] - state.consumed[e]).max(0.0);
                    if ed.capacity - level < amount - ed.tol() {
                        return (
                            node.name.clone(),
                            format!("is blocked on full buffer '{}'", ed.name),
                        );
                    }
                }
            }
        }
        ("<unknown>".into(), "no progress".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(name: &str, capacity: u64) -> MemoryStructure {
        // Generous ports: these tests exercise dataflow, not port limits.
        MemoryStructure::fifo(name, capacity).with_ports(8, 8)
    }

    #[test]
    fn linear_pipeline_completes() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 4.0, 4.0, 256.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        // 256 pixels at 4/cycle = 64 producer firings; consumer trails by 1.
        assert!(report.total_cycles >= 64 && report.total_cycles <= 66);
        assert_eq!(report.stage("src").unwrap().active_cycles, 64);
        let f = report.buffer("f").unwrap();
        assert!((f.pixels_written - 256.0).abs() < 1e-6);
        assert!((f.pixels_read - 256.0).abs() < 1e-6);
    }

    #[test]
    fn rate_mismatch_throttles_pipeline() {
        // Consumer half as fast as producer with a small buffer: the
        // elastic source adapts; total time set by the consumer.
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let slow = b.add_stage("slow", 1);
        b.connect(src, slow, &buf("f", 8), 4.0, 2.0, 256.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        // Consumer needs 128 firings.
        assert!(report.total_cycles >= 128);
        assert!(report.stage("src").unwrap().stalled_cycles > 0);
    }

    #[test]
    fn continuous_source_overflows_slow_pipeline() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("readout", SourceMode::Continuous);
        let slow = b.add_stage("slow", 1);
        b.connect(src, slow, &buf("f", 8), 4.0, 2.0, 256.0);
        let err = b.build().unwrap().run(10_000).unwrap_err();
        assert!(matches!(err, SimError::SourceOverflow { .. }), "{err}");
    }

    #[test]
    fn continuous_source_ok_when_pipeline_keeps_pace() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("readout", SourceMode::Continuous);
        let fast = b.add_stage("fast", 1);
        b.connect(src, fast, &buf("f", 8), 2.0, 2.0, 256.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        assert_eq!(report.stage("readout").unwrap().stalled_cycles, 0);
    }

    #[test]
    fn pipeline_depth_defers_production() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let deep = b.add_stage("deep", 8);
        let sink = b.add_stage("sink", 1);
        b.connect(src, deep, &buf("in", 64), 1.0, 1.0, 32.0);
        b.connect(deep, sink, &buf("out", 64), 1.0, 1.0, 32.0);
        let shallow_cycles = {
            let mut b2 = PipelineSimBuilder::new();
            let s = b2.add_source("src", SourceMode::Elastic);
            let st = b2.add_stage("shallow", 1);
            let sk = b2.add_stage("sink", 1);
            b2.connect(s, st, &buf("in", 64), 1.0, 1.0, 32.0);
            b2.connect(st, sk, &buf("out", 64), 1.0, 1.0, 32.0);
            b2.build().unwrap().run(10_000).unwrap().total_cycles
        };
        let deep_cycles = b.build().unwrap().run(10_000).unwrap().total_cycles;
        assert!(deep_cycles > shallow_cycles);
    }

    #[test]
    fn insufficient_read_ports_detected_statically() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        // Demands 4 pixels/cycle from a 1-pixel-per-word, 1-port buffer.
        let narrow = MemoryStructure::fifo("f", 16);
        b.connect(src, stage, &narrow, 1.0, 4.0, 64.0);
        let err = b.build().unwrap_err();
        assert!(
            matches!(err, SimError::InsufficientPorts { is_read: true, .. }),
            "{err}"
        );
    }

    #[test]
    fn word_packing_relaxes_port_demand() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        let wide = MemoryStructure::fifo("f", 16).with_pixels_per_word(4);
        b.connect(src, stage, &wide, 4.0, 4.0, 64.0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn graph_cycle_rejected() {
        let mut b = PipelineSimBuilder::new();
        let a = b.add_stage("a", 1);
        let c = b.add_stage("c", 1);
        b.connect(a, c, &buf("ab", 8), 1.0, 1.0, 8.0);
        b.connect(c, a, &buf("ba", 8), 1.0, 1.0, 8.0);
        let err = b.build().unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn fan_out_feeds_two_consumers() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let left = b.add_stage("left", 1);
        let right = b.add_stage("right", 1);
        b.connect(src, left, &buf("l", 16), 2.0, 2.0, 64.0);
        b.connect(src, right, &buf("r", 16), 2.0, 2.0, 64.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        assert!((report.buffer("l").unwrap().pixels_read - 64.0).abs() < 1e-6);
        assert!((report.buffer("r").unwrap().pixels_read - 64.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 1.0, 1.0, 1_000_000.0);
        let err = b.build().unwrap().run(10).unwrap_err();
        assert!(matches!(err, SimError::CycleLimitExceeded { limit: 10 }));
    }

    #[test]
    fn fractional_rates_fire_every_other_cycle() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 0.5, 0.5, 32.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        // 32 pixels at 0.5/cycle = 64 firings.
        assert!(report.total_cycles >= 64);
    }

    #[test]
    fn read_reuse_multiplies_statistics_only() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stencil", 1);
        // A 3×3 stencil re-reads each fresh pixel 9 times on average.
        b.connect_with_reuse(src, stage, &buf("lb", 16), 1.0, 1.0, 64.0, 9.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        let lb = report.buffer("lb").unwrap();
        assert!((lb.pixels_written - 64.0).abs() < 1e-6);
        assert!((lb.pixels_read - 576.0).abs() < 1e-6);
    }

    #[test]
    fn tolerance_scales_with_volume_and_respects_rates() {
        // Mid-size edge: proportional to the token volume.
        assert!((flow_tolerance(256.0, 4.0) - 256.0 * REL_EPS).abs() < 1e-18);
        // Large frame: grows with the volume but stays far below a pixel.
        let big = flow_tolerance(2.0e7, 4096.0);
        assert!(big > 1e-4 && big <= MAX_EPS, "big-frame tol {big}");
        // Sub-microtoken rates: the tolerance must sit well below the
        // per-cycle amounts or flow control stops waiting for tokens.
        let tiny = flow_tolerance(3e-6, 1e-6);
        assert!(tiny < 1e-6 / 2.0, "tiny-rate tol {tiny}");
        assert!(tiny >= MIN_EPS);
    }

    /// Regression: with the old absolute 1e-6 tolerance, sub-microtoken
    /// rates were invisible — `need - EPS` went negative, consumers
    /// fired without waiting for tokens, and `total - EPS` declared the
    /// edge done a whole firing early, silently losing a third of the
    /// traffic here.
    #[test]
    fn sub_microtoken_rates_flow_exactly() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 1e-6, 1e-6, 3e-6);
        let report = b.build().unwrap().run(10_000).unwrap();
        // Three full producer firings (the old absolute tolerance
        // declared the edge done after two).
        assert!(report.total_cycles >= 3, "cycles {}", report.total_cycles);
        assert_eq!(report.stage("src").unwrap().active_cycles, 3);
        let f = report.buffer("f").unwrap();
        assert!(
            (f.pixels_written - 3e-6).abs() < 1e-12,
            "{}",
            f.pixels_written
        );
        assert!((f.pixels_read - 3e-6).abs() < 1e-12, "{}", f.pixels_read);
    }

    /// Regression companion at the other end of the scale: O(10⁷)
    /// tokens moved at a fractional rate must complete and conserve
    /// pixels within the relative tolerance (absolute comparisons sit
    /// in accumulated-drift territory at this magnitude).
    #[test]
    fn ten_million_tokens_conserved_at_fractional_rates() {
        let rate = 3333.37; // fractional: every firing rounds the sums
        let firings = 4000.0;
        let total = rate * firings; // ≈ 1.33e7 pixels
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Continuous);
        let stage = b.add_stage("stage", 1);
        let wide = MemoryStructure::fifo("f", 16_384)
            .with_pixels_per_word(512)
            .with_ports(8, 8);
        b.connect(src, stage, &wide, rate, rate, total);
        let report = b.build().unwrap().run(100_000).unwrap();
        assert!(report.total_cycles >= firings as u64);
        let f = report.buffer("f").unwrap();
        let slack = total * REL_EPS;
        assert!(
            (f.pixels_written - total).abs() <= slack,
            "{}",
            f.pixels_written
        );
        assert!((f.pixels_read - total).abs() <= slack, "{}", f.pixels_read);
        assert!(f.peak_occupancy <= 16_384.0 + slack, "{}", f.peak_occupancy);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 4.0, 2.0, 64.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        let peak = report.buffer("f").unwrap().peak_occupancy;
        assert!(peak > 2.0 && peak <= 16.0, "peak {peak}");
    }

    /// Counting allocator for the zero-allocation hot-loop test: every
    /// heap allocation on the calling thread bumps a thread-local
    /// counter (thread-local so the parallel test harness can't
    /// pollute the count).
    mod counting_alloc {
        use std::alloc::{GlobalAlloc, Layout, System};
        use std::cell::Cell;

        thread_local! {
            static ALLOCS: Cell<u64> = const { Cell::new(0) };
        }

        pub struct Counting;

        // SAFETY: delegates verbatim to `System`; the counter is a
        // const-initialised thread-local Cell, so bumping it performs
        // no allocation (no recursion) and `try_with` tolerates
        // teardown-time calls.
        unsafe impl GlobalAlloc for Counting {
            unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
                unsafe { System.alloc(layout) }
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                unsafe { System.dealloc(ptr, layout) }
            }
        }

        #[global_allocator]
        static COUNTING: Counting = Counting;

        /// Allocations performed by this thread so far.
        pub fn allocations() -> u64 {
            ALLOCS.with(Cell::get)
        }
    }

    /// The steady-state stepping loop must not allocate: a clean run's
    /// allocation count is independent of how many cycles it steps.
    /// Two otherwise-identical pipelines whose token totals differ 10×
    /// (≈330 vs ≈3300 cycles) must allocate exactly the same number of
    /// times — state setup, scratch, and report assembly are identical,
    /// so any difference could only come from per-cycle allocations
    /// (e.g. the `String` clones that used to sit in the stepping
    /// path).
    #[test]
    fn steady_state_run_performs_zero_per_cycle_allocations() {
        fn run_allocs(total: f64) -> u64 {
            let mut b = PipelineSimBuilder::new();
            let src = b.add_source("src", SourceMode::Elastic);
            let mid = b.add_stage("mid", 2);
            let sink = b.add_stage("sink", 1);
            b.connect(src, mid, &buf("in", 16), 1.0, 1.0, total);
            b.connect(mid, sink, &buf("out", 16), 1.0, 1.0, total);
            let sim = b.build().unwrap();
            let before = counting_alloc::allocations();
            let report = sim.run(10_000_000).unwrap();
            let after = counting_alloc::allocations();
            assert!(report.total_cycles as f64 >= total);
            after - before
        }
        let short = run_allocs(256.0);
        let long = run_allocs(2560.0);
        assert_eq!(
            short, long,
            "allocation count must not grow with cycle count"
        );
    }

    /// A stall-shaped pipeline: continuous readout at a fractional
    /// (quasi-periodic) rate feeding a three-stage chain, sized so a
    /// run spans many thousands of readout periods.
    fn quasi_periodic_sim(src_rate: f64, total_scale: f64) -> PipelineSim {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("readout", SourceMode::Continuous);
        let ds = b.add_stage("down", 2);
        let fs = b.add_stage("sub", 2);
        let dnn = b.add_stage("dnn", 16);
        b.connect(
            src,
            ds,
            &buf("b0", 1280),
            src_rate,
            4.0,
            2560.0 * total_scale,
        );
        b.connect(ds, fs, &buf("b1", 1280), 1.0, 1.0, 640.0 * total_scale);
        b.connect(
            fs,
            dnn,
            &buf("b2", 1312),
            1.0,
            0.2417776703,
            640.0 * total_scale,
        );
        b.build().unwrap()
    }

    #[test]
    fn run_check_agrees_with_exact_run_on_passing_sims() {
        // Long enough that the steady-state early pass engages
        // (hundreds of readout periods) yet cheap to also run exactly.
        for scale in [1.0, 40.0] {
            let sim = quasi_periodic_sim(0.095183500072, scale);
            sim.run(100_000_000)
                .unwrap_or_else(|e| panic!("exact run must pass at scale {scale}: {e}"));
            sim.run_check(100_000_000)
                .unwrap_or_else(|e| panic!("run_check must pass at scale {scale}: {e}"));
        }
    }

    #[test]
    fn run_check_reproduces_exact_failure_diagnoses() {
        // Overflow: readout faster than the chain can drain.
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("readout", SourceMode::Continuous);
        let slow = b.add_stage("slow", 1);
        b.connect(src, slow, &buf("f", 8), 4.0, 2.0, 25600.0);
        let sim = b.build().unwrap();
        let exact = sim.run(10_000).unwrap_err();
        let check = sim.run_check(10_000).unwrap_err();
        assert_eq!(exact.to_string(), check.to_string());

        // Cycle limit: budget far below the frame length.
        let sim = quasi_periodic_sim(0.095183500072, 40.0);
        let exact = sim.run(5_000).unwrap_err();
        let check = sim.run_check(5_000).unwrap_err();
        assert!(
            matches!(exact, SimError::CycleLimitExceeded { .. }),
            "{exact}"
        );
        assert_eq!(exact.to_string(), check.to_string());
    }

    #[test]
    fn run_check_budget_guard_defers_to_cycle_limit() {
        // Budget large enough for steady-state detection (≳256 readout
        // periods ≈ 11k cycles) but below the full frame: the early
        // pass must not claim `Done` where the exact run would report
        // the cycle limit.
        let sim = quasi_periodic_sim(0.095183500072, 40.0);
        let exact = sim.run(40_000).unwrap_err();
        let check = sim.run_check(40_000).unwrap_err();
        assert!(
            matches!(exact, SimError::CycleLimitExceeded { .. }),
            "{exact}"
        );
        assert_eq!(exact.to_string(), check.to_string());
    }
}
