//! The cycle-level pipeline simulation engine (paper Sec. 3.3, 4.1).
//!
//! The digital part of a computational CIS is a dataflow graph: compute
//! units connected through memory structures. CamJ simulates it cycle by
//! cycle to (1) verify the pipeline never stalls against the constant-
//! rate pixel readout, (2) measure the digital latency `T_D` that the
//! analog delay estimator subtracts from the frame budget, and (3) count
//! the per-unit active cycles and per-memory accesses that the energy
//! equations consume.
//!
//! ## Token model
//!
//! Pixels flow as *fluid* token quantities (`f64`): each unit fires at
//! most once per cycle, consuming `consumer_rate` pixels from every
//! in-edge and producing `producer_rate` pixels into every out-edge
//! (after its pipeline has filled). Fractional rates model units that
//! fire every few cycles. Cycle counts, stall detection, and access
//! totals are exact; sub-cycle interleaving inside one unit is not
//! modelled — the same fidelity class as the paper's simulator, which
//! tracks shapes per cycle, not bit-level timing.
//!
//! ## Sources
//!
//! A [`SourceMode::Continuous`] source models the pixel readout: light
//! arrives whether or not the pipeline is ready, so a full output buffer
//! is an immediate [`SimError::SourceOverflow`]. A [`SourceMode::Elastic`]
//! source waits politely — used when measuring best-case digital latency.

use camj_tech::units::Time;

use crate::memory::MemoryStructure;

use super::error::SimError;
use super::report::{BufferStats, SimReport, StageStats};

/// Relative scale of the fluid-token comparison tolerance, see
/// [`flow_tolerance`].
const REL_EPS: f64 = 1e-8;
/// Tolerance floor: guards edges whose totals are far below one pixel.
const MIN_EPS: f64 = 1e-12;
/// Tolerance ceiling: even the largest edge never gets a slack
/// approaching one pixel.
const MAX_EPS: f64 = 1e-2;

/// Tolerance for fluid-token comparisons on an edge moving `total`
/// pixels with `min_rate` as its slower per-cycle rate.
///
/// Fractional rates accumulate floating-point error over millions of
/// cycles, and the error is proportional to the magnitude of the
/// accumulators — an absolute epsilon either drowns sub-pixel rates
/// (too large) or trips on drift at O(10⁷)-pixel frames (too small).
/// The tolerance therefore scales with the edge's token volume,
/// clamped to [`MIN_EPS`]..[`MAX_EPS`] and capped well below the edge's
/// slower rate so flow control (which compares against per-cycle
/// amounts) is never swamped.
fn flow_tolerance(total: f64, min_rate: f64) -> f64 {
    let scale = (total * REL_EPS).clamp(MIN_EPS, MAX_EPS);
    scale.min(0.25 * min_rate).max(MIN_EPS)
}

/// Handle to a node added to a [`PipelineSimBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// How a source behaves when its output buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceMode {
    /// Pixel readout: cannot be backpressured; overflow is an error.
    Continuous,
    /// Waits for space; used for latency measurement.
    Elastic,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Source { mode: SourceMode },
    Stage { pipeline_depth: u32 },
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
    in_edges: Vec<usize>,
    out_edges: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Edge {
    name: String,
    capacity: f64,
    producer_rate: f64,
    consumer_rate: f64,
    total: f64,
    pixels_per_word: f64,
    read_ports: u32,
    write_ports: u32,
    /// Physical reads per fresh pixel consumed (stencil-window reuse,
    /// weight re-reads): flow control moves fresh pixels, the energy
    /// statistics multiply by this factor.
    reads_per_pixel: f64,
    /// Precomputed [`flow_tolerance`] — rates and totals are immutable
    /// after construction, and the simulation loop compares against
    /// this every edge every cycle.
    tolerance: f64,
}

impl Edge {
    /// This edge's fluid-token comparison tolerance.
    fn tol(&self) -> f64 {
        self.tolerance
    }
}

#[derive(Debug, Clone, Default)]
struct EdgeState {
    produced: f64,
    consumed: f64,
    peak: f64,
}

impl EdgeState {
    /// Buffer occupancy, derived from the two accumulators so that
    /// float drift can never make it inconsistent with them.
    fn level(&self) -> f64 {
        (self.produced - self.consumed).max(0.0)
    }
}

#[derive(Debug, Clone, Default)]
struct NodeState {
    fired: u64,
    stalled: u64,
}

/// Builder assembling a digital pipeline graph for simulation.
///
/// # Examples
///
/// ```
/// use camj_digital::memory::MemoryStructure;
/// use camj_digital::sim::{PipelineSimBuilder, SourceMode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // ADC feeds an edge-detection unit through a 3-row line buffer.
/// let mut b = PipelineSimBuilder::new();
/// let adc = b.add_source("ADC", SourceMode::Elastic);
/// let edge = b.add_stage("EdgeUnit", 2);
/// // The buffer's word width and ports must cover the per-cycle rates:
/// let lb = MemoryStructure::line_buffer("lb", 3, 16).with_pixels_per_word(16);
/// b.connect(
///     adc,
///     edge,
///     &lb,
///     16.0, // ADC writes one 16-pixel row per firing
///     16.0, // edge unit reads a row's worth per firing
///     16.0 * 16.0,
/// );
/// let report = b.build()?.run(100_000)?;
/// assert!(report.total_cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct PipelineSimBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl PipelineSimBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a data source (pixel readout, DMA engine, …).
    pub fn add_source(&mut self, name: impl Into<String>, mode: SourceMode) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            kind: NodeKind::Source { mode },
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a compute stage with the given pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if `pipeline_depth` is zero.
    pub fn add_stage(&mut self, name: impl Into<String>, pipeline_depth: u32) -> NodeId {
        assert!(pipeline_depth > 0, "pipeline depth must be at least 1");
        self.nodes.push(Node {
            name: name.into(),
            kind: NodeKind::Stage { pipeline_depth },
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Connects `from` to `to` through `buffer`, transferring
    /// `total_pixels` per frame: the producer pushes `producer_rate`
    /// pixels per firing, the consumer pops `consumer_rate` per firing.
    ///
    /// # Panics
    ///
    /// Panics if rates or totals are negative/non-finite, or if the node
    /// handles do not belong to this builder.
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        buffer: &MemoryStructure,
        producer_rate: f64,
        consumer_rate: f64,
        total_pixels: f64,
    ) {
        self.connect_with_reuse(
            from,
            to,
            buffer,
            producer_rate,
            consumer_rate,
            total_pixels,
            1.0,
        );
    }

    /// Like [`Self::connect`], but each fresh pixel consumed counts as
    /// `reads_per_pixel` physical reads in the buffer statistics —
    /// modelling stencil-window reuse out of a line buffer or weight
    /// re-reads out of a DNN buffer without inflating the flow control.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::connect`], or if
    /// `reads_per_pixel` is negative or non-finite.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with_reuse(
        &mut self,
        from: NodeId,
        to: NodeId,
        buffer: &MemoryStructure,
        producer_rate: f64,
        consumer_rate: f64,
        total_pixels: f64,
        reads_per_pixel: f64,
    ) {
        assert!(
            reads_per_pixel.is_finite() && reads_per_pixel >= 0.0,
            "reads per pixel must be non-negative and finite, got {reads_per_pixel}"
        );
        assert!(from.0 < self.nodes.len(), "unknown producer node");
        assert!(to.0 < self.nodes.len(), "unknown consumer node");
        assert!(
            producer_rate.is_finite() && producer_rate > 0.0,
            "producer rate must be positive and finite, got {producer_rate}"
        );
        assert!(
            consumer_rate.is_finite() && consumer_rate > 0.0,
            "consumer rate must be positive and finite, got {consumer_rate}"
        );
        assert!(
            total_pixels.is_finite() && total_pixels >= 0.0,
            "total pixels must be non-negative and finite, got {total_pixels}"
        );
        let idx = self.edges.len();
        self.edges.push(Edge {
            name: buffer.name().to_owned(),
            capacity: buffer.capacity_pixels() as f64,
            producer_rate,
            consumer_rate,
            total: total_pixels,
            pixels_per_word: f64::from(buffer.pixels_per_word()),
            read_ports: buffer.read_ports(),
            write_ports: buffer.write_ports(),
            reads_per_pixel,
            tolerance: flow_tolerance(total_pixels, producer_rate.min(consumer_rate)),
        });
        self.nodes[from.0].out_edges.push(idx);
        self.nodes[to.0].in_edges.push(idx);
    }

    /// Validates the graph and produces a runnable simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InsufficientPorts`] if any unit's per-cycle
    /// word demand exceeds a buffer's ports (stall scenario 3), or
    /// [`SimError::Deadlock`] (cycle 0) if the graph contains a cycle.
    pub fn build(self) -> Result<PipelineSim, SimError> {
        // Static port checks.
        for edge in &self.edges {
            let write_words = (edge.producer_rate / edge.pixels_per_word).ceil() as u64;
            if write_words > u64::from(edge.write_ports) {
                return Err(SimError::InsufficientPorts {
                    buffer: edge.name.clone(),
                    demanded_words_per_cycle: write_words,
                    ports: edge.write_ports,
                    is_read: false,
                });
            }
            let read_words = (edge.consumer_rate / edge.pixels_per_word).ceil() as u64;
            if read_words > u64::from(edge.read_ports) {
                return Err(SimError::InsufficientPorts {
                    buffer: edge.name.clone(),
                    demanded_words_per_cycle: read_words,
                    ports: edge.read_ports,
                    is_read: true,
                });
            }
        }
        // Topological order (Kahn); a residual node means a graph cycle.
        let order = topo_order(&self.nodes).ok_or_else(|| SimError::Deadlock {
            cycle: 0,
            stage: "<graph>".into(),
            reason: "the digital pipeline graph contains a cycle".into(),
        })?;
        Ok(PipelineSim {
            nodes: self.nodes,
            edges: self.edges,
            order,
        })
    }
}

fn topo_order(nodes: &[Node]) -> Option<Vec<usize>> {
    // Build per-node predecessor counts through edges.
    let mut incoming = vec![0usize; nodes.len()];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        for &e in &node.out_edges {
            for (j, other) in nodes.iter().enumerate() {
                if other.in_edges.contains(&e) {
                    incoming[j] += 1;
                    consumers[i].push(j);
                }
            }
        }
    }
    let mut ready: Vec<usize> = (0..nodes.len()).filter(|&i| incoming[i] == 0).collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(i) = ready.pop() {
        order.push(i);
        for &j in &consumers[i] {
            incoming[j] -= 1;
            if incoming[j] == 0 {
                ready.push(j);
            }
        }
    }
    (order.len() == nodes.len()).then_some(order)
}

/// A runnable cycle-level pipeline simulation.
#[derive(Debug)]
pub struct PipelineSim {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    order: Vec<usize>,
}

impl PipelineSim {
    /// Runs the simulation for at most `max_cycles` cycles.
    ///
    /// # Errors
    ///
    /// * [`SimError::SourceOverflow`] — a continuous source hit a full
    ///   buffer (the pipeline cannot sustain the readout rate),
    /// * [`SimError::Deadlock`] — no unit can make progress,
    /// * [`SimError::CycleLimitExceeded`] — the frame did not finish
    ///   within `max_cycles`.
    pub fn run(&self, max_cycles: u64) -> Result<SimReport, SimError> {
        let mut node_states = vec![NodeState::default(); self.nodes.len()];
        let mut edge_states = vec![EdgeState::default(); self.edges.len()];

        let mut cycle: u64 = 0;
        let mut fired_sources: Vec<usize> = Vec::new();
        loop {
            if self.all_done(&edge_states) {
                break;
            }
            if cycle >= max_cycles {
                return Err(SimError::CycleLimitExceeded { limit: max_cycles });
            }
            let mut any_fired = false;
            let mut only_sources_fired = true;
            fired_sources.clear();
            for &ni in &self.order {
                let node = &self.nodes[ni];
                if self.node_done(node, &edge_states) {
                    continue;
                }
                let can = self.can_fire(node, &node_states[ni], &edge_states);
                if can {
                    self.fire(ni, &mut node_states, &mut edge_states);
                    any_fired = true;
                    if matches!(node.kind, NodeKind::Source { .. }) {
                        fired_sources.push(ni);
                    } else {
                        only_sources_fired = false;
                    }
                } else {
                    node_states[ni].stalled += 1;
                    if let NodeKind::Source {
                        mode: SourceMode::Continuous,
                    } = node.kind
                    {
                        let buffer = node
                            .out_edges
                            .iter()
                            .find(|&&e| {
                                let st = &edge_states[e];
                                let ed = &self.edges[e];
                                st.produced < ed.total - ed.tol()
                                    && ed.capacity - st.level()
                                        < ed.producer_rate.min(ed.total - st.produced) - ed.tol()
                            })
                            .map(|&e| self.edges[e].name.clone())
                            .unwrap_or_else(|| "<unknown>".into());
                        return Err(SimError::SourceOverflow {
                            cycle,
                            source: node.name.clone(),
                            buffer,
                        });
                    }
                }
            }
            if !any_fired {
                let (stage, reason) = self.diagnose_block(&edge_states);
                return Err(SimError::Deadlock {
                    cycle,
                    stage,
                    reason,
                });
            }
            cycle += 1;
            // Idle fast-forward: when only sources made progress, every
            // consumer is waiting for tokens to accumulate. Rates are
            // constant, so the next `k−1` cycles are identical source
            // firings — apply them in one step. Exact: token totals and
            // firing counts match the cycle-by-cycle execution.
            if only_sources_fired && !fired_sources.is_empty() {
                let k = self.idle_skip_cycles(&fired_sources, &edge_states);
                if k > 1 {
                    for &si in &fired_sources {
                        self.fire_source_batch(si, k - 1, &mut node_states, &mut edge_states);
                    }
                    cycle += k - 1;
                }
            }
        }

        Ok(SimReport {
            total_cycles: cycle,
            stages: self
                .nodes
                .iter()
                .zip(&node_states)
                .map(|(n, s)| StageStats {
                    name: n.name.clone(),
                    active_cycles: s.fired,
                    stalled_cycles: s.stalled,
                })
                .collect(),
            buffers: self
                .edges
                .iter()
                .zip(&edge_states)
                .map(|(e, s)| BufferStats {
                    name: e.name.clone(),
                    pixels_written: s.produced,
                    pixels_read: s.consumed * e.reads_per_pixel,
                    peak_occupancy: s.peak,
                })
                .collect(),
        })
    }

    /// Convenience wrapper measuring digital latency `T_D` at `clock_hz`.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from [`Self::run`].
    pub fn digital_latency(&self, clock_hz: f64, max_cycles: u64) -> Result<Time, SimError> {
        Ok(self.run(max_cycles)?.digital_latency(clock_hz))
    }

    fn all_done(&self, edge_states: &[EdgeState]) -> bool {
        self.edges
            .iter()
            .zip(edge_states)
            .all(|(e, s)| s.produced >= e.total - e.tol() && s.consumed >= e.total - e.tol())
    }

    fn node_done(&self, node: &Node, edge_states: &[EdgeState]) -> bool {
        let out_done = node
            .out_edges
            .iter()
            .all(|&e| edge_states[e].produced >= self.edges[e].total - self.edges[e].tol());
        let in_done = node
            .in_edges
            .iter()
            .all(|&e| edge_states[e].consumed >= self.edges[e].total - self.edges[e].tol());
        out_done && in_done
    }

    fn production_enabled(&self, node: &Node, state: &NodeState) -> bool {
        match node.kind {
            NodeKind::Source { .. } => true,
            NodeKind::Stage { pipeline_depth } => state.fired + 1 >= u64::from(pipeline_depth),
        }
    }

    fn can_fire(&self, node: &Node, state: &NodeState, edge_states: &[EdgeState]) -> bool {
        // Inputs: every unfinished in-edge must hold enough pixels —
        // unless the inputs are exhausted (drain phase).
        for &e in &node.in_edges {
            let ed = &self.edges[e];
            let st = &edge_states[e];
            if st.consumed >= ed.total - ed.tol() {
                continue;
            }
            let need = ed.consumer_rate.min(ed.total - st.consumed);
            if st.level() < need - ed.tol() {
                return false;
            }
        }
        // Outputs: every unfinished out-edge must have space, once the
        // pipeline has filled.
        if self.production_enabled(node, state) {
            for &e in &node.out_edges {
                let ed = &self.edges[e];
                let st = &edge_states[e];
                if st.produced >= ed.total - ed.tol() {
                    continue;
                }
                let amount = ed.producer_rate.min(ed.total - st.produced);
                if ed.capacity - st.level() < amount - ed.tol() {
                    return false;
                }
            }
        }
        // A node with nothing left to consume and production disabled (or
        // nothing left to produce) must not spin; node_done covers the
        // fully-finished case, so here at least one side has work.
        true
    }

    fn fire(&self, ni: usize, node_states: &mut [NodeState], edge_states: &mut [EdgeState]) {
        let node = &self.nodes[ni];
        for &e in &node.in_edges {
            let ed = &self.edges[e];
            let st = &mut edge_states[e];
            if st.consumed >= ed.total - ed.tol() {
                continue;
            }
            // Clamp to the actual level so float drift can never push the
            // buffer negative (can_fire guaranteed level ≥ amount − EPS).
            let amount = ed.consumer_rate.min(ed.total - st.consumed).min(st.level());
            st.consumed += amount;
        }
        if self.production_enabled(node, &node_states[ni]) {
            for &e in &node.out_edges {
                let ed = &self.edges[e];
                let st = &mut edge_states[e];
                if st.produced >= ed.total - ed.tol() {
                    continue;
                }
                let amount = ed.producer_rate.min(ed.total - st.produced);
                st.produced += amount;
                st.peak = st.peak.max(st.level());
            }
        }
        node_states[ni].fired += 1;
    }

    /// How many identical cycles can be skipped while only sources fire:
    /// bounded by (a) the first consumer in-edge reaching its need,
    /// (b) any firing source filling its buffer, and (c) any firing
    /// source exhausting its total.
    fn idle_skip_cycles(&self, fired_sources: &[usize], edge_states: &[EdgeState]) -> u64 {
        const MAX_SKIP: u64 = 1 << 40;
        let mut k = MAX_SKIP;
        let source_edges = fired_sources
            .iter()
            .flat_map(|&si| self.nodes[si].out_edges.iter().copied());
        // (a) consumer deficits on source-fed edges.
        for e in source_edges.clone() {
            let ed = &self.edges[e];
            let st = &edge_states[e];
            if st.consumed >= ed.total - ed.tol() {
                continue;
            }
            let need = ed.consumer_rate.min(ed.total - st.consumed);
            let deficit = need - st.level();
            if deficit > ed.tol() && ed.producer_rate > 0.0 {
                k = k.min((deficit / ed.producer_rate).ceil() as u64);
            }
        }
        if k == MAX_SKIP {
            return 1;
        }
        // (b) capacity and (c) totals on every firing source's out-edges.
        for e in source_edges {
            let ed = &self.edges[e];
            let st = &edge_states[e];
            if st.produced >= ed.total - ed.tol() {
                continue;
            }
            let headroom = ((ed.capacity - st.level()) / ed.producer_rate).floor() as u64;
            let remaining = ((ed.total - st.produced) / ed.producer_rate).ceil() as u64;
            k = k.min(headroom.max(1)).min(remaining.max(1));
        }
        k.max(1)
    }

    /// Applies `times` identical firings of a source in one batched step.
    fn fire_source_batch(
        &self,
        si: usize,
        times: u64,
        node_states: &mut [NodeState],
        edge_states: &mut [EdgeState],
    ) {
        let node = &self.nodes[si];
        for &e in &node.out_edges {
            let ed = &self.edges[e];
            let st = &mut edge_states[e];
            if st.produced >= ed.total - ed.tol() {
                continue;
            }
            let amount = (ed.producer_rate * times as f64).min(ed.total - st.produced);
            st.produced += amount;
            st.peak = st.peak.max(st.level());
        }
        node_states[si].fired += times;
    }

    fn diagnose_block(&self, edge_states: &[EdgeState]) -> (String, String) {
        for node in &self.nodes {
            if self.node_done(node, edge_states) {
                continue;
            }
            for &e in &node.in_edges {
                let ed = &self.edges[e];
                let st = &edge_states[e];
                if st.consumed < ed.total - ed.tol() {
                    let need = ed.consumer_rate.min(ed.total - st.consumed);
                    if st.level() < need - ed.tol() {
                        return (
                            node.name.clone(),
                            format!(
                                "is starved on buffer '{}' (needs {:.1} pixels, has {:.1})",
                                ed.name,
                                need,
                                st.level()
                            ),
                        );
                    }
                }
            }
            for &e in &node.out_edges {
                let ed = &self.edges[e];
                let st = &edge_states[e];
                if st.produced < ed.total - ed.tol() {
                    let amount = ed.producer_rate.min(ed.total - st.produced);
                    if ed.capacity - st.level() < amount - ed.tol() {
                        return (
                            node.name.clone(),
                            format!("is blocked on full buffer '{}'", ed.name),
                        );
                    }
                }
            }
        }
        ("<unknown>".into(), "no progress".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(name: &str, capacity: u64) -> MemoryStructure {
        // Generous ports: these tests exercise dataflow, not port limits.
        MemoryStructure::fifo(name, capacity).with_ports(8, 8)
    }

    #[test]
    fn linear_pipeline_completes() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 4.0, 4.0, 256.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        // 256 pixels at 4/cycle = 64 producer firings; consumer trails by 1.
        assert!(report.total_cycles >= 64 && report.total_cycles <= 66);
        assert_eq!(report.stage("src").unwrap().active_cycles, 64);
        let f = report.buffer("f").unwrap();
        assert!((f.pixels_written - 256.0).abs() < 1e-6);
        assert!((f.pixels_read - 256.0).abs() < 1e-6);
    }

    #[test]
    fn rate_mismatch_throttles_pipeline() {
        // Consumer half as fast as producer with a small buffer: the
        // elastic source adapts; total time set by the consumer.
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let slow = b.add_stage("slow", 1);
        b.connect(src, slow, &buf("f", 8), 4.0, 2.0, 256.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        // Consumer needs 128 firings.
        assert!(report.total_cycles >= 128);
        assert!(report.stage("src").unwrap().stalled_cycles > 0);
    }

    #[test]
    fn continuous_source_overflows_slow_pipeline() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("readout", SourceMode::Continuous);
        let slow = b.add_stage("slow", 1);
        b.connect(src, slow, &buf("f", 8), 4.0, 2.0, 256.0);
        let err = b.build().unwrap().run(10_000).unwrap_err();
        assert!(matches!(err, SimError::SourceOverflow { .. }), "{err}");
    }

    #[test]
    fn continuous_source_ok_when_pipeline_keeps_pace() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("readout", SourceMode::Continuous);
        let fast = b.add_stage("fast", 1);
        b.connect(src, fast, &buf("f", 8), 2.0, 2.0, 256.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        assert_eq!(report.stage("readout").unwrap().stalled_cycles, 0);
    }

    #[test]
    fn pipeline_depth_defers_production() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let deep = b.add_stage("deep", 8);
        let sink = b.add_stage("sink", 1);
        b.connect(src, deep, &buf("in", 64), 1.0, 1.0, 32.0);
        b.connect(deep, sink, &buf("out", 64), 1.0, 1.0, 32.0);
        let shallow_cycles = {
            let mut b2 = PipelineSimBuilder::new();
            let s = b2.add_source("src", SourceMode::Elastic);
            let st = b2.add_stage("shallow", 1);
            let sk = b2.add_stage("sink", 1);
            b2.connect(s, st, &buf("in", 64), 1.0, 1.0, 32.0);
            b2.connect(st, sk, &buf("out", 64), 1.0, 1.0, 32.0);
            b2.build().unwrap().run(10_000).unwrap().total_cycles
        };
        let deep_cycles = b.build().unwrap().run(10_000).unwrap().total_cycles;
        assert!(deep_cycles > shallow_cycles);
    }

    #[test]
    fn insufficient_read_ports_detected_statically() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        // Demands 4 pixels/cycle from a 1-pixel-per-word, 1-port buffer.
        let narrow = MemoryStructure::fifo("f", 16);
        b.connect(src, stage, &narrow, 1.0, 4.0, 64.0);
        let err = b.build().unwrap_err();
        assert!(
            matches!(err, SimError::InsufficientPorts { is_read: true, .. }),
            "{err}"
        );
    }

    #[test]
    fn word_packing_relaxes_port_demand() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        let wide = MemoryStructure::fifo("f", 16).with_pixels_per_word(4);
        b.connect(src, stage, &wide, 4.0, 4.0, 64.0);
        assert!(b.build().is_ok());
    }

    #[test]
    fn graph_cycle_rejected() {
        let mut b = PipelineSimBuilder::new();
        let a = b.add_stage("a", 1);
        let c = b.add_stage("c", 1);
        b.connect(a, c, &buf("ab", 8), 1.0, 1.0, 8.0);
        b.connect(c, a, &buf("ba", 8), 1.0, 1.0, 8.0);
        let err = b.build().unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn fan_out_feeds_two_consumers() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let left = b.add_stage("left", 1);
        let right = b.add_stage("right", 1);
        b.connect(src, left, &buf("l", 16), 2.0, 2.0, 64.0);
        b.connect(src, right, &buf("r", 16), 2.0, 2.0, 64.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        assert!((report.buffer("l").unwrap().pixels_read - 64.0).abs() < 1e-6);
        assert!((report.buffer("r").unwrap().pixels_read - 64.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 1.0, 1.0, 1_000_000.0);
        let err = b.build().unwrap().run(10).unwrap_err();
        assert!(matches!(err, SimError::CycleLimitExceeded { limit: 10 }));
    }

    #[test]
    fn fractional_rates_fire_every_other_cycle() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 0.5, 0.5, 32.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        // 32 pixels at 0.5/cycle = 64 firings.
        assert!(report.total_cycles >= 64);
    }

    #[test]
    fn read_reuse_multiplies_statistics_only() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stencil", 1);
        // A 3×3 stencil re-reads each fresh pixel 9 times on average.
        b.connect_with_reuse(src, stage, &buf("lb", 16), 1.0, 1.0, 64.0, 9.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        let lb = report.buffer("lb").unwrap();
        assert!((lb.pixels_written - 64.0).abs() < 1e-6);
        assert!((lb.pixels_read - 576.0).abs() < 1e-6);
    }

    #[test]
    fn tolerance_scales_with_volume_and_respects_rates() {
        // Mid-size edge: proportional to the token volume.
        assert!((flow_tolerance(256.0, 4.0) - 256.0 * REL_EPS).abs() < 1e-18);
        // Large frame: grows with the volume but stays far below a pixel.
        let big = flow_tolerance(2.0e7, 4096.0);
        assert!(big > 1e-4 && big <= MAX_EPS, "big-frame tol {big}");
        // Sub-microtoken rates: the tolerance must sit well below the
        // per-cycle amounts or flow control stops waiting for tokens.
        let tiny = flow_tolerance(3e-6, 1e-6);
        assert!(tiny < 1e-6 / 2.0, "tiny-rate tol {tiny}");
        assert!(tiny >= MIN_EPS);
    }

    /// Regression: with the old absolute 1e-6 tolerance, sub-microtoken
    /// rates were invisible — `need - EPS` went negative, consumers
    /// fired without waiting for tokens, and `total - EPS` declared the
    /// edge done a whole firing early, silently losing a third of the
    /// traffic here.
    #[test]
    fn sub_microtoken_rates_flow_exactly() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 1e-6, 1e-6, 3e-6);
        let report = b.build().unwrap().run(10_000).unwrap();
        // Three full producer firings (the old absolute tolerance
        // declared the edge done after two).
        assert!(report.total_cycles >= 3, "cycles {}", report.total_cycles);
        assert_eq!(report.stage("src").unwrap().active_cycles, 3);
        let f = report.buffer("f").unwrap();
        assert!(
            (f.pixels_written - 3e-6).abs() < 1e-12,
            "{}",
            f.pixels_written
        );
        assert!((f.pixels_read - 3e-6).abs() < 1e-12, "{}", f.pixels_read);
    }

    /// Regression companion at the other end of the scale: O(10⁷)
    /// tokens moved at a fractional rate must complete and conserve
    /// pixels within the relative tolerance (absolute comparisons sit
    /// in accumulated-drift territory at this magnitude).
    #[test]
    fn ten_million_tokens_conserved_at_fractional_rates() {
        let rate = 3333.37; // fractional: every firing rounds the sums
        let firings = 4000.0;
        let total = rate * firings; // ≈ 1.33e7 pixels
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Continuous);
        let stage = b.add_stage("stage", 1);
        let wide = MemoryStructure::fifo("f", 16_384)
            .with_pixels_per_word(512)
            .with_ports(8, 8);
        b.connect(src, stage, &wide, rate, rate, total);
        let report = b.build().unwrap().run(100_000).unwrap();
        assert!(report.total_cycles >= firings as u64);
        let f = report.buffer("f").unwrap();
        let slack = total * REL_EPS;
        assert!(
            (f.pixels_written - total).abs() <= slack,
            "{}",
            f.pixels_written
        );
        assert!((f.pixels_read - total).abs() <= slack, "{}", f.pixels_read);
        assert!(f.peak_occupancy <= 16_384.0 + slack, "{}", f.peak_occupancy);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut b = PipelineSimBuilder::new();
        let src = b.add_source("src", SourceMode::Elastic);
        let stage = b.add_stage("stage", 1);
        b.connect(src, stage, &buf("f", 16), 4.0, 2.0, 64.0);
        let report = b.build().unwrap().run(10_000).unwrap();
        let peak = report.buffer("f").unwrap().peak_occupancy;
        assert!(peak > 2.0 && peak <= 16.0, "peak {peak}");
    }
}
