//! [`Fingerprintable`] implementations for the digital substrate.
//!
//! Compute units fingerprint their geometry and per-cycle / per-MAC
//! energies (Eq. 15); memory structures fingerprint capacity, port,
//! word-packing, and energy parameters (Eq. 16).
//!
//! Memories additionally expose a **sim view** fingerprint
//! ([`MemoryStructure::feed_sim_view`]) that deliberately *excludes*
//! the energy parameters and the power-gating fraction: the cycle-level
//! simulator only reads capacity, geometry, and ports, so two memories
//! differing only in per-word energy (e.g. the same buffer at two
//! technology nodes, or SRAM vs STT-RAM) share one elastic simulation
//! in the cross-point cache. This is what makes tech-node sweeps cheap:
//! the expensive simulation is keyed by *dataflow*, not by *energy*.

use camj_tech::fingerprint::{Fingerprintable, FpHasher};

use crate::compute::{ComputeUnit, PixelShape, SystolicArray};
use crate::memory::{MemoryEnergy, MemoryKind, MemoryStructure};

impl Fingerprintable for PixelShape {
    fn feed(&self, h: &mut FpHasher) {
        h.write_u32(self.width);
        h.write_u32(self.height);
        h.write_u32(self.channels);
    }
}

impl Fingerprintable for ComputeUnit {
    fn feed(&self, h: &mut FpHasher) {
        h.write_str(self.name());
        self.input_shape().feed(h);
        self.output_shape().feed(h);
        h.write_u32(self.num_stages());
        self.energy_per_cycle().feed(h);
    }
}

impl Fingerprintable for SystolicArray {
    fn feed(&self, h: &mut FpHasher) {
        h.write_str(self.name());
        h.write_u32(self.rows());
        h.write_u32(self.cols());
        self.node().feed(h);
        self.mac_energy().feed(h);
        h.write_f64(self.utilization());
    }
}

impl Fingerprintable for MemoryKind {
    fn feed(&self, h: &mut FpHasher) {
        h.write_tag(match self {
            MemoryKind::Fifo => 0,
            MemoryKind::LineBuffer => 1,
            MemoryKind::DoubleBuffer => 2,
        });
    }
}

impl Fingerprintable for MemoryEnergy {
    fn feed(&self, h: &mut FpHasher) {
        self.read_per_word.feed(h);
        self.write_per_word.feed(h);
        self.leakage.feed(h);
    }
}

impl Fingerprintable for MemoryStructure {
    fn feed(&self, h: &mut FpHasher) {
        self.feed_sim_view(h);
        self.energy().feed(h);
        h.write_f64(self.active_fraction());
    }
}

impl MemoryStructure {
    /// Feeds only the fields the cycle-level simulator reads: name,
    /// kind, capacity, word packing, and ports. Energy parameters and
    /// the power-gating fraction are excluded on purpose — they do not
    /// influence simulated dataflow, so memories that differ only in
    /// energy share one cached elastic simulation.
    pub fn feed_sim_view(&self, h: &mut FpHasher) {
        h.write_str(self.name());
        self.kind().feed(h);
        h.write_u64(self.capacity_pixels());
        h.write_u32(self.pixels_per_word());
        h.write_u32(self.read_ports());
        h.write_u32(self.write_ports());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camj_tech::fingerprint::Fingerprint;
    use camj_tech::node::ProcessNode;

    fn sim_view(m: &MemoryStructure) -> Fingerprint {
        let mut h = FpHasher::new();
        m.feed_sim_view(&mut h);
        h.finish()
    }

    #[test]
    fn energy_is_invisible_to_the_sim_view() {
        let base = MemoryStructure::double_buffer("fb", 1024).with_ports(2, 2);
        let pricier = base
            .clone()
            .with_energy(MemoryEnergy::from_pj_per_word(2.0, 3.0, 10.0));
        assert_eq!(sim_view(&base), sim_view(&pricier));
        assert_ne!(base.fingerprint(), pricier.fingerprint());
    }

    #[test]
    fn geometry_is_visible_to_the_sim_view() {
        let a = MemoryStructure::fifo("f", 256);
        let b = MemoryStructure::fifo("f", 512);
        assert_ne!(sim_view(&a), sim_view(&b));
    }

    #[test]
    fn active_fraction_changes_only_the_full_fingerprint() {
        let base = MemoryStructure::double_buffer("db", 512);
        let gated = base.clone().with_active_fraction(0.1);
        assert_eq!(sim_view(&base), sim_view(&gated));
        assert_ne!(base.fingerprint(), gated.fingerprint());
    }

    #[test]
    fn compute_units_fingerprint_their_energy() {
        use camj_tech::units::Energy;
        let a = ComputeUnit::new("pe", [1, 1, 1], [1, 1, 1], 2);
        let b = a
            .clone()
            .with_energy_per_cycle(Energy::from_picojoules(3.0));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn systolic_node_scaling_is_captured() {
        let a = SystolicArray::new("dnn", 16, 16, ProcessNode::N65);
        let b = SystolicArray::new("dnn", 16, 16, ProcessNode::N22);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
