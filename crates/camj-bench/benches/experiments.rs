//! Criterion benches over whole experiments: the cost of regenerating
//! each paper artifact (the practical unit of architectural iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camj_tech::node::ProcessNode;
use camj_workloads::configs::SensorVariant;
use camj_workloads::validation::validate_all;
use camj_workloads::{edgaze, rhythmic};

fn bench_validation_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig7_nine_chip_validation", |b| {
        b.iter(|| black_box(validate_all().expect("validates")))
    });
    g.finish();
}

fn bench_design_space(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    // One full Fig. 9 sweep: 2 workloads × 2 nodes × available variants.
    g.bench_function("fig9_full_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for node in [ProcessNode::N130, ProcessNode::N65] {
                for variant in [
                    SensorVariant::TwoDOff,
                    SensorVariant::TwoDIn,
                    SensorVariant::ThreeDIn,
                ] {
                    total += rhythmic::model(variant, node)
                        .expect("builds")
                        .estimate()
                        .expect("estimates")
                        .total()
                        .joules();
                }
                for variant in [
                    SensorVariant::TwoDOff,
                    SensorVariant::TwoDIn,
                    SensorVariant::ThreeDIn,
                    SensorVariant::ThreeDInStt,
                ] {
                    total += edgaze::model(variant, node)
                        .expect("builds")
                        .estimate()
                        .expect("estimates")
                        .total()
                        .joules();
                }
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_validation_suite, bench_design_space);
criterion_main!(benches);
