//! Criterion benches of the `camj-explore` sweep paths: the cost of a
//! 64-point frame-rate sweep under the four execution strategies —
//! naive rebuild-per-point vs the staged pipeline's cached artifacts,
//! each serial and parallel.
//!
//! The staged rows reuse one `ValidatedModel`: checks, routing, and the
//! elastic latency simulation run once for the whole sweep instead of
//! once per point. The parallel rows additionally fan points across
//! cores (a no-op on single-core hosts).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use camj_core::energy::{CacheStats, CamJ, EstimateReport, ValidatedModel};
use camj_core::functional::Stimulus;
use camj_explore::{
    Constraint, DesignPoint, EstimateCache, Explorer, MemoryKind, MetricVector, Objective,
    ParetoFront, ParetoQuery, PointError, PruneStats, SearchSpec, Sweep, SweepResults,
};
use camj_tech::node::ProcessNode;
use camj_workloads::configs::SensorVariant;
use camj_workloads::{edgaze, quickstart};

/// 64 frame-rate targets, all feasible for the Fig. 5 quickstart chip.
fn fps_targets() -> Vec<f64> {
    (0..64).map(|i| 10.0 + i as f64).collect()
}

/// 64 frame-rate targets feasible for the Ed-Gaze 2D-In sensor (its
/// 57.6M-MAC DNN leaves a much smaller frame budget than quickstart's).
fn edgaze_fps_targets() -> Vec<f64> {
    (0..64).map(|i| 10.0 + 0.25 * i as f64).collect()
}

fn naive_edgaze_sweep(explorer: &Explorer, targets: &[f64]) -> usize {
    // From-scratch per point: rebuild the model (checks + routes) and
    // run both simulations again.
    let sweep = Sweep::new().fps_targets(targets.iter().copied());
    let results = explorer.run(&sweep, |point| {
        let model =
            edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65).map_err(PointError::new)?;
        model
            .into_validated()
            .estimate_at_fps(point.fps("fps"))
            .map_err(PointError::from)
    });
    assert_eq!(results.error_count(), 0);
    results.ok_count()
}

fn naive_sweep(explorer: &Explorer, targets: &[f64]) -> usize {
    // The pre-explorer flow: every point re-validates, re-routes, and
    // re-simulates from scratch.
    let sweep = Sweep::new().fps_targets(targets.iter().copied());
    let results = explorer.run(&sweep, |point| {
        let model = quickstart::model(point.fps("fps")).map_err(PointError::new)?;
        model.estimate().map_err(PointError::from)
    });
    assert_eq!(results.error_count(), 0);
    results.ok_count()
}

fn staged_sweep(explorer: &Explorer, model: &ValidatedModel, targets: &[f64]) -> usize {
    let results = explorer.sweep_fps(model, targets.iter().copied());
    assert_eq!(results.error_count(), 0);
    results.ok_count()
}

fn bench_sweep_paths(c: &mut Criterion) {
    let targets = fps_targets();
    let model = quickstart::model(30.0).expect("builds").into_validated();

    let mut g = c.benchmark_group("sweep64");
    g.sample_size(10);
    g.bench_function("naive_serial", |b| {
        b.iter(|| black_box(naive_sweep(&Explorer::serial(), &targets)))
    });
    g.bench_function("naive_parallel", |b| {
        b.iter(|| black_box(naive_sweep(&Explorer::parallel(), &targets)))
    });
    g.bench_function("staged_serial", |b| {
        b.iter(|| black_box(staged_sweep(&Explorer::serial(), &model, &targets)))
    });
    g.bench_function("staged_parallel", |b| {
        b.iter(|| black_box(staged_sweep(&Explorer::parallel(), &model, &targets)))
    });
    g.finish();

    let edgaze_targets = edgaze_fps_targets();
    let edgaze_model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .expect("builds")
        .into_validated();
    let mut g = c.benchmark_group("sweep64_edgaze");
    g.sample_size(10);
    g.bench_function("naive_serial", |b| {
        b.iter(|| black_box(naive_edgaze_sweep(&Explorer::serial(), &edgaze_targets)))
    });
    g.bench_function("staged_parallel", |b| {
        b.iter(|| {
            black_box(staged_sweep(
                &Explorer::parallel(),
                &edgaze_model,
                &edgaze_targets,
            ))
        })
    });
    g.finish();
}

/// One-shot speedup summary over medians of repeated runs, for the PR
/// record: staged (cached artifacts) and parallel speedups vs the
/// naive serial path.
fn speedup_summary(_c: &mut Criterion) {
    let targets = fps_targets();
    let model = quickstart::model(30.0).expect("builds").into_validated();
    let time = |f: &dyn Fn() -> usize| {
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let naive_serial = time(&|| naive_sweep(&Explorer::serial(), &targets));
    let staged_serial = time(&|| staged_sweep(&Explorer::serial(), &model, &targets));
    let staged_parallel = time(&|| staged_sweep(&Explorer::parallel(), &model, &targets));
    println!();
    println!("sweep64 (quickstart) speedups vs naive serial (median of 5):");
    println!(
        "  staged serial:   {:6.2}x  ({:.1} ms -> {:.1} ms)",
        naive_serial / staged_serial,
        naive_serial * 1e3,
        staged_serial * 1e3
    );
    println!(
        "  staged parallel: {:6.2}x  ({:.1} ms -> {:.1} ms, {} worker thread(s))",
        naive_serial / staged_parallel,
        naive_serial * 1e3,
        staged_parallel * 1e3,
        rayon_threads()
    );

    let targets = edgaze_fps_targets();
    let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .expect("builds")
        .into_validated();
    let naive_serial = time(&|| naive_edgaze_sweep(&Explorer::serial(), &targets));
    let staged_serial = time(&|| staged_sweep(&Explorer::serial(), &model, &targets));
    let staged_parallel = time(&|| staged_sweep(&Explorer::parallel(), &model, &targets));
    println!();
    println!("sweep64 (edgaze 2D-In @65nm) speedups vs naive serial (median of 5):");
    println!(
        "  staged serial:   {:6.2}x  ({:.1} ms -> {:.1} ms)",
        naive_serial / staged_serial,
        naive_serial * 1e3,
        staged_serial * 1e3
    );
    println!(
        "  staged parallel: {:6.2}x  ({:.1} ms -> {:.1} ms, {} worker thread(s))",
        naive_serial / staged_parallel,
        naive_serial * 1e3,
        staged_parallel * 1e3,
        rayon_threads()
    );
}

fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

// ---------------------------------------------------------------------
// 4-axis incremental sweep: fps × bit width × tech node × memory kind
// ---------------------------------------------------------------------

/// The 256-point Ed-Gaze 2D-In grid of the incremental-engine
/// acceptance benchmark: 8 frame rates × 4 ADC bit widths × 4 CIS
/// nodes × 2 frame-buffer structures.
fn four_axis_sweep() -> Sweep {
    Sweep::new()
        .fps_targets((0..8).map(|i| 10.0 + 2.0 * f64::from(i)))
        .bit_widths([8, 9, 10, 11])
        .tech_nodes([
            ProcessNode::N130,
            ProcessNode::N110,
            ProcessNode::N90,
            ProcessNode::N65,
        ])
        .memory_kinds([MemoryKind::DoubleBuffer, MemoryKind::LineBuffer])
}

/// Builds the Ed-Gaze model a 4-axis grid point describes.
fn build_point(point: &DesignPoint) -> Result<ValidatedModel, PointError> {
    let config = edgaze::EdGazeConfig::new(SensorVariant::TwoDIn, point.node("tech_node"))
        .with_adc_bits(point.u32("bit_width"))
        .with_frame_buffer_kind(point.memory("memory"));
    edgaze::model_with(config)
        .map(CamJ::into_validated)
        .map_err(PointError::new)
}

/// The PR 1 staged path on a multi-axis grid: every point rebuilds the
/// model from the closure and re-runs validate → route → simulate →
/// energy; the per-model caches never help because each model lives for
/// exactly one point.
fn staged_baseline(sweep: &Sweep) -> SweepResults<EstimateReport> {
    Explorer::serial().run(sweep, |point| {
        build_point(point)?
            .estimate_at_fps(point.fps("fps"))
            .map_err(PointError::from)
    })
}

/// The incremental path: delta-planned grid, one model per rebuild
/// group, one shared content-addressed cache across all points.
fn incremental(explorer: &Explorer, sweep: &Sweep) -> (SweepResults<EstimateReport>, CacheStats) {
    let cache = EstimateCache::shared();
    let results = explorer.sweep_incremental(sweep, &cache, build_point);
    let stats = cache.stats();
    (results, stats)
}

/// Timed samples per mode: `CAMJ_BENCH_SAMPLES` (CI smoke sets 1),
/// default 5.
fn bench_samples() -> usize {
    std::env::var("CAMJ_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

fn median_secs(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Where the bench record lives: the workspace root, committed so the
/// CI smoke job can diff new medians against the recorded baselines.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");

/// How much a hot-loop median may exceed its committed baseline before
/// the bench fails (the CI regression gate).
const REGRESSION_FACTOR: f64 = 1.5;

/// The acceptance bar for the Monte-Carlo frame path: a 16-seed batch
/// must cost well under 16x one scalar-reference frame. The original
/// analog-only bar was ~4x; since the functional-pipeline PR every
/// frame also executes the digital DAG, which is per-seed
/// deterministic work a batch cannot amortize the way it amortizes
/// noise sampling, so the observed ratio sits near 6x on Ed-Gaze
/// (three DAG stages incl. a 640x400 input). Asserted with headroom
/// for timer noise on busy CI hosts; the measured ratio is recorded in
/// `frame_sim.mc16_over_scalar`, and absolute regressions are gated by
/// the committed `frame_sim.mc16_ms` baseline.
const MC16_SCALAR_BUDGET: f64 = 8.0;

/// Seeds in the benchmarked Monte-Carlo batch.
const MC_SEEDS: u64 = 16;

/// Median wall time of `f` over `samples` runs, in seconds.
fn time_median(samples: usize, f: &dyn Fn()) -> f64 {
    let mut t: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    median_secs(&mut t)
}

// ---------------------------------------------------------------------
// Hot loops: arena-backed elastic simulation + Monte-Carlo frame sim
// ---------------------------------------------------------------------

/// Medians of the two per-point hot loops on the Ed-Gaze 2D-In sensor:
/// the cold-miss elastic simulation (model build + arena-backed cycle
/// sim, what every cache miss in a sweep pays) and the functional frame
/// paths (scalar reference, vectorized single-seed, 16-seed ziggurat
/// Monte-Carlo batch).
fn hot_loop_records(samples: usize) -> (ElasticRecord, FrameRecord) {
    let cold_sim_s = time_median(samples, &|| {
        let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
            .expect("builds")
            .into_validated();
        black_box(model.simulate().expect("simulates"));
    });

    let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .expect("builds")
        .into_validated();
    let stimulus = Stimulus::uniform(0.5);
    let scalar_s = time_median(samples, &|| {
        black_box(
            model
                .simulate_frame_reference(0, &stimulus)
                .expect("simulates"),
        );
    });
    let vectorized_s = time_median(samples, &|| {
        black_box(model.simulate_frame(0, &stimulus).expect("simulates"));
    });
    let seeds: Vec<u64> = (0..MC_SEEDS).collect();
    let mc16_s = time_median(samples, &|| {
        black_box(model.simulate_frames(&seeds, &stimulus).expect("simulates"));
    });

    println!();
    println!("hot loops (edgaze 2D-In @ 65nm), median of {samples}:");
    println!(
        "  elastic cold-miss (build + sim): {:8.2} ms",
        cold_sim_s * 1e3
    );
    println!(
        "  frame scalar reference:          {:8.2} ms",
        scalar_s * 1e3
    );
    println!(
        "  frame vectorized:                {:8.2} ms",
        vectorized_s * 1e3
    );
    println!(
        "  frame mc{MC_SEEDS} (ziggurat batch):       {:8.2} ms  ({:.2}x scalar)",
        mc16_s * 1e3,
        mc16_s / scalar_s
    );

    (
        ElasticRecord {
            workload: "edgaze 2D-In @ 65nm".to_owned(),
            samples,
            cold_sim_ms: cold_sim_s * 1e3,
        },
        FrameRecord {
            workload: "edgaze 2D-In @ 65nm".to_owned(),
            stimulus: "uniform(0.5)".to_owned(),
            samples,
            scalar_reference_ms: scalar_s * 1e3,
            vectorized_ms: vectorized_s * 1e3,
            mc16_seeds: MC_SEEDS as usize,
            mc16_ms: mc16_s * 1e3,
            mc16_over_scalar: mc16_s / scalar_s,
        },
    )
}

/// Loads the committed bench record's hot-loop baselines, if any: the
/// regression gates. Read out of the value tree by hand — a strict
/// derive against a subset struct would reject the record's extra
/// descriptive fields (the shim serde rejects unknown keys) and
/// silently disable every gate. A missing file, section, or field
/// disables only that gate.
fn committed_baselines() -> CommittedBench {
    let tree = std::fs::read_to_string(BENCH_PATH)
        .ok()
        .and_then(|json| serde_json::from_str::<serde_json::Value>(&json).ok());
    let num = |section: &str, field: &str| -> Option<f64> {
        tree.as_ref()?
            .as_object()?
            .get(section)?
            .as_object()?
            .get(field)?
            .as_f64()
    };
    CommittedBench {
        cold_sim_ms: num("elastic_sim", "cold_sim_ms"),
        scalar_reference_ms: num("frame_sim", "scalar_reference_ms"),
        vectorized_ms: num("frame_sim", "vectorized_ms"),
        mc16_ms: num("frame_sim", "mc16_ms"),
        full_dag_frame_ms: num("functional", "full_dag_frame_ms"),
        accuracy_pareto_ms: num("functional", "accuracy_pareto_ms"),
    }
}

// ---------------------------------------------------------------------
// Functional pipeline: full-DAG frame throughput + accuracy pareto
// ---------------------------------------------------------------------

/// The committed Ed-Gaze eye image the edgaze description bundles —
/// the same stimulus the CLI goldens run.
const EYE_STIMULUS_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../descriptions/edgaze_eye.pgm"
);

/// The edgaze description's bundled fps grid (`sweep.fps`), so the
/// recorded accuracy-pareto wall-clock matches what the CLI golden
/// command (`camj pareto --objectives total_energy,accuracy:centroid`)
/// pays.
const ACCURACY_FPS_GRID: [f64; 7] = [5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0];

/// Medians of the end-to-end functional pipeline on Ed-Gaze 2D-In:
/// one full-DAG frame (image render + noisy analog chain + digital DAG
/// + task metrics) and a cold accuracy pareto over the bundled grid.
fn functional_record(samples: usize) -> FunctionalRecord {
    let stimulus =
        Stimulus::image_from_path(EYE_STIMULUS_PATH).expect("committed eye image decodes");
    let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .expect("builds")
        .into_validated()
        .with_stimulus(stimulus.clone());

    let frame_s = time_median(samples, &|| {
        black_box(model.simulate_frame(0, &stimulus).expect("simulates"));
    });

    let sweep = Sweep::new().fps_targets(ACCURACY_FPS_GRID);
    let query = ParetoQuery::new(vec![
        "total_energy".parse::<Objective>().expect("grammar"),
        "accuracy:centroid".parse::<Objective>().expect("grammar"),
    ]);
    let build = |_point: &DesignPoint| {
        edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
            .map(CamJ::into_validated)
            .map(|m| m.with_stimulus(stimulus.clone()))
            .map_err(PointError::new)
    };
    let pareto_s = time_median(samples, &|| {
        let cache = EstimateCache::shared();
        black_box(
            Explorer::serial()
                .pareto(&sweep, &cache, &query, build)
                .frontier()
                .len(),
        );
    });
    let cache = EstimateCache::shared();
    let results = Explorer::serial().pareto(&sweep, &cache, &query, build);
    assert_eq!(
        results.errors().len(),
        0,
        "the accuracy grid must be fully feasible"
    );

    println!();
    println!("functional pipeline (edgaze 2D-In @ 65nm, eye image), median of {samples}:");
    println!(
        "  full-DAG frame:           {:8.2} ms  ({:.1} frames/s)",
        frame_s * 1e3,
        1.0 / frame_s
    );
    println!(
        "  accuracy pareto (cold, {} points): {:8.1} ms, frontier {}",
        sweep.len(),
        pareto_s * 1e3,
        results.frontier().len()
    );

    FunctionalRecord {
        workload: "edgaze 2D-In @ 65nm".to_owned(),
        stimulus: "image(descriptions/edgaze_eye.pgm)".to_owned(),
        samples,
        full_dag_frame_ms: frame_s * 1e3,
        frames_per_sec: 1.0 / frame_s,
        accuracy_objectives: query.objectives().iter().map(Objective::key).collect(),
        accuracy_grid_points: sweep.len(),
        accuracy_pareto_ms: pareto_s * 1e3,
        accuracy_frontier_points: results.frontier().len(),
    }
}

/// Fails the bench (and with it the CI smoke job) when a freshly
/// measured hot-loop median regresses more than [`REGRESSION_FACTOR`]
/// over its committed baseline.
fn assert_no_regression(elastic: &ElasticRecord, frame: &FrameRecord, func: &FunctionalRecord) {
    // CAMJ_BENCH_ACCEPT=1 skips the committed-baseline gates for one
    // run, so an *intentional* hot-loop cost change can regenerate
    // BENCH_sweep.json (the bench gates before it rewrites the file).
    // Absolute acceptance bars below still apply.
    if std::env::var_os("CAMJ_BENCH_ACCEPT").is_some_and(|v| v == "1") {
        println!("  CAMJ_BENCH_ACCEPT=1: skipping committed-baseline regression gates");
    } else {
        check_committed_gates(elastic, frame, func);
    }
    assert!(
        frame.mc16_ms < MC16_SCALAR_BUDGET * frame.scalar_reference_ms,
        "a {MC_SEEDS}-seed Monte-Carlo batch must stay well under {MC16_SCALAR_BUDGET}x one \
         scalar frame, got {:.2}x ({:.2} ms vs {:.2} ms)",
        frame.mc16_over_scalar,
        frame.mc16_ms,
        frame.scalar_reference_ms
    );
}

/// The committed-baseline half of [`assert_no_regression`].
fn check_committed_gates(elastic: &ElasticRecord, frame: &FrameRecord, func: &FunctionalRecord) {
    let committed = committed_baselines();
    let gate = |label: &str, now_ms: f64, committed_ms: f64| {
        assert!(
            now_ms <= committed_ms * REGRESSION_FACTOR,
            "{label} regressed: {now_ms:.2} ms vs committed {committed_ms:.2} ms \
             (budget {REGRESSION_FACTOR}x)"
        );
    };
    for (label, now_ms, committed_ms) in [
        (
            "elastic_sim.cold_sim_ms",
            elastic.cold_sim_ms,
            committed.cold_sim_ms,
        ),
        (
            "frame_sim.scalar_reference_ms",
            frame.scalar_reference_ms,
            committed.scalar_reference_ms,
        ),
        (
            "frame_sim.vectorized_ms",
            frame.vectorized_ms,
            committed.vectorized_ms,
        ),
        ("frame_sim.mc16_ms", frame.mc16_ms, committed.mc16_ms),
        (
            "functional.full_dag_frame_ms",
            func.full_dag_frame_ms,
            committed.full_dag_frame_ms,
        ),
        (
            "functional.accuracy_pareto_ms",
            func.accuracy_pareto_ms,
            committed.accuracy_pareto_ms,
        ),
    ] {
        if let Some(committed_ms) = committed_ms {
            gate(label, now_ms, committed_ms);
        }
    }
}

// ---------------------------------------------------------------------
// Trace overhead: the cost of the disabled observability facade
// ---------------------------------------------------------------------

/// Acceptance bar: with no recording session, the observability
/// instrumentation's worst-case cost must stay under this fraction of
/// the incremental 4-axis sweep's median.
const TRACE_OVERHEAD_BUDGET: f64 = 0.03;

/// Bounds the disabled-recorder overhead of the incremental sweep.
///
/// The instrumentation is always compiled in, so there is no
/// "uninstrumented" binary to difference against; instead the bound is
/// built from its two factors: a traced run counts how many events the
/// sweep's sites emit (an upper bound on the number of disabled
/// `enabled()` checks — a span is two events but only one guarded
/// open), and a microbench prices one disabled site. Their product over
/// the sweep's measured median is the reported overhead fraction.
fn trace_overhead_record(sweep: &Sweep, sweep_median_ms: f64) -> TraceOverheadRecord {
    let session = camj_obs::ObsSession::begin();
    let _ = incremental(&Explorer::serial(), sweep);
    let events = session.finish().event_count();

    // Price one disabled site: the recorder is installed but the
    // session above has ended, so this loop walks the exact path every
    // instrumented call takes during an untraced sweep.
    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        let _g = obs_core::span(black_box("bench.disabled.span"));
        obs_core::counter(black_box("bench.disabled.counter"), black_box(i), 1);
    }
    let disabled_site_ns = start.elapsed().as_secs_f64() * 1e9 / (2 * ITERS) as f64;

    let overhead_fraction = events as f64 * disabled_site_ns / (sweep_median_ms * 1e6);
    println!();
    println!(
        "trace overhead (disabled recorder): {events} events x {disabled_site_ns:.2} ns/site \
         over {sweep_median_ms:.1} ms -> {:.4}%",
        overhead_fraction * 100.0
    );
    assert!(
        overhead_fraction < TRACE_OVERHEAD_BUDGET,
        "disabled-recorder overhead must stay under {:.0}% of the incremental sweep median, \
         got {:.3}%",
        TRACE_OVERHEAD_BUDGET * 100.0,
        overhead_fraction * 100.0
    );
    TraceOverheadRecord {
        events,
        disabled_site_ns,
        sweep_median_ms,
        overhead_fraction,
        budget_fraction: TRACE_OVERHEAD_BUDGET,
    }
}

// ---------------------------------------------------------------------
// Adaptive frontier search: 4096-point grid, recall vs exhaustive
// ---------------------------------------------------------------------

/// The 4096-point Ed-Gaze 2D-In grid of the adaptive-search acceptance
/// benchmark: 64 frame rates × 8 ADC bit widths × 4 CIS nodes × 2
/// frame-buffer structures — 16x the incremental grid, the scale where
/// enumerating the cartesian product stops being free.
fn search_axis_sweep() -> Sweep {
    Sweep::new()
        .fps_targets((0..64).map(|i| 10.0 + 0.25 * f64::from(i)))
        .bit_widths([8, 9, 10, 11, 12, 13, 14, 15])
        .tech_nodes([
            ProcessNode::N130,
            ProcessNode::N110,
            ProcessNode::N90,
            ProcessNode::N65,
        ])
        .memory_kinds([MemoryKind::DoubleBuffer, MemoryKind::LineBuffer])
}

/// Acceptance bars for the adaptive search on the 4096-point grid: the
/// seeded run must recover at least this fraction of the exhaustive
/// frontier…
const SEARCH_RECALL_FLOOR: f64 = 0.95;
/// …while evaluating at most this fraction of the grid's points.
const SEARCH_EVAL_CEILING: f64 = 0.15;

/// The adaptive-search acceptance benchmark: exact exhaustive frontier
/// first (the oracle), then the seeded adaptive run, gated on recall
/// and evaluation count, with wall-clock medians for both paths.
fn search_summary(sweep: &Sweep, samples: usize) -> SearchRecord {
    let query = ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity]);
    let budget = (sweep.len() as f64 * SEARCH_EVAL_CEILING).floor() as usize;
    // Population 32 buys ~18 sequential generations inside the budget;
    // the default 64 spends too much per generation to walk the whole
    // frontier ridge before the budget runs out.
    let spec = SearchSpec::new().seed(0).budget(budget).population(32);

    let exhaustive = {
        let cache = EstimateCache::shared();
        Explorer::parallel().pareto(sweep, &cache, &query, build_point)
    };
    let searched = {
        let cache = EstimateCache::shared();
        Explorer::parallel().search(sweep, &cache, &query, &spec, build_point)
    };
    assert!(
        !searched.exhaustive(),
        "a {}-point grid must take the adaptive path",
        sweep.len()
    );
    assert!(
        searched.evaluations() <= budget,
        "acceptance bar: search must evaluate at most {:.0}% of the grid \
         ({budget} of {} points), used {}",
        SEARCH_EVAL_CEILING * 100.0,
        sweep.len(),
        searched.evaluations()
    );
    let oracle: std::collections::BTreeSet<usize> = exhaustive
        .frontier()
        .iter()
        .map(|e| e.point.index)
        .collect();
    let found = searched
        .frontier()
        .iter()
        .filter(|e| oracle.contains(&e.point.index))
        .count();
    let recall = if oracle.is_empty() {
        1.0
    } else {
        found as f64 / oracle.len() as f64
    };
    assert!(
        recall >= SEARCH_RECALL_FLOOR,
        "acceptance bar: search must recover >= {:.0}% of the exhaustive frontier, \
         got {found} of {} ({:.1}%)",
        SEARCH_RECALL_FLOOR * 100.0,
        oracle.len(),
        recall * 100.0
    );

    let exhaustive_s = time_median(samples, &|| {
        let cache = EstimateCache::shared();
        black_box(
            Explorer::parallel()
                .pareto(sweep, &cache, &query, build_point)
                .frontier()
                .len(),
        );
    });
    let search_s = time_median(samples, &|| {
        let cache = EstimateCache::shared();
        black_box(
            Explorer::parallel()
                .search(sweep, &cache, &query, &spec, build_point)
                .frontier()
                .len(),
        );
    });

    println!();
    println!(
        "search4096 (edgaze 2D-In, {} points: fps x bit_width x tech_node x memory), \
         median of {samples}:",
        sweep.len()
    );
    println!("  exhaustive pareto:  {:8.1} ms", exhaustive_s * 1e3);
    println!(
        "  adaptive search:    {:8.1} ms  ({:5.2}x, {} of {} points, {} generation(s){})",
        search_s * 1e3,
        exhaustive_s / search_s,
        searched.evaluations(),
        sweep.len(),
        searched.generations_run(),
        if searched.converged() {
            ", converged"
        } else {
            ""
        }
    );
    println!(
        "  frontier recall:    {found} of {} exhaustive frontier point(s) ({:.1}%)",
        oracle.len(),
        recall * 100.0
    );

    SearchRecord {
        workload: "edgaze 2D-In".to_owned(),
        grid: "fps(64) x bit_width(8) x tech_node(4) x memory(2)".to_owned(),
        points: sweep.len(),
        samples,
        objectives: query.objectives().iter().map(Objective::key).collect(),
        seed: 0,
        budget,
        evaluations: searched.evaluations(),
        evaluation_fraction: searched.evaluation_fraction(),
        generations: searched.generations_run(),
        converged: searched.converged(),
        frontier_points: searched.frontier().len(),
        exhaustive_frontier_points: oracle.len(),
        frontier_recall: recall,
        recall_floor: SEARCH_RECALL_FLOOR,
        eval_ceiling: SEARCH_EVAL_CEILING,
        exhaustive_ms: exhaustive_s * 1e3,
        search_ms: search_s * 1e3,
        speedup: exhaustive_s / search_s,
    }
}

/// The thermal budget of the Pareto-pruning acceptance benchmark, in
/// mW/mm². Deliberately **active** on the 4-axis grid: most points'
/// final peak density exceeds it, so the constraint gate cuts them
/// after the digital-memory kernel (or earlier) and their remaining
/// energy kernels never run.
const PRUNING_BUDGET_MW_PER_MM2: f64 = 0.4;

/// The Pareto query of the acceptance benchmark: minimise (total
/// energy, peak power density) under the active thermal budget.
fn pareto_query() -> ParetoQuery {
    ParetoQuery::new(vec![Objective::TotalEnergy, Objective::PowerDensity])
        .constrain(Constraint::MaxPowerDensity(PRUNING_BUDGET_MW_PER_MM2))
}

/// The cold reference frontier: run the full unconstrained staged sweep
/// (every kernel on every point), then post-filter the completed
/// reports through the same constraint and dominance filter.
fn cold_postfilter_front(reference: &SweepResults<EstimateReport>) -> ParetoFront {
    let query = pareto_query();
    let mut front = ParetoFront::new(query.objectives().to_vec());
    for (point, report) in reference.successes() {
        let density = report.peak_power_density_mw_per_mm2().unwrap_or(0.0);
        if density <= PRUNING_BUDGET_MW_PER_MM2 {
            front.insert(
                point.clone(),
                MetricVector::measure(query.objectives(), report),
            );
        }
    }
    front
}

/// The acceptance benchmark: medians of the staged (PR 1) vs
/// incremental paths on the 256-point grid, a bit-identity check
/// between them, and a `BENCH_sweep.json` record at the workspace root.
fn four_axis_summary(_c: &mut Criterion) {
    let sweep = four_axis_sweep();
    let samples = bench_samples();

    // Correctness first: the incremental sweep must be bit-identical to
    // the staged full-rebuild sweep, serial and parallel.
    let reference = staged_baseline(&sweep);
    assert_eq!(reference.error_count(), 0, "grid must be fully feasible");
    let (serial_results, stats) = incremental(&Explorer::serial(), &sweep);
    assert_eq!(
        reference, serial_results,
        "incremental serial sweep must be bit-identical to the staged baseline"
    );
    let (parallel_results, _) = incremental(&Explorer::parallel(), &sweep);
    assert_eq!(
        reference, parallel_results,
        "incremental parallel sweep must be bit-identical to the staged baseline"
    );

    let time = |f: &dyn Fn()| {
        let mut t: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .collect();
        median_secs(&mut t)
    };
    let baseline_s = time(&|| {
        black_box(staged_baseline(&sweep).ok_count());
    });
    let incremental_serial_s = time(&|| {
        black_box(incremental(&Explorer::serial(), &sweep).0.ok_count());
    });
    let incremental_parallel_s = time(&|| {
        black_box(incremental(&Explorer::parallel(), &sweep).0.ok_count());
    });

    println!();
    println!(
        "sweep4axis (edgaze 2D-In, {} points: fps x bit_width x tech_node x memory), \
         median of {samples}:",
        sweep.len()
    );
    println!("  staged per-point (PR 1):  {:8.1} ms", baseline_s * 1e3);
    println!(
        "  incremental serial:       {:8.1} ms  ({:5.2}x)",
        incremental_serial_s * 1e3,
        baseline_s / incremental_serial_s
    );
    println!(
        "  incremental parallel:     {:8.1} ms  ({:5.2}x, {} worker thread(s))",
        incremental_parallel_s * 1e3,
        baseline_s / incremental_parallel_s,
        rayon_threads()
    );
    println!("  cache: {stats}");

    // -----------------------------------------------------------------
    // Pareto pruning: same grid, (energy, density) objectives, active
    // power-density budget. Correctness first — the pruned incremental
    // frontier must be bit-identical to post-filtering the cold full
    // sweep — then the ≥20 % kernel-skip acceptance bar, then timing.
    // -----------------------------------------------------------------
    let query = pareto_query();
    let cold_front = cold_postfilter_front(&reference);
    let pareto_serial = {
        let cache = EstimateCache::shared();
        Explorer::serial().pareto(&sweep, &cache, &query, build_point)
    };
    let pareto_parallel = {
        let cache = EstimateCache::shared();
        Explorer::parallel().pareto(&sweep, &cache, &query, build_point)
    };
    for (mode, results) in [("serial", &pareto_serial), ("parallel", &pareto_parallel)] {
        assert_eq!(
            results.frontier().len(),
            cold_front.frontier().len(),
            "{mode}: pruned frontier size must match the cold post-filter"
        );
        for (pruned, cold) in results.frontier().iter().zip(cold_front.frontier()) {
            assert_eq!(pruned.point, cold.point, "{mode}: frontier points differ");
            assert!(
                pruned.metrics.same_as(&cold.metrics),
                "{mode}: frontier metrics must be bit-identical at [{}]",
                pruned.point
            );
        }
    }
    let prune_stats = *pareto_serial.stats();
    assert!(
        prune_stats.points_pruned > 0,
        "the power-density budget must be active on this grid"
    );
    assert!(
        prune_stats.skip_fraction() >= 0.20,
        "acceptance bar: pruning must skip >= 20% of energy-kernel work, got {:.1}%",
        prune_stats.skip_fraction() * 100.0
    );

    let pareto_serial_s = time(&|| {
        let cache = EstimateCache::shared();
        black_box(
            Explorer::serial()
                .pareto(&sweep, &cache, &query, build_point)
                .frontier()
                .len(),
        );
    });
    let pareto_postfilter_s = time(&|| {
        let cache = EstimateCache::shared();
        let results = Explorer::serial().sweep_incremental(&sweep, &cache, build_point);
        black_box(cold_postfilter_front(&results).frontier().len());
    });
    println!();
    println!(
        "pareto4axis (edgaze 2D-In, {} points, density <= {PRUNING_BUDGET_MW_PER_MM2} mW/mm2), \
         median of {samples}:",
        sweep.len()
    );
    println!(
        "  incremental + post-filter: {:8.1} ms",
        pareto_postfilter_s * 1e3
    );
    println!(
        "  pruned incremental:        {:8.1} ms  ({:5.2}x)",
        pareto_serial_s * 1e3,
        pareto_postfilter_s / pareto_serial_s
    );
    println!(
        "  frontier {} / dominated {} / pruned {}; {}",
        pareto_serial.frontier().len(),
        pareto_serial.dominated_count(),
        pareto_serial.pruned().len(),
        prune_stats
    );

    // Hot-loop medians last (quiet caches), gated against the committed
    // baselines *before* the file is rewritten below.
    let (elastic_record, frame_record) = hot_loop_records(samples);
    let functional = functional_record(samples);
    assert_no_regression(&elastic_record, &frame_record, &functional);

    let trace_overhead = trace_overhead_record(&sweep, incremental_serial_s * 1e3);

    let search = search_summary(&search_axis_sweep(), samples);

    let record = BenchFile {
        incremental: BenchRecord {
            workload: "edgaze 2D-In".to_owned(),
            grid: "fps(8) x bit_width(4) x tech_node(4) x memory(2)".to_owned(),
            points: sweep.len(),
            samples,
            staged_baseline_ms: baseline_s * 1e3,
            incremental_serial_ms: incremental_serial_s * 1e3,
            incremental_parallel_ms: incremental_parallel_s * 1e3,
            speedup_serial: baseline_s / incremental_serial_s,
            speedup_parallel: baseline_s / incremental_parallel_s,
            bit_identical: true,
            worker_threads: rayon_threads(),
            cache: stats,
        },
        pareto_pruning: ParetoRecord {
            objectives: query.objectives().iter().map(Objective::key).collect(),
            constraint: format!("power density <= {PRUNING_BUDGET_MW_PER_MM2} mW/mm2"),
            points: sweep.len(),
            samples,
            frontier_points: pareto_serial.frontier().len(),
            dominated: pareto_serial.dominated_count(),
            pruned_points: pareto_serial.pruned().len(),
            prune: prune_stats,
            skip_fraction: prune_stats.skip_fraction(),
            frontier_bit_identical_to_cold_postfilter: true,
            postfilter_ms: pareto_postfilter_s * 1e3,
            pruned_incremental_ms: pareto_serial_s * 1e3,
        },
        elastic_sim: elastic_record,
        frame_sim: frame_record,
        functional,
        trace_overhead,
        search,
    };
    match serde_json::to_string_pretty(&record) {
        Ok(json) => {
            if let Err(e) = std::fs::write(BENCH_PATH, json + "\n") {
                eprintln!("[warn: could not write {BENCH_PATH}: {e}]");
            } else {
                println!("  wrote {BENCH_PATH}");
            }
        }
        Err(e) => eprintln!("[warn: could not serialise the bench record: {e}]"),
    }
}

/// The committed `BENCH_sweep.json` schema: the PR 3 incremental-engine
/// record, the PR 4 Pareto-pruning record, and the PR 6 hot-loop
/// records (arena-backed elastic sim + Monte-Carlo frame sim).
#[derive(serde::Serialize)]
struct BenchFile {
    incremental: BenchRecord,
    pareto_pruning: ParetoRecord,
    elastic_sim: ElasticRecord,
    frame_sim: FrameRecord,
    functional: FunctionalRecord,
    trace_overhead: TraceOverheadRecord,
    search: SearchRecord,
}

/// The functional-pipeline record: a full-DAG frame (image stimulus →
/// noisy analog chain → digital DAG → task metrics) and the cold
/// wall-clock of the accuracy-objective pareto the CLI golden runs.
#[derive(serde::Serialize)]
struct FunctionalRecord {
    workload: String,
    stimulus: String,
    samples: usize,
    full_dag_frame_ms: f64,
    frames_per_sec: f64,
    accuracy_objectives: Vec<String>,
    accuracy_grid_points: usize,
    accuracy_pareto_ms: f64,
    accuracy_frontier_points: usize,
}

/// The adaptive-search acceptance record (PR 8): seeded search on the
/// 4096-point grid must recover at least [`SEARCH_RECALL_FLOOR`] of the
/// exhaustive frontier while evaluating at most [`SEARCH_EVAL_CEILING`]
/// of the grid's points.
#[derive(serde::Serialize)]
struct SearchRecord {
    workload: String,
    grid: String,
    points: usize,
    samples: usize,
    objectives: Vec<String>,
    seed: u64,
    budget: usize,
    evaluations: usize,
    evaluation_fraction: f64,
    generations: usize,
    converged: bool,
    frontier_points: usize,
    exhaustive_frontier_points: usize,
    frontier_recall: f64,
    recall_floor: f64,
    eval_ceiling: f64,
    exhaustive_ms: f64,
    search_ms: f64,
    speedup: f64,
}

/// The disabled-recorder overhead bound (PR 7): instrumentation event
/// volume x per-site disabled cost, as a fraction of the incremental
/// sweep median, gated at [`TRACE_OVERHEAD_BUDGET`].
#[derive(serde::Serialize)]
struct TraceOverheadRecord {
    events: usize,
    disabled_site_ns: f64,
    sweep_median_ms: f64,
    overhead_fraction: f64,
    budget_fraction: f64,
}

/// The elastic-simulation hot-loop record (PR 6): what one cache miss
/// pays to build and cycle-simulate the model on arena-backed state.
#[derive(serde::Serialize)]
struct ElasticRecord {
    workload: String,
    samples: usize,
    cold_sim_ms: f64,
}

/// The frame-simulation hot-loop record (PR 6). `scalar_reference` is
/// the pre-vectorization per-pixel path kept as the semantic oracle;
/// `vectorized` is the single-seed chunked path (bit-identical output);
/// `mc16` is a 16-seed ziggurat Monte-Carlo batch, whose acceptance bar
/// is costing less than ~4x one scalar frame.
#[derive(serde::Serialize)]
struct FrameRecord {
    workload: String,
    stimulus: String,
    samples: usize,
    scalar_reference_ms: f64,
    vectorized_ms: f64,
    mc16_seeds: usize,
    mc16_ms: f64,
    mc16_over_scalar: f64,
}

/// The subset of the committed `BENCH_sweep.json` the regression gate
/// reads back. Every field is optional so a first run (or a record
/// written by an older bench) disables the gate instead of failing it.
#[derive(Default)]
struct CommittedBench {
    cold_sim_ms: Option<f64>,
    scalar_reference_ms: Option<f64>,
    vectorized_ms: Option<f64>,
    mc16_ms: Option<f64>,
    full_dag_frame_ms: Option<f64>,
    accuracy_pareto_ms: Option<f64>,
}

/// The incremental-engine acceptance record (PR 3).
#[derive(serde::Serialize)]
struct BenchRecord {
    workload: String,
    grid: String,
    points: usize,
    samples: usize,
    staged_baseline_ms: f64,
    incremental_serial_ms: f64,
    incremental_parallel_ms: f64,
    speedup_serial: f64,
    speedup_parallel: f64,
    bit_identical: bool,
    worker_threads: usize,
    cache: CacheStats,
}

/// The Pareto constraint-pruning acceptance record (PR 4): the frontier
/// must be bit-identical to a cold post-filter, and pruning must skip
/// at least 20 % of energy-kernel invocations under the active
/// power-density budget.
#[derive(serde::Serialize)]
struct ParetoRecord {
    objectives: Vec<String>,
    constraint: String,
    points: usize,
    samples: usize,
    frontier_points: usize,
    dominated: usize,
    pruned_points: usize,
    prune: PruneStats,
    skip_fraction: f64,
    frontier_bit_identical_to_cold_postfilter: bool,
    postfilter_ms: f64,
    pruned_incremental_ms: f64,
}

criterion_group!(
    benches,
    bench_sweep_paths,
    speedup_summary,
    four_axis_summary
);
criterion_main!(benches);
