//! Criterion benches of the `camj-explore` sweep paths: the cost of a
//! 64-point frame-rate sweep under the four execution strategies —
//! naive rebuild-per-point vs the staged pipeline's cached artifacts,
//! each serial and parallel.
//!
//! The staged rows reuse one `ValidatedModel`: checks, routing, and the
//! elastic latency simulation run once for the whole sweep instead of
//! once per point. The parallel rows additionally fan points across
//! cores (a no-op on single-core hosts).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use camj_core::energy::ValidatedModel;
use camj_explore::{Explorer, PointError, Sweep};
use camj_tech::node::ProcessNode;
use camj_workloads::configs::SensorVariant;
use camj_workloads::{edgaze, quickstart};

/// 64 frame-rate targets, all feasible for the Fig. 5 quickstart chip.
fn fps_targets() -> Vec<f64> {
    (0..64).map(|i| 10.0 + i as f64).collect()
}

/// 64 frame-rate targets feasible for the Ed-Gaze 2D-In sensor (its
/// 57.6M-MAC DNN leaves a much smaller frame budget than quickstart's).
fn edgaze_fps_targets() -> Vec<f64> {
    (0..64).map(|i| 10.0 + 0.25 * i as f64).collect()
}

fn naive_edgaze_sweep(explorer: &Explorer, targets: &[f64]) -> usize {
    // From-scratch per point: rebuild the model (checks + routes) and
    // run both simulations again.
    let sweep = Sweep::new().fps_targets(targets.iter().copied());
    let results = explorer.run(&sweep, |point| {
        let model =
            edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65).map_err(PointError::new)?;
        model
            .into_validated()
            .estimate_at_fps(point.fps("fps"))
            .map_err(PointError::from)
    });
    assert_eq!(results.error_count(), 0);
    results.ok_count()
}

fn naive_sweep(explorer: &Explorer, targets: &[f64]) -> usize {
    // The pre-explorer flow: every point re-validates, re-routes, and
    // re-simulates from scratch.
    let sweep = Sweep::new().fps_targets(targets.iter().copied());
    let results = explorer.run(&sweep, |point| {
        let model = quickstart::model(point.fps("fps")).map_err(PointError::new)?;
        model.estimate().map_err(PointError::from)
    });
    assert_eq!(results.error_count(), 0);
    results.ok_count()
}

fn staged_sweep(explorer: &Explorer, model: &ValidatedModel, targets: &[f64]) -> usize {
    let results = explorer.sweep_fps(model, targets.iter().copied());
    assert_eq!(results.error_count(), 0);
    results.ok_count()
}

fn bench_sweep_paths(c: &mut Criterion) {
    let targets = fps_targets();
    let model = quickstart::model(30.0).expect("builds").into_validated();

    let mut g = c.benchmark_group("sweep64");
    g.sample_size(10);
    g.bench_function("naive_serial", |b| {
        b.iter(|| black_box(naive_sweep(&Explorer::serial(), &targets)))
    });
    g.bench_function("naive_parallel", |b| {
        b.iter(|| black_box(naive_sweep(&Explorer::parallel(), &targets)))
    });
    g.bench_function("staged_serial", |b| {
        b.iter(|| black_box(staged_sweep(&Explorer::serial(), &model, &targets)))
    });
    g.bench_function("staged_parallel", |b| {
        b.iter(|| black_box(staged_sweep(&Explorer::parallel(), &model, &targets)))
    });
    g.finish();

    let edgaze_targets = edgaze_fps_targets();
    let edgaze_model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .expect("builds")
        .into_validated();
    let mut g = c.benchmark_group("sweep64_edgaze");
    g.sample_size(10);
    g.bench_function("naive_serial", |b| {
        b.iter(|| black_box(naive_edgaze_sweep(&Explorer::serial(), &edgaze_targets)))
    });
    g.bench_function("staged_parallel", |b| {
        b.iter(|| {
            black_box(staged_sweep(
                &Explorer::parallel(),
                &edgaze_model,
                &edgaze_targets,
            ))
        })
    });
    g.finish();
}

/// One-shot speedup summary over medians of repeated runs, for the PR
/// record: staged (cached artifacts) and parallel speedups vs the
/// naive serial path.
fn speedup_summary(_c: &mut Criterion) {
    let targets = fps_targets();
    let model = quickstart::model(30.0).expect("builds").into_validated();
    let time = |f: &dyn Fn() -> usize| {
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let naive_serial = time(&|| naive_sweep(&Explorer::serial(), &targets));
    let staged_serial = time(&|| staged_sweep(&Explorer::serial(), &model, &targets));
    let staged_parallel = time(&|| staged_sweep(&Explorer::parallel(), &model, &targets));
    println!();
    println!("sweep64 (quickstart) speedups vs naive serial (median of 5):");
    println!(
        "  staged serial:   {:6.2}x  ({:.1} ms -> {:.1} ms)",
        naive_serial / staged_serial,
        naive_serial * 1e3,
        staged_serial * 1e3
    );
    println!(
        "  staged parallel: {:6.2}x  ({:.1} ms -> {:.1} ms, {} worker thread(s))",
        naive_serial / staged_parallel,
        naive_serial * 1e3,
        staged_parallel * 1e3,
        rayon_threads()
    );

    let targets = edgaze_fps_targets();
    let model = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65)
        .expect("builds")
        .into_validated();
    let naive_serial = time(&|| naive_edgaze_sweep(&Explorer::serial(), &targets));
    let staged_serial = time(&|| staged_sweep(&Explorer::serial(), &model, &targets));
    let staged_parallel = time(&|| staged_sweep(&Explorer::parallel(), &model, &targets));
    println!();
    println!("sweep64 (edgaze 2D-In @65nm) speedups vs naive serial (median of 5):");
    println!(
        "  staged serial:   {:6.2}x  ({:.1} ms -> {:.1} ms)",
        naive_serial / staged_serial,
        naive_serial * 1e3,
        staged_serial * 1e3
    );
    println!(
        "  staged parallel: {:6.2}x  ({:.1} ms -> {:.1} ms, {} worker thread(s))",
        naive_serial / staged_parallel,
        naive_serial * 1e3,
        staged_parallel * 1e3,
        rayon_threads()
    );
}

fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

criterion_group!(benches, bench_sweep_paths, speedup_summary);
criterion_main!(benches);
