//! Criterion benches of the simulator itself: CamJ-style exploration is
//! only useful if a full-system estimate is interactive.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use camj_digital::memory::MemoryStructure;
use camj_digital::sim::{PipelineSimBuilder, SourceMode};
use camj_tech::node::ProcessNode;
use camj_workloads::configs::SensorVariant;
use camj_workloads::{edgaze, quickstart, rhythmic};

fn bench_estimates(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimate");
    g.sample_size(20);

    let quick = quickstart::model(30.0).expect("builds");
    g.bench_function("quickstart_fig5", |b| {
        b.iter(|| black_box(&quick).estimate().expect("estimates"))
    });

    let rhythmic = rhythmic::model(SensorVariant::TwoDIn, ProcessNode::N65).expect("builds");
    g.bench_function("rhythmic_2d_in", |b| {
        b.iter(|| black_box(&rhythmic).estimate().expect("estimates"))
    });

    let edgaze = edgaze::model(SensorVariant::TwoDIn, ProcessNode::N65).expect("builds");
    g.bench_function("edgaze_2d_in", |b| {
        b.iter(|| black_box(&edgaze).estimate().expect("estimates"))
    });

    let mixed = edgaze::model(SensorVariant::TwoDInMixed, ProcessNode::N65).expect("builds");
    g.bench_function("edgaze_mixed", |b| {
        b.iter(|| black_box(&mixed).estimate().expect("estimates"))
    });
    g.finish();
}

fn bench_cycle_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_sim");
    g.sample_size(20);

    // A three-stage pipeline pushing 1M pixels — raw simulator speed.
    g.bench_function("1M_pixels_3_stages", |b| {
        b.iter(|| {
            let mut builder = PipelineSimBuilder::new();
            let src = builder.add_source("src", SourceMode::Elastic);
            let s1 = builder.add_stage("s1", 2);
            let s2 = builder.add_stage("s2", 2);
            let buf = |n: &str| MemoryStructure::fifo(n, 4096).with_ports(8, 8);
            builder.connect(src, s1, &buf("a"), 4.0, 4.0, 1_000_000.0);
            builder.connect(s1, s2, &buf("b"), 4.0, 4.0, 1_000_000.0);
            builder
                .build()
                .expect("valid graph")
                .run(10_000_000)
                .expect("completes")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_estimates, bench_cycle_sim);
criterion_main!(benches);
