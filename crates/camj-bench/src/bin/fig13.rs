//! Regenerates paper Fig. 13 (first-two-stage compute/memory split).
fn main() {
    let _ = camj_bench::figures::fig11::run_fig13();
}
