//! Regenerates paper Fig. 1 (survey design mix).
fn main() {
    let _ = camj_bench::figures::fig1::run_fig1();
}
