//! Regenerates every table and figure of the evaluation in one run.
fn main() {
    let _ = camj_bench::figures::fig1::run_fig1();
    let _ = camj_bench::figures::fig1::run_fig3();
    let _ = camj_bench::figures::fig7::run();
    let _ = camj_bench::figures::fig9::run_rhythmic();
    let _ = camj_bench::figures::fig9::run_edgaze();
    let _ = camj_bench::figures::table3::run();
    let _ = camj_bench::figures::pareto::run();
    let _ = camj_bench::figures::fig11::run_fig11();
    let _ = camj_bench::figures::fig11::run_fig12();
    let _ = camj_bench::figures::fig11::run_fig13();
}
