//! Regenerates paper Fig. 9a/9b (in- vs off-sensor energy).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    if which == "rhythmic" || which == "all" {
        let _ = camj_bench::figures::fig9::run_rhythmic();
    }
    if which == "edgaze" || which == "all" {
        let _ = camj_bench::figures::fig9::run_edgaze();
    }
}
