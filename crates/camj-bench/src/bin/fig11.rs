//! Regenerates paper Fig. 11 (mixed-signal vs digital Ed-Gaze).
fn main() {
    let _ = camj_bench::figures::fig11::run_fig11();
}
