//! Regenerates paper Fig. 7 (validation) and Table 2.
fn main() {
    let _ = camj_bench::figures::fig7::run();
}
