//! Regenerates paper Fig. 12 (per-stage breakdown).
fn main() {
    let _ = camj_bench::figures::fig11::run_fig12();
}
