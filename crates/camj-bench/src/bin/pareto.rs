//! Regenerates the multi-objective Pareto companion to Fig. 9/Table 3.
fn main() {
    let _ = camj_bench::figures::pareto::run();
}
