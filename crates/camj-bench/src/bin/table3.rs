//! Regenerates paper Table 3 (power density).
fn main() {
    let _ = camj_bench::figures::table3::run();
}
