//! Regenerates paper Fig. 3 (node/pitch scaling trends).
fn main() {
    let _ = camj_bench::figures::fig1::run_fig3();
}
