//! # camj-bench — experiment harnesses for CamJ-rs
//!
//! One module per table/figure of the ISCA'23 evaluation. Each module
//! exposes a `run()` that prints the same rows/series the paper reports
//! and returns the data for machine use; the `src/bin/` wrappers and the
//! `all` binary drive them. JSON copies of every result land in
//! `results/` at the workspace root.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod figures;
pub mod output;
